# Empty dependencies file for flexible_rules.
# This may be replaced when dependencies are built.
