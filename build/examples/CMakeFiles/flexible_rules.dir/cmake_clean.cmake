file(REMOVE_RECURSE
  "CMakeFiles/flexible_rules.dir/flexible_rules.cpp.o"
  "CMakeFiles/flexible_rules.dir/flexible_rules.cpp.o.d"
  "flexible_rules"
  "flexible_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexible_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
