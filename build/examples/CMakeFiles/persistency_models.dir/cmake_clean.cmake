file(REMOVE_RECURSE
  "CMakeFiles/persistency_models.dir/persistency_models.cpp.o"
  "CMakeFiles/persistency_models.dir/persistency_models.cpp.o.d"
  "persistency_models"
  "persistency_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistency_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
