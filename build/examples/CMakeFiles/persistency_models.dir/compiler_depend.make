# Empty compiler generated dependencies file for persistency_models.
# This may be replaced when dependencies are built.
