# Empty compiler generated dependencies file for kvstore_debugging.
# This may be replaced when dependencies are built.
