file(REMOVE_RECURSE
  "CMakeFiles/kvstore_debugging.dir/kvstore_debugging.cpp.o"
  "CMakeFiles/kvstore_debugging.dir/kvstore_debugging.cpp.o.d"
  "kvstore_debugging"
  "kvstore_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
