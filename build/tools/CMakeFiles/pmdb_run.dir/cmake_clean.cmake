file(REMOVE_RECURSE
  "CMakeFiles/pmdb_run.dir/pmdb_run.cc.o"
  "CMakeFiles/pmdb_run.dir/pmdb_run.cc.o.d"
  "pmdb_run"
  "pmdb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
