# Empty dependencies file for pmdb_run.
# This may be replaced when dependencies are built.
