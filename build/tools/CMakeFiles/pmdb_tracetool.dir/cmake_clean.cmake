file(REMOVE_RECURSE
  "CMakeFiles/pmdb_tracetool.dir/pmdb_tracetool.cc.o"
  "CMakeFiles/pmdb_tracetool.dir/pmdb_tracetool.cc.o.d"
  "pmdb_tracetool"
  "pmdb_tracetool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_tracetool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
