# Empty compiler generated dependencies file for pmdb_tracetool.
# This may be replaced when dependencies are built.
