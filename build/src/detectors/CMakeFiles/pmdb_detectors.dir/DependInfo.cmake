
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/persistence_inspector.cc" "src/detectors/CMakeFiles/pmdb_detectors.dir/persistence_inspector.cc.o" "gcc" "src/detectors/CMakeFiles/pmdb_detectors.dir/persistence_inspector.cc.o.d"
  "/root/repo/src/detectors/pmemcheck.cc" "src/detectors/CMakeFiles/pmdb_detectors.dir/pmemcheck.cc.o" "gcc" "src/detectors/CMakeFiles/pmdb_detectors.dir/pmemcheck.cc.o.d"
  "/root/repo/src/detectors/pmtest.cc" "src/detectors/CMakeFiles/pmdb_detectors.dir/pmtest.cc.o" "gcc" "src/detectors/CMakeFiles/pmdb_detectors.dir/pmtest.cc.o.d"
  "/root/repo/src/detectors/registry.cc" "src/detectors/CMakeFiles/pmdb_detectors.dir/registry.cc.o" "gcc" "src/detectors/CMakeFiles/pmdb_detectors.dir/registry.cc.o.d"
  "/root/repo/src/detectors/xfdetector.cc" "src/detectors/CMakeFiles/pmdb_detectors.dir/xfdetector.cc.o" "gcc" "src/detectors/CMakeFiles/pmdb_detectors.dir/xfdetector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/pmdb_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
