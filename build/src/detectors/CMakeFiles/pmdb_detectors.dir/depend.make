# Empty dependencies file for pmdb_detectors.
# This may be replaced when dependencies are built.
