file(REMOVE_RECURSE
  "libpmdb_detectors.a"
)
