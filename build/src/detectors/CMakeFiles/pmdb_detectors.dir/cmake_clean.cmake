file(REMOVE_RECURSE
  "CMakeFiles/pmdb_detectors.dir/persistence_inspector.cc.o"
  "CMakeFiles/pmdb_detectors.dir/persistence_inspector.cc.o.d"
  "CMakeFiles/pmdb_detectors.dir/pmemcheck.cc.o"
  "CMakeFiles/pmdb_detectors.dir/pmemcheck.cc.o.d"
  "CMakeFiles/pmdb_detectors.dir/pmtest.cc.o"
  "CMakeFiles/pmdb_detectors.dir/pmtest.cc.o.d"
  "CMakeFiles/pmdb_detectors.dir/registry.cc.o"
  "CMakeFiles/pmdb_detectors.dir/registry.cc.o.d"
  "CMakeFiles/pmdb_detectors.dir/xfdetector.cc.o"
  "CMakeFiles/pmdb_detectors.dir/xfdetector.cc.o.d"
  "libpmdb_detectors.a"
  "libpmdb_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
