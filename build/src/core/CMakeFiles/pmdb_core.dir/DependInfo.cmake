
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/avl_tree.cc" "src/core/CMakeFiles/pmdb_core.dir/avl_tree.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/avl_tree.cc.o.d"
  "/root/repo/src/core/bug.cc" "src/core/CMakeFiles/pmdb_core.dir/bug.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/bug.cc.o.d"
  "/root/repo/src/core/cross_failure.cc" "src/core/CMakeFiles/pmdb_core.dir/cross_failure.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/cross_failure.cc.o.d"
  "/root/repo/src/core/debugger.cc" "src/core/CMakeFiles/pmdb_core.dir/debugger.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/debugger.cc.o.d"
  "/root/repo/src/core/mem_array.cc" "src/core/CMakeFiles/pmdb_core.dir/mem_array.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/mem_array.cc.o.d"
  "/root/repo/src/core/order_spec.cc" "src/core/CMakeFiles/pmdb_core.dir/order_spec.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/order_spec.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/pmdb_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/report.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/pmdb_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/rules.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/pmdb_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/pmdb_core.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/pmdb_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
