file(REMOVE_RECURSE
  "CMakeFiles/pmdb_core.dir/avl_tree.cc.o"
  "CMakeFiles/pmdb_core.dir/avl_tree.cc.o.d"
  "CMakeFiles/pmdb_core.dir/bug.cc.o"
  "CMakeFiles/pmdb_core.dir/bug.cc.o.d"
  "CMakeFiles/pmdb_core.dir/cross_failure.cc.o"
  "CMakeFiles/pmdb_core.dir/cross_failure.cc.o.d"
  "CMakeFiles/pmdb_core.dir/debugger.cc.o"
  "CMakeFiles/pmdb_core.dir/debugger.cc.o.d"
  "CMakeFiles/pmdb_core.dir/mem_array.cc.o"
  "CMakeFiles/pmdb_core.dir/mem_array.cc.o.d"
  "CMakeFiles/pmdb_core.dir/order_spec.cc.o"
  "CMakeFiles/pmdb_core.dir/order_spec.cc.o.d"
  "CMakeFiles/pmdb_core.dir/report.cc.o"
  "CMakeFiles/pmdb_core.dir/report.cc.o.d"
  "CMakeFiles/pmdb_core.dir/rules.cc.o"
  "CMakeFiles/pmdb_core.dir/rules.cc.o.d"
  "CMakeFiles/pmdb_core.dir/stats.cc.o"
  "CMakeFiles/pmdb_core.dir/stats.cc.o.d"
  "libpmdb_core.a"
  "libpmdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
