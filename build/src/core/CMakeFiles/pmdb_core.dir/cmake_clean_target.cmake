file(REMOVE_RECURSE
  "libpmdb_core.a"
)
