# Empty compiler generated dependencies file for pmdb_core.
# This may be replaced when dependencies are built.
