file(REMOVE_RECURSE
  "libpmdb_workloads.a"
)
