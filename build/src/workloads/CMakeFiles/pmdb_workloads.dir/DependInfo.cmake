
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/bug_suite.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/bug_suite.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/bug_suite.cc.o.d"
  "/root/repo/src/workloads/ctree.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/ctree.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/ctree.cc.o.d"
  "/root/repo/src/workloads/hashmap_atomic.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/hashmap_atomic.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/hashmap_atomic.cc.o.d"
  "/root/repo/src/workloads/hashmap_tx.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/hashmap_tx.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/hashmap_tx.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/redis.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/redis.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/redis.cc.o.d"
  "/root/repo/src/workloads/rtree.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/rtree.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/rtree.cc.o.d"
  "/root/repo/src/workloads/suite_runner.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/suite_runner.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/suite_runner.cc.o.d"
  "/root/repo/src/workloads/synth_patterns.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/synth_patterns.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/synth_patterns.cc.o.d"
  "/root/repo/src/workloads/synth_strand.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/synth_strand.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/synth_strand.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/workloads/CMakeFiles/pmdb_workloads.dir/ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/pmdb_workloads.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmdk/CMakeFiles/pmdb_pmdk.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/pmdb_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/pmdb_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
