file(REMOVE_RECURSE
  "CMakeFiles/pmdb_workloads.dir/btree.cc.o"
  "CMakeFiles/pmdb_workloads.dir/btree.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/bug_suite.cc.o"
  "CMakeFiles/pmdb_workloads.dir/bug_suite.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/ctree.cc.o"
  "CMakeFiles/pmdb_workloads.dir/ctree.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/hashmap_atomic.cc.o"
  "CMakeFiles/pmdb_workloads.dir/hashmap_atomic.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/hashmap_tx.cc.o"
  "CMakeFiles/pmdb_workloads.dir/hashmap_tx.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/memcached.cc.o"
  "CMakeFiles/pmdb_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/rbtree.cc.o"
  "CMakeFiles/pmdb_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/redis.cc.o"
  "CMakeFiles/pmdb_workloads.dir/redis.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/rtree.cc.o"
  "CMakeFiles/pmdb_workloads.dir/rtree.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/suite_runner.cc.o"
  "CMakeFiles/pmdb_workloads.dir/suite_runner.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/synth_patterns.cc.o"
  "CMakeFiles/pmdb_workloads.dir/synth_patterns.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/synth_strand.cc.o"
  "CMakeFiles/pmdb_workloads.dir/synth_strand.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/workload.cc.o"
  "CMakeFiles/pmdb_workloads.dir/workload.cc.o.d"
  "CMakeFiles/pmdb_workloads.dir/ycsb.cc.o"
  "CMakeFiles/pmdb_workloads.dir/ycsb.cc.o.d"
  "libpmdb_workloads.a"
  "libpmdb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
