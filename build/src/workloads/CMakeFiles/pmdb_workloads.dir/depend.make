# Empty dependencies file for pmdb_workloads.
# This may be replaced when dependencies are built.
