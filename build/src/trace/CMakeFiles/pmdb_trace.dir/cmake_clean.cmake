file(REMOVE_RECURSE
  "CMakeFiles/pmdb_trace.dir/runtime.cc.o"
  "CMakeFiles/pmdb_trace.dir/runtime.cc.o.d"
  "CMakeFiles/pmdb_trace.dir/trace_file.cc.o"
  "CMakeFiles/pmdb_trace.dir/trace_file.cc.o.d"
  "libpmdb_trace.a"
  "libpmdb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
