# Empty compiler generated dependencies file for pmdb_trace.
# This may be replaced when dependencies are built.
