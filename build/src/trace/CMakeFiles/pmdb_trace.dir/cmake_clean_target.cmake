file(REMOVE_RECURSE
  "libpmdb_trace.a"
)
