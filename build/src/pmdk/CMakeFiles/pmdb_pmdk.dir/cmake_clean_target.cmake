file(REMOVE_RECURSE
  "libpmdb_pmdk.a"
)
