# Empty compiler generated dependencies file for pmdb_pmdk.
# This may be replaced when dependencies are built.
