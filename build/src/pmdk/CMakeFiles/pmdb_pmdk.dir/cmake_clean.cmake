file(REMOVE_RECURSE
  "CMakeFiles/pmdb_pmdk.dir/pool.cc.o"
  "CMakeFiles/pmdb_pmdk.dir/pool.cc.o.d"
  "CMakeFiles/pmdb_pmdk.dir/tx.cc.o"
  "CMakeFiles/pmdb_pmdk.dir/tx.cc.o.d"
  "libpmdb_pmdk.a"
  "libpmdb_pmdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_pmdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
