
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmdk/pool.cc" "src/pmdk/CMakeFiles/pmdb_pmdk.dir/pool.cc.o" "gcc" "src/pmdk/CMakeFiles/pmdb_pmdk.dir/pool.cc.o.d"
  "/root/repo/src/pmdk/tx.cc" "src/pmdk/CMakeFiles/pmdb_pmdk.dir/tx.cc.o" "gcc" "src/pmdk/CMakeFiles/pmdb_pmdk.dir/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/pmdb_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
