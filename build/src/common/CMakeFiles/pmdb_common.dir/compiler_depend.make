# Empty compiler generated dependencies file for pmdb_common.
# This may be replaced when dependencies are built.
