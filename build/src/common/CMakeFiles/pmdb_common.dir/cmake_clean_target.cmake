file(REMOVE_RECURSE
  "libpmdb_common.a"
)
