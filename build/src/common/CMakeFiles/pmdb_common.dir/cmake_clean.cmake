file(REMOVE_RECURSE
  "CMakeFiles/pmdb_common.dir/logging.cc.o"
  "CMakeFiles/pmdb_common.dir/logging.cc.o.d"
  "CMakeFiles/pmdb_common.dir/rng.cc.o"
  "CMakeFiles/pmdb_common.dir/rng.cc.o.d"
  "CMakeFiles/pmdb_common.dir/table.cc.o"
  "CMakeFiles/pmdb_common.dir/table.cc.o.d"
  "libpmdb_common.a"
  "libpmdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
