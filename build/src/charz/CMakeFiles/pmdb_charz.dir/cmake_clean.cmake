file(REMOVE_RECURSE
  "CMakeFiles/pmdb_charz.dir/characterize.cc.o"
  "CMakeFiles/pmdb_charz.dir/characterize.cc.o.d"
  "libpmdb_charz.a"
  "libpmdb_charz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_charz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
