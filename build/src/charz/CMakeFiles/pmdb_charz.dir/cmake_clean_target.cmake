file(REMOVE_RECURSE
  "libpmdb_charz.a"
)
