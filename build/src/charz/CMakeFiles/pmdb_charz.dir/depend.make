# Empty dependencies file for pmdb_charz.
# This may be replaced when dependencies are built.
