file(REMOVE_RECURSE
  "libpmdb_pmem.a"
)
