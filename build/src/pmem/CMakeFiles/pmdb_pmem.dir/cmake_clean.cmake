file(REMOVE_RECURSE
  "CMakeFiles/pmdb_pmem.dir/device.cc.o"
  "CMakeFiles/pmdb_pmem.dir/device.cc.o.d"
  "libpmdb_pmem.a"
  "libpmdb_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdb_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
