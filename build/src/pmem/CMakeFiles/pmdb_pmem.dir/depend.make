# Empty dependencies file for pmdb_pmem.
# This may be replaced when dependencies are built.
