file(REMOVE_RECURSE
  "CMakeFiles/crosstool_comparison.dir/crosstool_comparison.cc.o"
  "CMakeFiles/crosstool_comparison.dir/crosstool_comparison.cc.o.d"
  "crosstool_comparison"
  "crosstool_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstool_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
