# Empty dependencies file for crosstool_comparison.
# This may be replaced when dependencies are built.
