# Empty dependencies file for newbugs_repro.
# This may be replaced when dependencies are built.
