file(REMOVE_RECURSE
  "CMakeFiles/newbugs_repro.dir/newbugs_repro.cc.o"
  "CMakeFiles/newbugs_repro.dir/newbugs_repro.cc.o.d"
  "newbugs_repro"
  "newbugs_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newbugs_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
