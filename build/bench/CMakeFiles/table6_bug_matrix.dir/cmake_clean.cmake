file(REMOVE_RECURSE
  "CMakeFiles/table6_bug_matrix.dir/table6_bug_matrix.cc.o"
  "CMakeFiles/table6_bug_matrix.dir/table6_bug_matrix.cc.o.d"
  "table6_bug_matrix"
  "table6_bug_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_bug_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
