# Empty dependencies file for table6_bug_matrix.
# This may be replaced when dependencies are built.
