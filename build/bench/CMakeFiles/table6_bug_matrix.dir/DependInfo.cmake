
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_bug_matrix.cc" "bench/CMakeFiles/table6_bug_matrix.dir/table6_bug_matrix.cc.o" "gcc" "bench/CMakeFiles/table6_bug_matrix.dir/table6_bug_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pmdb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/pmdb_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/charz/CMakeFiles/pmdb_charz.dir/DependInfo.cmake"
  "/root/repo/build/src/pmdk/CMakeFiles/pmdb_pmdk.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/pmdb_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
