# Empty compiler generated dependencies file for table5_speedup.
# This may be replaced when dependencies are built.
