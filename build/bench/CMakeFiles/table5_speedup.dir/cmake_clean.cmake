file(REMOVE_RECURSE
  "CMakeFiles/table5_speedup.dir/table5_speedup.cc.o"
  "CMakeFiles/table5_speedup.dir/table5_speedup.cc.o.d"
  "table5_speedup"
  "table5_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
