# Empty dependencies file for fig11_tree_size.
# This may be replaced when dependencies are built.
