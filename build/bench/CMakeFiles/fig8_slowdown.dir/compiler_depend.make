# Empty compiler generated dependencies file for fig8_slowdown.
# This may be replaced when dependencies are built.
