file(REMOVE_RECURSE
  "CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cc.o"
  "CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cc.o.d"
  "fig8_slowdown"
  "fig8_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
