# Empty compiler generated dependencies file for ycsb_sweep.
# This may be replaced when dependencies are built.
