file(REMOVE_RECURSE
  "CMakeFiles/ycsb_sweep.dir/ycsb_sweep.cc.o"
  "CMakeFiles/ycsb_sweep.dir/ycsb_sweep.cc.o.d"
  "ycsb_sweep"
  "ycsb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
