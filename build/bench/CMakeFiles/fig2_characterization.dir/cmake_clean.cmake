file(REMOVE_RECURSE
  "CMakeFiles/fig2_characterization.dir/fig2_characterization.cc.o"
  "CMakeFiles/fig2_characterization.dir/fig2_characterization.cc.o.d"
  "fig2_characterization"
  "fig2_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
