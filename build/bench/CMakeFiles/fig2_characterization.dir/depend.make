# Empty dependencies file for fig2_characterization.
# This may be replaced when dependencies are built.
