# Empty dependencies file for pattern_sweep.
# This may be replaced when dependencies are built.
