file(REMOVE_RECURSE
  "CMakeFiles/pattern_sweep.dir/pattern_sweep.cc.o"
  "CMakeFiles/pattern_sweep.dir/pattern_sweep.cc.o.d"
  "pattern_sweep"
  "pattern_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
