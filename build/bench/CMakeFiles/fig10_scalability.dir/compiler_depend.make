# Empty compiler generated dependencies file for fig10_scalability.
# This may be replaced when dependencies are built.
