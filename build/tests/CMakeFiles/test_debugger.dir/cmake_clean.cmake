file(REMOVE_RECURSE
  "CMakeFiles/test_debugger.dir/test_debugger.cc.o"
  "CMakeFiles/test_debugger.dir/test_debugger.cc.o.d"
  "test_debugger"
  "test_debugger.pdb"
  "test_debugger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
