# Empty compiler generated dependencies file for test_debugger.
# This may be replaced when dependencies are built.
