# Empty compiler generated dependencies file for test_tx.
# This may be replaced when dependencies are built.
