file(REMOVE_RECURSE
  "CMakeFiles/test_tx.dir/test_tx.cc.o"
  "CMakeFiles/test_tx.dir/test_tx.cc.o.d"
  "test_tx"
  "test_tx.pdb"
  "test_tx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
