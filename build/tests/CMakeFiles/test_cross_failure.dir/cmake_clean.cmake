file(REMOVE_RECURSE
  "CMakeFiles/test_cross_failure.dir/test_cross_failure.cc.o"
  "CMakeFiles/test_cross_failure.dir/test_cross_failure.cc.o.d"
  "test_cross_failure"
  "test_cross_failure.pdb"
  "test_cross_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
