# Empty dependencies file for test_cross_failure.
# This may be replaced when dependencies are built.
