file(REMOVE_RECURSE
  "CMakeFiles/test_detectors.dir/test_detectors.cc.o"
  "CMakeFiles/test_detectors.dir/test_detectors.cc.o.d"
  "test_detectors"
  "test_detectors.pdb"
  "test_detectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
