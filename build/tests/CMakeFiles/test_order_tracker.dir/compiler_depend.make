# Empty compiler generated dependencies file for test_order_tracker.
# This may be replaced when dependencies are built.
