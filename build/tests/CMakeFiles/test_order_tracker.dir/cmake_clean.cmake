file(REMOVE_RECURSE
  "CMakeFiles/test_order_tracker.dir/test_order_tracker.cc.o"
  "CMakeFiles/test_order_tracker.dir/test_order_tracker.cc.o.d"
  "test_order_tracker"
  "test_order_tracker.pdb"
  "test_order_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
