file(REMOVE_RECURSE
  "CMakeFiles/test_bug_suite.dir/test_bug_suite.cc.o"
  "CMakeFiles/test_bug_suite.dir/test_bug_suite.cc.o.d"
  "test_bug_suite"
  "test_bug_suite.pdb"
  "test_bug_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bug_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
