# Empty dependencies file for test_bug_suite.
# This may be replaced when dependencies are built.
