# Empty dependencies file for test_charz.
# This may be replaced when dependencies are built.
