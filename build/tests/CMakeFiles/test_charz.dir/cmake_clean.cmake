file(REMOVE_RECURSE
  "CMakeFiles/test_charz.dir/test_charz.cc.o"
  "CMakeFiles/test_charz.dir/test_charz.cc.o.d"
  "test_charz"
  "test_charz.pdb"
  "test_charz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
