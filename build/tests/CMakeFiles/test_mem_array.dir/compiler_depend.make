# Empty compiler generated dependencies file for test_mem_array.
# This may be replaced when dependencies are built.
