file(REMOVE_RECURSE
  "CMakeFiles/test_mem_array.dir/test_mem_array.cc.o"
  "CMakeFiles/test_mem_array.dir/test_mem_array.cc.o.d"
  "test_mem_array"
  "test_mem_array.pdb"
  "test_mem_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
