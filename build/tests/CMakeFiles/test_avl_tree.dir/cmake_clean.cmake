file(REMOVE_RECURSE
  "CMakeFiles/test_avl_tree.dir/test_avl_tree.cc.o"
  "CMakeFiles/test_avl_tree.dir/test_avl_tree.cc.o.d"
  "test_avl_tree"
  "test_avl_tree.pdb"
  "test_avl_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avl_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
