# Empty dependencies file for test_avl_tree.
# This may be replaced when dependencies are built.
