# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_avl_tree[1]_include.cmake")
include("/root/repo/build/tests/test_bug_suite[1]_include.cmake")
include("/root/repo/build/tests/test_charz[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cross_failure[1]_include.cmake")
include("/root/repo/build/tests/test_debugger[1]_include.cmake")
include("/root/repo/build/tests/test_detectors[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mem_array[1]_include.cmake")
include("/root/repo/build/tests/test_order_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_tx[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
