/**
 * @file
 * pmdbd — the out-of-process detection daemon.
 *
 * Listens on a Unix-domain socket for trace-stream sessions (see
 * src/service/), runs each through the sharded detector pool, and
 * replies to every client with its merged bug report.
 *
 * Usage:
 *   pmdbd --socket PATH [--shards N] [--stripe-bytes B]
 *         [--array-capacity N] [--pollers N] [--pin-cores]
 *         [--once N] [--json] [--metrics-sock PATH]
 *         [--stats-interval SEC] [--trace-out FILE]
 *
 *   --pollers N         ring-poller threads multiplexing client rings.
 *   --pin-cores         pin pollers + shard workers to distinct cores.
 *   --once N            exit after N sessions complete (CI smoke
 *                       tests); without it, run until SIGINT/SIGTERM.
 *   --json              print the aggregated per-session report on
 *                       exit, including ingest counters (batches
 *                       drained, events/s, steals, queue-full stalls,
 *                       idle-poll ratio) and the live metrics snapshot.
 *   --metrics-sock PATH serve live metrics snapshots on a second Unix
 *                       socket; clients send "json" or "prom" and get
 *                       one snapshot back (see tools/pmdb_stat).
 *   --stats-interval S  log a one-line ingest summary every S seconds.
 *   --trace-out FILE    enable pipeline span tracing and write a
 *                       Chrome/Perfetto trace-event JSON on exit.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/daemon.hh"

namespace
{

std::atomic<bool> interrupted{false};

void
onSignal(int)
{
    interrupted.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--shards N] "
                 "[--stripe-bytes B]\n"
                 "          [--array-capacity N] [--pollers N] "
                 "[--pin-cores] [--once N] [--json]\n"
                 "          [--metrics-sock PATH] "
                 "[--stats-interval SEC] [--trace-out FILE]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;

    ServiceConfig config;
    long once = -1;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            config.socketPath = next();
        else if (arg == "--shards")
            config.pool.shards =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--stripe-bytes")
            config.pool.stripeBytes =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--array-capacity")
            config.pool.arrayCapacity =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--pollers")
            config.pollers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--pin-cores")
            config.pinCores = true;
        else if (arg == "--metrics-sock")
            config.metricsSocketPath = next();
        else if (arg == "--stats-interval")
            config.statsIntervalSec = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        else if (arg == "--trace-out")
            config.traceOutPath = next();
        else if (arg == "--once")
            once = std::strtol(next(), nullptr, 10);
        else if (arg == "--json")
            json = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }
    if (config.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    ServiceDaemon daemon(config);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "pmdbd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "pmdbd: listening on %s (%zu shards, %zu pollers%s)\n",
                 config.socketPath.c_str(), config.pool.shards,
                 config.pollers ? config.pollers : 1,
                 config.pinCores ? ", pinned" : "");

    if (once >= 0) {
        while (!interrupted.load() &&
               !daemon.waitForSessions(static_cast<std::size_t>(once),
                                       200)) {
        }
    } else {
        while (!interrupted.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
    }
    daemon.stop();

    if (json)
        std::printf("%s\n", daemon.aggregatedJson().c_str());
    std::fprintf(stderr, "pmdbd: served %zu session(s)\n",
                 daemon.completedSessions());
    return 0;
}
