/**
 * @file
 * pmdb_stat — live pmdbd introspection client.
 *
 * Attaches to a running daemon's --metrics-sock endpoint and renders
 * the snapshot: top-line ingest counters, per-session event rates,
 * per-shard utilization (batches, steals, queue depth), and per-rule-
 * class evaluation-latency histograms (p50/p95/p99).
 *
 * Usage:
 *   pmdb_stat --socket PATH [--once] [--interval SEC]
 *             [--json | --prom]
 *
 *   --socket PATH   the daemon's metrics socket (--metrics-sock).
 *   --once          print one snapshot and exit (default: watch mode,
 *                   refreshing every --interval seconds with rates
 *                   computed from successive snapshots).
 *   --interval SEC  watch-mode refresh period (default 2).
 *   --json          dump the raw JSON snapshot verbatim and exit.
 *   --prom          dump the Prometheus text exposition and exit.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "service/transport.hh"
#include "telemetry/metrics.hh"

namespace
{

std::atomic<bool> interrupted{false};

void
onSignal(int)
{
    interrupted.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--once] [--interval SEC] "
                 "[--json | --prom]\n",
                 argv0);
}

/**
 * One request/response round trip: connect, send the format word,
 * read until the daemon closes. Empty string on failure.
 */
std::string
fetch(const std::string &socketPath, const std::string &format,
      std::string *error)
{
    const int fd = pmdb::connectUnix(socketPath, 2000, error);
    if (fd < 0)
        return {};
    std::string reply;
    const std::string request = format + "\n";
    if (::write(fd, request.data(), request.size()) !=
        static_cast<ssize_t>(request.size())) {
        if (error)
            *error = "short write to metrics socket";
        ::close(fd);
        return {};
    }
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::strerror(errno);
            ::close(fd);
            return {};
        }
        if (n == 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

/** Split "base{label=\"value\"}" into (base, value); value empty when
 *  the name carries no label block. */
std::pair<std::string, std::string>
splitLabel(const std::string &name)
{
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos)
        return {name, {}};
    const std::size_t open = name.find('"', brace);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : name.find('"', open + 1);
    if (close == std::string::npos)
        return {name.substr(0, brace), {}};
    return {name.substr(0, brace),
            name.substr(open + 1, close - open - 1)};
}

std::int64_t
valueOf(const pmdb::telemetry::MetricsSnapshot &snap,
        const std::string &name)
{
    const pmdb::telemetry::MetricSample *s = snap.find(name);
    return s ? s->value : 0;
}

/** Collect samples whose name is base{key=\"...\"}, keyed by label. */
std::map<std::string, const pmdb::telemetry::MetricSample *>
byLabel(const pmdb::telemetry::MetricsSnapshot &snap,
        const std::string &base)
{
    std::map<std::string, const pmdb::telemetry::MetricSample *> out;
    const std::string prefix = base + "{";
    for (const pmdb::telemetry::MetricSample &s : snap.samples) {
        if (s.name.compare(0, prefix.size(), prefix) == 0)
            out[splitLabel(s.name).second] = &s;
    }
    return out;
}

void
render(const pmdb::telemetry::MetricsSnapshot &snap,
       const pmdb::telemetry::MetricsSnapshot *prev, double dtSec)
{
    using pmdb::telemetry::MetricSample;

    const std::int64_t events = valueOf(snap, "pmdbd.events_drained");
    const std::int64_t frames = valueOf(snap, "pmdbd.frames_drained");
    const std::int64_t polls = valueOf(snap, "pmdbd.polls");
    const std::int64_t idle = valueOf(snap, "pmdbd.idle_polls");
    const std::int64_t steals = valueOf(snap, "pmdbd.steals");
    const std::int64_t done =
        valueOf(snap, "pmdbd.sessions_completed");

    double eventRate = 0.0;
    if (prev && dtSec > 0.0) {
        eventRate = static_cast<double>(
                        events - valueOf(*prev,
                                         "pmdbd.events_drained")) /
                    dtSec;
    }
    const double idleRatio =
        polls ? static_cast<double>(idle) /
                    static_cast<double>(polls)
              : 0.0;
    std::printf("pmdbd: %lld events (%lld frames) drained, "
                "%lld session(s) done, %lld steal(s), "
                "idle-poll ratio %.3f",
                static_cast<long long>(events),
                static_cast<long long>(frames),
                static_cast<long long>(done),
                static_cast<long long>(steals), idleRatio);
    if (prev)
        std::printf(", %.0f events/s", eventRate);
    std::printf("\n");

    const auto sessions = byLabel(snap, "pmdbd.session.events");
    if (!sessions.empty()) {
        std::printf("\n%-10s %12s %10s %10s %6s\n", "session",
                    "events", "batches", "events/s", "live");
        const auto batches = byLabel(snap, "pmdbd.session.batches");
        const auto live = byLabel(snap, "pmdbd.session.live");
        const auto prevSessions =
            prev ? byLabel(*prev, "pmdbd.session.events")
                 : std::map<std::string, const MetricSample *>{};
        for (const auto &[id, sample] : sessions) {
            double rate = 0.0;
            const auto prevIt = prevSessions.find(id);
            if (prevIt != prevSessions.end() && dtSec > 0.0) {
                rate = static_cast<double>(sample->value -
                                           prevIt->second->value) /
                       dtSec;
            }
            const auto batchIt = batches.find(id);
            const auto liveIt = live.find(id);
            std::printf("%-10s %12lld %10lld %10.0f %6s\n",
                        id.c_str(),
                        static_cast<long long>(sample->value),
                        static_cast<long long>(
                            batchIt != batches.end()
                                ? batchIt->second->value
                                : 0),
                        rate,
                        liveIt != live.end() &&
                                liveIt->second->value
                            ? "yes"
                            : "no");
        }
    }

    const auto shardBatches = byLabel(snap, "pmdbd.shard.batches");
    if (!shardBatches.empty()) {
        std::printf("\n%-6s %12s %12s %8s %8s\n", "shard", "batches",
                    "events", "steals", "depth");
        const auto shardEvents = byLabel(snap, "pmdbd.shard.events");
        const auto shardSteals = byLabel(snap, "pmdbd.shard.steals");
        const auto shardDepth =
            byLabel(snap, "pmdbd.shard.queue_depth");
        for (const auto &[id, sample] : shardBatches) {
            const auto pick =
                [&](const std::map<std::string,
                                   const MetricSample *> &m) {
                    const auto it = m.find(id);
                    return static_cast<long long>(
                        it != m.end() ? it->second->value : 0);
                };
            std::printf("%-6s %12lld %12lld %8lld %8lld\n",
                        id.c_str(),
                        static_cast<long long>(sample->value),
                        pick(shardEvents), pick(shardSteals),
                        pick(shardDepth));
        }
    }

    bool header = false;
    for (const MetricSample &s : snap.samples) {
        if (s.kind != MetricSample::Kind::Histogram || !s.hist.count)
            continue;
        const auto [base, label] = splitLabel(s.name);
        if (base != "detector.eval_ns" &&
            base != "pmdbd.shard.queue_wait_ns" &&
            base != "pmdbd.shard.eval_ns" &&
            base != "pmdbd.ring_residency_ns" &&
            base != "detector.store_run_ns")
            continue;
        if (!header) {
            std::printf("\n%-28s %10s %10s %10s %10s\n", "latency",
                        "count", "p50(us)", "p95(us)", "p99(us)");
            header = true;
        }
        const std::string title =
            label.empty() ? base : base + "[" + label + "]";
        std::printf("%-28s %10llu %10.1f %10.1f %10.1f\n",
                    title.c_str(),
                    static_cast<unsigned long long>(s.hist.count),
                    static_cast<double>(s.hist.quantile(0.50)) / 1e3,
                    static_cast<double>(s.hist.quantile(0.95)) / 1e3,
                    static_cast<double>(s.hist.quantile(0.99)) / 1e3);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    bool once = false;
    bool rawJson = false;
    bool rawProm = false;
    unsigned intervalSec = 2;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            socketPath = next();
        else if (arg == "--once")
            once = true;
        else if (arg == "--interval")
            intervalSec = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        else if (arg == "--json")
            rawJson = true;
        else if (arg == "--prom")
            rawProm = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }
    if (socketPath.empty() || (rawJson && rawProm)) {
        usage(argv[0]);
        return 2;
    }
    if (intervalSec == 0)
        intervalSec = 1;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::string error;
    if (rawJson || rawProm) {
        const std::string reply =
            fetch(socketPath, rawProm ? "prom" : "json", &error);
        if (reply.empty()) {
            std::fprintf(stderr, "pmdb_stat: %s\n", error.c_str());
            return 1;
        }
        std::fwrite(reply.data(), 1, reply.size(), stdout);
        return 0;
    }

    pmdb::telemetry::MetricsSnapshot prev;
    bool havePrev = false;
    auto prevAt = std::chrono::steady_clock::now();
    for (;;) {
        const std::string reply = fetch(socketPath, "json", &error);
        if (reply.empty()) {
            std::fprintf(stderr, "pmdb_stat: %s\n", error.c_str());
            return 1;
        }
        pmdb::telemetry::MetricsSnapshot snap;
        if (!pmdb::telemetry::MetricsSnapshot::fromJson(reply, &snap,
                                                        &error)) {
            std::fprintf(stderr,
                         "pmdb_stat: malformed snapshot: %s\n",
                         error.c_str());
            return 1;
        }
        const auto now = std::chrono::steady_clock::now();
        const double dt =
            std::chrono::duration<double>(now - prevAt).count();
        if (!once)
            std::printf("\033[H\033[2J");
        render(snap, havePrev ? &prev : nullptr, dt);
        std::fflush(stdout);
        if (once)
            return 0;
        prev = std::move(snap);
        havePrev = true;
        prevAt = now;
        for (unsigned slept = 0;
             slept < intervalSec * 10 && !interrupted.load();
             ++slept) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        if (interrupted.load())
            return 0;
    }
}
