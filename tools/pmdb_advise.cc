/**
 * @file
 * pmdb_advise — whole-program fix advisories from a repair corpus.
 *
 * Records one bug-suite case many times over a (seeds × threads ×
 * YCSB-mixes) grid, repairs every trace with the src/repair/ engine,
 * maps each verified edit back to its program site, and prints the
 * ranked per-site advisories ("insert CLWB after store at
 * hashmap_atomic.cc:insert.fill_entry, confirmed in 6/6 traces").
 *
 * Usage:
 *   pmdb_advise case:<name> [--seeds A,B,..] [--threads N,M]
 *               [--mixes a,b,..] [--ops N] [--workers N]
 *               [--min-confidence F] [--optimize] [--json] [--out FILE]
 *               [--no-minimize] [--max-replays N]
 *
 * --workers parallelizes the per-trace repairs; the report is
 * bit-identical for any worker count (single-threaded corpora).
 * --optimize renders the Bentō-style view: deletion (performance)
 * advisories only, ranked by estimated saved flushes/fences.
 *
 * Exit codes match the pmdb_tracetool family: 0 success, 2 usage
 * error, 3 unknown case name (4 bad trace / 5 truncated trace are
 * reserved by pmdb_tracetool; this tool records in-process), 6 target
 * bug not reproduced anywhere in the corpus, 7 corpus ran but no
 * advisory at or above --min-confidence survived the requested view.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "advise/corpus.hh"
#include "advise/report.hh"
#include "repair/case_repair.hh"

namespace
{

constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
constexpr int exitNoRepair = 6;
/** Corpus ran, but every advisory fell below the confidence bar. */
constexpr int exitNoAdvisory = 7;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s case:<name> [--seeds A,B,..] [--threads N,M]\n"
        "       [--mixes a,b,..] [--ops N] [--workers N]\n"
        "       [--min-confidence F] [--optimize] [--json] [--out FILE]\n"
        "       [--no-minimize] [--max-replays N]\n",
        argv0);
    return exitUsage;
}

/** Parse "9,11,13" into integers; false on any non-numeric field. */
bool
parseList(const std::string &text, std::vector<std::uint64_t> *out)
{
    out->clear();
    std::size_t at = 0;
    while (at <= text.size()) {
        std::size_t end = text.find(',', at);
        if (end == std::string::npos)
            end = text.size();
        const std::string field = text.substr(at, end - at);
        if (field.empty())
            return false;
        char *tail = nullptr;
        const std::uint64_t value =
            std::strtoull(field.c_str(), &tail, 10);
        if (!tail || *tail)
            return false;
        out->push_back(value);
        at = end + 1;
    }
    return !out->empty();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 2)
        return usage(argv[0]);
    const std::string source = argv[1];
    if (source.rfind("case:", 0) != 0)
        return usage(argv[0]);

    CorpusSpec spec;
    bool optimize = false;
    bool json = false;
    double min_confidence = 0.0;
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            if (!parseList(argv[++i], &spec.seeds)) {
                std::fprintf(stderr, "bad --seeds list '%s'\n", argv[i]);
                return usage(argv[0]);
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            std::vector<std::uint64_t> counts;
            if (!parseList(argv[++i], &counts)) {
                std::fprintf(stderr, "bad --threads list '%s'\n",
                             argv[i]);
                return usage(argv[0]);
            }
            spec.threads.clear();
            for (const std::uint64_t count : counts)
                spec.threads.push_back(static_cast<int>(count));
        } else if (arg == "--mixes" && i + 1 < argc) {
            spec.mixes.clear();
            for (const char *c = argv[++i]; *c; ++c) {
                if (*c == ',')
                    continue;
                if (*c < 'a' || *c > 'f') {
                    std::fprintf(stderr, "bad YCSB mix '%c'\n", *c);
                    return usage(argv[0]);
                }
                spec.mixes.push_back(*c);
            }
            if (spec.mixes.empty())
                return usage(argv[0]);
        } else if (arg == "--ops" && i + 1 < argc) {
            spec.operations = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            spec.workers = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--min-confidence" && i + 1 < argc) {
            min_confidence = std::strtod(argv[++i], nullptr);
        } else if (arg == "--max-replays" && i + 1 < argc) {
            spec.minimize.maxReplays =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--no-minimize") {
            spec.minimizeFirst = false;
        } else if (arg == "--optimize") {
            optimize = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    const BugCase *bug_case = findBugCase(source.substr(5));
    if (!bug_case) {
        std::fprintf(stderr, "unknown bug-suite case '%s'\n",
                     source.substr(5).c_str());
        return exitUnknownName;
    }

    AdviseReport report = runAdviseCorpus(*bug_case, spec);
    report.optimize = optimize;
    report.minConfidence = min_confidence;
    if (optimize)
        report.advisories = optimizeView(report.advisories);
    if (min_confidence > 0.0) {
        std::vector<FixAdvisory> kept;
        for (const FixAdvisory &advisory : report.advisories) {
            if (advisory.confidence >= min_confidence)
                kept.push_back(advisory);
        }
        report.advisories = std::move(kept);
    }

    const std::string rendered = json ? adviseReportToJson(report)
                                      : adviseReportToText(report);
    if (out_path.empty()) {
        std::fputs(rendered.c_str(), stdout);
    } else {
        std::FILE *out = std::fopen(out_path.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         out_path.c_str());
            return exitUsage;
        }
        std::fputs(rendered.c_str(), out);
        std::fclose(out);
    }

    bool any_target = false;
    for (const TraceOutcome &trace : report.traces)
        any_target |= trace.targetPresent;
    if (!any_target) {
        std::fprintf(stderr,
                     "case %s: target bug not reproduced on any corpus "
                     "trace\n",
                     bug_case->name.c_str());
        return exitNoRepair;
    }
    if (report.advisories.empty()) {
        std::fprintf(stderr,
                     "case %s: no advisory at or above confidence "
                     "%.4f\n",
                     bug_case->name.c_str(), min_confidence);
        return exitNoAdvisory;
    }
    return 0;
}
