/**
 * @file
 * pmdb_crossproc — two-writer shared-pool detection, end to end.
 *
 * Hosts a detection daemon in-process, creates a multi-writer
 * SharedPmemPool file, forks two client processes (producer and
 * consumer of the shared_queue workload), and prints the daemon's
 * cross-session verdict: the bugs only the merged two-writer event
 * stream can expose.
 *
 * Usage:
 *   pmdb_crossproc [--ops N] [--fault NAME | --case NAME] [--shards N]
 *                  [--seed S] [--dir PATH] [--json]
 *   pmdb_crossproc --list-cases
 *   pmdb_crossproc --create-pool PATH [--ops N]
 *
 *   --fault NAME   enable one shared_queue fault on both writers
 *   --case NAME    shorthand for a seeded case from crossprocCases()
 *   --dir PATH     directory for the pool/ring/socket files (default
 *                  /tmp)
 *   --create-pool  just lay out a shared_queue pool file sized for
 *                  --ops operations (for driving the writers by hand
 *                  via pmdb_run --shared-pool) and exit
 *
 * Exit codes (shared tool family, see README):
 *   0  run complete, no cross-session bugs
 *   1  infrastructure failure (daemon, client, or pool setup)
 *   2  usage error
 *   3  unknown fault/case name
 *   8  cross-session bugs detected (the seeded-case success code)
 */

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "pmem/shared_device.hh"
#include "service/daemon.hh"
#include "service/remote_sink.hh"
#include "workloads/shared_queue.hh"

namespace
{

constexpr int exitInfra = 1;
constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
constexpr int exitCrossBugs = 8;

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--ops N] [--fault NAME | --case NAME]\n"
                 "          [--shards N] [--seed S] [--dir PATH] "
                 "[--json]\n"
                 "       %s --list-cases\n",
                 argv0, argv0);
}

/**
 * One forked writer: connect to the daemon (retrying while it boots),
 * run the shared_queue role, and ship the report handshake. The
 * process exits 0 on success — its event stream and verdict live in
 * the daemon.
 */
int
childMain(const std::string &socket_path, const std::string &pool_path,
          std::uint32_t writer, std::size_t ops, std::uint64_t seed,
          const std::string &fault)
{
    using namespace pmdb;

    SharedQueueWorkload workload;
    WorkloadOptions options;
    options.operations = ops;
    options.seed = seed;
    options.sharedPoolPath = pool_path;
    options.sharedWriter = writer;
    if (!fault.empty())
        options.faults.enable(fault);

    RemoteSink::Options ropts;
    ropts.socketPath = socket_path;
    ropts.ringPath = pool_path + ".w" + std::to_string(writer) + ".ring";
    ropts.model = workload.model();
    ropts.sharedPoolPath = pool_path;
    ropts.sharedWriterId = writer;

    RemoteSink sink;
    std::string error;
    bool connected = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
        if (sink.connect(ropts, &error)) {
            connected = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (!connected) {
        std::fprintf(stderr, "writer %u: connect failed: %s\n", writer,
                     error.c_str());
        return 1;
    }

    PmRuntime runtime;
    runtime.attach(&sink);
    workload.run(runtime, options);

    ReportBody report;
    if (!sink.finish(&report, &error)) {
        std::fprintf(stderr, "writer %u: session failed: %s\n", writer,
                     error.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;

    std::size_t ops = 64;
    std::uint64_t seed = 42;
    std::size_t shards = 4;
    std::string fault;
    std::string dir = "/tmp";
    std::string create_pool;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(exitUsage);
            }
            return argv[++i];
        };
        if (arg == "--list-cases") {
            for (const CrossprocCase &c : crossprocCases()) {
                std::printf("%s  (fault %s -> %s)\n", c.name.c_str(),
                            c.fault.c_str(), c.rule.c_str());
            }
            return 0;
        }
        if (arg == "--ops")
            ops = std::strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--shards")
            shards = std::strtoull(next(), nullptr, 10);
        else if (arg == "--fault")
            fault = next();
        else if (arg == "--case") {
            const std::string name = next();
            fault.clear();
            for (const CrossprocCase &c : crossprocCases()) {
                if (c.name == name)
                    fault = c.fault;
            }
            if (fault.empty()) {
                std::fprintf(stderr, "unknown case '%s' "
                             "(--list-cases)\n", name.c_str());
                return exitUnknownName;
            }
        } else if (arg == "--dir")
            dir = next();
        else if (arg == "--create-pool")
            create_pool = next();
        else if (arg == "--json")
            json = true;
        else {
            usage(argv[0]);
            return exitUsage;
        }
    }
    if (!fault.empty()) {
        bool known = false;
        for (const CrossprocCase &c : crossprocCases())
            known = known || c.fault == fault;
        if (!known) {
            std::fprintf(stderr, "unknown fault '%s' (--list-cases)\n",
                         fault.c_str());
            return exitUnknownName;
        }
    }

    if (!create_pool.empty()) {
        std::string err;
        if (!SharedPmemPool::createPoolFile(
                create_pool, SharedQueueWorkload::poolBytesFor(ops),
                &err)) {
            std::fprintf(stderr, "pool create failed: %s\n",
                         err.c_str());
            return exitInfra;
        }
        std::printf("created %s (%zu ops)\n", create_pool.c_str(), ops);
        return 0;
    }

    const std::string base =
        dir + "/pmdb_crossproc." + std::to_string(::getpid());
    const std::string pool_path = base + ".pool";
    const std::string socket_path = base + ".sock";

    std::string error;
    if (!SharedPmemPool::createPoolFile(
            pool_path, SharedQueueWorkload::poolBytesFor(ops), &error)) {
        std::fprintf(stderr, "pool create failed: %s\n", error.c_str());
        return exitInfra;
    }

    // Fork both writers *before* the daemon's threads exist, so the
    // children start from a clean single-threaded state; they retry
    // the connect while the daemon boots.
    std::vector<pid_t> children;
    for (const std::uint32_t writer :
         {SharedQueueWorkload::producerWriter,
          SharedQueueWorkload::consumerWriter}) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "fork failed: %s\n",
                         std::strerror(errno));
            return exitInfra;
        }
        if (pid == 0) {
            std::_Exit(childMain(socket_path, pool_path, writer, ops,
                                 seed, fault));
        }
        children.push_back(pid);
    }

    ServiceConfig config;
    config.socketPath = socket_path;
    config.pool.shards = shards;
    ServiceDaemon daemon(config);
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "daemon start failed: %s\n", error.c_str());
        for (const pid_t pid : children)
            ::kill(pid, SIGKILL);
        return exitInfra;
    }

    bool childFailed = false;
    for (const pid_t pid : children) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0) {
            childFailed = true;
        }
    }
    while (!daemon.waitForSessions(2, 200)) {
        if (childFailed)
            break;
    }
    daemon.stop();
    const auto results = daemon.crossprocResults();
    ::unlink(pool_path.c_str());
    if (childFailed) {
        std::fprintf(stderr, "a writer process failed\n");
        return exitInfra;
    }

    std::size_t crossBugs = 0;
    if (json) {
        std::string out = "[";
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i)
                out += ", ";
            out += results[i].toJson();
            crossBugs += results[i].bugs.size();
        }
        out += "]";
        std::printf("{\"tool\": \"crossproc\", \"ops\": %zu, "
                    "\"shards\": %zu, \"fault\": \"%s\", "
                    "\"groups\": %s}\n",
                    ops, shards, fault.c_str(), out.c_str());
    } else {
        std::printf("shared_queue: %zu ops, 2 writers, %zu shard(s)%s%s\n",
                    ops, shards,
                    fault.empty() ? "" : ", fault ", fault.c_str());
        for (const auto &group : results) {
            std::printf("pool %s: %llu shared events merged, "
                        "%zu cross-session bug(s)\n",
                        group.pool.c_str(),
                        static_cast<unsigned long long>(
                            group.eventsReplayed),
                        group.bugs.size());
            for (const CrossBug &bug : group.bugs)
                std::printf("  %s\n", bug.toString().c_str());
            crossBugs += group.bugs.size();
        }
        if (results.empty())
            std::printf("no shared-pool session group formed\n");
    }
    return crossBugs > 0 ? exitCrossBugs : 0;
}
