/**
 * @file
 * pmdb_modelcheck — systematic crash-state model checking.
 *
 * Usage:
 *   pmdb_modelcheck case <name|all> [options]
 *       Run the modelcheck-only seeded recovery bugs (mc_*): the buggy
 *       variant must be caught at its case depth, must stay invisible
 *       at depth 1 (proving the bug needs more than one crash), and
 *       the correct variant must stay quiet.
 *   pmdb_modelcheck run <workload> [options]
 *       Frontier search over a model workload (b_tree,
 *       hashmap_atomic, hashmap_tx, mc_undo_flush, mc_dirty_flag):
 *       every candidate crash image is recovered by a fresh
 *       instrumented execution whose own crash points seed the next
 *       round, up to --depth crashes per trajectory.
 *
 * Options:
 *   --ops N            initial-execution operations (default 6)
 *   --recovery-ops N   continuation operations per recovery (default 1)
 *   --depth D          max crashes per trajectory (default 2)
 *   --max-states N     distinct-state budget (default 4096)
 *   --workers N        round workers; results identical for any value
 *   --seed S           workload key-stream seed (default 42)
 *   --fault NAME       enable a fault injection (evaluation workloads)
 *   --no-prune         disable read-set pruning (A/B measurement)
 *   --cache PATH       persist the visited-state cache (resumable)
 *   --connect SOCK     dispatch every execution to a pmdbd daemon
 *   --scratch DIR      where --connect ring files go (default /tmp)
 *   --max-pending K / --max-images N / --flush-points /
 *   --no-epoch-atomic  crashsim enumeration bounds per crash point
 *   --max-findings N   cap on reported findings (default 64)
 *   --json             machine-readable result (run mode)
 *
 * Exit codes: 0 success, 1 a case behaved unexpectedly, 2 usage
 * error, 3 unknown case/workload name, 5 (run mode) the
 * --max-states budget stopped the search before the frontier emptied
 * (coverage incomplete; raise the budget or resume via --cache).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "modelcheck/engine.hh"
#include "workloads/modelcheck_workloads.hh"

namespace
{

constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
/** Run-mode: the state budget cut the search short. */
constexpr int exitBudgetExhausted = 5;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s case <name|all> [options]\n"
        "       %s run <workload> [options]\n"
        "options: --ops N --recovery-ops N --depth D --max-states N\n"
        "         --workers N --seed S --fault NAME --no-prune\n"
        "         --cache PATH --connect SOCK --scratch DIR\n"
        "         --max-pending K --max-images N --flush-points\n"
        "         --no-epoch-atomic --max-findings N --json\n",
        argv0, argv0);
    return exitUsage;
}

void
printFindings(const pmdb::ModelCheckResult &result, const char *indent)
{
    for (const pmdb::ModelCheckFinding &finding : result.findings) {
        std::string chain;
        for (pmdb::SeqNum seq : finding.crashSeqs) {
            if (!chain.empty())
                chain += " -> ";
            chain += "seq " + std::to_string(seq);
        }
        if (chain.empty())
            chain = "no crash";
        std::printf("%sdepth %zu [%s] state %016llx: %s\n", indent,
                    finding.depth, chain.c_str(),
                    static_cast<unsigned long long>(finding.stateHash),
                    finding.detail.c_str());
    }
}

void
printStats(const pmdb::ModelCheckResult &result, const char *indent)
{
    const pmdb::ModelCheckStats &stats = result.stats;
    std::printf(
        "%s%llu executions, %llu crash points, %llu rounds\n"
        "%s%llu candidates: %llu distinct states, %llu deduped, "
        "%llu pruned (%llu read-set refinements)\n"
        "%s%llu truncated points, cache %zu states, budget %s\n"
        "%sfrontier hash %016llx, %.4fs (%.0f states/s)\n",
        indent, static_cast<unsigned long long>(stats.executions),
        static_cast<unsigned long long>(stats.crashPoints),
        static_cast<unsigned long long>(stats.rounds), indent,
        static_cast<unsigned long long>(stats.candidates),
        static_cast<unsigned long long>(stats.distinctStates),
        static_cast<unsigned long long>(stats.dedupedStates),
        static_cast<unsigned long long>(stats.prunedCandidates),
        static_cast<unsigned long long>(stats.refinements), indent,
        static_cast<unsigned long long>(stats.truncatedPoints),
        result.cacheStates, stats.budgetExhausted ? "EXHAUSTED" : "ok",
        indent,
        static_cast<unsigned long long>(result.frontierHash),
        result.seconds,
        result.seconds > 0
            ? static_cast<double>(stats.distinctStates) / result.seconds
            : 0.0);
}

pmdb::ModelCheckResult
runSearch(const std::string &name, bool buggy,
          pmdb::ModelCheckOptions options)
{
    auto workload = pmdb::makeModelWorkload(name, buggy);
    pmdb::ModelChecker checker(*workload, std::move(options));
    return checker.run();
}

/**
 * One modelcheck-only case: systematic depth-N search must catch the
 * buggy recovery, depth-1 must not (the bug *needs* a crashed
 * recovery), and the correct variant must stay quiet at depth N.
 */
int
runCase(const pmdb::ModelCheckCase &mc_case,
        const pmdb::ModelCheckOptions &base)
{
    using namespace pmdb;

    ModelCheckOptions deep = base;
    deep.maxDepth = mc_case.depth;
    ModelCheckOptions shallow = base;
    shallow.maxDepth = 1;

    const ModelCheckResult buggy =
        runSearch(mc_case.name, true, deep);
    const ModelCheckResult buggy_shallow =
        runSearch(mc_case.name, true, shallow);
    const ModelCheckResult clean =
        runSearch(mc_case.name, false, deep);

    std::printf("%s (depth %zu):\n"
                "  buggy at depth %zu: %zu finding(s)\n"
                "  buggy at depth 1: %zu finding(s)\n"
                "  correct at depth %zu: %zu finding(s)\n",
                mc_case.name.c_str(), mc_case.depth, mc_case.depth,
                buggy.findings.size(), buggy_shallow.findings.size(),
                mc_case.depth, clean.findings.size());
    printFindings(buggy, "    ");
    printStats(buggy, "  ");

    int failures = 0;
    if (buggy.findings.empty()) {
        std::printf("  FAIL: systematic search missed the seeded "
                    "recovery bug\n");
        ++failures;
    }
    if (!buggy_shallow.findings.empty()) {
        std::printf("  FAIL: single-crash search found a bug that "
                    "should need %zu crashes\n",
                    mc_case.depth);
        ++failures;
    }
    if (!clean.findings.empty()) {
        std::printf("  FAIL: false positive on the correct variant\n");
        ++failures;
    }
    return failures;
}

bool
knownWorkload(const std::string &name)
{
    for (const std::string &known : pmdb::modelWorkloadNames()) {
        if (known == name)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;

    if (argc < 3)
        return usage(argv[0]);
    const std::string command = argv[1];
    const std::string target = argv[2];

    ModelCheckOptions options;
    options.run.operations = 6;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(exitUsage);
            }
            return argv[++i];
        };
        if (arg == "--ops")
            options.run.operations = std::strtoull(next(), nullptr, 10);
        else if (arg == "--recovery-ops")
            options.run.recoveryOperations =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--depth")
            options.maxDepth = std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-states")
            options.maxStates = std::strtoull(next(), nullptr, 10);
        else if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            options.run.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--fault")
            options.run.faults.enable(next());
        else if (arg == "--no-prune")
            options.prune = false;
        else if (arg == "--cache")
            options.cachePath = next();
        else if (arg == "--connect")
            options.connectSocket = next();
        else if (arg == "--scratch")
            options.scratchDir = next();
        else if (arg == "--max-pending")
            options.run.sim.maxPendingLines =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-images")
            options.run.sim.maxImagesPerPoint =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--flush-points")
            options.run.sim.captureAtFlush = true;
        else if (arg == "--no-epoch-atomic")
            options.run.sim.epochAtomic = false;
        else if (arg == "--max-findings")
            options.maxFindings = std::strtoull(next(), nullptr, 10);
        else if (arg == "--json")
            json = true;
        else
            return usage(argv[0]);
    }

    if (command == "case") {
        int failures = 0;
        bool matched = false;
        for (const ModelCheckCase &mc_case : modelcheckOnlyCases()) {
            if (target != "all" && mc_case.name != target)
                continue;
            matched = true;
            failures += runCase(mc_case, options);
        }
        if (!matched) {
            std::fprintf(stderr, "unknown case '%s'; known:",
                         target.c_str());
            for (const ModelCheckCase &mc_case : modelcheckOnlyCases())
                std::fprintf(stderr, " %s", mc_case.name.c_str());
            std::fprintf(stderr, "\n");
            return exitUnknownName;
        }
        return failures == 0 ? 0 : 1;
    }

    if (command == "run") {
        if (!knownWorkload(target)) {
            std::fprintf(stderr, "unknown workload '%s'; known:",
                         target.c_str());
            for (const std::string &known : modelWorkloadNames())
                std::fprintf(stderr, " %s", known.c_str());
            std::fprintf(stderr, "\n");
            return exitUnknownName;
        }
        // `run` drives the buggy variant only through --fault; mc_*
        // workloads run their correct recovery here (use `case` for
        // the seeded-bug protocol).
        const ModelCheckResult result =
            runSearch(target, false, options);
        if (json) {
            std::printf(
                "{\"workload\": \"%s\", \"ops\": %zu, "
                "\"recovery_ops\": %zu, \"depth\": %zu, "
                "\"workers\": %zu, \"seed\": %llu, \"prune\": %s, "
                "\"distinct_states\": %llu, \"executions\": %llu, "
                "\"crash_points\": %llu, \"candidates\": %llu, "
                "\"pruned_candidates\": %llu, "
                "\"deduped_states\": %llu, \"truncated_points\": %llu, "
                "\"refinements\": %llu, \"rounds\": %llu, "
                "\"cache_states\": %zu, \"budget_exhausted\": %s, "
                "\"findings\": %zu, "
                "\"frontier_hash\": \"%016llx\", "
                "\"seconds\": %.6f, \"states_per_sec\": %.1f, "
                "\"connect_sessions\": %llu, "
                "\"connect_errors\": %llu}\n",
                target.c_str(), options.run.operations,
                options.run.recoveryOperations, options.maxDepth,
                options.workers,
                static_cast<unsigned long long>(options.run.seed),
                options.prune ? "true" : "false",
                static_cast<unsigned long long>(
                    result.stats.distinctStates),
                static_cast<unsigned long long>(
                    result.stats.executions),
                static_cast<unsigned long long>(
                    result.stats.crashPoints),
                static_cast<unsigned long long>(
                    result.stats.candidates),
                static_cast<unsigned long long>(
                    result.stats.prunedCandidates),
                static_cast<unsigned long long>(
                    result.stats.dedupedStates),
                static_cast<unsigned long long>(
                    result.stats.truncatedPoints),
                static_cast<unsigned long long>(
                    result.stats.refinements),
                static_cast<unsigned long long>(result.stats.rounds),
                result.cacheStates,
                result.stats.budgetExhausted ? "true" : "false",
                result.findings.size(),
                static_cast<unsigned long long>(result.frontierHash),
                result.seconds,
                result.seconds > 0
                    ? static_cast<double>(result.stats.distinctStates) /
                          result.seconds
                    : 0.0,
                static_cast<unsigned long long>(result.connectSessions),
                static_cast<unsigned long long>(result.connectErrors));
        } else {
            std::printf("%s (%zu ops, depth %zu, seed %llu): "
                        "%zu finding(s)\n",
                        target.c_str(), options.run.operations,
                        options.maxDepth,
                        static_cast<unsigned long long>(
                            options.run.seed),
                        result.findings.size());
            printFindings(result, "  ");
            printStats(result, "  ");
        }
        return result.stats.budgetExhausted ? exitBudgetExhausted : 0;
    }

    return usage(argv[0]);
}
