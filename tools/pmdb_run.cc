/**
 * @file
 * pmdb_run — the repository's equivalent of the paper artifact's
 * `run.sh <CHECKER> <INPUTSIZE> <WORKLOAD>` scripts: run one workload
 * under one detector and print the bug report and bookkeeping
 * statistics (optionally as JSON).
 *
 * Usage:
 *   pmdb_run <checker> <inputsize> <workload>
 *            [--threads N] [--fault NAME]... [--set-ratio R]
 *            [--trace-out FILE] [--json] [--seed S]
 *            [--connect SOCKET] [--policy block|drop|spill]
 *            [--ring-slots N]
 *            [--shared-pool FILE --writer N]
 *   pmdb_run --list
 *
 * With --connect, detection runs out-of-process: the event stream is
 * shipped to a pmdbd daemon at SOCKET and the daemon's report is
 * printed. The checker must be "pmdebugger" (that is what the daemon
 * runs).
 *
 * With --shared-pool, the workload maps the given multi-writer pool
 * file as writer N (shared-pool workloads only, e.g. shared_queue);
 * combined with --connect, the daemon additionally merges all
 * sessions on the same pool and runs the cross-session rules
 * (pmdb_crossproc drives this two-writer setup end to end).
 *
 *   checker: pmdebugger | pmemcheck | pmtest | xfdetector |
 *            persistence_inspector | nulgrind | none
 *   workload: b_tree, c_tree, r_tree, rb_tree, hashmap_tx,
 *             hashmap_atomic, synth_strand, memcached, redis,
 *             shared_queue, ycsb_a..ycsb_f
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

#include "common/stopwatch.hh"
#include "core/report.hh"
#include "detectors/pmtest.hh"
#include "detectors/registry.hh"
#include "service/remote_sink.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <checker> <inputsize> <workload>\n"
                 "          [--threads N] [--fault NAME]... "
                 "[--set-ratio R]\n"
                 "          [--trace-out FILE] [--json] [--seed S]\n"
                 "checkers:",
                 argv0);
    for (const std::string &name : pmdb::detectorNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, " none\nworkloads:");
    for (const std::string &name : pmdb::workloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
}

/**
 * Print the registered checker and workload names, one per line,
 * grouped under a header — script-friendly discovery instead of
 * erroring on an unknown name.
 */
void
listRegistries()
{
    std::printf("checkers:\n");
    for (const std::string &name : pmdb::detectorNames())
        std::printf("  %s\n", name.c_str());
    std::printf("  none\n");
    std::printf("workloads:\n");
    for (const std::string &name : pmdb::workloadNames())
        std::printf("  %s\n", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;

    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
        listRegistries();
        return 0;
    }
    if (argc < 4) {
        usage(argv[0]);
        return 2;
    }
    const std::string checker = argv[1];
    const std::size_t ops = std::strtoull(argv[2], nullptr, 10);
    const std::string workload_name = argv[3];

    WorkloadOptions options;
    options.operations = ops;
    std::string trace_out;
    std::string connect_socket;
    SlowConsumerPolicy policy = SlowConsumerPolicy::Block;
    std::uint32_t ring_slots = 4096;
    bool json = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            options.threads = std::atoi(next());
        else if (arg == "--fault")
            options.faults.enable(next());
        else if (arg == "--set-ratio")
            options.setRatio = std::atof(next());
        else if (arg == "--seed")
            options.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--trace-out")
            trace_out = next();
        else if (arg == "--connect")
            connect_socket = next();
        else if (arg == "--policy") {
            if (!parseSlowConsumerPolicy(next(), &policy)) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--ring-slots") {
            // atoi would turn "-1" into 4 billion slots and a
            // multi-hundred-GB ring mapping; validate instead.
            const char *text = next();
            char *end = nullptr;
            errno = 0;
            const unsigned long value = std::strtoul(text, &end, 10);
            constexpr unsigned long maxRingSlots = 1ul << 22;
            if (errno != 0 || end == text || *end != '\0' ||
                value == 0 || value > maxRingSlots) {
                std::fprintf(stderr,
                             "--ring-slots must be 1..%lu, got '%s'\n",
                             maxRingSlots, text);
                return 2;
            }
            ring_slots = static_cast<std::uint32_t>(value);
        } else if (arg == "--shared-pool")
            options.sharedPoolPath = next();
        else if (arg == "--writer")
            options.sharedWriter =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr,
                                                        10));
        else if (arg == "--json")
            json = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }

    auto workload = makeWorkload(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    PmRuntime runtime;

    if (!connect_socket.empty()) {
        if (checker != "pmdebugger") {
            std::fprintf(stderr,
                         "--connect runs the daemon's pmdebugger; "
                         "pass 'pmdebugger' as the checker\n");
            return 2;
        }
        const std::string base =
            "/tmp/pmdb_client." + std::to_string(::getpid());
        RemoteSink::Options ropts;
        ropts.socketPath = connect_socket;
        ropts.ringPath = base + ".ring";
        ropts.ringSlots = ring_slots;
        ropts.policy = policy;
        if (policy == SlowConsumerPolicy::Spill)
            ropts.spillPath = base + ".spill";
        ropts.model = workload->model();
        ropts.orderSpecText = workload->orderSpecText();
        ropts.sharedPoolPath = options.sharedPoolPath;
        ropts.sharedWriterId = options.sharedWriter;

        RemoteSink sink;
        std::string error;
        if (!sink.connect(ropts, &error)) {
            std::fprintf(stderr, "pmdbd connect failed: %s\n",
                         error.c_str());
            return 1;
        }
        runtime.attach(&sink);

        Stopwatch watch;
        workload->run(runtime, options);
        const double seconds = watch.elapsedSeconds();

        ReportBody report;
        if (!sink.finish(&report, &error)) {
            std::fprintf(stderr, "pmdbd session failed: %s\n",
                         error.c_str());
            return 1;
        }
        if (json) {
            std::printf("%s\n", report.json.c_str());
        } else {
            std::printf("%s via pmdbd: %zu ops in %.4fs\n",
                        workload_name.c_str(), ops, seconds);
            std::printf("events: %llu processed, %llu dropped\n",
                        static_cast<unsigned long long>(
                            report.eventsProcessed),
                        static_cast<unsigned long long>(
                            report.eventsDropped));
            BugCollector bugs;
            for (const BugReport &bug : report.bugs)
                bugs.report(bug);
            std::printf("%s", bugs.summary().c_str());
        }
        return 0;
    }

    DebuggerConfig config;
    config.model = workload->model();
    if (!workload->orderSpecText().empty())
        config.orderSpec = OrderSpec::fromText(workload->orderSpecText());

    std::unique_ptr<Detector> detector;
    if (checker != "none") {
        detector = makeDetector(checker, config);
        if (!detector) {
            std::fprintf(stderr, "unknown checker '%s'\n",
                         checker.c_str());
            return 2;
        }
        runtime.attach(detector.get());
        if (checker == "pmtest") {
            options.pmtest =
                static_cast<PmTestDetector *>(detector.get());
        }
    }

    TraceRecorder recorder;
    if (!trace_out.empty())
        runtime.attach(&recorder);

    Stopwatch watch;
    workload->run(runtime, options);
    const double seconds = watch.elapsedSeconds();
    if (detector)
        detector->finalize();

    if (!trace_out.empty()) {
        std::string error;
        if (!writeTraceFile(trace_out, recorder.events(),
                            runtime.names(), &error)) {
            std::fprintf(stderr, "trace write failed: %s\n",
                         error.c_str());
            return 1;
        }
        std::fprintf(stderr, "trace: %zu events -> %s\n",
                     recorder.events().size(), trace_out.c_str());
    }

    if (!detector) {
        std::printf("%s: %zu ops in %.4fs (no checker)\n",
                    workload_name.c_str(), ops, seconds);
        return 0;
    }

    if (json) {
        std::printf("%s\n",
                    reportToJson(detector->bugs(), detector->stats())
                        .c_str());
    } else {
        std::printf("%s under %s: %zu ops in %.4fs\n",
                    workload_name.c_str(), checker.c_str(), ops,
                    seconds);
        std::printf("%s", detector->bugs().summary().c_str());
        std::printf("%s\n", detector->stats().toString().c_str());
    }
    return 0;
}
