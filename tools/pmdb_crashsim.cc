/**
 * @file
 * pmdb_crashsim — drive the crash-state exploration engine.
 *
 * Usage:
 *   pmdb_crashsim case <name|all> [options]
 *       Run one (or every) cross-failure bug-suite case plus the
 *       crashsim-only seeded cases, buggy and correct variants, and
 *       report what the single-image checker vs the exploration
 *       engine found.
 *   pmdb_crashsim run <workload> [--ops N] [--fault NAME] [options]
 *       Run an evaluation workload (b_tree, hashmap_atomic) with its
 *       recovery verifier adopted and explore every crash point.
 *
 * Common options:
 *   --workers N        verification worker threads (default 1)
 *   --max-pending K    pending-line cap per crash point (default 12)
 *   --max-images N     candidate-image cap per crash point (default 256)
 *   --seed S           exploration schedule seed (default 1)
 *   --flush-points     also capture a crash point at every CLF
 *   --no-epoch-atomic  Jaaru-style sweep inside transactions too
 *   --json             machine-readable result (run mode)
 *
 * Exit codes: 0 success (run mode: also when findings exist — the
 * report is the product), 1 a case behaved unexpectedly (missed bug or
 * false positive), 2 usage error, 3 unknown case/workload name,
 * 5 (run mode) the image budget truncated enumeration at one or more
 * crash points — the explored set is a sample, not the full reachable
 * crash-state space; rerun with a larger --max-images/--max-pending
 * for exhaustive coverage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workloads/crashsim_runner.hh"

namespace
{

constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
/** Run-mode: the bounds cut enumeration short (coverage incomplete). */
constexpr int exitTruncatedEnumeration = 5;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s case <name|all> [options]\n"
        "       %s run <workload> [--ops N] [--fault NAME] [options]\n"
        "options: --workers N --max-pending K --max-images N --seed S\n"
        "         --flush-points --no-epoch-atomic --json\n",
        argv0, argv0);
    return exitUsage;
}

/** Cases the engine covers: suite xf cases + crashsim-only cases. */
std::vector<const pmdb::BugCase *>
engineCases()
{
    std::vector<const pmdb::BugCase *> cases =
        pmdb::casesOfType(pmdb::BugType::CrossFailureSemantic);
    for (const pmdb::BugCase &bug_case : pmdb::crashsimOnlyCases())
        cases.push_back(&bug_case);
    return cases;
}

void
printFindings(const pmdb::CrashsimResult &result, const char *indent)
{
    using namespace pmdb;
    for (const CrashsimFinding &finding : result.findings) {
        std::string lines;
        for (std::uint64_t line : finding.witnessLines) {
            if (!lines.empty())
                lines += ",";
            lines += std::to_string(line);
        }
        const std::string witness = finding.witnessLines.empty()
                                        ? "durable base image"
                                        : "witness lines [" + lines + "]";
        std::printf("%s%s seq %llu, %s: %s\n", indent,
                    toString(finding.boundary),
                    static_cast<unsigned long long>(finding.seq),
                    witness.c_str(), finding.detail.c_str());
    }
}

void
printStats(const pmdb::CrashsimStats &stats, double seconds,
           const char *indent)
{
    std::printf("%s%llu crash points (%llu epoch-coalesced, "
                "%llu truncated by bounds), %llu pending lines\n"
                "%s%llu images enumerated, %llu deduped, "
                "%llu verified, %llu minimize verifies\n"
                "%s%.4fs explore (%.0f points/s)\n",
                indent,
                static_cast<unsigned long long>(stats.points),
                static_cast<unsigned long long>(
                    stats.epochCoalescedPoints),
                static_cast<unsigned long long>(stats.truncatedPoints),
                static_cast<unsigned long long>(stats.pendingLines),
                indent,
                static_cast<unsigned long long>(stats.imagesEnumerated),
                static_cast<unsigned long long>(stats.imagesDeduped),
                static_cast<unsigned long long>(stats.imagesVerified),
                static_cast<unsigned long long>(stats.minimizeVerifies),
                indent, seconds,
                seconds > 0 ? static_cast<double>(stats.points) / seconds
                            : 0.0);
}

int
runCase(const pmdb::BugCase &bug_case,
        const pmdb::CrashsimOptions &options)
{
    using namespace pmdb;
    const CrashsimCaseOutcome outcome =
        runCrashsimCase(bug_case, options);

    std::printf("%s:\n  single-image checker: %s\n"
                "  engine (buggy): %zu finding(s)\n"
                "  engine (correct): %zu finding(s)\n",
                bug_case.name.c_str(),
                outcome.singleImageFound ? "found" : "missed",
                outcome.buggy.findings.size(),
                outcome.clean.findings.size());
    printFindings(outcome.buggy, "    ");
    printStats(outcome.buggy.stats, outcome.buggy.exploreSeconds,
               "  ");

    // cs_log_truncation_window runs a correct program for both
    // variants; under the default epoch-atomic exploration, quiet on
    // both is the expected outcome.
    const bool expect_buggy_finding =
        bug_case.name != "cs_log_truncation_window" ||
        !options.epochAtomic;
    int failures = 0;
    if (expect_buggy_finding && !outcome.engineFound) {
        std::printf("  FAIL: engine missed the seeded bug\n");
        ++failures;
    }
    if (!outcome.clean.findings.empty()) {
        std::printf("  FAIL: false positive on the correct variant\n");
        ++failures;
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmdb;

    if (argc < 3)
        return usage(argv[0]);
    const std::string command = argv[1];
    const std::string target = argv[2];

    CrashsimOptions options;
    WorkloadOptions wl_options;
    wl_options.operations = 20;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(exitUsage);
            }
            return argv[++i];
        };
        if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-pending")
            options.maxPendingLines =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-images")
            options.maxImagesPerPoint =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            options.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--flush-points")
            options.captureAtFlush = true;
        else if (arg == "--no-epoch-atomic")
            options.epochAtomic = false;
        else if (arg == "--ops")
            wl_options.operations =
                std::strtoull(next(), nullptr, 10);
        else if (arg == "--fault")
            wl_options.faults.enable(next());
        else if (arg == "--json")
            json = true;
        else
            return usage(argv[0]);
    }

    if (command == "case") {
        int failures = 0;
        bool matched = false;
        for (const BugCase *bug_case : engineCases()) {
            if (target != "all" && bug_case->name != target)
                continue;
            matched = true;
            failures += runCase(*bug_case, options);
        }
        if (!matched) {
            std::fprintf(stderr, "unknown case '%s'; known:",
                         target.c_str());
            for (const BugCase *bug_case : engineCases())
                std::fprintf(stderr, " %s", bug_case->name.c_str());
            std::fprintf(stderr, "\n");
            return exitUnknownName;
        }
        return failures == 0 ? 0 : 1;
    }

    if (command == "run") {
        if (!makeWorkload(target)) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         target.c_str());
            return exitUnknownName;
        }
        const CrashsimResult result =
            runCrashsimWorkload(target, wl_options, options);
        if (json) {
            std::printf(
                "{\"workload\": \"%s\", \"ops\": %zu, "
                "\"seed\": %llu, "
                "\"crash_points\": %llu, "
                "\"epoch_coalesced_points\": %llu, "
                "\"truncated_points\": %llu, "
                "\"pending_lines\": %llu, "
                "\"images_enumerated\": %llu, "
                "\"images_deduped\": %llu, "
                "\"images_verified\": %llu, "
                "\"findings\": %zu, "
                "\"explore_seconds\": %.6f}\n",
                target.c_str(), wl_options.operations,
                static_cast<unsigned long long>(options.seed),
                static_cast<unsigned long long>(result.stats.points),
                static_cast<unsigned long long>(
                    result.stats.epochCoalescedPoints),
                static_cast<unsigned long long>(
                    result.stats.truncatedPoints),
                static_cast<unsigned long long>(
                    result.stats.pendingLines),
                static_cast<unsigned long long>(
                    result.stats.imagesEnumerated),
                static_cast<unsigned long long>(
                    result.stats.imagesDeduped),
                static_cast<unsigned long long>(
                    result.stats.imagesVerified),
                result.findings.size(), result.exploreSeconds);
        } else {
            // Echo the schedule seed so a truncated (sampled) run's
            // exact exploration can be reproduced from the report.
            std::printf("%s (%zu ops, seed %llu): %zu finding(s)\n",
                        target.c_str(), wl_options.operations,
                        static_cast<unsigned long long>(options.seed),
                        result.findings.size());
            printFindings(result, "  ");
            printStats(result.stats, result.exploreSeconds, "  ");
        }
        return result.stats.truncatedPoints > 0
                   ? exitTruncatedEnumeration
                   : 0;
    }

    return usage(argv[0]);
}
