/**
 * @file
 * pmdb_trace — record, inspect, characterize and replay instrumented
 * PM traces (the record-once / analyze-many workflow).
 *
 * Usage:
 *   pmdb_trace record <workload> <ops> <out.trc> [--fault NAME]
 *   pmdb_trace info <file.trc>
 *   pmdb_trace charz <file.trc>          # Section 3 characterization
 *   pmdb_trace replay <file.trc> <checker> [--json]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "charz/characterize.hh"
#include "core/report.hh"
#include "detectors/registry.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s record <workload> <ops> <out.trc> [--fault NAME]\n"
        "       %s info <file.trc>\n"
        "       %s charz <file.trc>\n"
        "       %s replay <file.trc> <checker> [--json]\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

int
cmdRecord(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 5)
        return usage(argv[0]);
    auto workload = makeWorkload(argv[2]);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return 2;
    }
    WorkloadOptions options;
    options.operations = std::strtoull(argv[3], nullptr, 10);
    for (int i = 5; i + 1 < argc; i += 2) {
        if (std::string(argv[i]) == "--fault")
            options.faults.enable(argv[i + 1]);
    }

    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    workload->run(runtime, options);

    std::string error;
    if (!writeTraceFile(argv[4], recorder.events(), runtime.names(),
                        &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::printf("recorded %zu events from %s -> %s\n",
                recorder.events().size(), argv[2], argv[4]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    std::string error;
    if (!readTraceFile(argv[2], &trace, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::uint64_t counts[16] = {};
    for (const Event &event : trace.events)
        ++counts[static_cast<int>(event.kind)];
    std::printf("%s: %zu events, %zu interned names\n", argv[2],
                trace.events.size(), trace.names.size());
    for (int k = 0; k < 16; ++k) {
        if (counts[k]) {
            std::printf("  %-14s %llu\n",
                        toString(static_cast<EventKind>(k)),
                        static_cast<unsigned long long>(counts[k]));
        }
    }
    return 0;
}

int
cmdCharz(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    std::string error;
    if (!readTraceFile(argv[2], &trace, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    const CharacterizationResult result = characterize(trace.events);
    std::printf("%s\n", result.toString().c_str());
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);
    LoadedTrace trace;
    std::string error;
    if (!readTraceFile(argv[2], &trace, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    auto detector = makeDetector(argv[3], {});
    if (!detector) {
        std::fprintf(stderr, "unknown checker '%s'\n", argv[3]);
        return 2;
    }
    detector->attached(trace.names);
    TraceReplayer replayer(trace.events);
    replayer.replay(*detector);
    detector->finalize();

    const bool json = argc > 4 && std::string(argv[4]) == "--json";
    if (json)
        std::printf("%s\n", reportToJson(detector->bugs()).c_str());
    else
        std::printf("%s", detector->bugs().summary().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    if (command == "record")
        return cmdRecord(argc, argv);
    if (command == "info")
        return cmdInfo(argc, argv);
    if (command == "charz")
        return cmdCharz(argc, argv);
    if (command == "replay")
        return cmdReplay(argc, argv);
    return usage(argv[0]);
}
