/**
 * @file
 * pmdb_trace — record, inspect, characterize and replay instrumented
 * PM traces (the record-once / analyze-many workflow).
 *
 * Usage:
 *   pmdb_trace record <workload> <ops> <out.trc> [--fault NAME]
 *   pmdb_trace info <file.trc>
 *   pmdb_trace charz <file.trc>          # Section 3 characterization
 *   pmdb_trace replay <file.trc> <checker> [--json]
 *   pmdb_trace crashsim <file.trc> [--flush-points] [--max-pending K]
 *                       [--max-images N] [--no-epoch-atomic]
 *
 * Exit codes: 0 success, 2 usage error, 3 unknown workload/checker
 * name, 4 unreadable or corrupt trace file (the failing file name is
 * printed to stderr).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "charz/characterize.hh"
#include "core/report.hh"
#include "crashsim/crash_points.hh"
#include "detectors/registry.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

namespace
{

// Exit codes: distinct failures get distinct codes so scripts (and the
// CI smoke steps) can tell a typo'd name from a damaged trace file.
constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
constexpr int exitBadTrace = 4;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s record <workload> <ops> <out.trc> [--fault NAME]\n"
        "       %s info <file.trc>\n"
        "       %s charz <file.trc>\n"
        "       %s replay <file.trc> <checker> [--json]\n"
        "       %s crashsim <file.trc> [--flush-points] "
        "[--max-pending K]\n"
        "                [--max-images N] [--no-epoch-atomic]\n",
        argv0, argv0, argv0, argv0, argv0);
    return exitUsage;
}

/** Load a trace or fail with exitBadTrace, naming the file. */
bool
loadTrace(const char *path, pmdb::LoadedTrace *trace)
{
    std::string error;
    if (!pmdb::readTraceFile(path, trace, &error)) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

int
cmdRecord(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 5)
        return usage(argv[0]);
    auto workload = makeWorkload(argv[2]);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return exitUnknownName;
    }
    WorkloadOptions options;
    options.operations = std::strtoull(argv[3], nullptr, 10);
    for (int i = 5; i + 1 < argc; i += 2) {
        if (std::string(argv[i]) == "--fault")
            options.faults.enable(argv[i + 1]);
    }

    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    workload->run(runtime, options);

    std::string error;
    if (!writeTraceFile(argv[4], recorder.events(), runtime.names(),
                        &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[4], error.c_str());
        return exitBadTrace;
    }
    std::printf("recorded %zu events from %s -> %s\n",
                recorder.events().size(), argv[2], argv[4]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;
    std::uint64_t counts[16] = {};
    for (const Event &event : trace.events)
        ++counts[static_cast<int>(event.kind)];
    std::printf("%s: %zu events, %zu interned names\n", argv[2],
                trace.events.size(), trace.names.size());
    for (int k = 0; k < 16; ++k) {
        if (counts[k]) {
            std::printf("  %-14s %llu\n",
                        toString(static_cast<EventKind>(k)),
                        static_cast<unsigned long long>(counts[k]));
        }
    }
    return 0;
}

int
cmdCharz(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;
    const CharacterizationResult result = characterize(trace.events);
    std::printf("%s\n", result.toString().c_str());
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;
    auto detector = makeDetector(argv[3], {});
    if (!detector) {
        std::fprintf(stderr, "unknown checker '%s'\n", argv[3]);
        return exitUnknownName;
    }
    detector->attached(trace.names);
    TraceReplayer replayer(trace.events);
    replayer.replay(*detector);
    detector->finalize();

    const bool json = argc > 4 && std::string(argv[4]) == "--json";
    if (json)
        std::printf("%s\n", reportToJson(detector->bugs()).c_str());
    else
        std::printf("%s", detector->bugs().summary().c_str());
    return 0;
}

int
cmdCrashsim(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;

    CrashsimOptions options;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--flush-points") {
            options.captureAtFlush = true;
        } else if (arg == "--no-epoch-atomic") {
            options.epochAtomic = false;
        } else if (arg == "--max-pending" && i + 1 < argc) {
            options.maxPendingLines =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max-images" && i + 1 < argc) {
            options.maxImagesPerPoint =
                std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    const CrashScanSummary summary =
        scanCrashPoints(trace.events, options);
    std::printf("%s: %s\n", argv[2], summary.toString().c_str());
    std::printf("(structural scan: traces carry no store payloads; "
                "full exploration with recovery\n verifiers needs a "
                "live capture — see pmdb_crashsim)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    if (command == "record")
        return cmdRecord(argc, argv);
    if (command == "info")
        return cmdInfo(argc, argv);
    if (command == "charz")
        return cmdCharz(argc, argv);
    if (command == "replay")
        return cmdReplay(argc, argv);
    if (command == "crashsim")
        return cmdCrashsim(argc, argv);
    return usage(argv[0]);
}
