/**
 * @file
 * pmdb_trace — record, inspect, characterize, replay, minimize and
 * repair instrumented PM traces (the record-once / analyze-many
 * workflow).
 *
 * Usage:
 *   pmdb_trace record <workload> <ops> <out.trc> [--fault NAME]
 *   pmdb_trace record case:<name> <out.trc> [--correct] [--seed N]
 *                     [--threads N] [--ycsb-mix a..f] [--ops N]
 *   pmdb_trace info <file.trc> [--sites]
 *   pmdb_trace charz <file.trc>          # Section 3 characterization
 *   pmdb_trace replay <file.trc> <checker> [--json] [--fingerprints]
 *                     [--case <name>]
 *   pmdb_trace crashsim <file.trc> [--flush-points] [--max-pending K]
 *                       [--max-images N] [--no-epoch-atomic]
 *   pmdb_trace minimize (case:<name> | <in.trc>) <out.trc>
 *                       [--case <name>] [--max-replays N]
 *   pmdb_trace repair   (case:<name> | <in.trc>) <out.trc>
 *                       [--case <name>] [--json]
 *   pmdb_trace gen-fingerprints [<out.inc>]
 *
 * Exit codes: 0 success, 2 usage error, 3 unknown workload/checker/case
 * name, 4 unreadable or corrupt trace file, 5 trace loaded but its
 * stream tail was truncated (info only; the longest valid prefix was
 * recovered), 6 no verified repair / target bug not reproduced. The
 * failing file or name is printed to stderr. (pmdb_advise extends the
 * family with 7: corpus ran but no advisory cleared the confidence
 * threshold.)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advise/advise.hh"
#include "charz/characterize.hh"
#include "core/report.hh"
#include "crashsim/crash_points.hh"
#include "detectors/registry.hh"
#include "repair/case_repair.hh"
#include "repair/minimize.hh"
#include "repair/patch.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/suite_runner.hh"
#include "workloads/workload.hh"

namespace
{

// Exit codes: distinct failures get distinct codes so scripts (and the
// CI smoke steps) can tell a typo'd name from a damaged trace file from
// a torn stream tail from a failed repair.
constexpr int exitUsage = 2;
constexpr int exitUnknownName = 3;
constexpr int exitBadTrace = 4;
constexpr int exitTruncatedTrace = 5;
constexpr int exitNoRepair = 6;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s record <workload> <ops> <out.trc> [--fault NAME]\n"
        "       %s record case:<name> <out.trc> [--correct] [--seed N]\n"
        "                [--threads N] [--ycsb-mix a..f] [--ops N]\n"
        "       %s info <file.trc> [--sites]\n"
        "       %s charz <file.trc>\n"
        "       %s replay <file.trc> <checker> [--json] "
        "[--fingerprints] [--case <name>]\n"
        "       %s crashsim <file.trc> [--flush-points] "
        "[--max-pending K]\n"
        "                [--max-images N] [--no-epoch-atomic]\n"
        "       %s minimize (case:<name> | <in.trc>) <out.trc> "
        "[--case <name>]\n"
        "                [--max-replays N]\n"
        "       %s repair (case:<name> | <in.trc>) <out.trc> "
        "[--case <name>] [--json]\n"
        "       %s gen-fingerprints [<out.inc>]\n",
        argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
    return exitUsage;
}

/**
 * Load a trace of either format or fail with exitBadTrace, naming the
 * file. A recovered-but-truncated stream is usable (the longest valid
 * prefix), so it loads with a warning; `info` surfaces the flag and its
 * own exit code.
 */
bool
loadTrace(const char *path, pmdb::LoadedTrace *trace,
          bool *truncated = nullptr)
{
    std::string error;
    bool torn = false;
    if (!pmdb::readAnyTrace(path, trace, &torn, &error)) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return false;
    }
    if (torn && !truncated) {
        std::fprintf(stderr,
                     "%s: warning: stream trace truncated mid-record; "
                     "using the recovered prefix (%zu events)\n",
                     path, trace->events.size());
    }
    if (truncated)
        *truncated = torn;
    return true;
}

/**
 * Resolve the (trace, case) pair for minimize/repair: either
 * `case:<name>` (record the suite case in-process) or a trace file
 * plus `--case <name>` for the detector configuration and target.
 * Returns 0 on success, else the exit code.
 */
int
resolveSource(const char *argv0, const std::string &source,
              const std::string &case_name, pmdb::LoadedTrace *trace,
              const pmdb::BugCase **bug_case)
{
    using namespace pmdb;
    if (source.rfind("case:", 0) == 0) {
        const std::string name = source.substr(5);
        *bug_case = findBugCase(name);
        if (!*bug_case) {
            std::fprintf(stderr, "unknown bug-suite case '%s'\n",
                         name.c_str());
            return exitUnknownName;
        }
        *trace = recordCaseTrace(**bug_case);
        return 0;
    }
    if (case_name.empty()) {
        std::fprintf(stderr,
                     "a trace-file source needs --case <name> for the "
                     "detector configuration\n");
        return usage(argv0);
    }
    *bug_case = findBugCase(case_name);
    if (!*bug_case) {
        std::fprintf(stderr, "unknown bug-suite case '%s'\n",
                     case_name.c_str());
        return exitUnknownName;
    }
    if (!loadTrace(source.c_str(), trace))
        return exitBadTrace;
    return 0;
}

int
cmdRecord(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);

    const std::string source = argv[2];
    if (source.rfind("case:", 0) == 0) {
        const BugCase *bug_case = findBugCase(source.substr(5));
        if (!bug_case) {
            std::fprintf(stderr, "unknown bug-suite case '%s'\n",
                         source.substr(5).c_str());
            return exitUnknownName;
        }
        bool buggy = true;
        CaseParams params;
        for (int i = 4; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--correct") {
                buggy = false;
            } else if (arg == "--seed" && i + 1 < argc) {
                params.seed = std::strtoull(argv[++i], nullptr, 10);
            } else if (arg == "--threads" && i + 1 < argc) {
                params.threads =
                    static_cast<int>(std::strtol(argv[++i], nullptr, 10));
            } else if (arg == "--ops" && i + 1 < argc) {
                params.operations =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (arg == "--ycsb-mix" && i + 1 < argc) {
                const char *mix = argv[++i];
                if (mix[0] < 'a' || mix[0] > 'f' || mix[1]) {
                    std::fprintf(stderr, "bad YCSB mix '%s'\n", mix);
                    return usage(argv[0]);
                }
                params.ycsbMix = mix[0];
            } else {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                return usage(argv[0]);
            }
        }
        const LoadedTrace trace =
            recordCaseTrace(*bug_case, buggy, &params);
        std::string error;
        if (!writeTraceFile(argv[3], trace.events, trace.names, &error)) {
            std::fprintf(stderr, "%s: %s\n", argv[3], error.c_str());
            return exitBadTrace;
        }
        std::printf("recorded %zu events from case %s (%s, %s) -> %s\n",
                    trace.events.size(), bug_case->name.c_str(),
                    buggy ? "buggy" : "correct",
                    params.label().c_str(), argv[3]);
        return 0;
    }

    if (argc < 5)
        return usage(argv[0]);
    auto workload = makeWorkload(argv[2]);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return exitUnknownName;
    }
    WorkloadOptions options;
    options.operations = std::strtoull(argv[3], nullptr, 10);
    for (int i = 5; i + 1 < argc; i += 2) {
        if (std::string(argv[i]) == "--fault")
            options.faults.enable(argv[i + 1]);
    }

    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    workload->run(runtime, options);

    std::string error;
    if (!writeTraceFile(argv[4], recorder.events(), runtime.names(),
                        &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[4], error.c_str());
        return exitBadTrace;
    }
    std::printf("recorded %zu events from %s -> %s\n",
                recorder.events().size(), argv[2], argv[4]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    bool sites = false;
    for (int i = 3; i < argc; ++i) {
        if (std::string(argv[i]) == "--sites") {
            sites = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return usage(argv[0]);
        }
    }
    LoadedTrace trace;
    bool truncated = false;
    if (!loadTrace(argv[2], &trace, &truncated))
        return exitBadTrace;
    std::uint64_t counts[16] = {};
    for (const Event &event : trace.events)
        ++counts[static_cast<int>(event.kind)];
    std::printf("%s: %zu events, %zu interned names\n", argv[2],
                trace.events.size(), trace.names.size());
    for (int k = 0; k < 16; ++k) {
        if (counts[k]) {
            std::printf("  %-14s %llu\n",
                        toString(static_cast<EventKind>(k)),
                        static_cast<unsigned long long>(counts[k]));
        }
    }
    if (sites) {
        // Program sites interned by SiteScope annotations, with the
        // number of events each one emitted — the advisory engine's
        // attribution domain for this trace.
        const auto site_counts = siteEventCounts(trace);
        std::printf("sites: %zu\n", site_counts.size());
        for (const auto &[site, count] : site_counts) {
            std::printf("  %-48s %llu\n", site.c_str(),
                        static_cast<unsigned long long>(count));
        }
        if (site_counts.empty()) {
            std::printf("  (trace recorded without site annotations)\n");
        }
    }
    // Structural crash-surface summary: where a crash-state
    // exploration could cut this trace (per-boundary histogram) and
    // how many candidate images a bounded enumeration would cover.
    const CrashScanSummary scan = scanCrashPoints(trace.events);
    std::printf("crash surface:\n");
    const std::string scan_text = scan.toString();
    std::size_t at = 0;
    while (at < scan_text.size()) {
        std::size_t end = scan_text.find('\n', at);
        if (end == std::string::npos)
            end = scan_text.size();
        std::printf("  %s\n",
                    scan_text.substr(at, end - at).c_str());
        at = end + 1;
    }
    std::printf("  truncated      %s\n", truncated ? "yes" : "no");
    if (truncated) {
        std::fprintf(stderr,
                     "%s: stream trace truncated mid-record; the "
                     "counts above cover the recovered prefix\n",
                     argv[2]);
        return exitTruncatedTrace;
    }
    return 0;
}

int
cmdCharz(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;
    const CharacterizationResult result = characterize(trace.events);
    std::printf("%s\n", result.toString().c_str());
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;

    bool json = false;
    bool fingerprints = false;
    DebuggerConfig config;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--fingerprints") {
            fingerprints = true;
        } else if (arg == "--case" && i + 1 < argc) {
            // Replay under the detector configuration the suite would
            // drive this case with (model + order spec) — required for
            // the ordering rules to see anything.
            const BugCase *bug_case = findBugCase(argv[++i]);
            if (!bug_case) {
                std::fprintf(stderr, "unknown case '%s'\n", argv[i]);
                return exitUnknownName;
            }
            config = debuggerConfigFor(*bug_case);
        } else {
            return usage(argv[0]);
        }
    }

    auto detector = makeDetector(argv[3], config);
    if (!detector) {
        std::fprintf(stderr, "unknown checker '%s'\n", argv[3]);
        return exitUnknownName;
    }
    detector->attached(trace.names);
    TraceReplayer replayer(trace.events);
    replayer.replay(*detector);
    detector->finalize();

    if (fingerprints) {
        for (const BugFingerprint &fp : detector->bugs().fingerprints())
            std::printf("%s\n", fp.toString().c_str());
    } else if (json) {
        std::printf("%s\n", reportToJson(detector->bugs()).c_str());
    } else {
        std::printf("%s", detector->bugs().summary().c_str());
    }
    return 0;
}

int
cmdCrashsim(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 3)
        return usage(argv[0]);
    LoadedTrace trace;
    if (!loadTrace(argv[2], &trace))
        return exitBadTrace;

    CrashsimOptions options;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--flush-points") {
            options.captureAtFlush = true;
        } else if (arg == "--no-epoch-atomic") {
            options.epochAtomic = false;
        } else if (arg == "--max-pending" && i + 1 < argc) {
            options.maxPendingLines =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max-images" && i + 1 < argc) {
            options.maxImagesPerPoint =
                std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    const CrashScanSummary summary =
        scanCrashPoints(trace.events, options);
    std::printf("%s: %s\n", argv[2], summary.toString().c_str());
    std::printf("(structural scan: traces carry no store payloads; "
                "full exploration with recovery\n verifiers needs a "
                "live capture — see pmdb_crashsim)\n");
    return 0;
}

int
cmdMinimize(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);
    std::string case_name;
    MinimizeOptions options;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--case" && i + 1 < argc) {
            case_name = argv[++i];
        } else if (arg == "--max-replays" && i + 1 < argc) {
            options.maxReplays = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    LoadedTrace trace;
    const BugCase *bug_case = nullptr;
    if (const int rc = resolveSource(argv[0], argv[2], case_name, &trace,
                                     &bug_case)) {
        return rc;
    }

    BugFingerprint target;
    if (!caseTarget(*bug_case, trace, &target)) {
        std::fprintf(stderr,
                     "case %s: expected bug does not reproduce on this "
                     "trace (cross-failure bugs need live verifiers)\n",
                     bug_case->name.c_str());
        return exitNoRepair;
    }

    const MinimizeResult result = minimizeWitness(
        trace, target, debuggerConfigFor(*bug_case), options);
    if (!result.reproduced) {
        std::fprintf(stderr, "target %s not reproduced on full trace\n",
                     target.toString().c_str());
        return exitNoRepair;
    }

    std::string error;
    if (!writeTraceFile(argv[3], result.events, trace.names, &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[3], error.c_str());
        return exitBadTrace;
    }
    std::printf("target     %s\n", target.toString().c_str());
    std::printf("minimized  %zu -> %zu events (%.1fx), %llu replays "
                "(%llu cached) -> %s\n",
                result.stats.originalEvents,
                result.stats.minimizedEvents,
                result.stats.shrinkFactor(),
                static_cast<unsigned long long>(result.stats.replays),
                static_cast<unsigned long long>(result.stats.cacheHits),
                argv[3]);
    return 0;
}

int
cmdRepair(int argc, char **argv)
{
    using namespace pmdb;
    if (argc < 4)
        return usage(argv[0]);
    std::string case_name;
    bool json = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--case" && i + 1 < argc) {
            case_name = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    LoadedTrace trace;
    const BugCase *bug_case = nullptr;
    if (const int rc = resolveSource(argv[0], argv[2], case_name, &trace,
                                     &bug_case)) {
        return rc;
    }

    BugFingerprint target;
    if (!caseTarget(*bug_case, trace, &target)) {
        std::fprintf(stderr,
                     "case %s: expected bug does not reproduce on this "
                     "trace (cross-failure bugs need live verifiers)\n",
                     bug_case->name.c_str());
        return exitNoRepair;
    }

    const RepairResult result =
        repairTrace(trace, target, debuggerConfigFor(*bug_case));
    if (!json)
        std::printf("target     %s\n", target.toString().c_str());
    if (!result.verified) {
        if (json) {
            std::printf("{\"case\": \"%s\", \"target\": \"%s\", "
                        "\"verified\": false, \"candidates\": %zu, "
                        "\"replays\": %llu}\n",
                        jsonEscape(bug_case->name).c_str(),
                        jsonEscape(target.toString()).c_str(),
                        result.candidatesTried,
                        static_cast<unsigned long long>(result.replays));
        }
        std::fprintf(stderr,
                     "no verified repair for %s (%zu candidates, %llu "
                     "replays)\n",
                     target.toString().c_str(), result.candidatesTried,
                     static_cast<unsigned long long>(result.replays));
        return exitNoRepair;
    }

    std::string error;
    if (!writeTraceFile(argv[3], result.patchedEvents, trace.names,
                        &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[3], error.c_str());
        return exitBadTrace;
    }
    if (json) {
        // Machine-readable patch: one record per edit with the same
        // program-site attribution the advisory engine clusters on.
        std::printf("{\n  \"case\": \"%s\",\n  \"target\": \"%s\",\n"
                    "  \"verified\": true,\n  \"strategy\": \"%s\",\n"
                    "  \"candidates\": %zu,\n  \"replays\": %llu,\n"
                    "  \"edits\": [",
                    jsonEscape(bug_case->name).c_str(),
                    jsonEscape(target.toString()).c_str(),
                    jsonEscape(result.patch.strategy).c_str(),
                    result.candidatesTried,
                    static_cast<unsigned long long>(result.replays));
        for (std::size_t i = 0; i < result.patch.edits.size(); ++i) {
            const TraceEdit &edit = result.patch.edits[i];
            const bool insert = edit.op == TraceEdit::Op::Insert;
            std::string site = "";
            if (edit.siteId != noName && edit.siteId < trace.names.size())
                site = trace.names.name(edit.siteId);
            std::printf("%s\n    {\"op\": \"%s\", \"event\": \"%s\", "
                        "\"rule\": \"%s\", \"site\": \"%s\", "
                        "\"anchor_seq\": %llu, \"note\": \"%s\"}",
                        i ? "," : "", insert ? "insert" : "delete",
                        toString(edit.event.kind),
                        toString(edit.rule), jsonEscape(site).c_str(),
                        static_cast<unsigned long long>(edit.anchorSeq),
                        jsonEscape(edit.note).c_str());
        }
        std::printf("%s\n}\n",
                    result.patch.edits.empty() ? "]" : "\n  ]");
    } else {
        for (const std::string &line : result.advisory)
            std::printf("advisory   %s\n", line.c_str());
        std::printf("repaired   %zu edits verified in %zu candidates, "
                    "%llu replays -> %s\n",
                    result.patch.edits.size(), result.candidatesTried,
                    static_cast<unsigned long long>(result.replays),
                    argv[3]);
    }
    return 0;
}

int
cmdGenFingerprints(int argc, char **argv)
{
    using namespace pmdb;
    std::FILE *out = stdout;
    if (argc > 2) {
        out = std::fopen(argv[2], "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         argv[2]);
            return exitBadTrace;
        }
    }
    std::fprintf(out,
                 "// Expected PMDebugger bug fingerprints per suite "
                 "case.\n"
                 "// Generated by `pmdb_tracetool gen-fingerprints`; "
                 "do not edit by hand.\n");
    for (const BugCase &bug_case : bugSuite()) {
        for (const std::string &fp : caseFingerprints(bug_case)) {
            std::fprintf(out, "{\"%s\", \"%s\"},\n",
                         bug_case.name.c_str(), fp.c_str());
        }
    }
    if (out != stdout)
        std::fclose(out);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    if (command == "record")
        return cmdRecord(argc, argv);
    if (command == "info")
        return cmdInfo(argc, argv);
    if (command == "charz")
        return cmdCharz(argc, argv);
    if (command == "replay")
        return cmdReplay(argc, argv);
    if (command == "crashsim")
        return cmdCrashsim(argc, argv);
    if (command == "minimize")
        return cmdMinimize(argc, argv);
    if (command == "repair")
        return cmdRepair(argc, argv);
    if (command == "gen-fingerprints")
        return cmdGenFingerprints(argc, argv);
    return usage(argv[0]);
}
