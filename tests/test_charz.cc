/**
 * @file
 * Tests for the Section 3 characterization: distance distribution,
 * collective/dispersed CLF intervals and the instruction mix, on both
 * hand-built traces with known answers and real workload traces whose
 * patterns the paper describes.
 */

#include <gtest/gtest.h>

#include "charz/characterize.hh"
#include "trace/recorder.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

/** Record a synthetic trace through the real runtime. */
class CharzTest : public ::testing::Test
{
  protected:
    CharzTest() { runtime.attach(&recorder); }

    CharacterizationResult
    result()
    {
        return characterize(recorder.events());
    }

    PmRuntime runtime;
    TraceRecorder recorder;
};

TEST_F(CharzTest, DistanceOneForNearestFence)
{
    runtime.store(0, 8);
    runtime.flush(0, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.resolvedStores, 1u);
    EXPECT_EQ(r.distanceCounts[0], 1u); // distance 1
    EXPECT_DOUBLE_EQ(r.distancePercent(1), 100.0);
}

TEST_F(CharzTest, DistanceTwoWhenFlushComesAfterFirstFence)
{
    // The Figure 3 example: the CLF for the store is issued after the
    // nearest fence, so the second fence guarantees durability.
    runtime.store(0, 8);
    runtime.fence();
    runtime.flush(0, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.resolvedStores, 1u);
    EXPECT_EQ(r.distanceCounts[1], 1u); // distance 2
}

TEST_F(CharzTest, LongDistancesBucketAsGreaterThanFive)
{
    runtime.store(0, 8);
    for (int i = 0; i < 7; ++i)
        runtime.fence();
    runtime.flush(0, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.distanceCounts[5], 1u); // > 5
}

TEST_F(CharzTest, UnresolvedStoresCounted)
{
    runtime.store(0, 8); // never flushed
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.resolvedStores, 0u);
    EXPECT_EQ(r.unresolvedStores, 1u);
}

TEST_F(CharzTest, CollectiveWritebackDetected)
{
    // Figure 3: two stores to one cache line, persisted by one CLF.
    runtime.store(0, 8);
    runtime.store(8, 8);
    runtime.flush(0, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.collectiveIntervals, 1u);
    EXPECT_EQ(r.dispersedIntervals, 0u);
    EXPECT_DOUBLE_EQ(r.collectivePercent(), 100.0);
}

TEST_F(CharzTest, DispersedWritebackDetected)
{
    // Two stores to different lines need two CLFs.
    runtime.store(0, 8);
    runtime.store(64, 8);
    runtime.flush(0, 64);
    runtime.flush(64, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.collectiveIntervals, 0u);
    EXPECT_EQ(r.dispersedIntervals, 1u);
}

TEST_F(CharzTest, InstructionMixPercentages)
{
    for (int i = 0; i < 7; ++i)
        runtime.store(i * 64, 8);
    runtime.flush(0, 64);
    runtime.flush(64, 64);
    runtime.fence();
    const auto r = result();
    EXPECT_EQ(r.stores, 7u);
    EXPECT_EQ(r.flushes, 2u);
    EXPECT_EQ(r.fences, 1u);
    EXPECT_DOUBLE_EQ(r.storePercent(), 70.0);
    EXPECT_DOUBLE_EQ(r.flushPercent(), 20.0);
    EXPECT_DOUBLE_EQ(r.fencePercent(), 10.0);
}

/**
 * The paper's three patterns hold on our transactional workloads:
 * most stores persist at the nearest fence (Pattern 1), most CLF
 * intervals are collective (Pattern 2), stores dominate (Pattern 3).
 */
class PatternTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PatternTest, PaperPatternsHold)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    auto workload = makeWorkload(GetParam());
    WorkloadOptions options;
    options.operations = 1000;
    options.seed = 21;
    workload->run(runtime, options);

    const auto r = characterize(recorder.events());
    // Pattern 1: ≥ ~78% of stores at distance 1 (Figure 2a).
    EXPECT_GT(r.distancePercent(1), 70.0) << GetParam();
    // Pattern 2: most CLF intervals are collective (Figure 2b).
    EXPECT_GT(r.collectivePercent(), 55.0) << GetParam();
    // Pattern 3: stores are the most frequent instruction (Figure 2c).
    EXPECT_GT(r.storePercent(), 40.0) << GetParam();
    EXPECT_GT(r.storePercent(), r.flushPercent()) << GetParam();
    EXPECT_GT(r.storePercent(), r.fencePercent()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, PatternTest,
                         ::testing::Values("b_tree", "c_tree", "rb_tree",
                                           "hashmap_atomic"));

TEST(PatternHashmapTxTest, DeferredStatsCreateLongDistances)
{
    // hashmap_tx is the outlier: its deferred statistics give it a
    // heavy distance tail (Figure 2a) and a large AVL tree (Figure 11).
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    auto workload = makeWorkload("hashmap_tx");
    WorkloadOptions options;
    options.operations = 3000;
    options.seed = 21;
    workload->run(runtime, options);

    const auto r = characterize(recorder.events());
    EXPECT_GT(r.distancePercent(6), 2.5); // a real > 5 tail
    EXPECT_LT(r.distancePercent(1), 97.0);
}

TEST(CharzCompactionTest, PendingCompactionPreservesCounts)
{
    // More than 65,536 unresolved stores trigger the analyzer's
    // internal compaction; distances and unresolved counts must be
    // unaffected by it.
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    constexpr int resolved = 1000;
    constexpr int unresolved = 70000;
    for (int i = 0; i < unresolved; ++i)
        runtime.store(static_cast<Addr>(i) * 64, 8);
    runtime.fence(); // keeps them pending, triggers compaction passes
    for (int i = 0; i < resolved; ++i) {
        const Addr addr = (1 << 24) + static_cast<Addr>(i) * 64;
        runtime.store(addr, 8);
        runtime.flush(addr, 64);
        runtime.fence();
    }
    const auto r = characterize(recorder.events());
    EXPECT_EQ(r.resolvedStores, static_cast<std::uint64_t>(resolved));
    EXPECT_EQ(r.unresolvedStores,
              static_cast<std::uint64_t>(unresolved));
    EXPECT_EQ(r.distanceCounts[0], static_cast<std::uint64_t>(resolved));
}

} // namespace
} // namespace pmdb
