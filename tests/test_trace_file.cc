/**
 * @file
 * Tests for the on-disk trace format and the record/replay workflow,
 * plus the JSON report rendering and the Persistence Inspector model
 * (the post-mortem consumers of saved traces).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "core/report.hh"
#include "detectors/persistence_inspector.hh"
#include "detectors/registry.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(TraceFileTest, RoundTripPreservesEverything)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.registerPmem("var.a", 0x40, 8);
    runtime.store(0x40, 8);
    runtime.flush(0x40, 64, FlushKind::Clflushopt);
    runtime.strandBegin(2);
    runtime.store(0x80, 16, /*thread=*/3);
    runtime.strandEnd(2);
    runtime.fence();
    runtime.programEnd();

    TempPath path("roundtrip.trc");
    std::string error;
    ASSERT_TRUE(writeTraceFile(path.str(), recorder.events(),
                               runtime.names(), &error))
        << error;

    LoadedTrace loaded;
    ASSERT_TRUE(readTraceFile(path.str(), &loaded, &error)) << error;
    ASSERT_EQ(loaded.events.size(), recorder.events().size());
    for (std::size_t i = 0; i < loaded.events.size(); ++i) {
        const Event &a = recorder.events()[i];
        const Event &b = loaded.events[i];
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.flushKind, b.flushKind) << i;
        EXPECT_EQ(a.thread, b.thread) << i;
        EXPECT_EQ(a.strand, b.strand) << i;
        EXPECT_EQ(a.nameId, b.nameId) << i;
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.size, b.size) << i;
        EXPECT_EQ(a.seq, b.seq) << i;
    }
    EXPECT_EQ(loaded.names.size(), 1u);
    EXPECT_EQ(loaded.names.name(0), "var.a");
}

TEST(TraceFileTest, RejectsBadMagic)
{
    TempPath path("bad.trc");
    std::FILE *file = std::fopen(path.str().c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite("NOTATRACE", 1, 9, file);
    std::fclose(file);

    LoadedTrace loaded;
    std::string error;
    EXPECT_FALSE(readTraceFile(path.str(), &loaded, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(TraceFileTest, MissingFileFailsGracefully)
{
    LoadedTrace loaded;
    std::string error;
    EXPECT_FALSE(readTraceFile("/nonexistent/dir/x.trc", &loaded,
                               &error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceFileTest, ReplayFindsSameBugsAsLiveRun)
{
    // Record a buggy workload, then replay the saved trace through a
    // fresh detector: identical verdicts.
    PmRuntime runtime;
    TraceRecorder recorder;
    auto live = makeDetector("pmemcheck");
    runtime.attach(&recorder);
    runtime.attach(live.get());

    auto workload = makeWorkload("hashmap_atomic");
    WorkloadOptions options;
    options.operations = 200;
    options.faults.enable("hmatomic_skip_entry_flush");
    workload->run(runtime, options);
    live->finalize();

    TempPath path("replay.trc");
    std::string error;
    ASSERT_TRUE(writeTraceFile(path.str(), recorder.events(),
                               runtime.names(), &error))
        << error;
    LoadedTrace loaded;
    ASSERT_TRUE(readTraceFile(path.str(), &loaded, &error)) << error;

    auto replayed = makeDetector("pmemcheck");
    replayed->attached(loaded.names);
    TraceReplayer replayer(loaded.events);
    replayer.replay(*replayed);
    replayed->finalize();

    EXPECT_EQ(replayed->bugs().total(), live->bugs().total());
    EXPECT_EQ(replayed->bugs().countOf(BugType::NoDurability),
              live->bugs().countOf(BugType::NoDurability));
}

TEST(TraceStreamTest, RoundTripWithInterleavedNames)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.registerPmem("stream.a", 0x40, 8);
    runtime.store(0x40, 8);
    runtime.flush(0x40, 64);
    runtime.fence();
    runtime.registerPmem("stream.b", 0x80, 16);
    runtime.store(0x80, 16, /*thread=*/2);
    runtime.programEnd();

    TempPath path("stream.trs");
    TraceStreamWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path.str(), &error)) << error;
    // Names are appended as soon as they appear, interleaved with the
    // events that reference them — the live-spill write pattern.
    for (const Event &event : recorder.events()) {
        ASSERT_TRUE(writer.syncNames(runtime.names()));
        ASSERT_TRUE(writer.append(event));
        ASSERT_TRUE(writer.flush());
    }
    EXPECT_EQ(writer.eventsWritten(), recorder.events().size());
    ASSERT_TRUE(writer.close());

    LoadedTrace loaded;
    bool truncated = true;
    ASSERT_TRUE(readTraceStream(path.str(), &loaded, &truncated, &error))
        << error;
    EXPECT_FALSE(truncated);
    ASSERT_EQ(loaded.events.size(), recorder.events().size());
    for (std::size_t i = 0; i < loaded.events.size(); ++i) {
        EXPECT_EQ(loaded.events[i].kind, recorder.events()[i].kind) << i;
        EXPECT_EQ(loaded.events[i].addr, recorder.events()[i].addr) << i;
        EXPECT_EQ(loaded.events[i].seq, recorder.events()[i].seq) << i;
    }
    ASSERT_EQ(loaded.names.size(), 2u);
    EXPECT_EQ(loaded.names.name(0), "stream.a");
    EXPECT_EQ(loaded.names.name(1), "stream.b");
}

TEST(TraceStreamTest, RecoversTruncatedTail)
{
    TempPath path("truncated.trs");
    TraceStreamWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path.str(), &error)) << error;
    ASSERT_TRUE(writer.appendName(0, "var"));
    for (int i = 0; i < 10; ++i) {
        Event event;
        event.kind = EventKind::Store;
        event.addr = 0x100 + 8u * static_cast<unsigned>(i);
        event.size = 8;
        event.seq = static_cast<SeqNum>(i + 1);
        ASSERT_TRUE(writer.append(event));
    }
    ASSERT_TRUE(writer.close());

    // Chop the file mid-record, as a crash would.
    std::FILE *file = std::fopen(path.str().c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    std::error_code ec;
    std::filesystem::resize_file(path.str(),
                                 static_cast<std::uintmax_t>(size - 7),
                                 ec);
    ASSERT_FALSE(ec) << ec.message();

    LoadedTrace loaded;
    bool truncated = false;
    ASSERT_TRUE(readTraceStream(path.str(), &loaded, &truncated, &error))
        << error;
    EXPECT_TRUE(truncated);
    // The partial final record is dropped; everything before survives.
    EXPECT_EQ(loaded.events.size(), 9u);
    EXPECT_EQ(loaded.events.back().seq, 9u);
    EXPECT_EQ(loaded.names.size(), 1u);
}

TEST(TraceStreamTest, RejectsBatchFormatMagic)
{
    // A batch-format trace is not a stream trace; the reader must say
    // so instead of misparsing it.
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.store(0x100, 8);
    TempPath path("batch.trc");
    std::string error;
    ASSERT_TRUE(writeTraceFile(path.str(), recorder.events(),
                               runtime.names(), &error));
    LoadedTrace loaded;
    EXPECT_FALSE(readTraceStream(path.str(), &loaded, nullptr, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(TraceAnyTest, DispatchesOnMagicAndReportsTruncation)
{
    // Batch trace through the magic-dispatching entry point.
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.store(0x100, 8);
    runtime.programEnd();
    TempPath batch("any_batch.trc");
    std::string error;
    ASSERT_TRUE(writeTraceFile(batch.str(), recorder.events(),
                               runtime.names(), &error));
    LoadedTrace loaded;
    bool truncated = true;
    ASSERT_TRUE(readAnyTrace(batch.str(), &loaded, &truncated, &error))
        << error;
    EXPECT_FALSE(truncated);
    EXPECT_EQ(loaded.events.size(), 2u);

    // Stream trace chopped mid-record: same entry point, truncation
    // surfaced through the flag.
    TempPath stream("any_truncated.trs");
    TraceStreamWriter writer;
    ASSERT_TRUE(writer.open(stream.str(), &error)) << error;
    for (int i = 0; i < 5; ++i) {
        Event event;
        event.kind = EventKind::Store;
        event.addr = 0x200 + 8u * static_cast<unsigned>(i);
        event.size = 8;
        event.seq = static_cast<SeqNum>(i + 1);
        ASSERT_TRUE(writer.append(event));
    }
    ASSERT_TRUE(writer.close());
    const auto full = std::filesystem::file_size(stream.str());
    std::error_code ec;
    std::filesystem::resize_file(stream.str(), full - 3, ec);
    ASSERT_FALSE(ec) << ec.message();

    LoadedTrace recovered;
    truncated = false;
    ASSERT_TRUE(
        readAnyTrace(stream.str(), &recovered, &truncated, &error))
        << error;
    EXPECT_TRUE(truncated);
    EXPECT_EQ(recovered.events.size(), 4u);

    // Garbage is rejected, not misparsed.
    TempPath junk("any_junk.bin");
    std::FILE *file = std::fopen(junk.str().c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("notatrace!", file);
    std::fclose(file);
    EXPECT_FALSE(readAnyTrace(junk.str(), &loaded, nullptr, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(PersistenceInspectorTest, PostMortemFindsDurabilityBugs)
{
    PmRuntime runtime;
    PersistenceInspector inspector;
    runtime.attach(&inspector);
    runtime.store(0x100, 8); // missing CLF
    runtime.fence();
    runtime.store(0x200, 8);
    runtime.flush(0x200, 64);
    runtime.flush(0x200, 64); // excessive flush
    runtime.fence();
    runtime.epochBegin();
    runtime.txLog(0x300, 16);
    runtime.txLog(0x308, 8); // excessive logging
    runtime.fence();
    runtime.epochEnd();
    // Nothing is reported during collection...
    EXPECT_EQ(inspector.bugs().total(), 0u);
    EXPECT_GT(inspector.collectedEvents(), 0u);
    runtime.programEnd();
    // ...everything at analysis time.
    EXPECT_EQ(inspector.bugs().countOf(BugType::NoDurability), 1u);
    EXPECT_EQ(inspector.bugs().countOf(BugType::RedundantFlush), 1u);
    EXPECT_EQ(inspector.bugs().countOf(BugType::RedundantLogging), 1u);
}

TEST(PersistenceInspectorTest, RegistryBuildsIt)
{
    auto detector = makeDetector("persistence_inspector");
    ASSERT_NE(detector, nullptr);
    EXPECT_TRUE(detector->isDbiBased());
}

TEST(JsonReportTest, EscapesAndStructures)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

    BugCollector bugs;
    BugReport report;
    report.type = BugType::NoDurability;
    report.range = AddrRange(16, 24);
    report.seq = 7;
    report.cause = DurabilityCause::MissingFlush;
    report.detail = "say \"hi\"";
    bugs.report(report);

    const std::string json = reportToJson(bugs);
    EXPECT_NE(json.find("\"total_sites\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"no-durability\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"start\": 16"), std::string::npos);
    EXPECT_NE(json.find("missing-flush"), std::string::npos);
    EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

TEST(JsonReportTest, IncludesStats)
{
    BugCollector bugs;
    DebuggerStats stats;
    stats.stores = 10;
    stats.fences = 2;
    const std::string json = reportToJson(bugs, stats);
    EXPECT_NE(json.find("\"stores\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"fences\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"bugs\": []"), std::string::npos);
}

} // namespace
} // namespace pmdb
