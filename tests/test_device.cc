/**
 * @file
 * Unit tests for the simulated PM device: store/flush/fence
 * persistence semantics and crash-image materialization.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "pmem/device.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

/** Fixture wiring a device to a runtime, as PmemPool does. */
class DeviceTest : public ::testing::Test
{
  protected:
    DeviceTest() : device(1 << 16) { runtime.attach(&device); }

    void
    write64(Addr addr, std::uint64_t value)
    {
        device.write(addr, &value, sizeof(value));
        runtime.store(addr, sizeof(value));
    }

    std::uint64_t
    readPersisted64(Addr addr)
    {
        std::uint64_t value = 0;
        device.readPersisted(addr, &value, sizeof(value));
        return value;
    }

    std::uint64_t
    readPersistedFrom(const std::vector<std::uint8_t> &image, Addr addr)
    {
        std::uint64_t value = 0;
        std::memcpy(&value, image.data() + addr, sizeof(value));
        return value;
    }

    PmRuntime runtime;
    PmemDevice device;
};

TEST_F(DeviceTest, StoreIsVisibleVolatileButNotPersisted)
{
    write64(0x100, 0xabcd);
    std::uint64_t v = 0;
    device.read(0x100, &v, 8);
    EXPECT_EQ(v, 0xabcdu);
    EXPECT_EQ(readPersisted64(0x100), 0u);
    EXPECT_TRUE(device.hasDirty(AddrRange(0x100, 0x108)));
    EXPECT_FALSE(device.isDurable(AddrRange(0x100, 0x108)));
}

TEST_F(DeviceTest, FlushAloneDoesNotPersist)
{
    write64(0x100, 0xabcd);
    runtime.flush(0x100, 64);
    EXPECT_EQ(readPersisted64(0x100), 0u);
    EXPECT_TRUE(device.hasPendingFlush(AddrRange(0x100, 0x108)));
    EXPECT_FALSE(device.isDurable(AddrRange(0x100, 0x108)));
}

TEST_F(DeviceTest, FlushPlusFencePersists)
{
    write64(0x100, 0xabcd);
    runtime.flush(0x100, 64);
    runtime.fence();
    EXPECT_EQ(readPersisted64(0x100), 0xabcdu);
    EXPECT_TRUE(device.isDurable(AddrRange(0x100, 0x108)));
    EXPECT_EQ(device.pendingLineCount(), 0u);
}

TEST_F(DeviceTest, FenceWithoutFlushPersistsNothing)
{
    write64(0x100, 0xabcd);
    runtime.fence();
    EXPECT_EQ(readPersisted64(0x100), 0u);
    EXPECT_TRUE(device.hasDirty(AddrRange(0x100, 0x108)));
}

TEST_F(DeviceTest, RedirtyAfterFlushKeepsSnapshotSemantics)
{
    write64(0x100, 1);
    runtime.flush(0x100, 64);
    // Overwrite after the CLF: the queued writeback carries the bytes
    // at flush time; the new store re-dirties the line.
    write64(0x100, 2);
    runtime.fence();
    EXPECT_EQ(readPersisted64(0x100), 1u);
    EXPECT_TRUE(device.hasDirty(AddrRange(0x100, 0x108)));
}

TEST_F(DeviceTest, MultiLineWriteTracksEveryLine)
{
    std::uint8_t buf[192] = {0x5a};
    device.write(0x40, buf, sizeof(buf));
    runtime.store(0x40, sizeof(buf));
    EXPECT_TRUE(device.hasDirty(AddrRange(0x40, 0x48)));
    EXPECT_TRUE(device.hasDirty(AddrRange(0xc0, 0xc8)));
    runtime.flush(0x40, 64); // only the first line
    runtime.fence();
    EXPECT_FALSE(device.isDurable(AddrRange(0x40, 0x40 + 192)));
    EXPECT_TRUE(device.isDurable(AddrRange(0x40, 0x80)));
}

TEST_F(DeviceTest, CrashImageDropPendingExcludesUnfencedData)
{
    write64(0x100, 0x11);
    runtime.flush(0x100, 64);
    runtime.fence(); // durable

    write64(0x200, 0x22);
    runtime.flush(0x200, 64); // pending, never fenced

    write64(0x300, 0x33); // dirty, never flushed

    CrashSimulator sim(device);
    const auto image = sim.crashImage(CrashPolicy::DropPending);
    EXPECT_EQ(readPersistedFrom(image, 0x100), 0x11u);
    EXPECT_EQ(readPersistedFrom(image, 0x200), 0u);
    EXPECT_EQ(readPersistedFrom(image, 0x300), 0u);
}

TEST_F(DeviceTest, CrashImageCommitPendingIncludesFlushedData)
{
    write64(0x200, 0x22);
    runtime.flush(0x200, 64);
    write64(0x300, 0x33); // never flushed

    CrashSimulator sim(device);
    const auto image = sim.crashImage(CrashPolicy::CommitPending);
    EXPECT_EQ(readPersistedFrom(image, 0x200), 0x22u);
    EXPECT_EQ(readPersistedFrom(image, 0x300), 0u);
}

TEST_F(DeviceTest, RandomPendingIsDeterministicPerSeed)
{
    for (int i = 0; i < 16; ++i) {
        write64(0x1000 + i * 64, i + 1);
        runtime.flush(0x1000 + i * 64, 64);
    }
    CrashSimulator sim(device);
    const auto a = sim.crashImage(CrashPolicy::RandomPending, 7);
    const auto b = sim.crashImage(CrashPolicy::RandomPending, 7);
    EXPECT_EQ(a, b);
}

TEST_F(DeviceTest, JoinStrandDrainsPending)
{
    write64(0x100, 0x42);
    runtime.flush(0x100, 64);
    runtime.joinStrand();
    EXPECT_EQ(readPersisted64(0x100), 0x42u);
}

TEST_F(DeviceTest, ResetClearsEverything)
{
    write64(0x100, 0x42);
    runtime.flush(0x100, 64);
    runtime.fence();
    device.reset();
    std::uint64_t v = 1;
    device.read(0x100, &v, 8);
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(readPersisted64(0x100), 0u);
    EXPECT_EQ(device.dirtyLineCount(), 0u);
    EXPECT_EQ(device.pendingLineCount(), 0u);
}

TEST(DeviceDeathTest, OutOfBoundsWritePanics)
{
    PmemDevice device(4096);
    std::uint64_t v = 1;
    EXPECT_DEATH(device.write(4095, &v, 8), "out-of-bounds");
}

} // namespace
} // namespace pmdb
