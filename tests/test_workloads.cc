/**
 * @file
 * Workload correctness tests: each Table 4 workload produces correct
 * data-structure semantics, a clean run raises no bugs under
 * PMDebugger, and the registry exposes every workload.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "detectors/pmdebugger_detector.hh"
#include "workloads/btree.hh"
#include "workloads/ctree.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/hashmap_tx.hh"
#include "workloads/memcached.hh"
#include "workloads/rbtree.hh"
#include "workloads/redis.hh"
#include "workloads/rtree.hh"
#include "workloads/workload.hh"
#include "workloads/ycsb.hh"

namespace pmdb
{
namespace
{

TEST(WorkloadRegistryTest, BuildsEveryAdvertisedWorkload)
{
    for (const std::string &name : workloadNames()) {
        auto workload = makeWorkload(name);
        ASSERT_NE(workload, nullptr) << name;
        EXPECT_EQ(workload->name(), name);
    }
    EXPECT_EQ(makeWorkload("bogus"), nullptr);
    EXPECT_EQ(microBenchmarkNames().size(), 7u);
}

TEST(WorkloadRegistryTest, ModelsMatchTable4)
{
    EXPECT_EQ(makeWorkload("b_tree")->model(), PersistencyModel::Epoch);
    EXPECT_EQ(makeWorkload("hashmap_tx")->model(),
              PersistencyModel::Epoch);
    EXPECT_EQ(makeWorkload("synth_strand")->model(),
              PersistencyModel::Strand);
    EXPECT_EQ(makeWorkload("memcached")->model(),
              PersistencyModel::Strict);
    EXPECT_EQ(makeWorkload("redis")->model(), PersistencyModel::Epoch);
}

/** Structure-level tests against the persistent index implementations. */
class IndexTest : public ::testing::Test
{
  protected:
    IndexTest() : pool(runtime, 32 << 20, "index.pool") {}

    PmRuntime runtime;
    PmemPool pool;
    FaultSet noFaults;
};

TEST_F(IndexTest, BTreeInsertLookup)
{
    PersistentBTree tree(pool, noFaults);
    Rng rng(1);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 2000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i)
        tree.insert(keys[i], i);
    EXPECT_EQ(tree.count(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto v = tree.lookup(keys[i]);
        ASSERT_TRUE(v.has_value()) << i;
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(tree.lookup(0xdead0000beefULL).has_value());
}

TEST_F(IndexTest, BTreeUpdatesInPlace)
{
    PersistentBTree tree(pool, noFaults);
    tree.insert(42, 1);
    tree.insert(42, 2);
    EXPECT_EQ(tree.lookup(42).value(), 2u);
}

TEST_F(IndexTest, CTreeInsertLookup)
{
    PersistentCTree tree(pool, noFaults);
    Rng rng(2);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 2000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i)
        tree.insert(keys[i], i);
    EXPECT_EQ(tree.count(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(tree.lookup(keys[i]).value(), i);
}

TEST_F(IndexTest, CTreeSequentialKeys)
{
    PersistentCTree tree(pool, noFaults);
    for (std::uint64_t k = 0; k < 512; ++k)
        tree.insert(k, k * 10);
    for (std::uint64_t k = 0; k < 512; ++k)
        EXPECT_EQ(tree.lookup(k).value(), k * 10);
    EXPECT_FALSE(tree.lookup(512).has_value());
}

TEST_F(IndexTest, RTreeInsertLookup)
{
    PersistentRTree tree(pool, noFaults);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 2000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i)
        tree.insert(keys[i], i);
    EXPECT_EQ(tree.count(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(tree.lookup(keys[i]).value(), i);
}

TEST_F(IndexTest, RbTreeInsertLookupAndInvariants)
{
    PersistentRbTree tree(pool, noFaults);
    Rng rng(4);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 2000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        tree.insert(keys[i], i);
        if (i % 257 == 0)
            tree.validate();
    }
    tree.validate();
    EXPECT_EQ(tree.count(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(tree.lookup(keys[i]).value(), i);
}

TEST_F(IndexTest, HashmapTxInsertLookup)
{
    PersistentHashmapTx map(pool, noFaults);
    for (std::uint64_t k = 0; k < 3000; ++k)
        map.insert(k, k + 7);
    map.flushStats();
    EXPECT_EQ(map.count(), 3000u);
    for (std::uint64_t k = 0; k < 3000; ++k)
        EXPECT_EQ(map.lookup(k).value(), k + 7);
    EXPECT_FALSE(map.lookup(3000).has_value());
}

TEST_F(IndexTest, HashmapAtomicInsertLookupUpdate)
{
    PersistentHashmapAtomic map(pool, noFaults);
    for (std::uint64_t k = 0; k < 3000; ++k)
        map.insert(k, k);
    EXPECT_EQ(map.count(), 3000u);
    map.insert(5, 999); // update path
    EXPECT_EQ(map.count(), 3000u);
    EXPECT_EQ(map.lookup(5).value(), 999u);
}

TEST_F(IndexTest, MemcachedDelete)
{
    MiniMemcached cache(pool, noFaults);
    cache.set(1, 100);
    cache.set(2, 200);
    EXPECT_TRUE(cache.del(1));
    EXPECT_FALSE(cache.del(1));
    EXPECT_FALSE(cache.get(1));
    EXPECT_TRUE(cache.get(2));
    EXPECT_EQ(cache.currItems(), 1u);
}

TEST_F(IndexTest, MemcachedSetGetEvict)
{
    MiniMemcached cache(pool, noFaults, nullptr, /*capacity=*/256);
    for (std::uint64_t k = 0; k < 1000; ++k)
        cache.set(k, k);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.currItems(), 256u + MiniMemcached::shardCount);
    // Recent keys hit; long-evicted keys miss.
    EXPECT_TRUE(cache.get(999));
    EXPECT_GT(cache.casId(), 0u);
}

TEST_F(IndexTest, RedisSetGetEvict)
{
    MiniRedis redis(pool, noFaults, nullptr, /*max_keys=*/128);
    for (std::uint64_t k = 0; k < 512; ++k)
        redis.set(k, k * 3);
    EXPECT_GT(redis.evictions(), 0u);
    EXPECT_LE(redis.count(), 128u);
    EXPECT_EQ(redis.get(511).value(), 511u * 3);
}

/** Every Table 4 workload, run clean, raises zero bugs in PMDebugger. */
class CleanWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CleanWorkloadTest, NoFalsePositives)
{
    auto workload = makeWorkload(GetParam());
    ASSERT_NE(workload, nullptr);

    DebuggerConfig config;
    config.model = workload->model();
    if (!workload->orderSpecText().empty())
        config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
    PmRuntime runtime;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);

    WorkloadOptions options;
    options.operations = 500;
    options.seed = 11;
    workload->run(runtime, options);
    detector.finalize();
    EXPECT_EQ(detector.bugs().total(), 0u)
        << detector.bugs().summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CleanWorkloadTest,
    ::testing::Values("b_tree", "c_tree", "r_tree", "rb_tree",
                      "hashmap_tx", "hashmap_atomic", "synth_strand",
                      "synth_patterns", "memcached", "redis", "ycsb_a",
                      "ycsb_f"));

TEST(YcsbGeneratorTest, MixesMatchLoadDefinitions)
{
    // Load C is read-only; load A is ~50/50.
    YcsbGenerator c('c', 1000, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(c.next().kind, YcsbOp::Read);

    YcsbGenerator a('a', 1000, 1);
    int updates = 0;
    for (int i = 0; i < 10000; ++i)
        updates += a.next().kind == YcsbOp::Update ? 1 : 0;
    EXPECT_NEAR(updates / 10000.0, 0.5, 0.05);

    YcsbGenerator e('e', 1000, 1);
    int scans = 0;
    for (int i = 0; i < 10000; ++i) {
        const YcsbOp op = e.next();
        if (op.kind == YcsbOp::Scan) {
            ++scans;
            EXPECT_GE(op.scanLength, 1);
            EXPECT_LE(op.scanLength, 100);
        }
    }
    EXPECT_NEAR(scans / 10000.0, 0.95, 0.03);
}

TEST(WorkloadDeterminismTest, SameSeedSameEventStream)
{
    auto run_once = [](std::uint64_t seed) {
        PmRuntime runtime;
        auto workload = makeWorkload("b_tree");
        WorkloadOptions options;
        options.operations = 200;
        options.seed = seed;
        workload->run(runtime, options);
        return runtime.eventCount();
    };
    EXPECT_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5), run_once(6));
}

} // namespace
} // namespace pmdb
