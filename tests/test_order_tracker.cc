/**
 * @file
 * Focused unit tests for OrderTracker (the shared durability tracker
 * behind the two ordering rules) and BugCollector edge cases.
 */

#include <gtest/gtest.h>

#include "core/bug.hh"
#include "core/rules.hh"

namespace pmdb
{
namespace
{

Event
storeEvent(Addr addr, std::uint32_t size, SeqNum seq = 1)
{
    Event event;
    event.kind = EventKind::Store;
    event.addr = addr;
    event.size = size;
    event.seq = seq;
    return event;
}

Event
flushEvent(Addr addr, std::uint32_t size, SeqNum seq = 2)
{
    Event event;
    event.kind = EventKind::Flush;
    event.addr = addr;
    event.size = size;
    event.seq = seq;
    return event;
}

class OrderTrackerTest : public ::testing::Test
{
  protected:
    OrderTrackerTest()
    {
        OrderSpec spec;
        spec.add("A", "B");
        tracker.configure(spec);
        tracker.onRegister("A", AddrRange(0x100, 0x110));
        tracker.onRegister("B", AddrRange(0x200, 0x208));
    }

    OrderTracker tracker;
};

TEST_F(OrderTrackerTest, ConfigurationInternsPairs)
{
    ASSERT_EQ(tracker.pairs().size(), 1u);
    EXPECT_EQ(tracker.var(tracker.pairs()[0].first).name, "A");
    EXPECT_EQ(tracker.var(tracker.pairs()[0].second).name, "B");
    EXPECT_TRUE(tracker.var(0).resolved);
}

TEST_F(OrderTrackerTest, DurabilityNeedsStoreFlushAndFence)
{
    EXPECT_TRUE(tracker.onFence().empty()); // nothing stored yet

    tracker.onStore(storeEvent(0x100, 16));
    EXPECT_TRUE(tracker.onFence().empty()); // stored, never flushed

    tracker.onFlush(flushEvent(0x100, 16));
    const auto durable = tracker.onFence();
    ASSERT_EQ(durable.size(), 1u);
    EXPECT_EQ(tracker.var(durable[0]).name, "A");
    EXPECT_TRUE(tracker.var(durable[0]).durable);
    // No repeat notification on later fences.
    EXPECT_TRUE(tracker.onFence().empty());
}

TEST_F(OrderTrackerTest, PartialFlushCoverageIsInsufficient)
{
    tracker.onStore(storeEvent(0x100, 16));
    tracker.onFlush(flushEvent(0x100, 8)); // only half of A
    EXPECT_TRUE(tracker.onFence().empty());
    tracker.onFlush(flushEvent(0x108, 8)); // the rest
    EXPECT_EQ(tracker.onFence().size(), 1u);
}

TEST_F(OrderTrackerTest, CoverageMergesAdjacentParts)
{
    tracker.onStore(storeEvent(0x100, 16));
    // Three overlapping parts that only together cover the var.
    tracker.onFlush(flushEvent(0x100, 6));
    tracker.onFlush(flushEvent(0x104, 6));
    tracker.onFlush(flushEvent(0x108, 8));
    EXPECT_EQ(tracker.onFence().size(), 1u);
}

TEST_F(OrderTrackerTest, RestoreResetsDurability)
{
    tracker.onStore(storeEvent(0x100, 16));
    tracker.onFlush(flushEvent(0x100, 16));
    ASSERT_EQ(tracker.onFence().size(), 1u);

    // A new store re-dirties the var; it must become durable again
    // at a later fence index.
    tracker.onStore(storeEvent(0x100, 4, 9));
    EXPECT_FALSE(tracker.var(0).durable);
    tracker.onFlush(flushEvent(0x100, 16, 10));
    const auto durable = tracker.onFence();
    ASSERT_EQ(durable.size(), 1u);
    EXPECT_EQ(tracker.var(durable[0]).durableAtFence,
              tracker.fenceIndex());
}

TEST_F(OrderTrackerTest, ReRegistrationRebindsAndResets)
{
    tracker.onStore(storeEvent(0x100, 16));
    tracker.onFlush(flushEvent(0x100, 16));
    ASSERT_EQ(tracker.onFence().size(), 1u);

    tracker.onRegister("A", AddrRange(0x300, 0x308));
    EXPECT_FALSE(tracker.var(0).durable);
    EXPECT_FALSE(tracker.var(0).stored);
    tracker.onStore(storeEvent(0x300, 8));
    tracker.onFlush(flushEvent(0x300, 8));
    EXPECT_EQ(tracker.onFence().size(), 1u);
}

TEST_F(OrderTrackerTest, UnrelatedAddressesIgnored)
{
    tracker.onStore(storeEvent(0x900, 8));
    tracker.onFlush(flushEvent(0x900, 8));
    EXPECT_TRUE(tracker.onFence().empty());
    EXPECT_FALSE(tracker.var(0).stored);
}

TEST(BugCollectorTest, DedupKeyIsTypePlusRange)
{
    BugCollector bugs;
    BugReport a;
    a.type = BugType::RedundantFlush;
    a.range = AddrRange(0, 64);
    EXPECT_TRUE(bugs.report(a));
    EXPECT_FALSE(bugs.report(a)); // same site
    a.range = AddrRange(64, 128);
    EXPECT_TRUE(bugs.report(a)); // different range
    a.type = BugType::FlushNothing;
    EXPECT_TRUE(bugs.report(a)); // different type, same range
    EXPECT_EQ(bugs.total(), 3u);
    EXPECT_EQ(bugs.occurrences(), 4u);
}

TEST(BugCollectorTest, ClearResetsEverything)
{
    BugCollector bugs;
    BugReport report;
    report.type = BugType::NoDurability;
    report.range = AddrRange(0, 8);
    bugs.report(report);
    bugs.clear();
    EXPECT_EQ(bugs.total(), 0u);
    EXPECT_EQ(bugs.occurrences(), 0u);
    EXPECT_TRUE(bugs.report(report)); // site map was cleared too
}

TEST(BugCollectorTest, SummaryListsTypesAndSites)
{
    BugCollector bugs;
    BugReport report;
    report.type = BugType::MultipleOverwrite;
    report.range = AddrRange(16, 24);
    report.detail = "twice";
    bugs.report(report);
    const std::string summary = bugs.summary();
    EXPECT_NE(summary.find("multiple-overwrite"), std::string::npos);
    EXPECT_NE(summary.find("twice"), std::string::npos);
    EXPECT_NE(summary.find("1 unique site"), std::string::npos);
}

TEST(BugReportTest, ToStringIncludesCause)
{
    BugReport report;
    report.type = BugType::NoDurability;
    report.range = AddrRange(0x40, 0x48);
    report.cause = DurabilityCause::MissingFence;
    const std::string text = report.toString();
    EXPECT_NE(text.find("no-durability"), std::string::npos);
    EXPECT_NE(text.find("missing fence"), std::string::npos);
    EXPECT_NE(text.find("0x40"), std::string::npos);
}

} // namespace
} // namespace pmdb
