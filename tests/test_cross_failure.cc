/**
 * @file
 * Tests for cross-failure semantic checking: crash-image verifiers,
 * the manual recovery path PMDebugger uses, and end-to-end recovery
 * consistency of the transactional workloads via TxRecovery.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/cross_failure.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/btree.hh"

namespace pmdb
{
namespace
{

TEST(CrossFailureTest, ConsistentStateReportsNothing)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    PmemPool pool(runtime, 1 << 20, "xf.pool");

    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 5);
    pool.persist(a, 8);

    const bool found = CrossFailureChecker::check(
        debugger, pool.device(),
        [a](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t v = 0;
            std::memcpy(&v, image.data() + a, 8);
            return v == 5 ? "" : "value lost";
        },
        {.seq = runtime.eventCount()});
    EXPECT_FALSE(found);
    EXPECT_EQ(debugger.bugs().total(), 0u);
}

TEST(CrossFailureTest, InconsistencyIsReportedThroughDebugger)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    PmemPool pool(runtime, 1 << 20, "xf.pool");

    const Addr value = pool.alloc(64);
    const Addr flag = pool.alloc(64);
    pool.store<std::uint64_t>(value, 77); // never persisted
    pool.store<std::uint64_t>(flag, 1);
    pool.persist(flag, 8);

    const bool found = CrossFailureChecker::check(
        debugger, pool.device(),
        [value, flag](const std::vector<std::uint8_t> &image)
            -> std::string {
            std::uint64_t f = 0, v = 0;
            std::memcpy(&f, image.data() + flag, 8);
            std::memcpy(&v, image.data() + value, 8);
            if (f == 1 && v != 77)
                return "flag committed but value unpersisted";
            return "";
        },
        {.seq = runtime.eventCount()});
    EXPECT_TRUE(found);
    EXPECT_EQ(debugger.bugs().countOf(BugType::CrossFailureSemantic), 1u);
    EXPECT_EQ(debugger.bugs().bugs().front().seq, runtime.eventCount());
}

TEST(CrossFailureTest, ExplicitLandedSubsetSelectsPendingLines)
{
    // Two lines flushed under the same fence window: an explicit
    // landed-line subset must persist exactly the chosen one.
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    PmemPool pool(runtime, 1 << 20, "xf.pool");

    const Addr a = pool.alloc(64);
    const Addr b = pool.alloc(64);
    pool.store<std::uint64_t>(a, 11);
    pool.store<std::uint64_t>(b, 22);
    pool.flush(a, 8); // both pending, unfenced
    pool.flush(b, 8);

    const bool found = CrossFailureChecker::check(
        debugger, pool.device(),
        [a, b](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t va = 0, vb = 0;
            std::memcpy(&va, image.data() + a, 8);
            std::memcpy(&vb, image.data() + b, 8);
            if (vb == 22 && va != 11)
                return "b landed without a";
            return "";
        },
        {.seq = runtime.eventCount(),
         .landedLines = std::vector<std::uint64_t>{cacheLineIndex(b)}});
    EXPECT_TRUE(found);
    EXPECT_EQ(debugger.bugs().countOf(BugType::CrossFailureSemantic), 1u);
    EXPECT_EQ(debugger.bugs().bugs().front().seq, runtime.eventCount());
}

TEST(CrossFailureTest, BTreeRecoversConsistentlyFromMidTxCrash)
{
    // End-to-end: crash in the middle of a b_tree insert, run log
    // recovery over the crash image, and verify the recovered tree is
    // a consistent prefix (all previously committed keys present).
    PmRuntime runtime;
    FaultSet no_faults;
    PmemPool pool(runtime, 16 << 20, "btree.pool");
    PersistentBTree tree(pool, no_faults);

    for (std::uint64_t k = 1; k <= 200; ++k)
        tree.insert(k * 1000, k);

    // Open a transaction by hand and crash before commit.
    Transaction tx(pool);
    tx.begin();
    const Addr meta = pool.root(sizeof(PersistentBTree::Meta));
    tx.addRange(meta, sizeof(PersistentBTree::Meta));
    auto meta_val = pool.load<PersistentBTree::Meta>(meta);
    meta_val.count = 9999; // torn update
    pool.store(meta, meta_val);

    CrashSimulator sim(pool.device());
    auto image = sim.crashImage(CrashPolicy::CommitPending);
    TxRecovery::rollback(pool, image);

    // After rollback, the metadata must show the pre-crash count.
    PersistentBTree::Meta recovered{};
    std::memcpy(&recovered, image.data() + meta, sizeof(recovered));
    EXPECT_EQ(recovered.count, 200u);
    tx.abort();
}

TEST(CrashPolicyTest, PoliciesOrderedByOptimism)
{
    PmRuntime runtime;
    PmemPool pool(runtime, 1 << 20, "xf.pool");
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 9);
    pool.flush(a, 8); // pending, unfenced

    CrashSimulator sim(pool.device());
    std::uint64_t dropped = 0, committed = 0;
    {
        auto image = sim.crashImage(CrashPolicy::DropPending);
        std::memcpy(&dropped, image.data() + a, 8);
    }
    {
        auto image = sim.crashImage(CrashPolicy::CommitPending);
        std::memcpy(&committed, image.data() + a, 8);
    }
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(committed, 9u);
}

} // namespace
} // namespace pmdb
