/**
 * @file
 * Telemetry substrate tests: histogram bucket math and merge
 * determinism (any merge order yields identical buckets and
 * quantiles), snapshot JSON round-tripping, Prometheus rendering, and
 * the registry's stable-reference contract.
 */

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace pmdb::telemetry
{
namespace
{

TEST(TelemetryHistogram, BucketBoundaries)
{
    // Bucket 0 is exactly zero; bucket b >= 1 covers [2^(b-1), 2^b).
    EXPECT_EQ(histogramBucketOf(0), 0u);
    EXPECT_EQ(histogramBucketOf(1), 1u);
    EXPECT_EQ(histogramBucketOf(2), 2u);
    EXPECT_EQ(histogramBucketOf(3), 2u);
    EXPECT_EQ(histogramBucketOf(4), 3u);
    EXPECT_EQ(histogramBucketOf(255), 8u);
    EXPECT_EQ(histogramBucketOf(256), 9u);
    // Saturating top bucket.
    EXPECT_EQ(histogramBucketOf(~std::uint64_t{0}),
              histogramBuckets - 1);
    for (std::size_t b = 1; b + 1 < histogramBuckets; ++b) {
        const std::uint64_t bound = histogramBucketBound(b);
        EXPECT_EQ(histogramBucketOf(bound - 1), b) << b;
        EXPECT_EQ(histogramBucketOf(bound), b + 1) << b;
    }
}

TEST(TelemetryHistogram, MergeOrderIsIrrelevant)
{
    // Three disjoint shards of one sample population, merged in every
    // permutation: buckets, count, sum and quantiles must be
    // bit-identical — the property that makes per-shard histograms
    // aggregatable without coordination.
    std::mt19937_64 rng(7);
    std::vector<HistogramSnapshot> parts(3);
    for (HistogramSnapshot &part : parts) {
        Histogram hist;
        for (int i = 0; i < 5000; ++i)
            hist.record(rng() % 1000000);
        part = hist.snapshot();
    }

    std::vector<std::size_t> order = {0, 1, 2};
    HistogramSnapshot reference;
    bool first = true;
    do {
        HistogramSnapshot merged;
        for (const std::size_t idx : order)
            merged.merge(parts[idx]);
        if (first) {
            reference = merged;
            first = false;
            EXPECT_EQ(reference.count, 15000u);
        } else {
            EXPECT_EQ(merged, reference);
            EXPECT_EQ(merged.quantile(0.50), reference.quantile(0.50));
            EXPECT_EQ(merged.quantile(0.95), reference.quantile(0.95));
            EXPECT_EQ(merged.quantile(0.99), reference.quantile(0.99));
        }
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(TelemetryHistogram, QuantilesAreBucketUpperBounds)
{
    Histogram hist;
    // 99 fast samples in bucket [1,2), one slow sample in [512,1024).
    for (int i = 0; i < 99; ++i)
        hist.record(1);
    hist.record(600);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.quantile(0.50), 2u);
    EXPECT_EQ(snap.quantile(0.99), 2u);
    EXPECT_EQ(snap.quantile(1.0), 1024u);
    EXPECT_DOUBLE_EQ(snap.mean(), (99.0 * 1 + 600.0) / 100.0);
}

TEST(TelemetryHistogram, ConcurrentRecordsAllLand)
{
    Histogram hist;
    constexpr int threads = 4;
    constexpr int perThread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&hist] {
            for (int i = 0; i < perThread; ++i)
                hist.record(static_cast<std::uint64_t>(i));
        });
    }
    for (std::thread &thread : pool)
        thread.join();
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(threads) * perThread);
    std::uint64_t bucketTotal = 0;
    for (const std::uint64_t b : snap.buckets)
        bucketTotal += b;
    EXPECT_EQ(bucketTotal, snap.count);
}

TEST(TelemetryCounter, StripedAddsSum)
{
    Counter counter;
    constexpr int threads = 8;
    constexpr int perThread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&counter] {
            for (int i = 0; i < perThread; ++i)
                counter.add(1);
        });
    }
    for (std::thread &thread : pool)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(threads) * perThread);
}

MetricsSnapshot
buildSnapshot()
{
    Histogram hist;
    for (int i = 0; i < 1000; ++i)
        hist.record(static_cast<std::uint64_t>(i * i));
    MetricsSnapshot snap;
    snap.addCounter("pmdbd.events_drained", 123456);
    snap.addCounter("pmdbd.shard.events{shard=\"0\"}", 777);
    snap.addGauge("pmdbd.shard.queue_depth{shard=\"0\"}", -3);
    snap.addHistogram("detector.eval_ns{class=\"store\"}",
                      hist.snapshot());
    snap.sortByName();
    return snap;
}

TEST(TelemetrySnapshot, JsonRoundTripIsIdentity)
{
    const MetricsSnapshot snap = buildSnapshot();
    const std::string json = snap.toJson();

    MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(MetricsSnapshot::fromJson(json, &parsed, &error))
        << error;
    EXPECT_EQ(parsed, snap);
    // Serialize -> parse -> serialize is a fixed point.
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(TelemetrySnapshot, JsonRejectsGarbage)
{
    MetricsSnapshot parsed;
    std::string error;
    EXPECT_FALSE(MetricsSnapshot::fromJson("", &parsed, &error));
    EXPECT_FALSE(MetricsSnapshot::fromJson("{", &parsed, &error));
    EXPECT_FALSE(
        MetricsSnapshot::fromJson("{\"schema\": 1}", &parsed, &error));
}

TEST(TelemetrySnapshot, PrometheusShape)
{
    const MetricsSnapshot snap = buildSnapshot();
    const std::string prom = snap.toPrometheus();

    EXPECT_NE(prom.find("# TYPE pmdb_pmdbd_events_drained counter"),
              std::string::npos);
    EXPECT_NE(prom.find("pmdb_pmdbd_events_drained 123456"),
              std::string::npos);
    // Labels survive as Prometheus label sets.
    EXPECT_NE(prom.find("pmdb_pmdbd_shard_events{shard=\"0\"} 777"),
              std::string::npos);
    // Histograms render cumulative buckets ending at +Inf, plus _sum
    // and _count.
    EXPECT_NE(prom.find("pmdb_detector_eval_ns_bucket{class=\"store\","
                        "le=\"+Inf\"} 1000"),
              std::string::npos);
    EXPECT_NE(prom.find("pmdb_detector_eval_ns_count{class=\"store\"} "
                        "1000"),
              std::string::npos);
    // Every line is either a comment or name<space>value.
    std::size_t start = 0;
    while (start < prom.size()) {
        std::size_t end = prom.find('\n', start);
        if (end == std::string::npos)
            end = prom.size();
        const std::string line = prom.substr(start, end - start);
        if (!line.empty() && line[0] != '#')
            EXPECT_NE(line.find(' '), std::string::npos) << line;
        start = end + 1;
    }
}

TEST(TelemetrySnapshot, MergeAddsAndFoldsHistograms)
{
    Histogram hist;
    hist.record(5);
    MetricsSnapshot a;
    a.addCounter("x", 1);
    a.addHistogram("h", hist.snapshot());
    a.sortByName();
    MetricsSnapshot b;
    b.addCounter("x", 2);
    b.addHistogram("h", hist.snapshot());
    b.sortByName();

    a.merge(b);
    const MetricSample *x = a.find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->value, 3);
    const MetricSample *h = a.find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->hist.count, 2u);
}

TEST(TelemetryRegistry, ReferencesAreStable)
{
    Registry &reg = Registry::global();
    reg.resetForTest();
    Counter &c1 = reg.counter("test.stable");
    c1.add(7);
    Counter &c2 = reg.counter("test.stable");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 7u);

    const MetricsSnapshot snap = reg.snapshot();
    const MetricSample *sample = snap.find("test.stable");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->value, 7);
    reg.resetForTest();
}

TEST(TelemetryEnabled, RuntimeToggle)
{
    const bool was = enabled();
    setEnabled(false);
    EXPECT_FALSE(enabled());
    setEnabled(true);
    EXPECT_TRUE(enabled());
    setEnabled(was);
}

TEST(TelemetrySpans, BufferDrainsAndExports)
{
    SpanBuffer &buffer = SpanBuffer::global();
    buffer.drain(); // discard anything earlier tests recorded
    const bool was = spansEnabled();
    setSpansEnabled(true);

    {
        SpanTimer timer("unit.test", "tests", 42, "detail=1");
    }
    Span manual;
    manual.name = "manual";
    manual.category = "tests";
    manual.startNs = 1000;
    manual.durNs = 2500;
    manual.track = 7;
    buffer.record(manual);

    const std::string trace = buffer.toChromeTrace();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"manual\""), std::string::npos);
    EXPECT_NE(trace.find("\"unit.test\""), std::string::npos);

    const std::deque<Span> spans = buffer.drain();
    setSpansEnabled(was);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "unit.test");
    EXPECT_EQ(spans[0].track, 42u);
    EXPECT_GE(spans[1].durNs, 2500u);
    EXPECT_TRUE(buffer.drain().empty());
}

} // namespace
} // namespace pmdb::telemetry
