/**
 * @file
 * Unit and property tests for the interval-augmented AVL tree,
 * including randomized comparison against a naive reference model and
 * invariant checks after every mutation (parameterized over seeds).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "core/avl_tree.hh"

namespace pmdb
{
namespace
{

LocationRecord
rec(Addr start, Addr end, FlushState state = FlushState::NotFlushed,
    SeqNum seq = 0)
{
    static SeqNum next_seq = 1;
    if (seq == 0)
        seq = next_seq++;
    return LocationRecord(AddrRange(start, end), state, false, seq);
}

TEST(AvlTreeTest, InsertAndSize)
{
    AvlTree tree;
    EXPECT_TRUE(tree.empty());
    tree.insert(rec(0, 8));
    tree.insert(rec(64, 72));
    tree.insert(rec(128, 136));
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(AvlTreeTest, OverlapQueries)
{
    AvlTree tree;
    tree.insert(rec(10, 20));
    tree.insert(rec(30, 40));
    EXPECT_TRUE(tree.overlapsAny(AddrRange(15, 16)));
    EXPECT_TRUE(tree.overlapsAny(AddrRange(0, 100)));
    EXPECT_FALSE(tree.overlapsAny(AddrRange(20, 30)));
    EXPECT_FALSE(tree.overlapsAny(AddrRange(40, 50)));
}

TEST(AvlTreeTest, SortedTraversal)
{
    AvlTree tree;
    for (Addr a : {500u, 100u, 300u, 200u, 400u})
        tree.insert(rec(a, a + 8));
    std::vector<Addr> starts;
    tree.forEach([&](const LocationRecord &r) {
        starts.push_back(r.range.start);
    });
    EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
    EXPECT_EQ(starts.size(), 5u);
}

TEST(AvlTreeTest, ApplyFlushFullCoverage)
{
    AvlTree tree;
    tree.insert(rec(10, 20));
    const auto outcome = tree.applyFlush(AddrRange(0, 64));
    EXPECT_TRUE(outcome.hitAny);
    EXPECT_TRUE(outcome.hitUnflushed);
    EXPECT_FALSE(outcome.hitFlushed);

    const auto again = tree.applyFlush(AddrRange(0, 64));
    EXPECT_TRUE(again.hitAny);
    EXPECT_TRUE(again.hitFlushed);
    EXPECT_FALSE(again.hitUnflushed);
}

TEST(AvlTreeTest, ApplyFlushMiss)
{
    AvlTree tree;
    tree.insert(rec(10, 20));
    const auto outcome = tree.applyFlush(AddrRange(100, 164));
    EXPECT_FALSE(outcome.hitAny);
}

TEST(AvlTreeTest, ApplyFlushSplitsPartialOverlap)
{
    AvlTree tree;
    tree.insert(rec(0, 100));
    tree.applyFlush(AddrRange(40, 60)); // covers the middle only
    EXPECT_EQ(tree.size(), 3u);         // head + covered + tail
    EXPECT_TRUE(tree.checkInvariants());

    // Only [40,60) is flushed; a fence removes exactly that piece.
    tree.removeFlushed(nullptr);
    EXPECT_EQ(tree.size(), 2u);
    std::vector<AddrRange> left;
    tree.forEach([&](const LocationRecord &r) { left.push_back(r.range); });
    ASSERT_EQ(left.size(), 2u);
    EXPECT_EQ(left[0], AddrRange(0, 40));
    EXPECT_EQ(left[1], AddrRange(60, 100));
}

TEST(AvlTreeTest, RemoveFlushedInvokesCallback)
{
    AvlTree tree;
    tree.insert(rec(0, 8));
    tree.insert(rec(64, 72));
    tree.applyFlush(AddrRange(0, 8));
    int removed = 0;
    tree.removeFlushed([&](const LocationRecord &r) {
        ++removed;
        EXPECT_EQ(r.range, AddrRange(0, 8));
    });
    EXPECT_EQ(removed, 1);
    EXPECT_EQ(tree.size(), 1u);
}

TEST(AvlTreeTest, LazyMergeCoalescesAdjacentSameState)
{
    AvlTree tree(MergePolicy::Lazy, /*merge_threshold=*/4);
    for (Addr a = 0; a < 6 * 8; a += 8)
        tree.insert(rec(a, a + 8));
    EXPECT_EQ(tree.size(), 6u);
    tree.maybeMerge();
    EXPECT_EQ(tree.size(), 1u); // all adjacent, same state
    EXPECT_TRUE(tree.checkInvariants());
    std::vector<AddrRange> ranges;
    tree.forEach([&](const LocationRecord &r) { ranges.push_back(r.range); });
    EXPECT_EQ(ranges[0], AddrRange(0, 48));
}

TEST(AvlTreeTest, LazyMergeRespectsThreshold)
{
    AvlTree tree(MergePolicy::Lazy, /*merge_threshold=*/100);
    for (Addr a = 0; a < 6 * 8; a += 8)
        tree.insert(rec(a, a + 8));
    tree.maybeMerge();
    EXPECT_EQ(tree.size(), 6u); // below threshold: untouched
}

TEST(AvlTreeTest, LazyMergeKeepsDifferentStatesApart)
{
    AvlTree tree(MergePolicy::Lazy, /*merge_threshold=*/1);
    tree.insert(rec(0, 8, FlushState::NotFlushed));
    tree.insert(rec(8, 16, FlushState::Flushed));
    tree.insert(rec(16, 24, FlushState::NotFlushed));
    tree.maybeMerge();
    EXPECT_EQ(tree.size(), 3u);
}

TEST(AvlTreeTest, EagerMergeCoalescesOnInsert)
{
    AvlTree tree(MergePolicy::Eager);
    tree.insert(rec(0, 8));
    tree.insert(rec(8, 16));  // adjacent: merges immediately
    EXPECT_EQ(tree.size(), 1u);
    tree.insert(rec(100, 108)); // far away: no merge
    EXPECT_EQ(tree.size(), 2u);
    tree.insert(rec(16, 24));   // adjacent to the merged blob
    EXPECT_EQ(tree.size(), 2u);
    EXPECT_GT(tree.stats().merges, 0u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(AvlTreeTest, HeightStaysLogarithmic)
{
    AvlTree tree;
    for (Addr a = 0; a < 1024; ++a)
        tree.insert(rec(a * 128, a * 128 + 8));
    EXPECT_EQ(tree.size(), 1024u);
    EXPECT_LE(tree.height(), 15); // 1.44 * log2(1024) + 2
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(AvlTreeTest, ClearEmptiesTree)
{
    AvlTree tree;
    tree.insert(rec(0, 8));
    tree.clear();
    EXPECT_TRUE(tree.empty());
    EXPECT_FALSE(tree.overlapsAny(AddrRange(0, 8)));
}

/**
 * Property test: drive the tree and a naive vector-based reference
 * model with the same random operation stream and compare observable
 * behaviour after every step. Parameterized over seeds.
 */
class AvlTreePropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AvlTreePropertyTest, MatchesReferenceModel)
{
    Rng rng(GetParam());
    AvlTree tree;
    std::vector<LocationRecord> model;

    for (int step = 0; step < 2000; ++step) {
        const int action = static_cast<int>(rng.nextBounded(10));
        if (action < 6) {
            // Insert a small record at a random line-ish address.
            const Addr start = rng.nextBounded(1 << 12) * 8;
            const Addr end = start + 8 + rng.nextBounded(56);
            const LocationRecord r = rec(start, end);
            tree.insert(r);
            model.push_back(r);
        } else if (action < 8) {
            // Flush a random aligned line.
            const Addr line = rng.nextBounded(1 << 9) * 64;
            const AddrRange range(line, line + 64);
            tree.applyFlush(range);
            // Reference: full coverage marks; partial coverage splits.
            std::vector<LocationRecord> next;
            for (const LocationRecord &r : model) {
                if (!r.range.overlaps(range)) {
                    next.push_back(r);
                    continue;
                }
                if (range.contains(r.range)) {
                    LocationRecord f = r;
                    f.state = FlushState::Flushed;
                    next.push_back(f);
                    continue;
                }
                const AddrRange covered = r.range.intersect(range);
                LocationRecord f = r;
                f.range = covered;
                f.state = FlushState::Flushed;
                next.push_back(f);
                if (r.range.start < covered.start) {
                    LocationRecord head = r;
                    head.range = AddrRange(r.range.start, covered.start);
                    next.push_back(head);
                }
                if (covered.end < r.range.end) {
                    LocationRecord tail = r;
                    tail.range = AddrRange(covered.end, r.range.end);
                    next.push_back(tail);
                }
            }
            model = std::move(next);
        } else {
            // Fence: drop flushed records.
            tree.removeFlushed(nullptr);
            std::erase_if(model, [](const LocationRecord &r) {
                return r.state == FlushState::Flushed;
            });
        }

        ASSERT_TRUE(tree.checkInvariants()) << "step " << step;
        ASSERT_EQ(tree.size(), model.size()) << "step " << step;

        // Compare the full sorted record lists.
        std::vector<std::pair<AddrRange, FlushState>> got, want;
        tree.forEach([&](const LocationRecord &r) {
            got.emplace_back(r.range, r.state);
        });
        for (const LocationRecord &r : model)
            want.emplace_back(r.range, r.state);
        auto byRange = [](const auto &a, const auto &b) {
            return a.first.start != b.first.start
                       ? a.first.start < b.first.start
                       : a.first.end < b.first.end;
        };
        std::sort(got.begin(), got.end(), byRange);
        std::sort(want.begin(), want.end(), byRange);
        ASSERT_EQ(got, want) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlTreePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/** Property: the eager policy preserves byte coverage across merges. */
class EagerMergePropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EagerMergePropertyTest, CoverageIsPreserved)
{
    Rng rng(GetParam());
    AvlTree tree(MergePolicy::Eager);
    std::vector<bool> covered(1 << 12, false);

    for (int step = 0; step < 500; ++step) {
        const Addr start = rng.nextBounded(1 << 11);
        const std::size_t len = 1 + rng.nextBounded(64);
        const Addr end = std::min<Addr>(start + len, covered.size());
        tree.insert(rec(start, end));
        for (Addr a = start; a < end; ++a)
            covered[a] = true;
        ASSERT_TRUE(tree.checkInvariants());
    }

    std::vector<bool> tree_covered(covered.size(), false);
    tree.forEach([&](const LocationRecord &r) {
        for (Addr a = r.range.start; a < r.range.end; ++a)
            tree_covered[a] = true;
    });
    EXPECT_EQ(tree_covered, covered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerMergePropertyTest,
                         ::testing::Values(7, 11, 19, 42));

} // namespace
} // namespace pmdb
