/**
 * @file
 * Tests for the out-of-process detection service: the shared-memory
 * event ring, the wire protocol, and — the core guarantee — report
 * identity: every bug-suite case detected through a pmdbd daemon
 * (any shard count, any non-lossy backpressure policy) must produce
 * exactly the bug report an in-process PmDebugger produces.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/debugger.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/remote_sink.hh"
#include "service/spsc_ring.hh"
#include "workloads/bug_suite.hh"

namespace pmdb
{
namespace
{

std::atomic<int> pathCounter{0};

/** Unique per-test scratch path (cleaned up by the owner objects).
 *  Includes the pid: ctest runs each case as its own process, and
 *  concurrent processes must not collide on socket/ring paths —
 *  listenUnix unlinks and rebinds an existing path. */
std::string
scratchPath(const std::string &stem)
{
    return ::testing::TempDir() + "pmdb_svc_" +
           std::to_string(::getpid()) + "_" + stem + "_" +
           std::to_string(pathCounter.fetch_add(1));
}

/** Structural equality of two bug lists, with a useful diff. */
::testing::AssertionResult
sameBugs(const std::vector<BugReport> &local,
         const std::vector<BugReport> &remote)
{
    if (local.size() != remote.size()) {
        return ::testing::AssertionFailure()
               << "bug count differs: local " << local.size()
               << ", remote " << remote.size();
    }
    for (std::size_t i = 0; i < local.size(); ++i) {
        const BugReport &a = local[i];
        const BugReport &b = remote[i];
        if (a.type != b.type || a.range.start != b.range.start ||
            a.range.end != b.range.end || a.seq != b.seq ||
            a.cause != b.cause || a.detail != b.detail) {
            return ::testing::AssertionFailure()
                   << "bug " << i << " differs:\n  local:  "
                   << a.toString() << "\n  remote: " << b.toString();
        }
    }
    return ::testing::AssertionSuccess();
}

/** Run one suite case with an in-process PmDebugger (the baseline). */
std::vector<BugReport>
runLocal(const BugCase &bug_case)
{
    PmRuntime runtime;
    DebuggerConfig config;
    config.model = bug_case.model;
    if (!bug_case.orderSpec.empty())
        config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
    PmDebugger debugger(config);
    runtime.attach(&debugger);
    CaseEnv env{runtime};
    env.pmdebugger = &debugger;
    bug_case.scenario(env);
    runtime.programEnd();
    debugger.finalize();
    return debugger.bugs().bugs();
}

/** Run one suite case through a daemon via RemoteSink. */
std::vector<BugReport>
runRemote(const BugCase &bug_case, const std::string &socket_path,
          SlowConsumerPolicy policy = SlowConsumerPolicy::Block,
          std::uint32_t ring_slots = 1024,
          ReportBody *report_out = nullptr)
{
    PmRuntime runtime;
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = socket_path;
    options.ringPath = scratchPath("ring");
    options.ringSlots = ring_slots;
    options.policy = policy;
    if (policy == SlowConsumerPolicy::Spill)
        options.spillPath = scratchPath("spill");
    options.model = bug_case.model;
    options.orderSpecText = bug_case.orderSpec;
    std::string error;
    EXPECT_TRUE(sink.connect(options, &error)) << error;
    runtime.attach(&sink);
    CaseEnv env{runtime};
    env.externalBugSink = [&sink](const BugReport &bug) {
        sink.reportBug(bug);
    };
    bug_case.scenario(env);
    runtime.programEnd();
    ReportBody report;
    EXPECT_TRUE(sink.finish(&report, &error)) << error;
    if (report_out)
        *report_out = report;
    return report.bugs;
}

TEST(EventRingTest, PushPopAndWraparound)
{
    const std::string path = scratchPath("ringunit");
    EventRing producer;
    std::string error;
    ASSERT_TRUE(producer.create(path, 8, &error)) << error;
    EventRing consumer;
    ASSERT_TRUE(consumer.open(path, &error)) << error;

    // Several laps around the 8-slot ring.
    Event out[4];
    SeqNum next_push = 1;
    SeqNum next_pop = 1;
    for (int lap = 0; lap < 10; ++lap) {
        for (int i = 0; i < 6; ++i) {
            Event event;
            event.addr = 0x100;
            event.seq = next_push++;
            ASSERT_TRUE(producer.tryPush(event));
        }
        while (next_pop < next_push) {
            const std::size_t popped = consumer.tryPop(out, 4);
            ASSERT_GT(popped, 0u);
            for (std::size_t i = 0; i < popped; ++i)
                EXPECT_EQ(out[i].seq, next_pop++);
        }
    }
    EXPECT_EQ(consumer.size(), 0u);
}

TEST(EventRingTest, FullRingRejectsUntilDrained)
{
    const std::string path = scratchPath("ringfull");
    EventRing ring;
    ASSERT_TRUE(ring.create(path, 4));
    Event event;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(event));
    EXPECT_FALSE(ring.tryPush(event)); // out of credits
    Event out[2];
    EXPECT_EQ(ring.tryPop(out, 2), 2u);
    EXPECT_TRUE(ring.tryPush(event));
    EXPECT_EQ(ring.size(), 3u);
    ring.countDrop();
    ring.countDrop();
    EXPECT_EQ(ring.droppedCount(), 2u);
}

TEST(EventRingTest, BatchPushPopInWholeFramesAcrossWraparound)
{
    const std::string path = scratchPath("ringbatch");
    EventRing producer;
    std::string error;
    ASSERT_TRUE(producer.create(path, 16, &error)) << error;
    EventRing consumer;
    ASSERT_TRUE(consumer.open(path, &error)) << error;

    // Offset the cursors so batch frames straddle the wrap point.
    Event seed;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(producer.tryPush(seed));
    Event out[16];
    ASSERT_EQ(consumer.tryPop(out, 16), 5u);

    SeqNum next_push = 1;
    SeqNum next_pop = 1;
    Event batch[6];
    for (int lap = 0; lap < 8; ++lap) {
        for (auto &event : batch) {
            event.addr = 0x40;
            event.seq = next_push++;
        }
        // 6 of 6 fit: a frame is all-or-prefix, and an empty 16-slot
        // ring always has room for 6.
        ASSERT_EQ(producer.tryPushBatch(batch, 6), 6u);
        const std::size_t popped = consumer.popBatch(out, 16);
        ASSERT_EQ(popped, 6u);
        for (std::size_t i = 0; i < popped; ++i)
            EXPECT_EQ(out[i].seq, next_pop++);
    }

    // A batch larger than the free space publishes the fitting prefix.
    for (auto &event : batch)
        event.seq = next_push++;
    ASSERT_EQ(producer.tryPushBatch(batch, 6), 6u);
    Event big[20];
    for (auto &event : big)
        event.seq = 0;
    EXPECT_EQ(producer.tryPushBatch(big, 20), 10u); // 16 - 6 queued
    EXPECT_EQ(consumer.size(), 16u);
    EXPECT_EQ(producer.tryPushBatch(big, 4), 0u); // full
    std::size_t drained = 0;
    while (drained < 16)
        drained += consumer.popBatch(out, 16);
    EXPECT_EQ(drained, 16u);
    EXPECT_EQ(consumer.size(), 0u);
}

TEST(EventRingTest, OpenRejectsGarbageFile)
{
    const std::string path = scratchPath("ringbad");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite("this is not a ring", 1, 18, file);
    std::fclose(file);
    EventRing ring;
    std::string error;
    EXPECT_FALSE(ring.open(path, &error));
    std::remove(path.c_str());
}

TEST(ProtocolTest, HelloRoundTrip)
{
    HelloBody hello;
    hello.model = PersistencyModel::Strand;
    hello.policy = SlowConsumerPolicy::Spill;
    hello.orderSpecText = "a < b";
    hello.ringPath = "/tmp/ring";
    hello.spillPath = "/tmp/spill";
    HelloBody parsed;
    ASSERT_TRUE(HelloBody::deserialize(hello.serialize(), &parsed));
    EXPECT_EQ(parsed.model, PersistencyModel::Strand);
    EXPECT_EQ(parsed.policy, SlowConsumerPolicy::Spill);
    EXPECT_EQ(parsed.orderSpecText, "a < b");
    EXPECT_EQ(parsed.ringPath, "/tmp/ring");
    EXPECT_EQ(parsed.spillPath, "/tmp/spill");
}

TEST(ProtocolTest, ReportRoundTripAndTruncationFails)
{
    ReportBody report;
    BugReport bug;
    bug.type = BugType::RedundantFlush;
    bug.range = AddrRange(64, 128);
    bug.seq = 42;
    bug.cause = DurabilityCause::MissingFence;
    bug.detail = "line flushed twice";
    report.bugs.push_back(bug);
    report.eventsProcessed = 1000;
    report.eventsDropped = 3;
    report.json = "{}";

    const std::vector<std::uint8_t> wire = report.serialize();
    ReportBody parsed;
    ASSERT_TRUE(ReportBody::deserialize(wire, &parsed));
    ASSERT_EQ(parsed.bugs.size(), 1u);
    EXPECT_EQ(parsed.bugs[0].type, BugType::RedundantFlush);
    EXPECT_EQ(parsed.bugs[0].range, AddrRange(64, 128));
    EXPECT_EQ(parsed.bugs[0].seq, 42u);
    EXPECT_EQ(parsed.bugs[0].detail, "line flushed twice");
    EXPECT_EQ(parsed.eventsProcessed, 1000u);
    EXPECT_EQ(parsed.eventsDropped, 3u);

    std::vector<std::uint8_t> cut(wire.begin(), wire.end() - 3);
    EXPECT_FALSE(ReportBody::deserialize(cut, &parsed));
}

TEST(ProtocolTest, PolicyNames)
{
    SlowConsumerPolicy policy;
    EXPECT_TRUE(parseSlowConsumerPolicy("block", &policy));
    EXPECT_EQ(policy, SlowConsumerPolicy::Block);
    EXPECT_TRUE(parseSlowConsumerPolicy("spill", &policy));
    EXPECT_EQ(policy, SlowConsumerPolicy::Spill);
    EXPECT_FALSE(parseSlowConsumerPolicy("lossy", &policy));
    EXPECT_STREQ(toString(SlowConsumerPolicy::Drop), "drop");
}

/** Identity over the full 78-case suite at a given shard count. */
void
suiteIdentityAtShards(std::size_t shards)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = shards;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    for (const BugCase &bug_case : bugSuite()) {
        const std::vector<BugReport> local = runLocal(bug_case);
        const std::vector<BugReport> remote =
            runRemote(bug_case, config.socketPath);
        EXPECT_TRUE(sameBugs(local, remote))
            << "case " << bug_case.id << " (" << bug_case.name
            << ") at " << shards << " shard(s)";
    }
    daemon.stop();
}

TEST(ServiceIdentityTest, FullBugSuiteOneShard)
{
    suiteIdentityAtShards(1);
}

TEST(ServiceIdentityTest, FullBugSuiteThreeShards)
{
    suiteIdentityAtShards(3);
}

/**
 * Identity under real concurrency: @p clients threads stream the
 * full 78-case suite (dealt round-robin, every case covered) into one
 * daemon at @p shards shards, and every session's report must equal
 * its in-process baseline. This is the multiplexing stress: pollers
 * interleave rings mid-stream, and shard workers steal queues across
 * sessions.
 */
void
concurrentSuiteIdentity(std::size_t shards, std::size_t clients)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = shards;
    config.pollers = 2;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::vector<BugCase> &suite = bugSuite();
    std::vector<std::vector<BugReport>> locals(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        locals[i] = runLocal(suite[i]);

    std::vector<std::vector<BugReport>> remotes(suite.size());
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (std::size_t i = c; i < suite.size(); i += clients)
                remotes[i] = runRemote(suite[i], config.socketPath);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_TRUE(sameBugs(locals[i], remotes[i]))
            << "case " << suite[i].id << " (" << suite[i].name
            << ") at " << shards << " shard(s), " << clients
            << " concurrent clients";
    }
    // The finalize worker sends a session's Report to the client
    // before appending its summary, so the last summary can trail the
    // last client's return — wait instead of sampling.
    EXPECT_TRUE(daemon.waitForSessions(suite.size(), 10000));
    EXPECT_EQ(daemon.completedSessions(), suite.size());
    daemon.stop();
}

TEST(ServiceIdentityTest, FourConcurrentClientsFullSuiteOneShard)
{
    concurrentSuiteIdentity(1, 4);
}

TEST(ServiceIdentityTest, FourConcurrentClientsFullSuiteFourShards)
{
    concurrentSuiteIdentity(4, 4);
}

TEST(ServiceIdentityTest, SpillPolicyWithTinyRingStaysExact)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = 2;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // A workload-backed case generates thousands of events; a 16-slot
    // ring forces nearly the whole stream through the spill file.
    int checked = 0;
    for (const BugCase &bug_case : bugSuite()) {
        if (bug_case.id % 13 != 0)
            continue; // a sample is plenty: spilling is case-agnostic
        ReportBody report;
        const std::vector<BugReport> local = runLocal(bug_case);
        const std::vector<BugReport> remote =
            runRemote(bug_case, config.socketPath,
                      SlowConsumerPolicy::Spill, 16, &report);
        EXPECT_TRUE(sameBugs(local, remote))
            << "case " << bug_case.id << " (" << bug_case.name << ")";
        ++checked;
    }
    EXPECT_GT(checked, 2);
    daemon.stop();
}

TEST(ServiceTest, DropPolicyCountsWhatItLoses)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Flood a 16-slot ring faster than the consumer's idle backoff
    // can drain it; the Drop policy must account for every loss.
    PmRuntime runtime;
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = config.socketPath;
    options.ringPath = scratchPath("ring");
    options.ringSlots = 16;
    options.policy = SlowConsumerPolicy::Drop;
    ASSERT_TRUE(sink.connect(options, &error)) << error;
    runtime.attach(&sink);
    constexpr int stores = 20000;
    for (int i = 0; i < stores; ++i)
        runtime.store(0x1000 + 8u * (i % 64), 8);
    runtime.programEnd();
    ReportBody report;
    ASSERT_TRUE(sink.finish(&report, &error)) << error;

    EXPECT_EQ(report.eventsProcessed + report.eventsDropped,
              static_cast<std::uint64_t>(stores) + 1); // + ProgramEnd
    EXPECT_EQ(report.eventsDropped, sink.droppedEvents());
    daemon.stop();
}

TEST(ServiceTest, TwoConcurrentClientsGetTheirOwnReports)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = 2;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Two different cases with different expected verdicts, streamed
    // concurrently: the session mux must never cross the streams.
    const BugCase &case_a = *casesOfType(BugType::NoDurability)[0];
    const BugCase &case_b = *casesOfType(BugType::RedundantFlush)[0];
    const std::vector<BugReport> local_a = runLocal(case_a);
    const std::vector<BugReport> local_b = runLocal(case_b);

    std::vector<BugReport> remote_a;
    std::vector<BugReport> remote_b;
    std::thread client_a([&] {
        remote_a = runRemote(case_a, config.socketPath);
    });
    std::thread client_b([&] {
        remote_b = runRemote(case_b, config.socketPath);
    });
    client_a.join();
    client_b.join();

    EXPECT_TRUE(sameBugs(local_a, remote_a)) << "client A";
    EXPECT_TRUE(sameBugs(local_b, remote_b)) << "client B";

    // Summaries are appended after the Report reaches the client.
    EXPECT_TRUE(daemon.waitForSessions(2, 10000));
    const std::vector<SessionSummary> sessions = daemon.summaries();
    ASSERT_EQ(sessions.size(), 2u);
    EXPECT_NE(sessions[0].id, sessions[1].id);
    const std::string json = daemon.aggregatedJson();
    EXPECT_NE(json.find("\"sessions\""), std::string::npos);
    daemon.stop();
}

TEST(ServiceTest, MultiStripeStreamShardsByAddressRange)
{
    // Small stripes force a single session's stores across all three
    // shards; the merged report must still equal in-process detection.
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = 3;
    config.pool.stripeBytes = 4096;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const auto drive = [](PmRuntime &runtime) {
        // 8 stripes; even stripes are flushed+fenced, odd are left
        // unflushed -> one NoDurability site per odd stripe.
        for (int round = 0; round < 3; ++round) {
            for (Addr stripe = 0; stripe < 8; ++stripe) {
                const Addr base = stripe * 4096;
                runtime.store(base, 64);
                if (stripe % 2 == 0)
                    runtime.flush(base, 64);
            }
            runtime.fence();
        }
        runtime.programEnd();
    };

    PmRuntime localRuntime;
    PmDebugger local;
    localRuntime.attach(&local);
    drive(localRuntime);
    local.finalize();

    PmRuntime remoteRuntime;
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = config.socketPath;
    options.ringPath = scratchPath("ring");
    ASSERT_TRUE(sink.connect(options, &error)) << error;
    remoteRuntime.attach(&sink);
    drive(remoteRuntime);
    ReportBody report;
    ASSERT_TRUE(sink.finish(&report, &error)) << error;

    // Shards finalize independently, so same-seq bugs may merge in a
    // different relative order than one debugger's finalize pass;
    // compare as sorted multisets.
    const auto canonical = [](std::vector<BugReport> bugs) {
        std::sort(bugs.begin(), bugs.end(),
                  [](const BugReport &a, const BugReport &b) {
                      return std::tie(a.seq, a.range.start,
                                      a.range.end) <
                             std::tie(b.seq, b.range.start,
                                      b.range.end);
                  });
        return bugs;
    };
    EXPECT_TRUE(sameBugs(canonical(local.bugs().bugs()),
                         canonical(report.bugs)));
    EXPECT_EQ(local.bugs().countOf(BugType::NoDurability), 4u);
    daemon.stop();
}

TEST(ServiceTest, ClientSurvivesMissingDaemon)
{
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = scratchPath("nonexistent.sock");
    options.ringPath = scratchPath("ring");
    options.connectTimeoutMs = 50;
    std::string error;
    EXPECT_FALSE(sink.connect(options, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(sink.connected());
}

/** A fully persisted stream spread over @p stripes 4 KiB stripes. */
std::vector<Event>
stripedCleanStream(std::size_t rounds, std::size_t stripes)
{
    std::vector<Event> events;
    SeqNum seq = 1;
    auto emit = [&](EventKind kind, Addr addr, std::uint32_t size) {
        Event event;
        event.kind = kind;
        event.addr = addr;
        event.size = size;
        event.seq = seq++;
        events.push_back(event);
    };
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t stripe = 0; stripe < stripes; ++stripe) {
            const Addr base = static_cast<Addr>(stripe) * 4096;
            const Addr addr = base + 64 * (round % 16);
            emit(EventKind::Store, addr, 64);
            emit(EventKind::Flush, addr, 64);
        }
        emit(EventKind::Fence, 0, 0);
    }
    emit(EventKind::ProgramEnd, 0, 0);
    return events;
}

TEST(ShardPoolTest, WorkStealingCoversDeliberatelySlowShard)
{
    // Shard 0's worker sleeps on every Events task; its queues keep
    // turning ready while it is busy, so other workers must steal
    // them or the run crawls. Verify steals happen and the verdict
    // still equals an unhandicapped pool's.
    const auto runPool = [](bool slow) {
        ShardPoolConfig config;
        config.shards = 4;
        config.stripeBytes = 4096;
        config.queueCapacity = 4;
        if (slow) {
            config.slowShard = 0;
            config.slowShardDelayUs = 200;
        }
        ShardPool pool(config);
        pool.start();
        pool.openSession(1, DebuggerConfig{}, /*pinned=*/false);
        const std::vector<Event> events =
            stripedCleanStream(400, config.shards);
        // Small chunks -> many Events tasks per shard queue.
        constexpr std::size_t chunk = 32;
        for (std::size_t at = 0; at < events.size(); at += chunk) {
            pool.routeEvents(1, events.data() + at,
                             std::min(chunk, events.size() - at));
        }
        SessionVerdict verdict = pool.closeSession(1, {});
        const std::uint64_t steals = pool.stealCount();
        pool.stop();
        return std::make_pair(std::move(verdict), steals);
    };

    auto [fastVerdict, fastSteals] = runPool(false);
    auto [slowVerdict, slowSteals] = runPool(true);
    (void)fastSteals;
    EXPECT_GT(slowSteals, 0u) << "no queue was ever stolen from the "
                                 "slow shard";
    EXPECT_TRUE(sameBugs(fastVerdict.bugs, slowVerdict.bugs));
    EXPECT_EQ(fastVerdict.stats.stores, slowVerdict.stats.stores);
    EXPECT_EQ(fastVerdict.stats.flushes, slowVerdict.stats.flushes);
}

TEST(ServiceTest, IngestCountersSurfaceInSummariesAndJson)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = 2;
    config.pollers = 1;
    ServiceDaemon daemon(config);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    PmRuntime runtime;
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = config.socketPath;
    options.ringPath = scratchPath("ring");
    ASSERT_TRUE(sink.connect(options, &error)) << error;
    runtime.attach(&sink);
    for (int i = 0; i < 4096; ++i) {
        runtime.store(0x1000 + 64u * (i % 32), 64);
        runtime.flush(0x1000 + 64u * (i % 32), 64);
        if (i % 32 == 31)
            runtime.fence();
    }
    runtime.programEnd();
    ReportBody report;
    ASSERT_TRUE(sink.finish(&report, &error)) << error;

    // Summaries are appended after the Report reaches the client.
    EXPECT_TRUE(daemon.waitForSessions(1, 10000));
    const std::vector<SessionSummary> sessions = daemon.summaries();
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_GT(sessions[0].batchesDrained, 0u);
    EXPECT_GT(sessions[0].eventsProcessed, 0u);
    EXPECT_GT(sessions[0].seconds, 0.0);

    const IngestStats ingest = daemon.ingestStats();
    EXPECT_GT(ingest.polls, 0u);

    const std::vector<ShardStats> shards = daemon.shardStats();
    ASSERT_EQ(shards.size(), 2u);
    std::uint64_t shardEvents = 0;
    for (const ShardStats &shard : shards)
        shardEvents += shard.events;
    EXPECT_GE(shardEvents, sessions[0].eventsProcessed);

    const std::string json = daemon.aggregatedJson();
    for (const char *key :
         {"\"pollers\"", "\"idle_poll_ratio\"", "\"steals\"",
          "\"shard_stats\"", "\"batches_drained\"",
          "\"queue_full_stalls\"", "\"events_per_sec\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    daemon.stop();
}

} // namespace
} // namespace pmdb
