/**
 * @file
 * Minimize/repair engine tests: ddmin witness minimization
 * (idempotence, structure-preserving slicing, verdict-cache reuse) and
 * end-to-end repair synthesis for every rule class with a patch
 * vocabulary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "repair/case_repair.hh"
#include "repair/minimize.hh"
#include "repair/patch.hh"

namespace pmdb
{
namespace
{

/** Record a suite case and resolve its repair target. */
struct CaseFixture
{
    const BugCase *bug_case = nullptr;
    LoadedTrace trace;
    DebuggerConfig config;
    BugFingerprint target;

    explicit CaseFixture(const std::string &name)
    {
        bug_case = findBugCase(name);
        if (!bug_case)
            return;
        trace = recordCaseTrace(*bug_case);
        config = debuggerConfigFor(*bug_case);
        if (!caseTarget(*bug_case, trace, &target))
            bug_case = nullptr;
    }
};

/** Per-thread balance check for section markers in a sliced trace. */
void
expectBalancedSections(const std::vector<Event> &events)
{
    std::map<int, int> epoch_depth;
    std::map<int, std::vector<EventKind>> stack;
    for (const Event &event : events) {
        switch (event.kind) {
          case EventKind::EpochBegin:
            ++epoch_depth[event.thread];
            break;
          case EventKind::EpochEnd:
            EXPECT_GT(epoch_depth[event.thread], 0)
                << "orphan EpochEnd at seq " << event.seq;
            --epoch_depth[event.thread];
            break;
          case EventKind::StrandBegin:
            stack[event.thread].push_back(EventKind::StrandBegin);
            break;
          case EventKind::StrandEnd:
            ASSERT_FALSE(stack[event.thread].empty())
                << "orphan StrandEnd at seq " << event.seq;
            stack[event.thread].pop_back();
            break;
          default:
            break;
        }
    }
    for (const auto &[thread, depth] : epoch_depth)
        EXPECT_EQ(depth, 0) << "unclosed epoch on thread " << thread;
    for (const auto &[thread, open] : stack)
        EXPECT_TRUE(open.empty()) << "unclosed strand on thread "
                                  << thread;
}

TEST(MinimizeTest, ShrinksAndPreservesTarget)
{
    CaseFixture fx("missing_flush_2x8");
    ASSERT_NE(fx.bug_case, nullptr);

    const MinimizeResult result =
        minimizeWitness(fx.trace, fx.target, fx.config);
    ASSERT_TRUE(result.reproduced);
    EXPECT_LT(result.events.size(), fx.trace.events.size());

    const ReplayOracle oracle(fx.config, fx.trace.names);
    EXPECT_TRUE(oracle.replay(result.events).has(fx.target));
}

TEST(MinimizeTest, Idempotent)
{
    CaseFixture fx("epoch_unlogged_store");
    ASSERT_NE(fx.bug_case, nullptr);

    const MinimizeResult once =
        minimizeWitness(fx.trace, fx.target, fx.config);
    ASSERT_TRUE(once.reproduced);

    LoadedTrace minimized;
    minimized.events = once.events;
    minimized.names = fx.trace.names;
    const MinimizeResult twice =
        minimizeWitness(minimized, fx.target, fx.config);
    ASSERT_TRUE(twice.reproduced);
    // A 1-minimal witness has nothing left to delete.
    EXPECT_EQ(twice.events.size(), once.events.size());
}

TEST(MinimizeTest, SlicingKeepsSectionsBalanced)
{
    // Cases whose traces carry epoch and strand sections.
    for (const char *name :
         {"epoch_unlogged_store", "epoch_extra_fence",
          "strand_cross_persist_raw", "tx_double_log"}) {
        CaseFixture fx(name);
        ASSERT_NE(fx.bug_case, nullptr) << name;
        const MinimizeResult result =
            minimizeWitness(fx.trace, fx.target, fx.config);
        ASSERT_TRUE(result.reproduced) << name;
        expectBalancedSections(result.events);
        // Slicing never invents events: every survivor appears in the
        // original, in order.
        std::size_t cursor = 0;
        for (const Event &kept : result.events) {
            while (cursor < fx.trace.events.size() &&
                   fx.trace.events[cursor].seq != kept.seq) {
                ++cursor;
            }
            ASSERT_LT(cursor, fx.trace.events.size())
                << name << ": event seq " << kept.seq
                << " not in original order";
        }
    }
}

TEST(MinimizeTest, VerdictCacheAvoidsRepeatReplays)
{
    CaseFixture fx("tx_double_log");
    ASSERT_NE(fx.bug_case, nullptr);

    const MinimizeResult result =
        minimizeWitness(fx.trace, fx.target, fx.config);
    ASSERT_TRUE(result.reproduced);
    // ddmin revisits subsets as it re-chunks; the cache answers those
    // without burning replay budget.
    EXPECT_GT(result.stats.cacheHits, 0u);
    EXPECT_LE(result.stats.replays, MinimizeOptions().maxReplays);

    // Determinism: a second run from scratch lands on the same witness.
    const MinimizeResult again =
        minimizeWitness(fx.trace, fx.target, fx.config);
    ASSERT_TRUE(again.reproduced);
    ASSERT_EQ(again.events.size(), result.events.size());
    for (std::size_t i = 0; i < result.events.size(); ++i)
        EXPECT_EQ(again.events[i].seq, result.events[i].seq);
}

TEST(MinimizeTest, BudgetBoundsReplays)
{
    CaseFixture fx("memcached_publish_first");
    ASSERT_NE(fx.bug_case, nullptr);

    MinimizeOptions options;
    options.maxReplays = 16;
    const MinimizeResult result =
        minimizeWitness(fx.trace, fx.target, fx.config, options);
    ASSERT_TRUE(result.reproduced);
    EXPECT_LE(result.stats.replays, options.maxReplays);
    // Best-so-far is still a valid witness.
    const ReplayOracle oracle(fx.config, fx.trace.names);
    EXPECT_TRUE(oracle.replay(result.events).has(fx.target));
}

/** One representative seeded case per repairable rule class. */
const std::pair<const char *, BugType> repairCases[] = {
    {"missing_flush_2x8", BugType::NoDurability},
    {"missing_fence_1x8", BugType::NoDurability},
    {"overwrite_before_flush", BugType::MultipleOverwrite},
    {"order_b_before_a", BugType::NoOrderGuarantee},
    {"double_flush", BugType::RedundantFlush},
    {"flush_untouched_line", BugType::FlushNothing},
    {"tx_double_log", BugType::RedundantLogging},
    {"epoch_unlogged_store", BugType::LackDurabilityInEpoch},
    {"epoch_extra_fence", BugType::RedundantEpochFence},
    {"strand_cross_persist_raw", BugType::LackOrderingInStrands},
};

TEST(RepairTest, EveryRuleClassGetsVerifiedPatch)
{
    for (const auto &[name, type] : repairCases) {
        CaseFixture fx(name);
        ASSERT_NE(fx.bug_case, nullptr) << name;
        ASSERT_EQ(fx.target.type, type) << name;

        const RepairResult result =
            repairTrace(fx.trace, fx.target, fx.config);
        EXPECT_TRUE(result.targetPresent) << name;
        ASSERT_TRUE(result.verified) << name;
        EXPECT_FALSE(result.patch.edits.empty()) << name;
        EXPECT_FALSE(result.advisory.empty()) << name;

        // Verification contract: target gone, and every bug the
        // patched trace still reports existed in the original run.
        const ReplayOracle oracle(fx.config, fx.trace.names);
        const ReplayReport original = oracle.replay(fx.trace.events);
        const ReplayReport patched =
            oracle.replay(result.patchedEvents);
        EXPECT_FALSE(patched.has(fx.target)) << name;
        for (const BugFingerprint &fingerprint : patched.fingerprints)
            EXPECT_TRUE(original.has(fingerprint))
                << name << ": new bug " << fingerprint.toString();
        expectBalancedSections(result.patchedEvents);
    }
}

TEST(RepairTest, MultiOccurrenceFingerprintsRepairedInFull)
{
    // One fingerprint can stand for many violation sites (per-op
    // re-registered order variables dedup to one identity); the
    // synthesizer must fix all of them, not just the reported one.
    for (const char *name :
         {"memcached_publish_first", "synth_strand_cross_persist"}) {
        CaseFixture fx(name);
        ASSERT_NE(fx.bug_case, nullptr) << name;
        const RepairResult result =
            repairTrace(fx.trace, fx.target, fx.config);
        ASSERT_TRUE(result.verified) << name;
        const ReplayOracle oracle(fx.config, fx.trace.names);
        EXPECT_FALSE(oracle.replay(result.patchedEvents).has(fx.target))
            << name;
    }
}

TEST(RepairTest, CrossFailureHasNoVocabulary)
{
    EXPECT_FALSE(ruleClassHasVocabulary(BugType::CrossFailureSemantic));
    EXPECT_TRUE(ruleClassHasVocabulary(BugType::NoDurability));
    EXPECT_TRUE(ruleClassHasVocabulary(BugType::RedundantEpochFence));
}

TEST(RepairTest, ApplyPatchRenumbersSequentially)
{
    CaseFixture fx("missing_flush_2x8");
    ASSERT_NE(fx.bug_case, nullptr);
    const RepairResult result =
        repairTrace(fx.trace, fx.target, fx.config);
    ASSERT_TRUE(result.verified);
    SeqNum expected = 0;
    for (const Event &event : result.patchedEvents)
        EXPECT_EQ(event.seq, ++expected);
}

} // namespace
} // namespace pmdb
