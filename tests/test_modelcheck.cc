/**
 * @file
 * Tests for the crash-state model checker (src/modelcheck/): the
 * persistent visited-state cache (round-trip, merge-on-load, corrupt
 * rejection, resume semantics), worker-count and rerun determinism of
 * the frontier search, read-set pruning not masking findings, and the
 * seeded multi-crash recovery bugs being reachable only at depth >= 2.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "modelcheck/engine.hh"
#include "modelcheck/model.hh"
#include "modelcheck/state_cache.hh"

namespace pmdb
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(StateCacheTest, InsertReportsNewVersusDuplicate)
{
    StateCache cache;
    EXPECT_TRUE(cache.insert(0xdeadbeefULL));
    EXPECT_FALSE(cache.insert(0xdeadbeefULL));
    EXPECT_TRUE(cache.insert(0xdeadbef0ULL));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(0xdeadbeefULL));
    EXPECT_FALSE(cache.contains(1ULL));
}

TEST(StateCacheTest, SaveLoadRoundTrip)
{
    TempPath path("mc_cache_roundtrip.bin");
    StateCache cache;
    for (std::uint64_t i = 0; i < 100; ++i)
        cache.insert(i * 0x9e3779b97f4a7c15ULL);
    std::string err;
    ASSERT_TRUE(cache.save(path.str(), &err)) << err;

    StateCache loaded;
    ASSERT_TRUE(loaded.load(path.str(), &err)) << err;
    EXPECT_EQ(loaded.states(), cache.states());
}

TEST(StateCacheTest, LoadMergesIntoExistingStates)
{
    TempPath path("mc_cache_merge.bin");
    StateCache first;
    first.insert(1);
    first.insert(2);
    ASSERT_TRUE(first.save(path.str()));

    StateCache merged;
    merged.insert(2);
    merged.insert(3);
    ASSERT_TRUE(merged.load(path.str()));
    EXPECT_EQ(merged.size(), 3u);
    EXPECT_TRUE(merged.contains(1));
    EXPECT_TRUE(merged.contains(3));
}

TEST(StateCacheTest, MissingFileIsAFreshStart)
{
    TempPath path("mc_cache_missing.bin");
    StateCache cache;
    std::string err;
    EXPECT_TRUE(cache.load(path.str(), &err)) << err;
    EXPECT_EQ(cache.size(), 0u);
}

TEST(StateCacheTest, RejectsForeignAndTruncatedFiles)
{
    TempPath path("mc_cache_bad.bin");
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "NOTACACHEFILE";
    }
    StateCache cache;
    cache.insert(7);
    std::string err;
    EXPECT_FALSE(cache.load(path.str(), &err));
    EXPECT_FALSE(err.empty());
    // A rejected load leaves the set unchanged.
    EXPECT_EQ(cache.size(), 1u);

    // Valid header, count promising more states than the file holds.
    {
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        const std::uint64_t count = 1000;
        out.write("PMDBMCC1", 8);
        out.write(reinterpret_cast<const char *>(&count), 8);
        const std::uint64_t one = 1;
        out.write(reinterpret_cast<const char *>(&one), 8);
    }
    EXPECT_FALSE(cache.load(path.str(), &err));
    EXPECT_EQ(cache.size(), 1u);
}

ModelCheckOptions
smallSearch(std::size_t depth)
{
    ModelCheckOptions options;
    options.run.operations = 3;
    options.run.recoveryOperations = 1;
    options.run.seed = 42;
    options.maxDepth = depth;
    options.maxStates = 4096;
    return options;
}

ModelCheckResult
runSearch(const std::string &workload, bool buggy,
          ModelCheckOptions options)
{
    auto model = makeModelWorkload(workload, buggy);
    EXPECT_NE(model, nullptr) << workload;
    ModelChecker checker(*model, options);
    return checker.run();
}

TEST(ModelCheckerTest, ResultsBitIdenticalAcrossWorkerCounts)
{
    ModelCheckOptions options = smallSearch(2);
    options.workers = 1;
    const ModelCheckResult one = runSearch("hashmap_atomic", false,
                                           options);
    EXPECT_GT(one.stats.distinctStates, 0u);

    options.workers = 2;
    const ModelCheckResult two = runSearch("hashmap_atomic", false,
                                           options);
    options.workers = 4;
    const ModelCheckResult four = runSearch("hashmap_atomic", false,
                                            options);

    EXPECT_TRUE(one.identicalTo(two));
    EXPECT_TRUE(one.identicalTo(four));
    EXPECT_EQ(one.frontierHash, four.frontierHash);
}

TEST(ModelCheckerTest, RerunWithSameConfigIsDeterministic)
{
    const ModelCheckOptions options = smallSearch(2);
    const ModelCheckResult first = runSearch("b_tree", false, options);
    const ModelCheckResult second = runSearch("b_tree", false, options);
    EXPECT_TRUE(first.identicalTo(second));
}

TEST(ModelCheckerTest, PersistedCacheMakesRerunsIncremental)
{
    TempPath path("mc_cache_resume.bin");
    ModelCheckOptions options = smallSearch(2);
    options.cachePath = path.str();

    const ModelCheckResult first = runSearch("hashmap_atomic", false,
                                             options);
    EXPECT_GT(first.stats.distinctStates, 0u);
    EXPECT_EQ(first.cacheStates, first.stats.distinctStates);

    // Same search against the persisted cache: every candidate is a
    // cache hit, so only the initial execution runs and no new states
    // are visited.
    const ModelCheckResult second = runSearch("hashmap_atomic", false,
                                              options);
    EXPECT_EQ(second.stats.distinctStates, 0u);
    EXPECT_EQ(second.stats.executions, 1u);
    EXPECT_EQ(second.cacheStates, first.cacheStates);
    EXPECT_TRUE(second.findings.empty());
}

TEST(ModelCheckerTest, StateBudgetStopsTheSearch)
{
    ModelCheckOptions options = smallSearch(2);
    options.maxStates = 4;
    const ModelCheckResult result = runSearch("hashmap_atomic", false,
                                              options);
    EXPECT_TRUE(result.stats.budgetExhausted);
    EXPECT_EQ(result.stats.distinctStates, 4u);
}

TEST(ModelCheckerTest, EnumerationBoundsSurfaceAsTruncatedPoints)
{
    ModelCheckOptions options = smallSearch(1);
    options.run.sim.maxImagesPerPoint = 2;
    const ModelCheckResult result = runSearch("hashmap_atomic", false,
                                              options);
    EXPECT_GT(result.stats.truncatedPoints, 0u);
}

TEST(ModelCheckerTest, SeededRecoveryBugsNeedDepthTwo)
{
    for (const ModelCheckCase &mc_case : modelcheckOnlyCases()) {
        SCOPED_TRACE(mc_case.name);
        ModelCheckOptions options = smallSearch(mc_case.depth);

        const ModelCheckResult buggy = runSearch(mc_case.name, true,
                                                 options);
        ASSERT_FALSE(buggy.findings.empty());
        for (const ModelCheckFinding &finding : buggy.findings) {
            EXPECT_GE(finding.depth, 2u);
            EXPECT_EQ(finding.crashSeqs.size(), finding.depth);
        }

        // One crash deep — what crashsim-with-recovery can reach —
        // the trigger state does not exist yet.
        const ModelCheckResult shallow =
            runSearch(mc_case.name, true, smallSearch(1));
        EXPECT_TRUE(shallow.findings.empty());

        // The corrected recovery path survives the same search.
        const ModelCheckResult fixed = runSearch(mc_case.name, false,
                                                 options);
        EXPECT_TRUE(fixed.findings.empty());
    }
}

TEST(ModelCheckerTest, PruningDoesNotMaskSeededBugs)
{
    for (const ModelCheckCase &mc_case : modelcheckOnlyCases()) {
        SCOPED_TRACE(mc_case.name);
        ModelCheckOptions options = smallSearch(mc_case.depth);
        options.prune = true;
        const ModelCheckResult pruned = runSearch(mc_case.name, true,
                                                  options);
        options.prune = false;
        const ModelCheckResult full = runSearch(mc_case.name, true,
                                                options);
        ASSERT_FALSE(pruned.findings.empty());
        ASSERT_FALSE(full.findings.empty());
        // Every pruned-run verdict is also found by the full run.
        for (const ModelCheckFinding &finding : pruned.findings) {
            bool matched = false;
            for (const ModelCheckFinding &other : full.findings)
                matched |= other.detail == finding.detail;
            EXPECT_TRUE(matched) << finding.detail;
        }
    }
}

TEST(ModelCheckerTest, PruningOnlySkipsWork)
{
    ModelCheckOptions options = smallSearch(2);
    options.run.operations = 4;
    options.prune = false;
    const ModelCheckResult full = runSearch("hashmap_atomic", false,
                                            options);
    options.prune = true;
    const ModelCheckResult pruned = runSearch("hashmap_atomic", false,
                                              options);
    EXPECT_EQ(full.stats.prunedCandidates, 0u);
    EXPECT_GT(pruned.stats.prunedCandidates, 0u)
        << "hashmap_atomic recovery never reads the audit line, so "
           "candidates differing only there must be pruned";
    EXPECT_LT(pruned.stats.executions, full.stats.executions);
    // Pruned states still count as visited.
    EXPECT_GT(pruned.stats.distinctStates, 0u);
}

} // namespace
} // namespace pmdb
