/**
 * @file
 * Unit tests for mini-PMDK transactions: epoch event shape, commit
 * durability, abort rollback, nesting collapse, exact-range dedup,
 * and log recovery from crash images.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "trace/recorder.hh"

namespace pmdb
{
namespace
{

class TxTest : public ::testing::Test
{
  protected:
    TxTest() : pool(runtime, 4 << 20, "tx.pool")
    {
        runtime.attach(&recorder);
    }

    int
    countKind(EventKind kind) const
    {
        int n = 0;
        for (const Event &event : recorder.events()) {
            if (event.kind == kind)
                ++n;
        }
        return n;
    }

    PmRuntime runtime;
    PmemPool pool;
    TraceRecorder recorder;
};

TEST_F(TxTest, CommitMakesLoggedStoresDurable)
{
    const Addr a = pool.alloc(64);
    Transaction tx(pool);
    tx.begin();
    tx.addRange(a, 8);
    pool.store<std::uint64_t>(a, 99);
    EXPECT_FALSE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
    tx.commit();
    EXPECT_TRUE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
    std::uint64_t v = 0;
    pool.device().readPersisted(a, &v, 8);
    EXPECT_EQ(v, 99u);
}

TEST_F(TxTest, EpochHasExactlyOneFence)
{
    const Addr a = pool.alloc(64);
    recorder.clear();
    Transaction tx(pool);
    tx.begin();
    tx.addRange(a, 8);
    pool.store<std::uint64_t>(a, 1);
    tx.commit();

    // Between EpochBegin and EpochEnd there must be exactly one fence
    // (the commit barrier) — the property the redundant-epoch-fence
    // rule checks.
    bool in_epoch = false;
    int fences_in_epoch = 0;
    for (const Event &event : recorder.events()) {
        if (event.kind == EventKind::EpochBegin)
            in_epoch = true;
        else if (event.kind == EventKind::EpochEnd)
            in_epoch = false;
        else if (event.kind == EventKind::Fence && in_epoch)
            ++fences_in_epoch;
    }
    EXPECT_EQ(fences_in_epoch, 1);
    EXPECT_EQ(countKind(EventKind::EpochBegin), 1);
    EXPECT_EQ(countKind(EventKind::EpochEnd), 1);
}

TEST_F(TxTest, AddRangeEmitsTxLogWithObjectAddress)
{
    const Addr a = pool.alloc(64);
    recorder.clear();
    Transaction tx(pool);
    tx.begin();
    EXPECT_TRUE(tx.addRange(a, 16));
    bool saw = false;
    for (const Event &event : recorder.events()) {
        if (event.kind == EventKind::TxLog) {
            saw = true;
            EXPECT_EQ(event.addr, a);
            EXPECT_EQ(event.size, 16u);
        }
    }
    EXPECT_TRUE(saw);
    tx.commit();
}

TEST_F(TxTest, ExactDuplicateAddRangeIsDeduped)
{
    const Addr a = pool.alloc(64);
    Transaction tx(pool);
    tx.begin();
    EXPECT_TRUE(tx.addRange(a, 16));
    EXPECT_FALSE(tx.addRange(a, 16)); // PMDK-style dedup
    EXPECT_TRUE(tx.addRange(a + 8, 8)); // overlap-but-not-exact logs
    tx.commit();
}

TEST_F(TxTest, AbortRollsBackLoggedStores)
{
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 1);
    pool.persist(a, 8);

    Transaction tx(pool);
    tx.begin();
    tx.addRange(a, 8);
    pool.store<std::uint64_t>(a, 2);
    EXPECT_EQ(pool.load<std::uint64_t>(a), 2u);
    tx.abort();
    EXPECT_EQ(pool.load<std::uint64_t>(a), 1u);
}

TEST_F(TxTest, DestructorAbortsOpenTransaction)
{
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 5);
    pool.persist(a, 8);
    {
        Transaction tx(pool);
        tx.begin();
        tx.addRange(a, 8);
        pool.store<std::uint64_t>(a, 6);
        // falls out of scope without commit
    }
    EXPECT_EQ(pool.load<std::uint64_t>(a), 5u);
}

TEST_F(TxTest, NestedTransactionsCollapseToOuterEpoch)
{
    const Addr a = pool.alloc(64);
    recorder.clear();
    Transaction outer(pool);
    outer.begin();
    outer.addRange(a, 8);
    pool.store<std::uint64_t>(a, 1);
    {
        Transaction inner(pool);
        inner.begin();
        EXPECT_EQ(Transaction::depth(pool), 2);
        inner.addRange(a + 8, 8);
        pool.store<std::uint64_t>(a + 8, 2);
        inner.commit();
        // Inner commit emits no epoch events and no fence.
        EXPECT_EQ(countKind(EventKind::EpochEnd), 0);
        EXPECT_EQ(countKind(EventKind::Fence), 0);
    }
    outer.commit();
    EXPECT_EQ(countKind(EventKind::EpochBegin), 1);
    EXPECT_EQ(countKind(EventKind::EpochEnd), 1);
    // Both stores durable at the outermost barrier (Section 6).
    EXPECT_TRUE(pool.device().isDurable(AddrRange::fromSize(a, 16)));
}

TEST_F(TxTest, TxAllocIsDurableAtCommitOnly)
{
    Transaction tx(pool);
    tx.begin();
    const Addr a = tx.alloc(48);
    pool.store<std::uint64_t>(a, 3);
    EXPECT_FALSE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
    tx.commit();
    EXPECT_TRUE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
}

TEST_F(TxTest, RecoveryRollsBackTornTransaction)
{
    const Addr a = pool.alloc(128);
    const Addr b = a + 64;
    pool.store<std::uint64_t>(a, 10);
    pool.store<std::uint64_t>(b, 10);
    pool.persist(a, 128);

    // Mid-transaction crash: the log entries are flushed (addRange
    // flushes them), so force them into the persistence domain with a
    // CommitPending crash — then verify recovery restores old values.
    Transaction tx(pool);
    tx.begin();
    tx.addRange(a, 8);
    tx.addRange(b, 8);
    pool.store<std::uint64_t>(a, 20);
    pool.store<std::uint64_t>(b, 20);
    // no commit: crash here

    CrashSimulator sim(pool.device());
    auto image = sim.crashImage(CrashPolicy::CommitPending);
    const auto recovered = TxRecovery::rollback(pool, image);
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_TRUE(recovered[0].checksumOk);
    EXPECT_TRUE(recovered[1].checksumOk);

    std::uint64_t va = 0, vb = 0;
    std::memcpy(&va, image.data() + a, 8);
    std::memcpy(&vb, image.data() + b, 8);
    EXPECT_EQ(va, 10u);
    EXPECT_EQ(vb, 10u);
    tx.abort(); // clean up the live transaction
}

TEST_F(TxTest, RecoveryAfterCommitFindsEmptyLog)
{
    const Addr a = pool.alloc(64);
    Transaction tx(pool);
    tx.begin();
    tx.addRange(a, 8);
    pool.store<std::uint64_t>(a, 42);
    tx.commit();

    CrashSimulator sim(pool.device());
    auto image = sim.crashImage(CrashPolicy::DropPending);
    const auto recovered = TxRecovery::rollback(pool, image);
    EXPECT_TRUE(recovered.empty());
    std::uint64_t v = 0;
    std::memcpy(&v, image.data() + a, 8);
    EXPECT_EQ(v, 42u);
}

TEST_F(TxTest, ChecksumDetectsTornLogEntry)
{
    const std::uint64_t h1 = fnv1a("hello", 5);
    const std::uint64_t h2 = fnv1a("hellp", 5);
    EXPECT_NE(h1, h2);
    EXPECT_EQ(h1, fnv1a("hello", 5));
}

TEST_F(TxTest, BeginTwicePanics)
{
    Transaction tx(pool);
    tx.begin();
    EXPECT_DEATH(tx.begin(), "already open");
    tx.commit();
}

TEST_F(TxTest, CommitWithoutBeginPanics)
{
    Transaction tx(pool);
    EXPECT_DEATH(tx.commit(), "not open");
}

} // namespace
} // namespace pmdb
