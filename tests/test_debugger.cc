/**
 * @file
 * Integration tests for PmDebugger: bookkeeping statistics, strand
 * spaces, ablation bookkeeping modes, array overflow, and a
 * randomized property test comparing the debugger's end-of-program
 * durability report against a naive reference tracker.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "core/debugger.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

TEST(DebuggerTest, CountsEvents)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    runtime.store(0, 8);
    runtime.store(64, 8);
    runtime.flush(0, 64);
    runtime.fence();
    const DebuggerStats stats = debugger.stats();
    EXPECT_EQ(stats.stores, 2u);
    EXPECT_EQ(stats.flushes, 1u);
    EXPECT_EQ(stats.fences, 1u);
}

TEST(DebuggerTest, TreeStaysEmptyForNearestFencePattern)
{
    // Pattern 1: when durability comes from the nearest fence, records
    // die in the array and the tree is never touched.
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    for (int i = 0; i < 100; ++i) {
        runtime.store(i * 64, 8);
        runtime.flush(i * 64, 64);
        runtime.fence();
    }
    const DebuggerStats stats = debugger.stats();
    EXPECT_EQ(stats.tree.insertions, 0u);
    EXPECT_DOUBLE_EQ(stats.avgTreeNodesPerFenceInterval(), 0.0);
    EXPECT_EQ(stats.array.collectiveInvalidations, 100u);
}

TEST(DebuggerTest, LateFlushedRecordsMigrateToTree)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    runtime.store(0x1000, 8); // flushed only much later
    for (int i = 0; i < 10; ++i) {
        runtime.store(i * 64, 8);
        runtime.flush(i * 64, 64);
        runtime.fence();
    }
    EXPECT_EQ(debugger.treeNodeCount(), 1u);
    runtime.flush(0x1000, 64);
    runtime.fence();
    EXPECT_EQ(debugger.treeNodeCount(), 0u);
    EXPECT_GT(debugger.stats().avgTreeNodesPerFenceInterval(), 0.0);
}

TEST(DebuggerTest, ArrayOverflowFallsBackToTree)
{
    DebuggerConfig config;
    config.arrayCapacity = 4;
    PmRuntime runtime;
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);
    for (int i = 0; i < 10; ++i)
        runtime.store(i * 64, 8);
    const DebuggerStats stats = debugger.stats();
    EXPECT_EQ(stats.array.overflowStores, 6u);
    EXPECT_EQ(debugger.treeNodeCount(), 6u);
    // All ten locations still reported at the end.
    runtime.programEnd();
    EXPECT_EQ(debugger.bugs().countOf(BugType::NoDurability), 10u);
}

TEST(DebuggerTest, StrandSpacesAreIndependent)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strand;
    PmRuntime runtime;
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);

    runtime.strandBegin(0);
    runtime.store(0x100, 8);
    runtime.strandEnd(0);

    runtime.strandBegin(1);
    runtime.store(0x200, 8);
    runtime.flush(0x200, 64);
    // A fence in strand 1 must not touch strand 0's records.
    runtime.fence();
    runtime.strandEnd(1);

    runtime.programEnd();
    // Strand 0's store was never persisted.
    EXPECT_EQ(debugger.bugs().countOf(BugType::NoDurability), 1u);
    EXPECT_EQ(debugger.bugs().bugs()[0].range, AddrRange(0x100, 0x108));
}

TEST(DebuggerTest, FinalizeIsIdempotent)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    runtime.store(0x100, 8);
    runtime.programEnd();
    debugger.finalize();
    debugger.finalize();
    EXPECT_EQ(debugger.bugs().countOf(BugType::NoDurability), 1u);
}

TEST(DebuggerTest, BugCollectorDeduplicatesSites)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    for (int i = 0; i < 5; ++i) {
        runtime.store(0x100, 8);
        runtime.flush(0x100, 64);
        runtime.flush(0x100, 64); // same redundant site every loop
        runtime.fence();
    }
    runtime.programEnd();
    EXPECT_EQ(debugger.bugs().countOf(BugType::RedundantFlush), 1u);
    EXPECT_EQ(debugger.bugs().occurrences(), 5u);
}

/** All three bookkeeping modes must reach identical verdicts. */
class BookkeepingModeTest
    : public ::testing::TestWithParam<BookkeepingMode>
{
};

TEST_P(BookkeepingModeTest, DetectsDurabilityBugsIdentically)
{
    DebuggerConfig config;
    config.bookkeeping = GetParam();
    config.arrayCapacity = 64;
    PmRuntime runtime;
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);

    // Two persisted locations, two buggy ones (one missing CLF, one
    // missing fence), across several fence intervals.
    runtime.store(0x100, 8);
    runtime.flush(0x100, 64);
    runtime.fence();
    runtime.store(0x200, 8); // missing CLF
    runtime.fence();
    runtime.store(0x300, 8);
    runtime.flush(0x300, 64);
    runtime.fence();
    runtime.store(0x400, 8);
    runtime.flush(0x400, 64); // missing fence
    runtime.programEnd();

    EXPECT_EQ(debugger.bugs().countOf(BugType::NoDurability), 2u);
}

INSTANTIATE_TEST_SUITE_P(Modes, BookkeepingModeTest,
                         ::testing::Values(BookkeepingMode::Hybrid,
                                           BookkeepingMode::TreeOnly,
                                           BookkeepingMode::ArrayOnly));

/**
 * Property test: random store/flush/fence streams; the debugger's
 * durability verdict at program end must match a byte-level reference
 * tracker. Parameterized over seeds and bookkeeping modes.
 */
class DebuggerPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 BookkeepingMode>>
{
};

TEST_P(DebuggerPropertyTest, EndStateMatchesReferenceTracker)
{
    const auto [seed, mode] = GetParam();
    Rng rng(seed);

    DebuggerConfig config;
    config.bookkeeping = mode;
    config.arrayCapacity = 32; // force overflow paths
    config.mergeThreshold = 8; // force merge paths
    config.detectRedundantFlush = false;
    config.detectFlushNothing = false;
    PmRuntime runtime;
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);

    // Reference: per-byte state 0=clean, 1=dirty, 2=flushed.
    constexpr std::size_t space = 1 << 10;
    std::vector<int> state(space, 0);

    for (int step = 0; step < 3000; ++step) {
        const int action = static_cast<int>(rng.nextBounded(100));
        if (action < 60) {
            const Addr addr = rng.nextBounded(space - 16);
            const std::uint32_t size =
                1 + static_cast<std::uint32_t>(rng.nextBounded(16));
            runtime.store(addr, size);
            for (Addr a = addr; a < addr + size; ++a)
                state[a] = 1;
        } else if (action < 90) {
            const Addr line = rng.nextBounded(space / 64) * 64;
            runtime.flush(line, 64);
            for (Addr a = line; a < line + 64; ++a) {
                if (state[a] == 1)
                    state[a] = 2;
            }
        } else {
            runtime.fence();
            for (auto &s : state) {
                if (s == 2)
                    s = 0;
            }
        }
    }
    runtime.programEnd();

    // Bytes the reference says are not durable.
    std::set<Addr> expected;
    for (Addr a = 0; a < space; ++a) {
        if (state[a] != 0)
            expected.insert(a);
    }
    // Bytes the debugger reported as not durable.
    std::set<Addr> reported;
    for (const BugReport &bug : debugger.bugs().bugs()) {
        ASSERT_EQ(bug.type, BugType::NoDurability);
        for (Addr a = bug.range.start; a < bug.range.end; ++a)
            reported.insert(a);
    }
    EXPECT_EQ(reported, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, DebuggerPropertyTest,
    ::testing::Combine(::testing::Values(3, 17, 99, 256, 1024),
                       ::testing::Values(BookkeepingMode::Hybrid,
                                         BookkeepingMode::TreeOnly)));

} // namespace
} // namespace pmdb
