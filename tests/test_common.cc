/**
 * @file
 * Unit tests for the common utilities: address-range arithmetic,
 * deterministic RNG, zipfian generators and table rendering.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace pmdb
{
namespace
{

TEST(AddrRangeTest, BasicProperties)
{
    const AddrRange r(100, 200);
    EXPECT_EQ(r.size(), 100u);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(199));
    EXPECT_FALSE(r.contains(200));
    EXPECT_TRUE(AddrRange().empty());
    EXPECT_EQ(AddrRange::fromSize(64, 64), AddrRange(64, 128));
}

TEST(AddrRangeTest, OverlapIsSymmetricAndCorrect)
{
    const AddrRange a(0, 10);
    const AddrRange b(5, 15);
    const AddrRange c(10, 20);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c)); // half-open: [0,10) and [10,20) touch
    EXPECT_TRUE(a.adjacentOrOverlapping(c));
    EXPECT_FALSE(a.overlaps(AddrRange()));
    EXPECT_FALSE(AddrRange().overlaps(a));
}

TEST(AddrRangeTest, ContainsAndIntersect)
{
    const AddrRange big(0, 100);
    const AddrRange small(10, 20);
    EXPECT_TRUE(big.contains(small));
    EXPECT_FALSE(small.contains(big));
    EXPECT_EQ(big.intersect(small), small);
    EXPECT_EQ(AddrRange(0, 10).intersect(AddrRange(5, 15)),
              AddrRange(5, 10));
    EXPECT_TRUE(AddrRange(0, 5).intersect(AddrRange(10, 15)).empty());
}

TEST(AddrRangeTest, UnionWith)
{
    EXPECT_EQ(AddrRange(0, 10).unionWith(AddrRange(5, 20)),
              AddrRange(0, 20));
    EXPECT_EQ(AddrRange().unionWith(AddrRange(3, 7)), AddrRange(3, 7));
    EXPECT_EQ(AddrRange(3, 7).unionWith(AddrRange()), AddrRange(3, 7));
}

TEST(CacheLineTest, BaseAndIndex)
{
    EXPECT_EQ(cacheLineBase(0), 0u);
    EXPECT_EQ(cacheLineBase(63), 0u);
    EXPECT_EQ(cacheLineBase(64), 64u);
    EXPECT_EQ(cacheLineIndex(127), 1u);
    EXPECT_EQ(cacheLineIndex(128), 2u);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BernoulliRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.02);
}

TEST(ZipfianTest, StaysInRangeAndIsSkewed)
{
    ZipfianGenerator zipf(1000, 0.99, 5);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t v = zipf.next();
        ASSERT_LT(v, 1000u);
        ++counts[v];
    }
    // Rank-0 should be far more popular than the median rank.
    EXPECT_GT(counts[0], 50 * std::max(1, counts[500]));
}

TEST(ZipfianTest, ScrambledCoversSpace)
{
    ScrambledZipfianGenerator zipf(1000, 5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t v = zipf.next();
        ASSERT_LT(v, 1000u);
        seen.insert(v);
    }
    // Scrambling should spread the hot set across the key space.
    EXPECT_GT(seen.size(), 200u);
}

TEST(ZipfianTest, LargeKeySpaceConstructsQuickly)
{
    ZipfianGenerator zipf(100'000'000ULL, 0.99, 1);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(zipf.next(), 100'000'000ULL);
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTableTest, PadsShortRows)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"only-one"});
    EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(FormatTest, Helpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtFactor(2.5), "2.5x");
    EXPECT_EQ(fmtPercent(12.34), "12.3%");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
}

TEST(LogLevelTest, ParsesKnownNames)
{
    LogLevel level = LogLevel::Warn;
    EXPECT_TRUE(parseLogLevel("debug", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("INFO", &level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("Warning", &level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("error", &level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("off", &level));
    EXPECT_EQ(level, LogLevel::None);
    EXPECT_TRUE(parseLogLevel("none", &level));
    EXPECT_EQ(level, LogLevel::None);
}

TEST(LogLevelTest, RejectsUnknownNames)
{
    LogLevel level = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("loud", &level));
    EXPECT_FALSE(parseLogLevel("", &level));
    // The out-param is untouched on failure.
    EXPECT_EQ(level, LogLevel::Info);
}

TEST(Mix64Test, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outputs.insert(mix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

} // namespace
} // namespace pmdb
