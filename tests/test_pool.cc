/**
 * @file
 * Unit tests for the mini-PMDK pool: allocation alignment and reuse,
 * the root object, instrumented persist primitives.
 */

#include <gtest/gtest.h>

#include "pmdk/pool.hh"
#include "trace/recorder.hh"

namespace pmdb
{
namespace
{

class PoolTest : public ::testing::Test
{
  protected:
    PoolTest() : pool(runtime, 4 << 20, "test.pool") {}

    PmRuntime runtime;
    PmemPool pool;
};

TEST_F(PoolTest, AllocReturnsCacheLineAlignedZeroedMemory)
{
    const Addr a = pool.alloc(100);
    const Addr b = pool.alloc(100);
    EXPECT_EQ(a % cacheLineSize, 0u);
    EXPECT_EQ(b % cacheLineSize, 0u);
    EXPECT_NE(a, b);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pool.load<std::uint8_t>(a + i), 0u);
}

TEST_F(PoolTest, AllocationsAreImmediatelyDurable)
{
    const Addr a = pool.alloc(64);
    EXPECT_TRUE(pool.device().isDurable(AddrRange::fromSize(a, 64)));
}

TEST_F(PoolTest, FreeAndReuseSameSizeClass)
{
    const Addr a = pool.alloc(64);
    const std::size_t used = pool.heapUsed();
    pool.freeObj(a);
    EXPECT_LT(pool.heapUsed(), used);
    const Addr b = pool.alloc(64);
    EXPECT_EQ(a, b); // free list reuse
}

TEST_F(PoolTest, DoubleFreePanics)
{
    const Addr a = pool.alloc(64);
    pool.freeObj(a);
    EXPECT_DEATH(pool.freeObj(a), "double free");
}

TEST_F(PoolTest, RootIsStableAndSized)
{
    const Addr root = pool.root(256);
    EXPECT_EQ(root, pool.root(256));
    EXPECT_EQ(root, pool.root(16)); // smaller re-request is fine
    // The heap must not collide with the root object.
    const Addr a = pool.alloc(64);
    EXPECT_GE(a, root + 256);
}

TEST_F(PoolTest, StoreAndLoadRoundTrip)
{
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 0xdeadbeef);
    EXPECT_EQ(pool.load<std::uint64_t>(a), 0xdeadbeefu);
}

TEST_F(PoolTest, PersistMakesDataDurable)
{
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 7);
    EXPECT_FALSE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
    pool.persist(a, 8);
    EXPECT_TRUE(pool.device().isDurable(AddrRange::fromSize(a, 8)));
    std::uint64_t v = 0;
    pool.device().readPersisted(a, &v, 8);
    EXPECT_EQ(v, 7u);
}

TEST_F(PoolTest, FlushEmitsOneEventPerCoveredLine)
{
    TraceRecorder recorder;
    runtime.attach(&recorder);
    const Addr a = pool.alloc(256);
    recorder.clear();
    pool.flush(a, 130); // covers 3 lines
    int flushes = 0;
    for (const Event &event : recorder.events()) {
        if (event.kind == EventKind::Flush) {
            ++flushes;
            EXPECT_EQ(event.addr % cacheLineSize, 0u);
            EXPECT_EQ(event.size, cacheLineSize);
        }
    }
    EXPECT_EQ(flushes, 3);
    runtime.detach(&recorder);
}

TEST_F(PoolTest, WriteBytesEmitsStoreEvent)
{
    TraceRecorder recorder;
    runtime.attach(&recorder);
    const Addr a = pool.alloc(64);
    recorder.clear();
    const std::uint32_t v = 42;
    pool.writeBytes(a, &v, sizeof(v));
    ASSERT_EQ(recorder.events().size(), 1u);
    EXPECT_EQ(recorder.events()[0].kind, EventKind::Store);
    EXPECT_EQ(recorder.events()[0].addr, a);
    EXPECT_EQ(recorder.events()[0].size, sizeof(v));
    runtime.detach(&recorder);
}

TEST_F(PoolTest, HeaderLineNeverAliasesDataLines)
{
    // The allocator keeps the block header on its own cache line so
    // header persists never write back user data.
    const Addr a = pool.alloc(64);
    EXPECT_NE(cacheLineBase(a - 1), cacheLineBase(a));
}

TEST(PoolStandaloneTest, TrackPersistenceOffSkipsDeviceSink)
{
    PmRuntime runtime;
    PmemPool pool(runtime, 1 << 20, "perf.pool",
                  /*track_persistence=*/false);
    const Addr a = pool.alloc(64);
    pool.store<std::uint64_t>(a, 1);
    pool.persist(a, 8);
    // The volatile image still works; the persistence domain is not
    // tracked (the device never saw any events, so no line is dirty).
    EXPECT_EQ(pool.load<std::uint64_t>(a), 1u);
    EXPECT_EQ(pool.device().dirtyLineCount(), 0u);
    EXPECT_EQ(pool.device().pendingLineCount(), 0u);
}

TEST(PoolStandaloneTest, TooSmallPoolIsFatal)
{
    PmRuntime runtime;
    EXPECT_DEATH(PmemPool(runtime, 1024, "tiny"), "too small");
}

} // namespace
} // namespace pmdb
