/**
 * @file
 * Cross-module integration tests: several detectors sharing one event
 * stream, verdict agreement between detectors on their common bug
 * types, bookkeeping-mode equivalence on full workloads, and
 * end-to-end determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detectors/pmdebugger_detector.hh"
#include "detectors/pmemcheck.hh"
#include "detectors/registry.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

TEST(IntegrationTest, AllDetectorsShareOneStream)
{
    PmRuntime runtime;
    std::vector<std::unique_ptr<Detector>> detectors;
    for (const std::string &name : detectorNames()) {
        detectors.push_back(makeDetector(name));
        runtime.attach(detectors.back().get());
    }

    auto workload = makeWorkload("hashmap_atomic");
    WorkloadOptions options;
    options.operations = 200;
    options.faults.enable("hmatomic_skip_entry_flush");
    workload->run(runtime, options);
    for (auto &detector : detectors)
        detector->finalize();

    // Every tool that can detect durability bugs agrees on this one.
    for (auto &detector : detectors) {
        const std::string name = detector->detectorName();
        if (name == "pmdebugger" || name == "pmemcheck" ||
            name == "xfdetector" || name == "persistence_inspector") {
            EXPECT_TRUE(detector->bugs().hasAny(BugType::NoDurability))
                << name;
        }
        if (name == "nulgrind") {
            EXPECT_EQ(detector->bugs().total(), 0u);
        }
    }
}

TEST(IntegrationTest, PmDebuggerAndPmemcheckAgreeOnDurabilitySites)
{
    // On a strict-model workload with a durability bug, PMDebugger and
    // Pmemcheck must report the same set of never-persisted ranges.
    PmRuntime runtime;
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    PmDebuggerDetector pmdebugger(std::move(config));
    PmemcheckDetector pmemcheck;
    runtime.attach(&pmdebugger);
    runtime.attach(&pmemcheck);

    auto workload = makeWorkload("memcached");
    WorkloadOptions options;
    options.operations = 500;
    options.setRatio = 0.5;
    options.faults.enable("mc_bug_2"); // shard casId never flushed
    workload->run(runtime, options);
    pmdebugger.finalize();
    pmemcheck.finalize();

    auto sites = [](const BugCollector &bugs) {
        std::set<std::pair<Addr, Addr>> out;
        for (const BugReport &bug : bugs.bugs()) {
            if (bug.type == BugType::NoDurability)
                out.emplace(bug.range.start, bug.range.end);
        }
        return out;
    };
    // Pmemcheck merges adjacent records, so compare byte coverage.
    auto bytes = [](const std::set<std::pair<Addr, Addr>> &ranges) {
        std::set<Addr> out;
        for (const auto &[start, end] : ranges) {
            for (Addr a = start; a < end; ++a)
                out.insert(a);
        }
        return out;
    };
    EXPECT_EQ(bytes(sites(pmdebugger.bugs())),
              bytes(sites(pmemcheck.bugs())));
}

TEST(IntegrationTest, VerdictsStableAcrossBookkeepingModes)
{
    // The ablation modes must agree with the hybrid on whole-workload
    // verdicts, not just synthetic streams.
    for (const char *fault :
         {"hmtx_skip_stats_flush", "hmtx_double_log"}) {
        std::map<BookkeepingMode, std::size_t> counts;
        for (BookkeepingMode mode :
             {BookkeepingMode::Hybrid, BookkeepingMode::TreeOnly,
              BookkeepingMode::ArrayOnly}) {
            PmRuntime runtime;
            DebuggerConfig config;
            config.model = PersistencyModel::Epoch;
            config.bookkeeping = mode;
            PmDebuggerDetector detector(std::move(config));
            runtime.attach(&detector);
            auto workload = makeWorkload("hashmap_tx");
            WorkloadOptions options;
            options.operations = 300;
            options.faults.enable(fault);
            workload->run(runtime, options);
            detector.finalize();
            counts[mode] = detector.bugs().total();
        }
        EXPECT_EQ(counts[BookkeepingMode::Hybrid],
                  counts[BookkeepingMode::TreeOnly])
            << fault;
        EXPECT_EQ(counts[BookkeepingMode::Hybrid],
                  counts[BookkeepingMode::ArrayOnly])
            << fault;
    }
}

TEST(IntegrationTest, BugCountsAreDeterministic)
{
    auto run_once = [] {
        PmRuntime runtime;
        PmDebuggerDetector detector;
        runtime.attach(&detector);
        auto workload = makeWorkload("redis");
        WorkloadOptions options;
        options.operations = 400;
        options.seed = 77;
        options.faults.enable("redis_skip_log_dict");
        workload->run(runtime, options);
        detector.finalize();
        return std::make_pair(detector.bugs().total(),
                              detector.stats().stores);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, DetectorsSurviveBackToBackWorkloads)
{
    // One detector instance observing two programs in sequence (pool
    // address spaces overlap): the first program's state must be fully
    // retired by its fences before the second starts.
    PmRuntime runtime;
    PmDebuggerDetector detector;
    runtime.attach(&detector);
    for (int round = 0; round < 2; ++round) {
        auto workload = makeWorkload("c_tree");
        WorkloadOptions options;
        options.operations = 100;
        options.seed = 5 + round;
        workload->run(runtime, options);
    }
    detector.finalize();
    EXPECT_EQ(detector.bugs().total(), 0u)
        << detector.bugs().summary();
}

TEST(IntegrationTest, MultithreadedMemcachedCleanUnderDebugger)
{
    PmRuntime runtime;
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);

    auto workload = makeWorkload("memcached");
    WorkloadOptions options;
    options.operations = 4000;
    options.threads = 4;
    options.setRatio = 0.3;
    workload->run(runtime, options);
    detector.finalize();
    // Durability/flush rules hold even under interleaved threads.
    EXPECT_EQ(detector.bugs().countOf(BugType::NoDurability), 0u)
        << detector.bugs().summary();
}

} // namespace
} // namespace pmdb
