/**
 * @file
 * Tests for the extension features: remove operations on the
 * persistent indexes (crash-consistency clean under the debugger),
 * the parameterized pattern generator (closing the loop against the
 * characterization tool), and a differential test between the online
 * and post-mortem detectors.
 */

#include <gtest/gtest.h>

#include "charz/characterize.hh"
#include "common/rng.hh"
#include "detectors/persistence_inspector.hh"
#include "detectors/pmdebugger_detector.hh"
#include "trace/recorder.hh"
#include "workloads/ctree.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/hashmap_tx.hh"
#include "workloads/rtree.hh"
#include "workloads/synth_patterns.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

/** Fixture with a debugger attached: removes must stay bug-free. */
class RemoveTest : public ::testing::Test
{
  protected:
    RemoveTest() { runtime.attach(&detector); }

    ~RemoveTest() override { runtime.detach(&detector); }

    void
    expectClean()
    {
        runtime.programEnd();
        detector.finalize();
        EXPECT_EQ(detector.bugs().total(), 0u)
            << detector.bugs().summary();
    }

    PmRuntime runtime;
    PmDebuggerDetector detector;
    PmemPool pool{runtime, 32 << 20, "remove.pool"};
    FaultSet noFaults;
};

TEST_F(RemoveTest, HashmapTxInsertRemoveLookup)
{
    PersistentHashmapTx map(pool, noFaults);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.insert(k, k);
    for (std::uint64_t k = 0; k < 1000; k += 2)
        EXPECT_TRUE(map.remove(k));
    EXPECT_FALSE(map.remove(0));      // already gone
    EXPECT_FALSE(map.remove(5000));   // never present
    EXPECT_EQ(map.count(), 500u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(map.lookup(k).has_value(), k % 2 == 1) << k;
    map.flushStats();
    expectClean();
}

TEST_F(RemoveTest, HashmapTxReusesFreedBlocks)
{
    PersistentHashmapTx map(pool, noFaults);
    map.insert(1, 10);
    ASSERT_TRUE(map.remove(1));
    const std::size_t used = pool.heapUsed();
    map.insert(2, 20); // should reuse the freed entry block
    EXPECT_EQ(pool.heapUsed(), used + 64);
    map.flushStats();
    expectClean();
}

TEST_F(RemoveTest, HashmapAtomicInsertRemoveLookup)
{
    PersistentHashmapAtomic map(pool, noFaults);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.insert(k, k);
    for (std::uint64_t k = 0; k < 1000; k += 3)
        EXPECT_TRUE(map.remove(k));
    EXPECT_FALSE(map.remove(3));
    for (std::uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(map.lookup(k).has_value(), k % 3 != 0) << k;
    expectClean();
}

TEST_F(RemoveTest, CTreeInsertRemoveLookup)
{
    PersistentCTree tree(pool, noFaults);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 1000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i)
        tree.insert(keys[i], i);
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(tree.remove(keys[i])) << i;
    EXPECT_FALSE(tree.remove(keys[0]));
    EXPECT_EQ(tree.count(), 500u);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(tree.lookup(keys[i]).has_value(), i % 2 == 1) << i;
    expectClean();
}

TEST_F(RemoveTest, CTreeRemoveDownToEmptyAndRefill)
{
    PersistentCTree tree(pool, noFaults);
    for (std::uint64_t k = 0; k < 64; ++k)
        tree.insert(k, k);
    for (std::uint64_t k = 0; k < 64; ++k)
        EXPECT_TRUE(tree.remove(k)) << k;
    EXPECT_EQ(tree.count(), 0u);
    EXPECT_FALSE(tree.lookup(0).has_value());
    tree.insert(7, 70);
    EXPECT_EQ(tree.lookup(7).value(), 70u);
    expectClean();
}

TEST_F(RemoveTest, RTreeInsertRemoveLookup)
{
    PersistentRTree tree(pool, noFaults);
    Rng rng(4);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 1000; ++i)
        keys.push_back(rng.next());
    for (std::size_t i = 0; i < keys.size(); ++i)
        tree.insert(keys[i], i);
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(tree.remove(keys[i])) << i;
    EXPECT_EQ(tree.count(), 500u);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(tree.lookup(keys[i]).has_value(), i % 2 == 1) << i;
    expectClean();
}

/**
 * Pattern-generator property: characterizing a generated stream must
 * recover the configured parameters (within sampling error) — the
 * generator and the Section 3 characterization validate each other.
 */
struct PatternCase
{
    double collective;
    double d1Weight;
    int storesPerOp;
    /** Expected collective-interval percentage range. Deferred (d>1)
     * operations merge with their successors into dispersed intervals
     * — the paper's own Figure 3 example — so the expected collective
     * fraction drops below collectiveRatio as d1Weight drops. */
    double minCollective;
    double maxCollective;
};

class PatternPropertyTest : public ::testing::TestWithParam<PatternCase>
{
};

TEST_P(PatternPropertyTest, CharacterizationRecoversParameters)
{
    const PatternCase &c = GetParam();
    PatternParams params;
    params.collectiveRatio = c.collective;
    params.storesPerOp = c.storesPerOp;
    params.distanceWeights = {c.d1Weight, 1.0 - c.d1Weight, 0, 0, 0, 0};

    PmRuntime runtime;
    TraceRecorder recorder;
    PmemPool pool(runtime, 32 << 20, "pattern.pool");
    PatternGenerator generator(pool, params, 77, 4096);
    // Record only the generated stream, not the region's allocation.
    runtime.attach(&recorder);
    for (int i = 0; i < 4000; ++i)
        generator.operation();
    generator.drain();
    runtime.detach(&recorder);

    const CharacterizationResult r = characterize(recorder.events());
    EXPECT_NEAR(r.distancePercent(1), c.d1Weight * 100.0, 4.0);
    EXPECT_NEAR(r.distancePercent(2), (1.0 - c.d1Weight) * 100.0, 4.0);
    EXPECT_GE(r.collectivePercent(), c.minCollective);
    EXPECT_LE(r.collectivePercent(), c.maxCollective);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PatternPropertyTest,
    ::testing::Values(PatternCase{1.0, 1.0, 4, 95.0, 100.0},
                      PatternCase{1.0, 0.7, 4, 60.0, 85.0},
                      PatternCase{0.0, 1.0, 4, 0.0, 20.0},
                      PatternCase{0.5, 0.9, 2, 35.0, 65.0},
                      PatternCase{1.0, 0.5, 8, 50.0, 80.0}));

TEST(PatternWorkloadTest, RegisteredAndCleanUnderDebugger)
{
    PmRuntime runtime;
    PmDebuggerDetector detector;
    runtime.attach(&detector);
    auto workload = makeWorkload("synth_patterns");
    ASSERT_NE(workload, nullptr);
    WorkloadOptions options;
    options.operations = 2000;
    workload->run(runtime, options);
    detector.finalize();
    EXPECT_EQ(detector.bugs().total(), 0u)
        << detector.bugs().summary();
}

/**
 * Differential test: the online debugger and the post-mortem
 * Persistence Inspector must agree on durability verdicts over random
 * pattern streams (they share no bookkeeping code).
 */
class DifferentialTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DifferentialTest, OnlineAndPostMortemAgreeOnDurability)
{
    PmRuntime runtime;
    DebuggerConfig config;
    config.detectFlushNothing = false;   // inspector has no such rule
    config.detectRedundantFlush = false; // dedup policies differ
    PmDebuggerDetector online(std::move(config));
    PersistenceInspector post_mortem;
    runtime.attach(&online);
    runtime.attach(&post_mortem);

    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.nextBounded(1 << 12);
        const int action = static_cast<int>(rng.nextBounded(10));
        if (action < 6)
            runtime.store(addr, 8);
        else if (action < 9)
            runtime.flush(cacheLineBase(addr), 64);
        else
            runtime.fence();
    }
    runtime.programEnd();

    auto durable_bytes = [](const BugCollector &bugs) {
        std::set<Addr> out;
        for (const BugReport &bug : bugs.bugs()) {
            if (bug.type == BugType::NoDurability) {
                for (Addr a = bug.range.start; a < bug.range.end; ++a)
                    out.insert(a);
            }
        }
        return out;
    };
    EXPECT_EQ(durable_bytes(online.bugs()),
              durable_bytes(post_mortem.bugs()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55));

} // namespace
} // namespace pmdb
