/**
 * @file
 * Bug-suite tests: the 78-case composition matches Table 6's "Bug
 * cases" row, every case is detected by PMDebugger, and the detection
 * counts / false-negative rates / type coverage of all four tools
 * reproduce Table 6 exactly (this is the paper's headline capability
 * result, verified here as a regression test).
 */

#include <gtest/gtest.h>

#include <vector>

#include "workloads/bug_suite.hh"
#include "workloads/suite_runner.hh"

namespace pmdb
{
namespace
{

TEST(BugSuiteTest, CaseCountsMatchTable6)
{
    EXPECT_EQ(bugSuite().size(), 78u);
    EXPECT_EQ(casesOfType(BugType::NoDurability).size(), 44u);
    EXPECT_EQ(casesOfType(BugType::MultipleOverwrite).size(), 2u);
    EXPECT_EQ(casesOfType(BugType::NoOrderGuarantee).size(), 4u);
    EXPECT_EQ(casesOfType(BugType::RedundantFlush).size(), 6u);
    EXPECT_EQ(casesOfType(BugType::FlushNothing).size(), 3u);
    EXPECT_EQ(casesOfType(BugType::RedundantLogging).size(), 5u);
    EXPECT_EQ(casesOfType(BugType::LackDurabilityInEpoch).size(), 4u);
    EXPECT_EQ(casesOfType(BugType::RedundantEpochFence).size(), 4u);
    EXPECT_EQ(casesOfType(BugType::LackOrderingInStrands).size(), 2u);
    EXPECT_EQ(casesOfType(BugType::CrossFailureSemantic).size(), 4u);
}

TEST(BugSuiteTest, CaseIdsAreUniqueAndNamed)
{
    std::set<int> ids;
    std::set<std::string> names;
    for (const BugCase &bug_case : bugSuite()) {
        EXPECT_TRUE(ids.insert(bug_case.id).second);
        EXPECT_TRUE(names.insert(bug_case.name).second);
        EXPECT_TRUE(bug_case.scenario != nullptr);
    }
}

TEST(BugSuiteTest, PmDebuggerDetectsEveryCase)
{
    for (const BugCase &bug_case : bugSuite()) {
        const CaseOutcome outcome = runCase(bug_case, "pmdebugger");
        EXPECT_TRUE(outcome.detected)
            << "case " << bug_case.id << " (" << bug_case.name << ")";
    }
}

TEST(BugSuiteTest, NoToolReportsFalsePositives)
{
    // Run the correct variant of every case under every tool: the
    // paper reports zero false positives across the board.
    const std::vector<std::string> tools = {"pmdebugger", "pmemcheck",
                                            "pmtest", "xfdetector"};
    for (const std::string &tool : tools) {
        for (const BugCase &bug_case : bugSuite()) {
            const CaseOutcome outcome = runCase(bug_case, tool, true);
            EXPECT_FALSE(outcome.falsePositive)
                << tool << " on case " << bug_case.id << " ("
                << bug_case.name << ")";
        }
    }
}

TEST(BugSuiteTest, DetectionMatrixReproducesTable6)
{
    const SuiteMatrix matrix =
        runSuite({"pmdebugger", "pmemcheck", "pmtest", "xfdetector"});
    const auto scores = scoreSuite(matrix);

    std::map<std::string, SuiteScore> by_name;
    for (const SuiteScore &score : scores)
        by_name[score.detector] = score;

    // Table 6 / Section 7.3: 78 / 65 / 61 / 55 detections,
    // 10 / 6 / 5 / 4 bug types, FN rates 0 / 16.7 / 21.8 / 29.5 %.
    EXPECT_EQ(by_name["pmdebugger"].detected, 78);
    EXPECT_EQ(by_name["pmdebugger"].typesDetected, 10);
    EXPECT_EQ(by_name["xfdetector"].detected, 65);
    EXPECT_EQ(by_name["xfdetector"].typesDetected, 6);
    EXPECT_EQ(by_name["pmtest"].detected, 61);
    EXPECT_EQ(by_name["pmtest"].typesDetected, 5);
    EXPECT_EQ(by_name["pmemcheck"].detected, 55);
    EXPECT_EQ(by_name["pmemcheck"].typesDetected, 4);

    EXPECT_NEAR(by_name["pmdebugger"].falseNegativeRate(78), 0.0, 0.01);
    EXPECT_NEAR(by_name["xfdetector"].falseNegativeRate(78), 16.7, 0.1);
    EXPECT_NEAR(by_name["pmtest"].falseNegativeRate(78), 21.8, 0.1);
    EXPECT_NEAR(by_name["pmemcheck"].falseNegativeRate(78), 29.5, 0.1);
}

TEST(BugSuiteTest, CapabilityGapsAreTheExpectedOnes)
{
    const SuiteMatrix matrix = runSuite({"pmemcheck", "pmtest"});

    // Pmemcheck misses every relaxed-model, ordering, logging and
    // cross-failure case — and nothing else.
    for (const BugCase &bug_case : bugSuite()) {
        const bool pmemcheck_capable =
            bug_case.expected == BugType::NoDurability ||
            bug_case.expected == BugType::MultipleOverwrite ||
            bug_case.expected == BugType::RedundantFlush ||
            bug_case.expected == BugType::FlushNothing;
        EXPECT_EQ(matrix.at("pmemcheck").at(bug_case.id).detected,
                  pmemcheck_capable)
            << "case " << bug_case.id << " (" << bug_case.name << ")";
    }

    // PMTest misses exactly the unannotatable types.
    for (const BugCase &bug_case : bugSuite()) {
        const bool pmtest_capable =
            bug_case.pmtestAnnotated &&
            (bug_case.expected == BugType::NoDurability ||
             bug_case.expected == BugType::MultipleOverwrite ||
             bug_case.expected == BugType::NoOrderGuarantee ||
             bug_case.expected == BugType::RedundantFlush ||
             bug_case.expected == BugType::RedundantLogging);
        EXPECT_EQ(matrix.at("pmtest").at(bug_case.id).detected,
                  pmtest_capable)
            << "case " << bug_case.id << " (" << bug_case.name << ")";
    }
}

TEST(BugSuiteTest, NewBugReproductions)
{
    // Section 7.4's three highlighted new bugs, by name.
    auto find = [](const std::string &name) -> const BugCase * {
        for (const BugCase &bug_case : bugSuite()) {
            if (bug_case.name == name)
                return &bug_case;
        }
        return nullptr;
    };

    // Figure 9a: memcached ITEM_set_cas not persisted.
    const BugCase *fig9a = find("memcached_bug_1");
    ASSERT_NE(fig9a, nullptr);
    EXPECT_TRUE(runCase(*fig9a, "pmdebugger").detected);

    // Figure 9b: PMDK hashmap_atomic redundant epoch fence.
    const BugCase *fig9b = find("pmdk_create_hashmap_fence");
    ASSERT_NE(fig9b, nullptr);
    EXPECT_TRUE(runCase(*fig9b, "pmdebugger").detected);
    // ... which neither XFDetector nor PMTest can see (Section 7.4).
    EXPECT_FALSE(runCase(*fig9b, "xfdetector").detected);
    EXPECT_FALSE(runCase(*fig9b, "pmtest").detected);

    // Figure 9c: PMDK array example, lack durability in epoch.
    const BugCase *fig9c = find("epoch_unlogged_store");
    ASSERT_NE(fig9c, nullptr);
    EXPECT_TRUE(runCase(*fig9c, "pmdebugger").detected);
}

} // namespace
} // namespace pmdb
