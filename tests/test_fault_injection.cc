/**
 * @file
 * Fault-injection tests: every named workload fault produces the bug
 * type it is documented to produce, under PMDebugger (parameterized
 * over the (workload, fault, type) table).
 */

#include <gtest/gtest.h>

#include "detectors/pmdebugger_detector.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

struct FaultCase
{
    const char *workload;
    const char *fault;
    BugType expected;
    std::size_t ops;
};

std::ostream &
operator<<(std::ostream &out, const FaultCase &c)
{
    return out << c.workload << "/" << c.fault;
}

class FaultInjectionTest : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(FaultInjectionTest, ProducesDocumentedBugType)
{
    const FaultCase &c = GetParam();
    auto workload = makeWorkload(c.workload);
    ASSERT_NE(workload, nullptr);

    DebuggerConfig config;
    config.model = workload->model();
    if (!workload->orderSpecText().empty())
        config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
    PmRuntime runtime;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);

    WorkloadOptions options;
    options.operations = c.ops;
    options.seed = 13;
    options.setRatio = 0.5;
    options.faults.enable(c.fault);
    workload->run(runtime, options);
    detector.finalize();

    EXPECT_TRUE(detector.bugs().hasAny(c.expected))
        << detector.bugs().summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultInjectionTest,
    ::testing::Values(
        FaultCase{"b_tree", "btree_skip_log_meta",
                  BugType::LackDurabilityInEpoch, 100},
        FaultCase{"b_tree", "btree_persist_in_tx",
                  BugType::RedundantEpochFence, 100},
        FaultCase{"b_tree", "btree_double_log",
                  BugType::RedundantLogging, 100},
        FaultCase{"c_tree", "ctree_skip_log_parent",
                  BugType::LackDurabilityInEpoch, 100},
        FaultCase{"r_tree", "rtree_skip_log_slot",
                  BugType::LackDurabilityInEpoch, 100},
        FaultCase{"rb_tree", "rbtree_skip_log_rotation",
                  BugType::LackDurabilityInEpoch, 300},
        FaultCase{"hashmap_tx", "hmtx_skip_log_bucket",
                  BugType::LackDurabilityInEpoch, 100},
        FaultCase{"hashmap_tx", "hmtx_double_log",
                  BugType::RedundantLogging, 100},
        FaultCase{"hashmap_tx", "hmtx_skip_stats_flush",
                  BugType::NoDurability, 100},
        FaultCase{"hashmap_atomic", "hmatomic_skip_entry_flush",
                  BugType::NoDurability, 100},
        FaultCase{"hashmap_atomic", "hmatomic_double_flush",
                  BugType::RedundantFlush, 100},
        FaultCase{"hashmap_atomic", "hmatomic_flush_empty",
                  BugType::FlushNothing, 100},
        FaultCase{"hashmap_atomic", "hmatomic_bucket_before_entry",
                  BugType::NoOrderGuarantee, 100},
        FaultCase{"hashmap_atomic", "pmdk_create_bug",
                  BugType::RedundantEpochFence, 50},
        FaultCase{"synth_strand", "strand_missing_barrier",
                  BugType::NoDurability, 128},
        FaultCase{"synth_strand", "strand_cross_persist",
                  BugType::LackOrderingInStrands, 128},
        FaultCase{"redis", "redis_skip_log_dict",
                  BugType::LackDurabilityInEpoch, 200},
        FaultCase{"redis", "redis_double_log",
                  BugType::RedundantLogging, 200},
        FaultCase{"redis", "redis_persist_in_tx",
                  BugType::RedundantEpochFence, 200},
        FaultCase{"memcached", "mc_bug_1", BugType::NoDurability, 400},
        FaultCase{"memcached", "mc_bug_9", BugType::RedundantFlush, 400},
        FaultCase{"memcached", "mc_bug_12", BugType::FlushNothing, 400},
        FaultCase{"memcached", "mc_bug_13", BugType::NoOrderGuarantee,
                  400},
        FaultCase{"memcached", "mc_bug_19", BugType::NoDurability, 400}));

TEST(RealBugsModeTest, MemcachedAsShippedContainsManyBugs)
{
    // "mc_real_bugs" turns on all 19 injection points at once — the
    // as-shipped memcached-pmem the paper debugged (Section 7.4).
    auto workload = makeWorkload("memcached");
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
    PmRuntime runtime;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);

    WorkloadOptions options;
    options.operations = 2000;
    options.setRatio = 0.5;
    options.cacheCapacity = 256;
    options.faults.enable("mc_real_bugs");
    workload->run(runtime, options);
    detector.finalize();

    // At least four distinct bug types coexist in the buggy build.
    EXPECT_TRUE(detector.bugs().hasAny(BugType::NoDurability));
    EXPECT_TRUE(detector.bugs().hasAny(BugType::RedundantFlush));
    EXPECT_TRUE(detector.bugs().hasAny(BugType::FlushNothing));
    EXPECT_GT(detector.bugs().total(), 10u);
}

} // namespace
} // namespace pmdb
