/**
 * @file
 * Tests for multi-writer shared-pool detection: the SharedPmemPool
 * device semantics, the cross-session rule engine, and the daemon's
 * merged two-writer verdicts — including the two guarantees the
 * subsystem exists for: the seeded shared_queue bugs are visible
 * *only* to the cross-session engine (each writer's own session stays
 * clean), and the merged verdict is bit-identical across detector
 * shard counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "crossproc/engine.hh"
#include "crossproc/rules.hh"
#include "pmem/shared_device.hh"
#include "service/daemon.hh"
#include "service/remote_sink.hh"
#include "workloads/shared_queue.hh"

namespace pmdb
{
namespace
{

std::atomic<int> pathCounter{0};

/** Unique per-test scratch path (pid-qualified; see test_service.cc). */
std::string
scratchPath(const std::string &stem)
{
    return ::testing::TempDir() + "pmdb_xp_" +
           std::to_string(::getpid()) + "_" + stem + "_" +
           std::to_string(pathCounter.fetch_add(1));
}

/** Hand-built shared-pool event for driving CrossRuleEngine. */
Event
mk(EventKind kind, Addr addr, std::uint32_t size, SeqNum global)
{
    Event event;
    event.kind = kind;
    event.addr = addr;
    event.size = size;
    event.seq = global;
    event.global = global;
    return event;
}

// --- CrossRuleEngine unit tests ------------------------------------

TEST(CrossRuleEngineTest, ReadOfOtherWritersDirtyLineIsABug)
{
    CrossRuleEngine engine(4, 64ull << 20);
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 1));
    engine.feed(2, mk(EventKind::Load, 0x0, 8, 2));
    engine.finish();
    ASSERT_EQ(engine.bugs().size(), 1u);
    EXPECT_EQ(engine.bugs()[0].type,
              CrossBugType::UnflushedCrossWriterRead);
    EXPECT_EQ(engine.bugs()[0].ownerWriter, 1u);
    EXPECT_EQ(engine.bugs()[0].observerWriter, 2u);
}

TEST(CrossRuleEngineTest, ReadOfDurableOrOwnDataIsQuiet)
{
    CrossRuleEngine engine(4, 64ull << 20);
    // Durable: store, flush, fence by w1, then w2 reads.
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 1));
    engine.feed(1, mk(EventKind::Flush, 0x0, 64, 2));
    engine.feed(1, mk(EventKind::Fence, 0, 0, 3));
    engine.feed(2, mk(EventKind::Load, 0x0, 8, 4));
    // Own dirty data: w2 stores then reads its own line.
    engine.feed(2, mk(EventKind::Store, 0x1000, 64, 5));
    engine.feed(2, mk(EventKind::Load, 0x1000, 8, 6));
    engine.finish();
    EXPECT_TRUE(engine.bugs().empty());
}

TEST(CrossRuleEngineTest, PublishBeforePersistFiresAtReadersFence)
{
    CrossRuleEngine engine(4, 64ull << 20);
    // w1 flushes but never fences the entry; w2 reads it, publishes
    // its own store, and fences.
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 1));
    engine.feed(1, mk(EventKind::Flush, 0x0, 64, 2));
    engine.feed(2, mk(EventKind::Load, 0x0, 8, 3));
    engine.feed(2, mk(EventKind::Store, 0x1000, 8, 4));
    engine.feed(2, mk(EventKind::Flush, 0x1000, 64, 5));
    engine.feed(2, mk(EventKind::Fence, 0, 0, 6));
    engine.finish();
    ASSERT_EQ(engine.bugs().size(), 1u);
    EXPECT_EQ(engine.bugs()[0].type,
              CrossBugType::PublishBeforePersist);
    EXPECT_EQ(engine.bugs()[0].ticket, 6u);
}

TEST(CrossRuleEngineTest, SourceFencedFirstSatisfiesTheDependency)
{
    CrossRuleEngine engine(4, 64ull << 20);
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 1));
    engine.feed(1, mk(EventKind::Flush, 0x0, 64, 2));
    engine.feed(2, mk(EventKind::Load, 0x0, 8, 3));
    engine.feed(2, mk(EventKind::Store, 0x1000, 8, 4));
    engine.feed(1, mk(EventKind::Fence, 0, 0, 5)); // source durable
    engine.feed(2, mk(EventKind::Flush, 0x1000, 64, 6));
    engine.feed(2, mk(EventKind::Fence, 0, 0, 7));
    engine.finish();
    EXPECT_TRUE(engine.bugs().empty());
}

TEST(CrossRuleEngineTest, LoadWithoutLaterPublishIsQuiet)
{
    CrossRuleEngine engine(4, 64ull << 20);
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 1));
    engine.feed(1, mk(EventKind::Flush, 0x0, 64, 2));
    engine.feed(2, mk(EventKind::Load, 0x0, 8, 3));
    engine.feed(2, mk(EventKind::Fence, 0, 0, 4)); // nothing published
    engine.finish();
    EXPECT_TRUE(engine.bugs().empty());
}

TEST(CrossRuleEngineTest, StoreIntoOpenForeignEpochIsABug)
{
    CrossRuleEngine engine(4, 64ull << 20);
    engine.feed(1, mk(EventKind::EpochBegin, 0, 0, 1));
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 2));
    engine.feed(2, mk(EventKind::Store, 0x8, 8, 3)); // same line
    engine.feed(1, mk(EventKind::EpochEnd, 0, 0, 4));
    engine.finish();
    ASSERT_EQ(engine.bugs().size(), 1u);
    EXPECT_EQ(engine.bugs()[0].type, CrossBugType::EpochOverlap);
}

TEST(CrossRuleEngineTest, StoreAfterForeignEpochClosesIsQuiet)
{
    CrossRuleEngine engine(4, 64ull << 20);
    engine.feed(1, mk(EventKind::EpochBegin, 0, 0, 1));
    engine.feed(1, mk(EventKind::Store, 0x0, 64, 2));
    engine.feed(1, mk(EventKind::EpochEnd, 0, 0, 3));
    engine.feed(2, mk(EventKind::Store, 0x8, 8, 4));
    // A *new* epoch of w1 must not resurrect the old touch marks.
    engine.feed(1, mk(EventKind::EpochBegin, 0, 0, 5));
    engine.feed(2, mk(EventKind::Store, 0x10, 8, 6));
    engine.feed(1, mk(EventKind::EpochEnd, 0, 0, 7));
    engine.finish();
    EXPECT_TRUE(engine.bugs().empty());
}

// --- SharedPmemPool device semantics -------------------------------

TEST(SharedPmemPoolTest, TwoMappingsShareVolatileAndDurableState)
{
    const std::string path = scratchPath("pool");
    std::string error;
    ASSERT_TRUE(SharedPmemPool::createPoolFile(path, 4096, &error))
        << error;

    PmRuntime rt1, rt2;
    SharedPmemPool w1(rt1, path, 1);
    SharedPmemPool w2(rt2, path, 2);
    ASSERT_TRUE(w1.valid()) << w1.error();
    ASSERT_TRUE(w2.valid()) << w2.error();

    // w1's store is immediately visible to w2's uninstrumented peek.
    w1.store<std::uint64_t>(0x40, 0xDEADBEEFull);
    EXPECT_EQ(w2.peek<std::uint64_t>(0x40), 0xDEADBEEFull);

    // ...but not durable: the crash image still reads zero.
    const AddrRange range = AddrRange::fromSize(0x40, 8);
    EXPECT_TRUE(w1.hasDirty(range));
    EXPECT_FALSE(w1.isDurable(range));
    EXPECT_EQ(w2.crashImage()[0x40], 0u);

    // w2's fence must NOT complete w1's writeback.
    w1.flush(0x40, 8);
    w2.fence();
    EXPECT_TRUE(w1.hasPendingFlush(range));
    EXPECT_FALSE(w1.isDurable(range));

    // w1's own fence does.
    w1.fence();
    EXPECT_TRUE(w2.isDurable(range));
    EXPECT_EQ(w2.crashImage()[0x40], 0xEFu);

    // Tickets were drawn monotonically and are visible to both.
    EXPECT_GT(w1.clockNow(), 0u);
    EXPECT_EQ(w1.clockNow(), w2.clockNow());

    std::remove(path.c_str());
}

TEST(SharedPmemPoolTest, OperationsStampEventsWithGlobalTickets)
{
    const std::string path = scratchPath("poolstamp");
    std::string error;
    ASSERT_TRUE(SharedPmemPool::createPoolFile(path, 4096, &error))
        << error;

    struct Capture : TraceSink
    {
        std::vector<Event> events;
        void handle(const Event &event) override
        {
            events.push_back(event);
        }
    } capture;

    PmRuntime runtime;
    runtime.attach(&capture);
    SharedPmemPool pool(runtime, path, 1);
    ASSERT_TRUE(pool.valid()) << pool.error();

    pool.store<std::uint64_t>(0x0, 7);
    pool.load<std::uint64_t>(0x0);
    pool.persist(0x0, 8);
    pool.coordStore(0, 99); // uninstrumented: no event, no ticket

    // RegisterPmem (unticketed, from the constructor) + store, load,
    // flush, fence — each ticketed in draw order.
    ASSERT_EQ(capture.events.size(), 5u);
    EXPECT_EQ(capture.events[0].kind, EventKind::RegisterPmem);
    EXPECT_EQ(capture.events[0].global, 0u);
    SeqNum last = 0;
    for (std::size_t i = 1; i < capture.events.size(); ++i) {
        EXPECT_NE(capture.events[i].global, 0u);
        EXPECT_GT(capture.events[i].global, last);
        last = capture.events[i].global;
    }
    EXPECT_EQ(capture.events[1].kind, EventKind::Store);
    EXPECT_EQ(capture.events[2].kind, EventKind::Load);
    EXPECT_EQ(pool.clockNow(), 4u);

    std::remove(path.c_str());
}

// --- End-to-end: two writers through a daemon ----------------------

struct PairRun
{
    /** CrossBug::toString() lines, in replay order. */
    std::vector<std::string> crossBugs;
    std::uint64_t merged = 0;
    std::size_t groups = 0;
    /** Per-session (per-writer) daemon reports. */
    std::vector<std::string> producerBugs;
    std::vector<std::string> consumerBugs;
};

/**
 * Run the two shared_queue writers concurrently through an in-process
 * daemon. With @p announcePool false the writers still share the pool
 * file but do not announce it in their Hello, so the daemon treats
 * them as unrelated sessions — the negative control proving the
 * seeded bugs are invisible to per-session detection.
 */
PairRun
runSharedPair(const std::string &fault, std::size_t shards,
              std::size_t ops, bool announcePool = true)
{
    ServiceConfig config;
    config.socketPath = scratchPath("sock");
    config.pool.shards = shards;
    ServiceDaemon daemon(config);
    std::string error;
    EXPECT_TRUE(daemon.start(&error)) << error;

    const std::string pool_path = scratchPath("pool");
    EXPECT_TRUE(SharedPmemPool::createPoolFile(
        pool_path, SharedQueueWorkload::poolBytesFor(ops), &error))
        << error;

    std::vector<std::string> session_bugs[2];
    auto writerBody = [&](std::uint32_t writer,
                          std::vector<std::string> *bugs_out) {
        SharedQueueWorkload workload;
        WorkloadOptions options;
        options.operations = ops;
        options.sharedPoolPath = pool_path;
        options.sharedWriter = writer;
        if (!fault.empty())
            options.faults.enable(fault);

        RemoteSink::Options ropts;
        ropts.socketPath = config.socketPath;
        ropts.ringPath = scratchPath("ring");
        ropts.model = workload.model();
        if (announcePool) {
            ropts.sharedPoolPath = pool_path;
            ropts.sharedWriterId = writer;
        }
        RemoteSink sink;
        std::string err;
        EXPECT_TRUE(sink.connect(ropts, &err)) << err;
        PmRuntime runtime;
        runtime.attach(&sink);
        workload.run(runtime, options);
        ReportBody report;
        EXPECT_TRUE(sink.finish(&report, &err)) << err;
        for (const BugReport &bug : report.bugs)
            bugs_out->push_back(bug.toString());
    };
    std::thread producer(writerBody, SharedQueueWorkload::producerWriter,
                         &session_bugs[0]);
    std::thread consumer(writerBody, SharedQueueWorkload::consumerWriter,
                         &session_bugs[1]);
    producer.join();
    consumer.join();
    while (!daemon.waitForSessions(2, 100)) {
    }
    daemon.stop();

    PairRun run;
    run.producerBugs = session_bugs[0];
    run.consumerBugs = session_bugs[1];
    for (const CrossGroupResult &group : daemon.crossprocResults()) {
        ++run.groups;
        run.merged += group.eventsReplayed;
        for (const CrossBug &bug : group.bugs)
            run.crossBugs.push_back(bug.toString());
    }
    std::remove(pool_path.c_str());
    return run;
}

constexpr std::size_t pairOps = 12;

TEST(CrossprocServiceTest, CleanRunIsQuietEverywhere)
{
    const PairRun run = runSharedPair("", 4, pairOps);
    EXPECT_EQ(run.groups, 1u);
    EXPECT_GT(run.merged, 0u);
    EXPECT_TRUE(run.crossBugs.empty());
    EXPECT_TRUE(run.producerBugs.empty());
    EXPECT_TRUE(run.consumerBugs.empty());
}

TEST(CrossprocServiceTest, SeededBugsFireOnlyInTheCrossEngine)
{
    for (const CrossprocCase &bug_case : crossprocCases()) {
        SCOPED_TRACE(bug_case.name);
        const PairRun run = runSharedPair(bug_case.fault, 4, pairOps);
        // One cross-session bug per operation, all of the seeded rule.
        ASSERT_EQ(run.crossBugs.size(), pairOps);
        for (const std::string &bug : run.crossBugs)
            EXPECT_EQ(bug.compare(0, bug_case.rule.size(),
                                  bug_case.rule),
                      0)
                << bug;
        // ...and both writers' own sessions stayed clean: no
        // per-session detector can see these bugs.
        EXPECT_TRUE(run.producerBugs.empty())
            << (run.producerBugs.empty() ? "" : run.producerBugs[0]);
        EXPECT_TRUE(run.consumerBugs.empty())
            << (run.consumerBugs.empty() ? "" : run.consumerBugs[0]);
    }
}

TEST(CrossprocServiceTest, SeededBugsAreSilentAsIndependentSessions)
{
    for (const CrossprocCase &bug_case : crossprocCases()) {
        SCOPED_TRACE(bug_case.name);
        const PairRun run =
            runSharedPair(bug_case.fault, 4, pairOps,
                          /*announcePool=*/false);
        // No pool announced: no group forms, no cross rules run, and
        // the per-session detectors — all any prior-art tool has —
        // report nothing.
        EXPECT_EQ(run.groups, 0u);
        EXPECT_TRUE(run.crossBugs.empty());
        EXPECT_TRUE(run.producerBugs.empty())
            << (run.producerBugs.empty() ? "" : run.producerBugs[0]);
        EXPECT_TRUE(run.consumerBugs.empty())
            << (run.consumerBugs.empty() ? "" : run.consumerBugs[0]);
    }
}

TEST(CrossprocServiceTest, VerdictBitIdenticalAcrossShardCounts)
{
    std::vector<std::string> faults = {""};
    for (const CrossprocCase &bug_case : crossprocCases())
        faults.push_back(bug_case.fault);
    for (const std::string &fault : faults) {
        SCOPED_TRACE(fault.empty() ? "clean" : fault);
        const PairRun one = runSharedPair(fault, 1, pairOps);
        const PairRun four = runSharedPair(fault, 4, pairOps);
        EXPECT_EQ(one.crossBugs, four.crossBugs);
        EXPECT_EQ(one.merged, four.merged);
        EXPECT_EQ(one.producerBugs, four.producerBugs);
        EXPECT_EQ(one.consumerBugs, four.consumerBugs);
    }
}

} // namespace
} // namespace pmdb
