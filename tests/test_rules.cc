/**
 * @file
 * Rule-level tests: each of the nine generalized detection rules is
 * exercised in isolation with a hand-built event stream, with both a
 * triggering and a non-triggering (clean) variant.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/debugger.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

/** Build a debugger + runtime for one rule scenario. */
struct Harness
{
    explicit Harness(DebuggerConfig config = {})
        : debugger(std::move(config))
    {
        runtime.attach(&debugger);
    }

    std::size_t
    countOf(BugType type)
    {
        return debugger.bugs().countOf(type);
    }

    PmRuntime runtime;
    PmDebugger debugger;
};

TEST(NoDurabilityRuleTest, MissingFlushReported)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.fence();
    h.runtime.programEnd();
    ASSERT_EQ(h.countOf(BugType::NoDurability), 1u);
    EXPECT_EQ(h.debugger.bugs().bugs()[0].cause,
              DurabilityCause::MissingFlush);
}

TEST(NoDurabilityRuleTest, MissingFenceReported)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.programEnd();
    ASSERT_EQ(h.countOf(BugType::NoDurability), 1u);
    EXPECT_EQ(h.debugger.bugs().bugs()[0].cause,
              DurabilityCause::MissingFence);
}

TEST(NoDurabilityRuleTest, CleanProgramReportsNothing)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.debugger.bugs().total(), 0u);
}

TEST(NoDurabilityRuleTest, SurvivorInTreeStillReported)
{
    Harness h;
    h.runtime.store(0x100, 8); // never flushed
    for (int i = 0; i < 5; ++i)
        h.runtime.fence(); // migrates to the AVL tree, survives
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::NoDurability), 1u);
}

TEST(MultipleOverwriteRuleTest, StrictModelFlagsOverwrite)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    Harness h(std::move(config));
    h.runtime.store(0x100, 8);
    h.runtime.store(0x100, 8); // overwrite before durability
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::MultipleOverwrite), 1u);
}

TEST(MultipleOverwriteRuleTest, PersistBetweenWritesIsClean)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    Harness h(std::move(config));
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.debugger.bugs().total(), 0u);
}

TEST(MultipleOverwriteRuleTest, DisabledUnderRelaxedModels)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Epoch;
    Harness h(std::move(config));
    h.runtime.store(0x100, 8);
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::MultipleOverwrite), 0u);
}

TEST(NoOrderRuleTest, ViolationWhenSecondPersistsFirst)
{
    DebuggerConfig config;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    Harness h(std::move(config));
    h.runtime.registerPmem("A", 0x100, 8);
    h.runtime.registerPmem("B", 0x200, 8);
    h.runtime.store(0x100, 8);
    h.runtime.store(0x200, 8);
    h.runtime.flush(0x200, 64); // B first
    h.runtime.fence();
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::NoOrderGuarantee), 1u);
}

TEST(NoOrderRuleTest, SameFenceIsAmbiguousOrder)
{
    DebuggerConfig config;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    Harness h(std::move(config));
    h.runtime.registerPmem("A", 0x100, 8);
    h.runtime.registerPmem("B", 0x200, 8);
    h.runtime.store(0x100, 8);
    h.runtime.store(0x200, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.flush(0x200, 64);
    h.runtime.fence(); // both durable here
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::NoOrderGuarantee), 1u);
}

TEST(NoOrderRuleTest, CorrectOrderIsClean)
{
    DebuggerConfig config;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    Harness h(std::move(config));
    h.runtime.registerPmem("A", 0x100, 8);
    h.runtime.registerPmem("B", 0x200, 8);
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.store(0x200, 8);
    h.runtime.flush(0x200, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.debugger.bugs().total(), 0u);
}

TEST(RedundantFlushRuleTest, DoubleFlushBeforeFence)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.flush(0x100, 64); // redundant
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantFlush), 1u);
}

TEST(RedundantFlushRuleTest, FlushCoveringNewStoreIsNotRedundant)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.store(0x108, 8); // same line, new data
    h.runtime.flush(0x100, 64); // needed for the new store
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantFlush), 0u);
}

TEST(RedundantFlushRuleTest, ReflushAfterFenceIsFlushNothingInstead)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.flush(0x100, 64); // after the fence: persists no store
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantFlush), 0u);
    EXPECT_EQ(h.countOf(BugType::FlushNothing), 1u);
}

TEST(FlushNothingRuleTest, UntouchedLineFlagged)
{
    Harness h;
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x400, 64); // nothing there
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::FlushNothing), 1u);
}

TEST(RedundantLoggingRuleTest, DuplicateLogInOneEpoch)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.txLog(0x100, 32);
    h.runtime.txLog(0x108, 8); // overlaps the first log
    h.runtime.fence();
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantLogging), 1u);
}

TEST(RedundantLoggingRuleTest, LogsInDifferentEpochsAreClean)
{
    Harness h;
    for (int i = 0; i < 2; ++i) {
        h.runtime.epochBegin();
        h.runtime.txLog(0x100, 32);
        h.runtime.store(0x100, 8);
        h.runtime.flush(0x100, 64);
        h.runtime.fence();
        h.runtime.epochEnd();
    }
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantLogging), 0u);
}

TEST(LackDurabilityInEpochRuleTest, UnflushedEpochStoreFlagged)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.store(0x100, 8); // never flushed in the epoch
    h.runtime.fence();         // the epoch's barrier
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_GE(h.countOf(BugType::LackDurabilityInEpoch), 1u);
}

TEST(LackDurabilityInEpochRuleTest, FlushedEpochIsClean)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_EQ(h.debugger.bugs().total(), 0u);
}

TEST(LackDurabilityInEpochRuleTest, PostEpochStoreNotAttributed)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.epochEnd();
    h.runtime.store(0x200, 8); // outside any epoch
    h.runtime.epochBegin();
    h.runtime.store(0x300, 8);
    h.runtime.flush(0x300, 64);
    h.runtime.fence();
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::LackDurabilityInEpoch), 0u);
    EXPECT_EQ(h.countOf(BugType::NoDurability), 1u); // 0x200
}

TEST(RedundantEpochFenceRuleTest, TwoFencesInEpochFlagged)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence(); // the Figure 7a extra fence
    h.runtime.store(0x140, 8);
    h.runtime.flush(0x140, 64);
    h.runtime.fence(); // the epoch's own barrier
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantEpochFence), 1u);
}

TEST(RedundantEpochFenceRuleTest, OneFenceIsClean)
{
    Harness h;
    h.runtime.epochBegin();
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.epochEnd();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantEpochFence), 0u);
}

TEST(StrandOrderRuleTest, CrossStrandPersistViolation)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strand;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    Harness h(std::move(config));
    h.runtime.registerPmem("A", 0x100, 8);
    h.runtime.registerPmem("B", 0x200, 8);

    h.runtime.strandBegin(0);
    h.runtime.store(0x100, 8); // A stored, not yet durable
    h.runtime.store(0x200, 8);
    h.runtime.strandEnd(0);

    h.runtime.strandBegin(1);
    h.runtime.flush(0x200, 64); // B persisted while A in flight
    h.runtime.fence();
    h.runtime.strandEnd(1);

    h.runtime.strandBegin(0);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.strandEnd(0);
    h.runtime.joinStrand();
    h.runtime.programEnd();
    EXPECT_GE(h.countOf(BugType::LackOrderingInStrands), 1u);
}

TEST(StrandOrderRuleTest, OrderedStrandsAreClean)
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strand;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    Harness h(std::move(config));
    h.runtime.registerPmem("A", 0x100, 8);
    h.runtime.registerPmem("B", 0x200, 8);

    h.runtime.strandBegin(0);
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.fence(); // A durable
    h.runtime.store(0x200, 8);
    h.runtime.flush(0x200, 64);
    h.runtime.fence();
    h.runtime.strandEnd(0);
    h.runtime.joinStrand();
    h.runtime.programEnd();
    EXPECT_EQ(h.debugger.bugs().total(), 0u);
}

TEST(RuleTogglesTest, DisabledRuleStaysQuiet)
{
    DebuggerConfig config;
    config.detectRedundantFlush = false;
    Harness h(std::move(config));
    h.runtime.store(0x100, 8);
    h.runtime.flush(0x100, 64);
    h.runtime.flush(0x100, 64);
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::RedundantFlush), 0u);
}

/** The flexibility API: a user-supplied rule plugs into the hooks. */
class EveryFenceRule : public Rule
{
  public:
    const char *name() const override { return "every-fence"; }
    unsigned hooks() const override { return hookFence; }

    void
    onFence(DebugContext &ctx, const Event &event) override
    {
        BugReport report;
        report.type = BugType::FlushNothing; // arbitrary channel
        report.range = AddrRange(event.seq, event.seq + 1);
        report.seq = event.seq;
        report.detail = "custom rule fired";
        ctx.bugs().report(report);
    }
};

TEST(CustomRuleTest, UserRuleReceivesHooks)
{
    Harness h;
    h.debugger.addRule(std::make_unique<EveryFenceRule>());
    h.runtime.fence();
    h.runtime.fence();
    h.runtime.programEnd();
    EXPECT_EQ(h.countOf(BugType::FlushNothing), 2u);
}

TEST(OrderSpecTest, ParsesDirectivesAndComments)
{
    OrderSpec spec;
    std::string error;
    EXPECT_TRUE(spec.parse("# comment\n"
                           "persist_before a b\n"
                           "\n"
                           "persist_before c d # trailing\n",
                           &error))
        << error;
    ASSERT_EQ(spec.constraints().size(), 2u);
    EXPECT_EQ(spec.constraints()[0].firstVar, "a");
    EXPECT_EQ(spec.constraints()[1].secondVar, "d");
}

TEST(OrderSpecTest, RejectsMalformedInput)
{
    OrderSpec spec;
    std::string error;
    EXPECT_FALSE(spec.parse("persist_before onlyone\n", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(spec.parse("frobnicate a b\n", &error));
}

} // namespace
} // namespace pmdb
