/**
 * @file
 * Tests for the batched event-dispatch pipeline: dispatch-mode
 * equivalence (per-event vs batched vs async must produce bit-identical
 * detector results), batch flush points, the async drain barrier,
 * per-thread strand tracking and the O(1) NameTable.
 */

#include <algorithm>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "detectors/pmdebugger_detector.hh"
#include "trace/recorder.hh"
#include "trace/runtime.hh"
#include "workloads/bug_suite.hh"
#include "workloads/workload.hh"

namespace pmdb
{
namespace
{

/** Everything a PMDebugger run reports, in comparable form. */
struct RunSignature
{
    std::vector<std::tuple<BugType, Addr, Addr, SeqNum>> bugs;
    std::uint64_t stores = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t epochs = 0;
    ArrayStats array;
    TreeStats tree;

    bool
    operator==(const RunSignature &other) const
    {
        return bugs == other.bugs && stores == other.stores &&
               flushes == other.flushes && fences == other.fences &&
               epochs == other.epochs &&
               array.collectiveInvalidations ==
                   other.array.collectiveInvalidations &&
               array.recordsCollectivelyFreed ==
                   other.array.recordsCollectivelyFreed &&
               array.recordsMovedToTree ==
                   other.array.recordsMovedToTree &&
               array.recordsDroppedIndividually ==
                   other.array.recordsDroppedIndividually &&
               array.overflowStores == other.array.overflowStores &&
               array.maxUsage == other.array.maxUsage &&
               tree.insertions == other.tree.insertions &&
               tree.removals == other.tree.removals &&
               tree.reorganizations == other.tree.reorganizations &&
               tree.merges == other.tree.merges;
    }
};

RunSignature
signatureOf(const Detector &detector)
{
    RunSignature sig;
    for (const BugReport &bug : detector.bugs().bugs()) {
        sig.bugs.emplace_back(bug.type, bug.range.start, bug.range.end,
                              bug.seq);
    }
    std::sort(sig.bugs.begin(), sig.bugs.end());
    const DebuggerStats stats = detector.stats();
    sig.stores = stats.stores;
    sig.flushes = stats.flushes;
    sig.fences = stats.fences;
    sig.epochs = stats.epochs;
    sig.array = stats.array;
    sig.tree = stats.tree;
    return sig;
}

/** Run one bug-suite case under PMDebugger in the given mode. */
RunSignature
runCaseInMode(const BugCase &bug_case, DispatchMode mode, bool buggy)
{
    PmRuntime runtime;
    CaseEnv env{runtime};
    env.buggy = buggy;

    DebuggerConfig config;
    config.model = bug_case.model;
    if (!bug_case.orderSpec.empty())
        config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
    PmDebuggerDetector tool(std::move(config));
    env.pmdebugger = &tool.debugger();

    runtime.attach(&tool);
    runtime.setDispatchMode(mode);
    bug_case.scenario(env);
    runtime.programEnd();
    tool.finalize();
    runtime.detach(&tool);
    return signatureOf(tool);
}

/**
 * Every case of the 78-case suite (buggy and correct variant) must
 * report exactly the same bugs and bookkeeping counters in all three
 * dispatch modes.
 */
TEST(DispatchEquivalence, BugSuiteIdenticalAcrossModes)
{
    for (const BugCase &bug_case : bugSuite()) {
        for (const bool buggy : {true, false}) {
            const RunSignature per =
                runCaseInMode(bug_case, DispatchMode::PerEvent, buggy);
            const RunSignature bat =
                runCaseInMode(bug_case, DispatchMode::Batched, buggy);
            const RunSignature asy =
                runCaseInMode(bug_case, DispatchMode::Async, buggy);
            EXPECT_TRUE(per == bat)
                << "case " << bug_case.id << " (" << bug_case.name
                << "), buggy=" << buggy << ": batched != per-event";
            EXPECT_TRUE(per == asy)
                << "case " << bug_case.id << " (" << bug_case.name
                << "), buggy=" << buggy << ": async != per-event";
        }
    }
}

RunSignature
runWorkloadInMode(const std::string &name, DispatchMode mode)
{
    auto workload = makeWorkload(name);
    PmRuntime runtime;
    PmDebuggerDetector tool{[&] {
        DebuggerConfig config;
        config.model = workload->model();
        if (!workload->orderSpecText().empty())
            config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
        return config;
    }()};
    runtime.attach(&tool);
    runtime.setDispatchMode(mode);

    WorkloadOptions options;
    options.operations = 3000;
    options.seed = 42;
    workload->run(runtime, options);
    runtime.drain();
    tool.finalize();
    runtime.detach(&tool);
    return signatureOf(tool);
}

/**
 * A real data-structure workload (fence intervals, CLF patterns,
 * array/tree migration) reports identical stats in all three modes —
 * including every ArrayStats counter, which proves the batched store
 * fast path performs exactly the per-event bookkeeping.
 */
TEST(DispatchEquivalence, BTreeWorkloadIdenticalAcrossModes)
{
    const RunSignature per =
        runWorkloadInMode("b_tree", DispatchMode::PerEvent);
    const RunSignature bat =
        runWorkloadInMode("b_tree", DispatchMode::Batched);
    const RunSignature asy =
        runWorkloadInMode("b_tree", DispatchMode::Async);

    EXPECT_GT(per.stores, 0u);
    EXPECT_EQ(per.array.recordsCollectivelyFreed,
              bat.array.recordsCollectivelyFreed);
    EXPECT_EQ(per.array.maxUsage, bat.array.maxUsage);
    EXPECT_EQ(per.tree.insertions, bat.tree.insertions);
    EXPECT_TRUE(per == bat);
    EXPECT_TRUE(per == asy);
}

TEST(DispatchPipeline, BatchedFlushesAtBoundary)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setBatched(true);

    runtime.store(0x100, 8);
    runtime.store(0x108, 8);
    runtime.flush(0x100, 64);
    EXPECT_EQ(recorder.events().size(), 0u)
        << "stores and flushes buffer until a boundary";

    runtime.fence();
    ASSERT_EQ(recorder.events().size(), 4u)
        << "a fence is an ordering boundary and flushes the batch";
    EXPECT_EQ(recorder.events()[0].kind, EventKind::Store);
    EXPECT_EQ(recorder.events()[3].kind, EventKind::Fence);
    // Events keep their per-event sequence numbers.
    EXPECT_EQ(recorder.events()[0].seq, 1u);
    EXPECT_EQ(recorder.events()[3].seq, 4u);
}

TEST(DispatchPipeline, BatchedFlushesAtCapacity)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setBatched(true);
    runtime.setBatchCapacity(4);

    for (int i = 0; i < 3; ++i)
        runtime.store(0x100 + 8 * i, 8);
    EXPECT_EQ(recorder.events().size(), 0u);
    runtime.store(0x200, 8);
    EXPECT_EQ(recorder.events().size(), 4u)
        << "a full batch flushes without waiting for a boundary";
}

TEST(DispatchPipeline, DetachAndDrainFlushPendingEvents)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setBatched(true);

    runtime.store(0x100, 8);
    EXPECT_EQ(recorder.events().size(), 0u);
    runtime.drain();
    EXPECT_EQ(recorder.events().size(), 1u);

    runtime.store(0x108, 8);
    runtime.detach(&recorder);
    EXPECT_EQ(recorder.events().size(), 2u)
        << "detach drains so no event is lost";
}

TEST(DispatchPipeline, AsyncProgramEndIsADeliveryBarrier)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setAsync(true);
    EXPECT_EQ(runtime.dispatchMode(), DispatchMode::Async);

    for (int i = 0; i < 1000; ++i) {
        runtime.store(0x100 + 8 * (i % 64), 8);
        if (i % 64 == 63)
            runtime.fence();
    }
    runtime.programEnd();
    // After the programEnd() barrier every event, including ProgramEnd
    // itself, has been delivered on the consumer thread.
    const auto &events = recorder.events();
    ASSERT_EQ(events.size(), 1000u + 15u + 1u);
    EXPECT_EQ(events.back().kind, EventKind::ProgramEnd);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, i + 1);
}

TEST(DispatchPipeline, AsyncOffFallsBackToBatched)
{
    PmRuntime runtime;
    runtime.setAsync(true);
    EXPECT_EQ(runtime.dispatchMode(), DispatchMode::Async);
    runtime.setAsync(false);
    EXPECT_EQ(runtime.dispatchMode(), DispatchMode::Batched);
    runtime.setBatched(false);
    EXPECT_EQ(runtime.dispatchMode(), DispatchMode::PerEvent);
}

TEST(DispatchPipeline, ThreadSafeBatchedKeepsPerThreadOrder)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setThreadSafe(true);
    runtime.setBatched(true);

    constexpr int threads = 4;
    constexpr int storesPerThread = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&runtime, t] {
            for (int i = 0; i < storesPerThread; ++i) {
                runtime.store(0x1000 * (t + 1) + 8 * (i % 32), 8,
                              static_cast<ThreadId>(t));
                if (i % 32 == 31)
                    runtime.fence(static_cast<ThreadId>(t));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    runtime.drain();

    const auto &events = recorder.events();
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(threads) *
                  (storesPerThread + storesPerThread / 32));

    // Per-thread subsequences stay in program order even though
    // cross-thread interleaving is batch-granular.
    std::vector<SeqNum> lastSeq(threads, 0);
    for (const Event &event : events) {
        ASSERT_GE(event.thread, 0);
        ASSERT_LT(event.thread, threads);
        EXPECT_GT(event.seq, lastSeq[static_cast<std::size_t>(
                                 event.thread)]);
        lastSeq[static_cast<std::size_t>(event.thread)] = event.seq;
    }
}

TEST(DispatchPipeline, OverflowThreadIdsUseTheSharedPath)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setThreadSafe(true);
    runtime.setBatched(true);

    // ThreadIds beyond the lock-free per-thread array still dispatch
    // correctly (shared batch under the mutex).
    runtime.store(0x100, 8, 1000);
    runtime.store(0x108, 8, 1000);
    runtime.fence(1000);
    runtime.drain();
    ASSERT_EQ(recorder.events().size(), 3u);
    EXPECT_EQ(recorder.events()[0].thread, 1000);
}

/**
 * PR 1 asserted the drain() barrier only for a single producer. Here
 * four producer threads feed the async pipeline through their
 * per-thread lock-free batches, across several produce/join/drain
 * rounds: every drain must deliver everything produced so far (partial
 * per-thread batches included), sequence numbers must be unique and
 * gap-free, and per-thread order must survive the consumer thread.
 */
TEST(DispatchPipeline, AsyncDrainUnderMultipleProducerThreads)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.setThreadSafe(true);
    runtime.setAsync(true);

    constexpr int threads = 4;
    constexpr int storesPerThread = 1500; // not a batch multiple
    constexpr int rounds = 3;

    for (int round = 0; round < rounds; ++round) {
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&runtime, t] {
                for (int i = 0; i < storesPerThread; ++i) {
                    runtime.store(0x1000 * (t + 1) + 8 * (i % 64), 8,
                                  static_cast<ThreadId>(t));
                    if (i % 100 == 99)
                        runtime.fence(static_cast<ThreadId>(t));
                }
            });
        }
        for (auto &worker : workers)
            worker.join();
        runtime.drain();

        const auto expected =
            static_cast<std::size_t>(round + 1) * threads *
            (storesPerThread + storesPerThread / 100);
        ASSERT_EQ(recorder.events().size(), expected)
            << "drain after round " << round
            << " must deliver every event produced so far";
    }

    // Sequence numbers: unique and gap-free across all threads.
    std::vector<SeqNum> seqs;
    seqs.reserve(recorder.events().size());
    for (const Event &event : recorder.events())
        seqs.push_back(event.seq);
    std::sort(seqs.begin(), seqs.end());
    for (std::size_t i = 0; i < seqs.size(); ++i)
        ASSERT_EQ(seqs[i], i + 1) << "duplicate or missing seq";

    // Per-thread subsequences keep program order.
    std::vector<SeqNum> lastSeq(threads, 0);
    for (const Event &event : recorder.events()) {
        ASSERT_GE(event.thread, 0);
        ASSERT_LT(event.thread, threads);
        const auto t = static_cast<std::size_t>(event.thread);
        EXPECT_GT(event.seq, lastSeq[t]);
        lastSeq[t] = event.seq;
    }
}

TEST(StrandTracking, PerThreadStrandsDoNotInterfere)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);

    runtime.strandBegin(7, /*thread=*/1);
    runtime.store(0x100, 8, /*thread=*/1);
    runtime.store(0x200, 8, /*thread=*/2); // no strand open on thread 2
    runtime.strandBegin(9, /*thread=*/2);
    runtime.store(0x208, 8, /*thread=*/2);
    runtime.strandEnd(7, /*thread=*/1);
    runtime.store(0x108, 8, /*thread=*/1); // strand closed again

    const auto &events = recorder.events();
    ASSERT_EQ(events.size(), 7u);
    EXPECT_EQ(events[1].strand, 7);
    EXPECT_EQ(events[2].strand, noStrand)
        << "thread 2 must not see thread 1's open strand";
    EXPECT_EQ(events[4].strand, 9);
    EXPECT_EQ(events[6].strand, noStrand);

    EXPECT_EQ(runtime.strandOf(2), 9);
    EXPECT_EQ(runtime.strandOf(1), noStrand);
}

TEST(StrandTracking, OverflowThreadIdsTrackStrandsToo)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);

    runtime.strandBegin(3, /*thread=*/5000);
    runtime.store(0x100, 8, /*thread=*/5000);
    ASSERT_EQ(recorder.events().size(), 2u);
    EXPECT_EQ(recorder.events()[1].strand, 3);
    EXPECT_EQ(runtime.strandOf(5000), 3);
    runtime.strandEnd(3, /*thread=*/5000);
    EXPECT_EQ(runtime.strandOf(5000), noStrand);
}

TEST(NameTableTest, InternIsStableAndDeduplicates)
{
    NameTable names;
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < 10000; ++i)
        ids.push_back(names.intern("var" + std::to_string(i)));
    for (int i = 0; i < 10000; ++i) {
        EXPECT_EQ(names.intern("var" + std::to_string(i)),
                  ids[static_cast<std::size_t>(i)]);
        EXPECT_EQ(names.name(ids[static_cast<std::size_t>(i)]),
                  "var" + std::to_string(i));
    }
    EXPECT_EQ(names.size(), 10000u);
}

} // namespace
} // namespace pmdb
