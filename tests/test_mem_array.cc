/**
 * @file
 * Unit tests for the memory-location array and CLF-interval metadata:
 * append/interval bookkeeping, collective flush and invalidation,
 * partial-flush splitting, fence re-distribution and overflow.
 */

#include <gtest/gtest.h>

#include "core/mem_array.hh"

namespace pmdb
{
namespace
{

LocationRecord
rec(Addr start, Addr end, bool epoch = false)
{
    static SeqNum seq = 1;
    return LocationRecord(AddrRange(start, end), FlushState::NotFlushed,
                          epoch, seq++);
}

TEST(MemArrayTest, AppendOpensAndExtendsInterval)
{
    MemoryLocationArray array(16);
    EXPECT_TRUE(array.append(rec(0, 8)));
    EXPECT_TRUE(array.append(rec(32, 40)));
    ASSERT_EQ(array.intervals().size(), 1u);
    const ClfIntervalMeta &meta = array.intervals()[0];
    EXPECT_EQ(meta.startIdx, 0u);
    EXPECT_EQ(meta.endIdx, 2u);
    EXPECT_EQ(meta.bounds, AddrRange(0, 40));
    EXPECT_EQ(meta.state, IntervalFlushState::NotFlushed);
}

TEST(MemArrayTest, FlushClosesIntervalNextStoreOpensNew)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));
    array.applyFlush(AddrRange(0, 64), tree);
    array.append(rec(64, 72));
    ASSERT_EQ(array.intervals().size(), 2u);
    EXPECT_EQ(array.intervals()[1].startIdx, 1u);
}

TEST(MemArrayTest, CollectiveFlushIsMetadataOnly)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    // Three stores within one cache line: the collective case.
    array.append(rec(0, 8));
    array.append(rec(8, 16));
    array.append(rec(16, 24));
    const FlushOutcome outcome =
        array.applyFlush(AddrRange(0, 64), tree);
    EXPECT_TRUE(outcome.hitAny);
    EXPECT_TRUE(outcome.hitUnflushed);
    EXPECT_EQ(array.intervals()[0].state, IntervalFlushState::AllFlushed);
    EXPECT_TRUE(tree.empty());
}

TEST(MemArrayTest, ReflushOfAllFlushedIntervalIsRedundant)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));
    array.applyFlush(AddrRange(0, 64), tree);
    const FlushOutcome again = array.applyFlush(AddrRange(0, 64), tree);
    EXPECT_TRUE(again.hitAny);
    EXPECT_TRUE(again.hitFlushed);
    EXPECT_FALSE(again.hitUnflushed);
}

TEST(MemArrayTest, DispersedFlushMarksRecordsIndividually)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));    // line 0
    array.append(rec(64, 72));  // line 1
    const FlushOutcome outcome =
        array.applyFlush(AddrRange(0, 64), tree);
    EXPECT_TRUE(outcome.hitUnflushed);
    EXPECT_EQ(array.intervals()[0].state,
              IntervalFlushState::PartiallyFlushed);

    int flushed = 0, not_flushed = 0;
    array.forEachLive([&](const LocationRecord &, FlushState state) {
        state == FlushState::Flushed ? ++flushed : ++not_flushed;
    });
    EXPECT_EQ(flushed, 1);
    EXPECT_EQ(not_flushed, 1);
}

TEST(MemArrayTest, PartialRecordSplitSendsUncoveredPiecesToTree)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 192)); // spans 3 lines
    array.applyFlush(AddrRange(64, 128), tree); // middle line only
    // Covered middle stays in the array; head and tail go to the tree.
    EXPECT_EQ(tree.size(), 2u);
    bool saw_covered = false;
    array.forEachLive([&](const LocationRecord &r, FlushState state) {
        if (r.range == AddrRange(64, 128)) {
            saw_covered = true;
            EXPECT_EQ(state, FlushState::Flushed);
        }
    });
    EXPECT_TRUE(saw_covered);
}

TEST(MemArrayTest, FenceCollectivelyInvalidatesAllFlushedIntervals)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));
    array.append(rec(8, 16));
    array.applyFlush(AddrRange(0, 64), tree);
    array.processFence(tree);
    EXPECT_EQ(array.size(), 0u);
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(array.stats().collectiveInvalidations, 1u);
    EXPECT_EQ(array.stats().recordsCollectivelyFreed, 2u);
}

TEST(MemArrayTest, FenceMovesUnflushedRecordsToTree)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));   // will be flushed
    array.append(rec(64, 72)); // will not
    array.applyFlush(AddrRange(0, 64), tree);
    array.processFence(tree);
    EXPECT_EQ(array.size(), 0u);
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_TRUE(tree.overlapsAny(AddrRange(64, 72)));
    EXPECT_EQ(array.stats().recordsMovedToTree, 1u);
    EXPECT_EQ(array.stats().recordsDroppedIndividually, 1u);
}

TEST(MemArrayTest, ArrayIsReusedAcrossFenceIntervals)
{
    MemoryLocationArray array(4);
    AvlTree tree;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(array.append(rec(i * 64, i * 64 + 8)));
        ASSERT_TRUE(array.full());
        array.applyFlush(AddrRange(0, 4 * 64), tree);
        array.processFence(tree);
        ASSERT_EQ(array.size(), 0u);
    }
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(array.stats().maxUsage, 4u);
}

TEST(MemArrayTest, OverflowRefusesAppend)
{
    MemoryLocationArray array(2);
    EXPECT_TRUE(array.append(rec(0, 8)));
    EXPECT_TRUE(array.append(rec(8, 16)));
    EXPECT_FALSE(array.append(rec(16, 24)));
    array.noteOverflow();
    EXPECT_EQ(array.stats().overflowStores, 1u);
}

TEST(MemArrayTest, OverlapQueriesRespectIntervalBounds)
{
    MemoryLocationArray array(16);
    array.append(rec(100, 108));
    EXPECT_TRUE(array.overlapsAny(AddrRange(104, 106)));
    EXPECT_FALSE(array.overlapsAny(AddrRange(0, 50)));
    EXPECT_FALSE(array.overlapsAny(AddrRange(108, 200)));
}

TEST(MemArrayTest, EpochFlagsClearable)
{
    MemoryLocationArray array(16);
    array.append(rec(0, 8, true));
    int in_epoch = 0;
    array.forEachLive([&](const LocationRecord &r, FlushState) {
        in_epoch += r.inEpoch ? 1 : 0;
    });
    EXPECT_EQ(in_epoch, 1);
    array.clearEpochFlags();
    in_epoch = 0;
    array.forEachLive([&](const LocationRecord &r, FlushState) {
        in_epoch += r.inEpoch ? 1 : 0;
    });
    EXPECT_EQ(in_epoch, 0);
}

TEST(MemArrayTest, CompactSurvivorsKeepsUnflushed)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));
    array.append(rec(64, 72));
    array.applyFlush(AddrRange(0, 64), tree);
    array.compactSurvivors();
    EXPECT_EQ(array.size(), 1u);
    EXPECT_TRUE(array.overlapsAny(AddrRange(64, 72)));
    EXPECT_FALSE(array.overlapsAny(AddrRange(0, 8)));
    EXPECT_TRUE(tree.empty()); // array-only mode: nothing redistributed
}

TEST(MemArrayTest, MultipleIntervalsClassifiedIndependently)
{
    MemoryLocationArray array(16);
    AvlTree tree;
    array.append(rec(0, 8));
    array.applyFlush(AddrRange(0, 64), tree); // interval 0 all-flushed
    array.append(rec(64, 72));
    array.applyFlush(AddrRange(128, 192), tree); // misses interval 1
    ASSERT_EQ(array.intervals().size(), 2u);
    EXPECT_EQ(array.intervals()[0].state, IntervalFlushState::AllFlushed);
    EXPECT_EQ(array.intervals()[1].state, IntervalFlushState::NotFlushed);
}

} // namespace
} // namespace pmdb
