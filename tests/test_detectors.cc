/**
 * @file
 * Unit tests for the baseline detector models (Pmemcheck, PMTest,
 * XFDetector) and the detector registry.
 */

#include <gtest/gtest.h>

#include "detectors/pmdebugger_detector.hh"
#include "detectors/pmemcheck.hh"
#include "detectors/pmtest.hh"
#include "detectors/registry.hh"
#include "detectors/xfdetector.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

TEST(RegistryTest, BuildsEveryAdvertisedDetector)
{
    for (const std::string &name : detectorNames()) {
        auto detector = makeDetector(name);
        ASSERT_NE(detector, nullptr) << name;
        EXPECT_EQ(detector->detectorName(), name);
    }
    EXPECT_EQ(makeDetector("bogus"), nullptr);
}

TEST(RegistryTest, DbiClassification)
{
    EXPECT_TRUE(makeDetector("pmdebugger")->isDbiBased());
    EXPECT_TRUE(makeDetector("pmemcheck")->isDbiBased());
    EXPECT_TRUE(makeDetector("xfdetector")->isDbiBased());
    EXPECT_TRUE(makeDetector("nulgrind")->isDbiBased());
    EXPECT_FALSE(makeDetector("pmtest")->isDbiBased());
}

TEST(PmemcheckTest, DetectsDurabilityAndFlushBugs)
{
    PmRuntime runtime;
    PmemcheckDetector detector;
    runtime.attach(&detector);

    runtime.store(0x100, 8); // missing CLF
    runtime.fence();
    runtime.store(0x200, 8);
    runtime.flush(0x200, 64);
    runtime.flush(0x200, 64); // redundant
    runtime.fence();
    runtime.flush(0x400, 64); // flush nothing
    runtime.fence();
    runtime.programEnd();

    EXPECT_EQ(detector.bugs().countOf(BugType::NoDurability), 1u);
    EXPECT_EQ(detector.bugs().countOf(BugType::RedundantFlush), 1u);
    EXPECT_EQ(detector.bugs().countOf(BugType::FlushNothing), 1u);
}

TEST(PmemcheckTest, MultStoresIsOptIn)
{
    {
        PmRuntime runtime;
        PmemcheckDetector detector; // default: off
        runtime.attach(&detector);
        runtime.store(0x100, 8);
        runtime.store(0x100, 8);
        EXPECT_EQ(detector.bugs().countOf(BugType::MultipleOverwrite), 0u);
    }
    {
        PmRuntime runtime;
        PmemcheckConfig config;
        config.detectMultipleOverwrite = true;
        PmemcheckDetector detector(config);
        runtime.attach(&detector);
        runtime.store(0x100, 8);
        runtime.store(0x100, 8);
        EXPECT_EQ(detector.bugs().countOf(BugType::MultipleOverwrite), 1u);
    }
}

TEST(PmemcheckTest, OverwritesInsideEpochSuppressed)
{
    PmRuntime runtime;
    PmemcheckConfig config;
    config.detectMultipleOverwrite = true;
    PmemcheckDetector detector(config);
    runtime.attach(&detector);
    runtime.epochBegin();
    runtime.store(0x100, 8);
    runtime.store(0x100, 8); // legal inside a transaction
    runtime.flush(0x100, 64);
    runtime.fence();
    runtime.epochEnd();
    EXPECT_EQ(detector.bugs().countOf(BugType::MultipleOverwrite), 0u);
}

TEST(PmemcheckTest, EagerMergingIsReorganizationHeavy)
{
    PmRuntime runtime;
    PmemcheckDetector pmemcheck;
    PmDebuggerDetector pmdebugger;
    runtime.attach(&pmemcheck);
    runtime.attach(&pmdebugger);

    // A hashmap_atomic-style stream: adjacent stores, collective CLF.
    for (int op = 0; op < 500; ++op) {
        const Addr base = op * 64;
        runtime.store(base, 8);
        runtime.store(base + 8, 8);
        runtime.store(base + 16, 8);
        runtime.flush(base, 64);
        runtime.fence();
    }
    // The Section 7.5 effect: the traditional design re-organizes
    // orders of magnitude more often than PMDebugger.
    const auto pmc = pmemcheck.stats().tree.reorganizations;
    const auto pmd = pmdebugger.stats().tree.reorganizations;
    EXPECT_GT(pmc, 100u * (pmd + 1));
}

TEST(PmTestTest, OutsideRegionNothingIsTracked)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    runtime.store(0x100, 8); // unannotated: invisible to PMTest
    runtime.programEnd();
    EXPECT_EQ(detector.bugs().total(), 0u);
    // isPersist outside a region trivially passes.
    EXPECT_TRUE(detector.isPersist(0x100, 8));
}

TEST(PmTestTest, IsPersistFailsOnMissingFlush)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    detector.pmTestStart();
    runtime.store(0x100, 8);
    runtime.fence();
    EXPECT_FALSE(detector.isPersist(0x100, 8));
    detector.pmTestEnd();
    EXPECT_EQ(detector.bugs().countOf(BugType::NoDurability), 1u);
}

TEST(PmTestTest, IsPersistPassesWhenDurable)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    detector.pmTestStart();
    runtime.store(0x100, 8);
    runtime.flush(0x100, 64);
    runtime.fence();
    EXPECT_TRUE(detector.isPersist(0x100, 8));
    detector.pmTestEnd();
    EXPECT_EQ(detector.bugs().total(), 0u);
}

TEST(PmTestTest, IsOrderedBeforeUsesOneFenceTimeline)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    detector.pmTestStart();
    runtime.store(0x100, 8);
    runtime.flush(0x100, 64);
    runtime.fence(); // A durable at fence #1
    runtime.store(0x200, 8);
    runtime.flush(0x200, 64);
    runtime.fence(); // B durable at fence #2
    EXPECT_TRUE(detector.isOrderedBefore(0x100, 8, 0x200, 8));
    EXPECT_FALSE(detector.isOrderedBefore(0x200, 8, 0x100, 8));
    detector.pmTestEnd();
}

TEST(PmTestTest, RedundantFlushCheckInRegion)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    detector.pmTestStart();
    runtime.store(0x100, 8);
    runtime.flush(0x100, 64);
    runtime.flush(0x100, 64);
    runtime.fence();
    detector.pmTestEnd();
    EXPECT_EQ(detector.bugs().countOf(BugType::RedundantFlush), 1u);
}

TEST(PmTestTest, TxCheckerFlagsDuplicateLogging)
{
    PmRuntime runtime;
    PmTestDetector detector;
    runtime.attach(&detector);
    detector.pmTestStart();
    detector.txChecker(0x100, 32);
    detector.txChecker(0x110, 8); // overlaps
    detector.pmTestEnd();
    EXPECT_EQ(detector.bugs().countOf(BugType::RedundantLogging), 1u);
}

TEST(XfDetectorTest, FailurePointsFollowStrideAndBudget)
{
    PmRuntime runtime;
    XfDetectorConfig config;
    config.fenceStride = 4;
    config.maxFailurePoints = 3;
    XfDetector detector(config);
    runtime.attach(&detector);
    for (int i = 0; i < 100; ++i) {
        runtime.store(i * 64, 8);
        runtime.flush(i * 64, 64);
        runtime.fence();
    }
    EXPECT_EQ(detector.failurePointsRun(), 3u);
    EXPECT_GT(detector.replayedOps(), 0u);
}

TEST(XfDetectorTest, CrossFailureVerifierRunsAtFailurePoints)
{
    PmRuntime runtime;
    XfDetectorConfig config;
    config.fenceStride = 1;
    XfDetector detector(config);
    runtime.attach(&detector);
    int calls = 0;
    detector.setCrossFailureVerifier([&]() -> std::string {
        return ++calls == 2 ? "inconsistent state" : "";
    });
    for (int i = 0; i < 4; ++i) {
        runtime.store(i * 64, 8);
        runtime.flush(i * 64, 64);
        runtime.fence();
    }
    EXPECT_EQ(calls, 4);
    EXPECT_EQ(detector.bugs().countOf(BugType::CrossFailureSemantic), 1u);
}

TEST(XfDetectorTest, DetectsOrderViolationsViaSpec)
{
    PmRuntime runtime;
    XfDetectorConfig config;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    XfDetector detector(config);
    runtime.attach(&detector);
    runtime.registerPmem("A", 0x100, 8);
    runtime.registerPmem("B", 0x200, 8);
    runtime.store(0x100, 8);
    runtime.store(0x200, 8);
    runtime.flush(0x200, 64);
    runtime.fence(); // B durable before A
    runtime.flush(0x100, 64);
    runtime.fence();
    EXPECT_EQ(detector.bugs().countOf(BugType::NoOrderGuarantee), 1u);
}

TEST(NulgrindTest, CountsButNeverReports)
{
    PmRuntime runtime;
    NulgrindDetector detector;
    runtime.attach(&detector);
    runtime.store(0x100, 8); // an obvious durability bug
    runtime.programEnd();
    detector.finalize();
    EXPECT_EQ(detector.bugs().total(), 0u);
    EXPECT_EQ(detector.eventCount(), 2u);
}

} // namespace
} // namespace pmdb
