/**
 * @file
 * Unit tests for the instrumentation substrate: event dispatch, name
 * interning, recording/replay and strand tracking.
 */

#include <gtest/gtest.h>

#include "trace/recorder.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

TEST(NameTableTest, InterningIsStable)
{
    NameTable names;
    const auto a = names.intern("alpha");
    const auto b = names.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(names.intern("alpha"), a);
    EXPECT_EQ(names.name(a), "alpha");
    EXPECT_EQ(names.name(b), "beta");
    EXPECT_EQ(names.size(), 2u);
}

TEST(RuntimeTest, DispatchesToAllSinks)
{
    PmRuntime runtime;
    NulgrindSink a, b;
    runtime.attach(&a);
    runtime.attach(&b);
    runtime.store(0x100, 8);
    runtime.flush(0x100, 64);
    runtime.fence();
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(b.total(), 3u);
    EXPECT_EQ(a.count(EventKind::Store), 1u);
    EXPECT_EQ(a.count(EventKind::Flush), 1u);
    EXPECT_EQ(a.count(EventKind::Fence), 1u);
}

TEST(RuntimeTest, DetachStopsDelivery)
{
    PmRuntime runtime;
    NulgrindSink sink;
    runtime.attach(&sink);
    runtime.store(0, 8);
    runtime.detach(&sink);
    runtime.store(0, 8);
    EXPECT_EQ(sink.total(), 1u);
}

TEST(RuntimeTest, SequenceNumbersAreMonotonic)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    for (int i = 0; i < 10; ++i)
        runtime.store(i * 8, 8);
    SeqNum last = 0;
    for (const Event &event : recorder.events()) {
        EXPECT_GT(event.seq, last);
        last = event.seq;
    }
    EXPECT_EQ(runtime.eventCount(), 10u);
}

TEST(RuntimeTest, StrandIdsFlowIntoEvents)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.store(0, 8);            // outside any strand
    runtime.strandBegin(3);
    runtime.store(8, 8);            // inside strand 3
    runtime.strandEnd(3);
    runtime.store(16, 8);           // outside again

    const auto &events = recorder.events();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].strand, noStrand);
    EXPECT_EQ(events[2].strand, 3);
    EXPECT_EQ(events[4].strand, noStrand);
}

TEST(RuntimeTest, RegisterPmemInternsName)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.registerPmem("my.var", 0x40, 8);
    ASSERT_EQ(recorder.events().size(), 1u);
    const Event &event = recorder.events()[0];
    EXPECT_EQ(event.kind, EventKind::RegisterPmem);
    ASSERT_NE(event.nameId, noName);
    EXPECT_EQ(runtime.names().name(event.nameId), "my.var");
}

TEST(RecorderTest, ReplayFeedsIdenticalEvents)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    runtime.store(0x80, 16);
    runtime.flush(0x80, 64);
    runtime.fence();
    runtime.epochBegin();
    runtime.epochEnd();
    runtime.programEnd();

    NulgrindSink replay_sink;
    TraceReplayer replayer(recorder.events());
    replayer.replay(replay_sink);
    EXPECT_EQ(replay_sink.total(), recorder.events().size());

    NulgrindSink limited;
    replayer.replay(limited, 2);
    EXPECT_EQ(limited.total(), 2u);
}

TEST(RuntimeTest, AppOpIsFreeWithoutDbiSinks)
{
    PmRuntime runtime;
    // Just exercises the no-DBI fast path; must not crash or hang.
    for (int i = 0; i < 1000; ++i)
        runtime.appOp();
    SUCCEED();
}

TEST(RuntimeTest, EventKindNamesAreStable)
{
    EXPECT_STREQ(toString(EventKind::Store), "store");
    EXPECT_STREQ(toString(EventKind::Flush), "flush");
    EXPECT_STREQ(toString(EventKind::Fence), "fence");
    EXPECT_STREQ(toString(FlushKind::Clwb), "clwb");
    EXPECT_STREQ(toString(FlushKind::Clflushopt), "clflushopt");
}

} // namespace
} // namespace pmdb
