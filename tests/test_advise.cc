/**
 * @file
 * Fix-advisory engine tests: program-site plumbing (SiteScope →
 * Event::nameId), edit→advice mapping, clustering/ranking math on
 * synthetic outcomes, and end-to-end corpora — the same seeded bug
 * recorded under varied seeds and thread counts must cluster to one
 * top-ranked advisory naming the injected program site, bit-identically
 * for any worker count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "advise/advise.hh"
#include "advise/corpus.hh"
#include "advise/report.hh"
#include "repair/case_repair.hh"
#include "trace/recorder.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

TEST(SitePlumbing, EventsCarryInnermostOpenSite)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);

    runtime.registerPmem("pool", 0x1000, 0x1000);
    runtime.store(0x1000, 8);
    {
        SiteScope outer(runtime, "a.cc:outer");
        runtime.store(0x1008, 8);
        {
            SiteScope inner(runtime, "a.cc:inner");
            runtime.flush(0x1000, 64);
        }
        runtime.fence();
    }
    runtime.store(0x1010, 8);
    runtime.programEnd();
    runtime.detach(&recorder);

    const std::vector<Event> &events = recorder.events();
    ASSERT_EQ(events.size(), 7u);
    // RegisterPmem keeps its variable name, never the site.
    EXPECT_EQ(runtime.names().name(events[0].nameId), "pool");
    EXPECT_EQ(events[1].nameId, noName);
    EXPECT_EQ(runtime.names().name(events[2].nameId), "a.cc:outer");
    EXPECT_EQ(runtime.names().name(events[3].nameId), "a.cc:inner");
    EXPECT_EQ(runtime.names().name(events[4].nameId), "a.cc:outer");
    EXPECT_EQ(events[5].nameId, noName);
    EXPECT_EQ(events[6].nameId, noName);
}

TEST(SitePlumbing, SiteEventCountsGroupByName)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    {
        SiteScope site(runtime, "a.cc:s1");
        runtime.store(0x1000, 8);
        runtime.store(0x1008, 8);
    }
    {
        SiteScope site(runtime, "a.cc:s2");
        runtime.fence();
    }
    runtime.programEnd();
    runtime.detach(&recorder);

    LoadedTrace trace;
    trace.events = recorder.events();
    trace.names = runtime.names();
    const auto counts = siteEventCounts(trace);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts.at("a.cc:s1"), 2u);
    EXPECT_EQ(counts.at("a.cc:s2"), 1u);
}

TEST(AdviceOps, EditMappingAndDeletionClassification)
{
    TraceEdit edit;
    edit.op = TraceEdit::Op::Insert;
    edit.event.kind = EventKind::Flush;
    EXPECT_EQ(adviceOpOf(edit), AdviceOp::InsertFlush);
    edit.event.kind = EventKind::Fence;
    EXPECT_EQ(adviceOpOf(edit), AdviceOp::InsertFence);
    edit.op = TraceEdit::Op::Delete;
    EXPECT_EQ(adviceOpOf(edit), AdviceOp::DeleteFence);
    edit.event.kind = EventKind::Flush;
    EXPECT_EQ(adviceOpOf(edit), AdviceOp::DeleteFlush);
    edit.event.kind = EventKind::TxLog;
    EXPECT_EQ(adviceOpOf(edit), AdviceOp::DeleteLog);

    EXPECT_FALSE(isDeletionAdvice(AdviceOp::InsertFlush));
    EXPECT_FALSE(isDeletionAdvice(AdviceOp::InsertFence));
    EXPECT_TRUE(isDeletionAdvice(AdviceOp::DeleteFlush));
    EXPECT_TRUE(isDeletionAdvice(AdviceOp::DeleteFence));
    EXPECT_TRUE(isDeletionAdvice(AdviceOp::DeleteLog));
    EXPECT_STREQ(toString(AdviceOp::InsertFlush), "insert-flush");
}

/** Build a synthetic verified outcome with one edit at @p site. */
TraceOutcome
outcomeWithEdit(const std::string &site, AdviceOp op,
                const std::vector<std::string> &executed_sites)
{
    TraceOutcome outcome;
    outcome.targetPresent = true;
    outcome.verified = true;
    SiteEdit edit;
    edit.site = site;
    edit.op = op;
    edit.rule = BugType::NoDurability;
    outcome.edits.push_back(edit);
    for (const std::string &executed : executed_sites)
        outcome.siteEvents[executed] = 1;
    return outcome;
}

TEST(Clustering, ConfidenceCountsCounterEvidence)
{
    std::vector<TraceOutcome> outcomes;
    // Three traces confirm a flush insert at site A; a fourth executed
    // A but verified with no edit there; a fifth executed A, target
    // reproduced, repair failed verification.
    for (int i = 0; i < 3; ++i) {
        outcomes.push_back(outcomeWithEdit(
            "a.cc:A", AdviceOp::InsertFlush, {"a.cc:A", "a.cc:B"}));
    }
    TraceOutcome clean;
    clean.targetPresent = true;
    clean.verified = true;
    clean.siteEvents["a.cc:A"] = 1;
    outcomes.push_back(clean);
    TraceOutcome failed;
    failed.targetPresent = true;
    failed.verified = false;
    failed.siteEvents["a.cc:A"] = 1;
    outcomes.push_back(failed);

    const std::vector<FixAdvisory> ranked = clusterAdvisories(outcomes);
    ASSERT_EQ(ranked.size(), 1u);
    const FixAdvisory &advisory = ranked[0];
    EXPECT_EQ(advisory.site, "a.cc:A");
    EXPECT_EQ(advisory.confirmations, 3u);
    EXPECT_EQ(advisory.opportunities, 5u);
    EXPECT_EQ(advisory.counterNoPatch, 1u);
    EXPECT_EQ(advisory.counterUnverified, 1u);
    EXPECT_DOUBLE_EQ(advisory.confidence, 3.0 / 5.0);
    EXPECT_NE(advisory.headline().find("confirmed in 3/5 traces"),
              std::string::npos);
}

TEST(Clustering, RankingIsConfidenceThenConfirmationsThenKey)
{
    std::vector<TraceOutcome> outcomes;
    // Site A: 2/2 confirmed. Site B: 2/3 (one clean trace executed B).
    outcomes.push_back(outcomeWithEdit("a.cc:A", AdviceOp::InsertFlush,
                                       {"a.cc:A"}));
    outcomes.push_back(outcomeWithEdit("a.cc:A", AdviceOp::InsertFlush,
                                       {"a.cc:A"}));
    outcomes.push_back(outcomeWithEdit("a.cc:B", AdviceOp::InsertFence,
                                       {"a.cc:B"}));
    outcomes.push_back(outcomeWithEdit("a.cc:B", AdviceOp::InsertFence,
                                       {"a.cc:B"}));
    TraceOutcome clean;
    clean.verified = true;
    clean.siteEvents["a.cc:B"] = 1;
    outcomes.push_back(clean);

    const std::vector<FixAdvisory> ranked = clusterAdvisories(outcomes);
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].site, "a.cc:A");
    EXPECT_DOUBLE_EQ(ranked[0].confidence, 1.0);
    EXPECT_EQ(ranked[1].site, "a.cc:B");
    EXPECT_DOUBLE_EQ(ranked[1].confidence, 2.0 / 3.0);
}

TEST(Clustering, OptimizeViewKeepsDeletionsRankedBySavings)
{
    std::vector<TraceOutcome> outcomes;
    outcomes.push_back(outcomeWithEdit("a.cc:A", AdviceOp::InsertFlush,
                                       {"a.cc:A"}));
    // Site B deletes two flushes in one trace, site C one fence.
    TraceOutcome two_deletes =
        outcomeWithEdit("a.cc:B", AdviceOp::DeleteFlush, {"a.cc:B"});
    two_deletes.edits.push_back(two_deletes.edits[0]);
    outcomes.push_back(two_deletes);
    outcomes.push_back(outcomeWithEdit("a.cc:C", AdviceOp::DeleteFence,
                                       {"a.cc:C"}));

    const std::vector<FixAdvisory> perf =
        optimizeView(clusterAdvisories(outcomes));
    ASSERT_EQ(perf.size(), 2u);
    EXPECT_EQ(perf[0].site, "a.cc:B");
    EXPECT_EQ(perf[0].savedFlushes, 2u);
    EXPECT_TRUE(perf[0].performance);
    EXPECT_EQ(perf[1].site, "a.cc:C");
    EXPECT_EQ(perf[1].savedFences, 1u);
}

TEST(Corpus, EnumerateIsTheDeterministicGrid)
{
    CorpusSpec spec;
    spec.seeds = {1, 2};
    spec.threads = {1, 2};
    spec.mixes = {'a'};
    const std::vector<CaseParams> grid = spec.enumerate();
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].label(), "seed=1,threads=1,mix=a");
    EXPECT_EQ(grid[1].label(), "seed=1,threads=2,mix=a");
    EXPECT_EQ(grid[2].label(), "seed=2,threads=1,mix=a");
    EXPECT_EQ(grid[3].label(), "seed=2,threads=2,mix=a");
}

TEST(Corpus, SeededHashmapBugClustersToItsProgramSite)
{
    const BugCase *bug_case =
        findBugCase("hashmap_atomic_entry_not_flushed");
    ASSERT_NE(bug_case, nullptr);

    CorpusSpec spec;
    spec.seeds = {1, 2, 3};
    spec.operations = 50;
    const AdviseReport report = runAdviseCorpus(*bug_case, spec);

    ASSERT_EQ(report.traces.size(), 3u);
    for (const TraceOutcome &trace : report.traces) {
        EXPECT_TRUE(trace.targetPresent) << trace.label;
        EXPECT_TRUE(trace.verified) << trace.label;
        for (const SiteEdit &edit : trace.edits)
            EXPECT_EQ(edit.site, "hashmap_atomic.cc:insert.fill_entry");
    }
    ASSERT_FALSE(report.advisories.empty());
    const FixAdvisory &top = report.advisories.front();
    EXPECT_EQ(top.site, "hashmap_atomic.cc:insert.fill_entry");
    EXPECT_EQ(top.confirmations, 3u);
    EXPECT_DOUBLE_EQ(top.confidence, 1.0);
    EXPECT_FALSE(top.performance);
}

TEST(Corpus, SeedsTimesThreadsClusterToOneTopAdvisory)
{
    // The ISSUE's satellite scenario: the same workload at 3 seeds × 2
    // thread counts. The threaded recordings interleave
    // nondeterministically, but the injected site's label is a code
    // path, not an interleaving, so the patches still cluster: the
    // top-ranked advisory names the seeded bug's program site.
    const BugCase *bug_case = findBugCase("memcached_bug_4");
    ASSERT_NE(bug_case, nullptr);

    CorpusSpec spec;
    spec.seeds = {5, 9, 13};
    spec.threads = {1, 2};
    spec.operations = 120;
    const AdviseReport report = runAdviseCorpus(*bug_case, spec);

    ASSERT_EQ(report.traces.size(), 6u);
    for (const TraceOutcome &trace : report.traces) {
        EXPECT_TRUE(trace.targetPresent) << trace.label;
        // Every edit attributes to a named memcached site — never the
        // anonymous region fallback.
        for (const SiteEdit &edit : trace.edits) {
            EXPECT_EQ(edit.site.rfind("memcached.cc:", 0), 0u)
                << trace.label << ": " << edit.site;
        }
    }
    ASSERT_FALSE(report.advisories.empty());
    const FixAdvisory &top = report.advisories.front();
    EXPECT_EQ(top.site, "memcached.cc:setNew.persist_item");
    // The single-threaded half of the grid is deterministic and always
    // confirms; the threaded half may scatter, so majority is the bound.
    EXPECT_GE(top.confirmations, 3u);
}

TEST(Corpus, ReportIsBitIdenticalAcrossWorkerCounts)
{
    const BugCase *bug_case =
        findBugCase("hashmap_atomic_entry_not_flushed");
    ASSERT_NE(bug_case, nullptr);

    CorpusSpec spec;
    spec.seeds = {1, 2, 3, 4};
    spec.operations = 40;
    std::string baseline;
    for (const std::size_t workers : {1u, 2u, 4u}) {
        spec.workers = workers;
        const AdviseReport report = runAdviseCorpus(*bug_case, spec);
        const std::string json = adviseReportToJson(report);
        if (baseline.empty())
            baseline = json;
        else
            EXPECT_EQ(json, baseline) << "workers=" << workers;
    }
    EXPECT_NE(baseline.find("\"version\": \"pmdb-advise-v1\""),
              std::string::npos);
}

TEST(Corpus, PerformanceCaseYieldsSavingsEstimates)
{
    const BugCase *bug_case = findBugCase("hashmap_atomic_double_flush");
    ASSERT_NE(bug_case, nullptr);

    CorpusSpec spec;
    spec.seeds = {1, 2};
    spec.operations = 30;
    const AdviseReport report = runAdviseCorpus(*bug_case, spec);
    const std::vector<FixAdvisory> perf =
        optimizeView(report.advisories);
    ASSERT_FALSE(perf.empty());
    EXPECT_EQ(perf[0].site, "hashmap_atomic.cc:insert.persist_entry");
    EXPECT_TRUE(perf[0].performance);
    EXPECT_GE(perf[0].savedFlushes, 2u);
}

} // namespace
} // namespace pmdb
