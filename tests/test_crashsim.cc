/**
 * @file
 * Tests for the crash-state exploration engine (src/crashsim/):
 * incremental capture, bounded enumeration, parallel verification,
 * witness minimization, and determinism across seeds, worker counts
 * and dispatch modes.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crashsim/capture.hh"
#include "crashsim/crash_points.hh"
#include "crashsim/explore.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/bug_suite.hh"
#include "workloads/crashsim_runner.hh"

namespace pmdb
{
namespace
{

const BugCase &
suiteCase(const std::string &name)
{
    for (const BugCase &bug_case : bugSuite()) {
        if (bug_case.name == name)
            return bug_case;
    }
    for (const BugCase &bug_case : crashsimOnlyCases()) {
        if (bug_case.name == name)
            return bug_case;
    }
    static const BugCase missing;
    ADD_FAILURE() << "unknown bug case " << name;
    return missing;
}

/** Exhaustive exploration bounds (K = all pending lines). */
CrashsimOptions
kAllOptions()
{
    CrashsimOptions options;
    options.maxPendingLines = 61;
    options.maxImagesPerPoint = 4096;
    return options;
}

TEST(CrashsimCaptureTest, PartialLandingFoundAtExactFenceSeq)
{
    PmRuntime runtime;
    PmemPool pool(runtime, 1 << 20, "cs.pool");
    const Addr a = pool.alloc(64);
    const Addr b = pool.alloc(64);

    CrashsimSession session(kAllOptions());
    session.adopt(pool.device(),
                  [a, b](const std::vector<std::uint8_t> &image)
                      -> std::string {
                      std::uint64_t va = 0, vb = 0;
                      std::memcpy(&va, image.data() + a, 8);
                      std::memcpy(&vb, image.data() + b, 8);
                      if (vb == 1 && va != 1)
                          return "b landed without a";
                      return "";
                  });

    pool.store<std::uint64_t>(a, 1);
    pool.store<std::uint64_t>(b, 1);
    pool.flush(a, 8);
    pool.flush(b, 8);
    pool.fence();
    const SeqNum fence_seq = runtime.eventCount();

    // Capture starts at adoption: the allocation fences before it must
    // not appear, so the one fence above is the only crash point.
    ASSERT_EQ(session.log().points.size(), 1u);
    EXPECT_EQ(session.log().points[0].seq, fence_seq);

    const CrashsimResult result = session.explore();
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].seq, fence_seq);
    EXPECT_EQ(result.findings[0].boundary, EventKind::Fence);
    // Greedy minimization must shrink the witness to exactly {b}.
    ASSERT_EQ(result.findings[0].witnessLines.size(), 1u);
    EXPECT_EQ(result.findings[0].witnessLines[0], cacheLineIndex(b));
}

TEST(CrashsimCaptureTest, ImageCursorApplyRevertRestoresBase)
{
    PmRuntime runtime;
    PmemPool pool(runtime, 1 << 20, "cs.pool");
    const Addr a = pool.alloc(64);
    const Addr b = pool.alloc(64);

    CrashsimSession session(kAllOptions());
    session.adopt(pool.device());
    pool.store<std::uint64_t>(a, 7);
    pool.store<std::uint64_t>(b, 9);
    pool.flush(a, 8);
    pool.flush(b, 8);
    pool.fence();

    ImageCursor cursor(session.log());
    cursor.advanceTo(0);
    const std::uint64_t base_hash = cursor.baseHash();
    const std::vector<std::uint8_t> base_image = cursor.image();

    const CrashPoint &point = session.log().points[0];
    std::vector<std::size_t> landed;
    for (std::size_t i = point.pendingBegin; i < point.pendingEnd; ++i)
        landed.push_back(i);
    ASSERT_EQ(landed.size(), 2u);

    const std::uint64_t predicted = cursor.candidateHash(landed);
    cursor.apply(landed);
    EXPECT_EQ(cursor.baseHash(), predicted);
    EXPECT_NE(cursor.baseHash(), base_hash);
    cursor.revert();
    EXPECT_EQ(cursor.baseHash(), base_hash);
    EXPECT_EQ(cursor.image(), base_image);
}

TEST(CrashsimSuiteTest, XfCasesFoundByEngineWithCrashPointProvenance)
{
    for (const char *name :
         {"xf_kv_publish", "xf_tx_unlogged_field", "xf_counter_pair",
          "xf_list_append"}) {
        SCOPED_TRACE(name);
        const CrashsimCaseOutcome outcome =
            runCrashsimCase(suiteCase(name), kAllOptions());
        // The engine finds everything the single-image checker finds...
        EXPECT_TRUE(outcome.singleImageFound);
        EXPECT_TRUE(outcome.engineFound);
        // ...with crash-point provenance on every finding...
        for (const CrashsimFinding &finding : outcome.buggy.findings) {
            EXPECT_GT(finding.seq, 0u);
            EXPECT_TRUE(finding.boundary == EventKind::Fence ||
                        finding.boundary == EventKind::EpochEnd ||
                        finding.boundary == EventKind::JoinStrand);
        }
        // ...and zero findings on the correct variant.
        EXPECT_TRUE(outcome.clean.findings.empty())
            << outcome.clean.findings.front().detail;
    }
}

TEST(CrashsimSuiteTest, EngineOnlyBugsFoundWhereSingleImageMisses)
{
    {
        SCOPED_TRACE("cs_partial_pair");
        const CrashsimCaseOutcome outcome = runCrashsimCase(
            suiteCase("cs_partial_pair"), kAllOptions());
        EXPECT_FALSE(outcome.singleImageFound);
        ASSERT_TRUE(outcome.engineFound);
        // Only the partial landing {b} breaks the invariant.
        ASSERT_EQ(outcome.buggy.findings.size(), 1u);
        EXPECT_EQ(outcome.buggy.findings[0].witnessLines.size(), 1u);
        EXPECT_TRUE(outcome.clean.findings.empty());
    }
    {
        SCOPED_TRACE("cs_intermediate_window");
        const CrashsimCaseOutcome outcome = runCrashsimCase(
            suiteCase("cs_intermediate_window"), kAllOptions());
        EXPECT_FALSE(outcome.singleImageFound);
        EXPECT_TRUE(outcome.engineFound);
        EXPECT_TRUE(outcome.clean.findings.empty());
    }
}

TEST(CrashsimSuiteTest, EpochAtomicCoalescingKeepsCleanTxQuiet)
{
    const BugCase &bug_case = suiteCase("cs_log_truncation_window");

    // Default (epoch-atomic): the correct transactional program is
    // clean at every crash point.
    CrashsimOptions atomic = kAllOptions();
    const CrashsimCaseOutcome quiet = runCrashsimCase(bug_case, atomic);
    EXPECT_TRUE(quiet.buggy.findings.empty());
    EXPECT_TRUE(quiet.clean.findings.empty());
    EXPECT_GT(quiet.buggy.stats.epochCoalescedPoints, 0u);

    // Jaaru-style full sweep: the substrate's single-drain commit
    // window (data landing while the log truncation drops) surfaces.
    CrashsimOptions sweep = kAllOptions();
    sweep.epochAtomic = false;
    const CrashsimCaseOutcome torn = runCrashsimCase(bug_case, sweep);
    EXPECT_FALSE(torn.buggy.findings.empty());
}

TEST(CrashsimWorkloadTest, CleanWorkloadsHaveZeroFindingsAtKAll)
{
    for (const char *name : {"b_tree", "hashmap_atomic"}) {
        SCOPED_TRACE(name);
        WorkloadOptions wl;
        wl.operations = 40;
        wl.poolBytes = 1 << 20;
        const CrashsimResult result =
            runCrashsimWorkload(name, wl, kAllOptions());
        EXPECT_GT(result.stats.points, 0u);
        EXPECT_TRUE(result.findings.empty())
            << result.findings.front().detail;
    }
}

TEST(CrashsimWorkloadTest, SeededFaultsCaughtByRecoveryVerifier)
{
    for (const char *fault :
         {"hmatomic_bucket_before_entry", "hmatomic_skip_entry_flush"}) {
        SCOPED_TRACE(fault);
        WorkloadOptions wl;
        wl.operations = 20;
        wl.poolBytes = 1 << 20;
        wl.faults.enable(fault);
        const CrashsimResult result =
            runCrashsimWorkload("hashmap_atomic", wl, kAllOptions());
        EXPECT_FALSE(result.findings.empty());
    }
    {
        SCOPED_TRACE("btree_skip_log_meta");
        WorkloadOptions wl;
        wl.operations = 20;
        wl.poolBytes = 1 << 20;
        wl.faults.enable("btree_skip_log_meta");
        const CrashsimResult result =
            runCrashsimWorkload("b_tree", wl, kAllOptions());
        EXPECT_FALSE(result.findings.empty());
    }
}

TEST(CrashsimDeterminismTest, IdenticalRunsAreBitIdentical)
{
    WorkloadOptions wl;
    wl.operations = 20;
    wl.poolBytes = 1 << 20;
    wl.faults.enable("hmatomic_bucket_before_entry");
    CrashsimOptions options = kAllOptions();
    options.seed = 7;
    const CrashsimResult first =
        runCrashsimWorkload("hashmap_atomic", wl, options);
    const CrashsimResult second =
        runCrashsimWorkload("hashmap_atomic", wl, options);
    EXPECT_TRUE(first.identicalTo(second));
    EXPECT_FALSE(first.findings.empty());
}

TEST(CrashsimDeterminismTest, WorkerCountDoesNotChangeResults)
{
    WorkloadOptions wl;
    wl.operations = 20;
    wl.poolBytes = 1 << 20;
    wl.faults.enable("hmatomic_bucket_before_entry");

    CrashsimOptions serial = kAllOptions();
    serial.workers = 1;
    CrashsimOptions parallel = kAllOptions();
    parallel.workers = 4;

    const CrashsimResult one =
        runCrashsimWorkload("hashmap_atomic", wl, serial);
    const CrashsimResult four =
        runCrashsimWorkload("hashmap_atomic", wl, parallel);
    EXPECT_TRUE(one.identicalTo(four));
    EXPECT_FALSE(one.findings.empty());
}

TEST(CrashsimDeterminismTest, SeededRandomEnumerationIsDeterministic)
{
    // Force the capped enumeration path (2^K over budget): many lines
    // pending under one fence with a small image budget.
    auto run = [](std::size_t workers) {
        PmRuntime runtime;
        PmemPool pool(runtime, 1 << 20, "cs.pool");
        const Addr base = pool.alloc(64 * 24);

        CrashsimOptions options;
        options.maxPendingLines = 16;
        options.maxImagesPerPoint = 64;
        options.seed = 11;
        options.workers = workers;
        CrashsimSession session(options);
        session.adopt(
            pool.device(),
            [base](const std::vector<std::uint8_t> &image) -> std::string {
                // Invariant: line i persisted implies line i-1 persisted.
                std::uint64_t prev = 1;
                for (std::size_t i = 0; i < 24; ++i) {
                    std::uint64_t v = 0;
                    std::memcpy(&v, image.data() + base + i * 64, 8);
                    if (v != 0 && prev == 0)
                        return "line landed before its predecessor";
                    prev = v;
                }
                return "";
            });

        for (std::size_t i = 0; i < 24; ++i) {
            pool.store<std::uint64_t>(base + i * 64, 1);
            pool.flush(base + i * 64, 8);
        }
        pool.fence();
        // A second, empty crash point: its base image equals the first
        // point's land-everything candidate, so dedup kicks in.
        pool.fence();
        return session.explore();
    };

    const CrashsimResult a = run(1);
    const CrashsimResult b = run(1);
    const CrashsimResult c = run(4);
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_TRUE(a.identicalTo(c));
    EXPECT_FALSE(a.findings.empty());
    EXPECT_GT(a.stats.imagesDeduped, 0u);
    // The budget caps the first point at 64 images (far below 2^16);
    // the empty second point adds its lone base candidate.
    EXPECT_LE(a.stats.imagesEnumerated, 65u);
}

TEST(CrashsimDispatchTest, ResultsIdenticalAcrossDispatchModes)
{
    const BugCase &bug_case = suiteCase("xf_counter_pair");
    const CrashsimOptions options = kAllOptions();
    const CrashsimCaseOutcome per_event =
        runCrashsimCase(bug_case, options, DispatchMode::PerEvent);
    const CrashsimCaseOutcome batched =
        runCrashsimCase(bug_case, options, DispatchMode::Batched);
    const CrashsimCaseOutcome async =
        runCrashsimCase(bug_case, options, DispatchMode::Async);

    EXPECT_TRUE(per_event.buggy.identicalTo(batched.buggy));
    EXPECT_TRUE(per_event.buggy.identicalTo(async.buggy));
    EXPECT_TRUE(per_event.clean.identicalTo(batched.clean));
    EXPECT_TRUE(per_event.clean.identicalTo(async.clean));
    EXPECT_EQ(per_event.singleImageFound, batched.singleImageFound);
    EXPECT_EQ(per_event.singleImageFound, async.singleImageFound);
    EXPECT_TRUE(per_event.engineFound);
}

TEST(CrashsimReportTest, FindingsReportedWithCrashPointSeq)
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    PmemPool pool(runtime, 1 << 20, "cs.pool");
    const Addr a = pool.alloc(64);
    const Addr b = pool.alloc(64);

    CrashsimSession session(kAllOptions());
    session.adopt(pool.device(),
                  [a, b](const std::vector<std::uint8_t> &image)
                      -> std::string {
                      std::uint64_t va = 0, vb = 0;
                      std::memcpy(&va, image.data() + a, 8);
                      std::memcpy(&vb, image.data() + b, 8);
                      if (vb == 1 && va != 1)
                          return "b landed without a";
                      return "";
                  });

    pool.store<std::uint64_t>(a, 1);
    pool.store<std::uint64_t>(b, 1);
    pool.flush(a, 8);
    pool.flush(b, 8);
    pool.fence();
    const SeqNum fence_seq = runtime.eventCount();

    const CrashsimResult result = session.explore(&debugger);
    ASSERT_EQ(result.findings.size(), 1u);
    ASSERT_EQ(debugger.bugs().countOf(BugType::CrossFailureSemantic), 1u);
    const BugReport &report = debugger.bugs().bugs().front();
    EXPECT_EQ(report.seq, fence_seq);
    EXPECT_NE(report.detail.find("crash point"), std::string::npos);
}

TEST(CrashsimScanTest, StructuralScanCountsCrashPoints)
{
    std::vector<Event> events;
    auto emit = [&](EventKind kind, Addr addr, std::uint32_t size) {
        Event event;
        event.kind = kind;
        event.addr = addr;
        event.size = size;
        event.seq = events.size() + 1;
        events.push_back(event);
    };
    emit(EventKind::Store, 0, 8);
    emit(EventKind::Flush, 0, 64);
    emit(EventKind::Fence, 0, 0);
    emit(EventKind::Store, 64, 8);
    emit(EventKind::Store, 128, 8);
    emit(EventKind::Flush, 64, 64);
    emit(EventKind::Flush, 128, 64);
    emit(EventKind::Fence, 0, 0);

    const CrashScanSummary summary = scanCrashPoints(events, {});
    EXPECT_EQ(summary.events, 8u);
    EXPECT_EQ(summary.crashPoints, 2u);
    EXPECT_EQ(summary.pendingLinesTotal, 3u);
    EXPECT_EQ(summary.maxPendingAtPoint, 2u);
    // 2^1 + 2^2 candidate images.
    EXPECT_EQ(summary.imagesEnumerable, 6u);
    EXPECT_EQ(summary.epochCoalescedPoints, 0u);

    CrashsimOptions with_flush;
    with_flush.captureAtFlush = true;
    const CrashScanSummary flush_summary =
        scanCrashPoints(events, with_flush);
    EXPECT_EQ(flush_summary.crashPoints, 5u);
}

} // namespace
} // namespace pmdb
