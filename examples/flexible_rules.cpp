/**
 * @file
 * Flexibility: writing your own detection rule.
 *
 * The paper's "flexible" claim is that PMDebugger's hierarchical
 * design lets users add any rule on top of the bookkeeping layer
 * without touching the core. This example adds two custom rules:
 *
 *  - LargeEpochRule: flags epoch sections containing more stores than
 *    a budget (long transactions hold the undo log open and stretch
 *    recovery time — a performance smell);
 *  - FenceStormRule: flags runs of consecutive fences with no store or
 *    CLF in between (pure ordering overhead).
 *
 * Both plug into the same hooks the nine built-in rules use.
 *
 *   $ ./build/examples/flexible_rules
 */

#include <cstdio>
#include <memory>

#include "core/debugger.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "trace/runtime.hh"

namespace
{

using namespace pmdb;

/** Flags epochs whose store count exceeds a budget. */
class LargeEpochRule : public Rule
{
  public:
    explicit LargeEpochRule(int budget) : budget_(budget) {}

    const char *name() const override { return "large-epoch"; }

    unsigned
    hooks() const override
    {
        return hookStore | hookEpochBegin | hookEpochEnd;
    }

    void
    onEpochBegin(DebugContext &, const Event &) override
    {
        stores_ = 0;
    }

    void
    onStore(DebugContext &, const Event &) override
    {
        ++stores_;
    }

    void
    onEpochEnd(DebugContext &ctx, const Event &event) override
    {
        if (stores_ <= budget_)
            return;
        BugReport report;
        report.type = BugType::RedundantLogging; // perf-warning channel
        report.seq = event.seq;
        report.detail = "epoch contains " + std::to_string(stores_) +
                        " stores (budget " + std::to_string(budget_) +
                        "): consider splitting the transaction";
        ctx.bugs().report(report);
    }

  private:
    int budget_;
    int stores_ = 0;
};

/** Flags back-to-back fences with nothing to order between them. */
class FenceStormRule : public Rule
{
  public:
    const char *name() const override { return "fence-storm"; }

    unsigned
    hooks() const override
    {
        return hookStore | hookFlush | hookFence;
    }

    void
    onStore(DebugContext &, const Event &) override
    {
        sinceLastFence_ = true;
    }

    void
    onFlush(DebugContext &, const Event &, const FlushOutcome &) override
    {
        sinceLastFence_ = true;
    }

    void
    onFence(DebugContext &ctx, const Event &event) override
    {
        if (!first_ && !sinceLastFence_) {
            BugReport report;
            report.type = BugType::RedundantEpochFence; // perf channel
            report.range = AddrRange(event.seq, event.seq + 1);
            report.seq = event.seq;
            report.detail = "fence with no store/CLF since the previous "
                            "fence";
            ctx.bugs().report(report);
        }
        first_ = false;
        sinceLastFence_ = false;
    }

  private:
    bool first_ = true;
    bool sinceLastFence_ = false;
};

} // namespace

int
main()
{
    using namespace pmdb;

    PmRuntime runtime;
    PmDebugger debugger;
    debugger.addRule(std::make_unique<LargeEpochRule>(16));
    debugger.addRule(std::make_unique<FenceStormRule>());
    runtime.attach(&debugger);

    {
        PmemPool pool(runtime, 4 << 20, "flexible.pool");

        // Trips LargeEpochRule: one transaction touching 64 objects.
        {
            Transaction tx(pool);
            tx.begin();
            const Addr blob = tx.alloc(64 * 64);
            for (int i = 0; i < 64; ++i)
                pool.store<std::uint64_t>(blob + i * 64, i);
            tx.commit();
        }

        // Trips FenceStormRule: three fences, nothing between them.
        const Addr x = pool.alloc(64);
        pool.store<std::uint64_t>(x, 1);
        pool.persist(x, 8);
        pool.fence();
        pool.fence();
    }

    runtime.programEnd();
    std::printf("%s\n", debugger.bugs().summary().c_str());
    const bool found_large =
        debugger.bugs().countOf(BugType::RedundantLogging) > 0;
    const bool found_storm =
        debugger.bugs().countOf(BugType::RedundantEpochFence) > 0;
    std::printf("custom rule 'large-epoch': %s\n",
                found_large ? "fired" : "quiet");
    std::printf("custom rule 'fence-storm': %s\n",
                found_storm ? "fired" : "quiet");
    return found_large && found_storm ? 0 : 1;
}
