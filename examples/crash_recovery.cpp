/**
 * @file
 * Crash simulation and recovery: the cross-failure workflow.
 *
 * Builds a tiny persistent key-value log, simulates a crash at the
 * worst possible moment (a committed key pointing at an unpersisted
 * value), runs the recovery program over the crash image, and shows
 * how the cross-failure semantic check catches the inconsistency —
 * plus the undo-log recovery path restoring a torn transaction.
 *
 *   $ ./build/examples/crash_recovery
 */

#include <cstdio>
#include <cstring>

#include "core/cross_failure.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "trace/runtime.hh"

int
main()
{
    using namespace pmdb;

    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    PmemPool pool(runtime, 1 << 20, "recovery.pool");

    // --- Part 1: cross-failure semantic bug -------------------------
    const Addr value = pool.alloc(64);
    const Addr key = pool.alloc(64);
    const std::uint64_t payload = 0xfeedface;

    // Buggy publish: the key commits before the value persists.
    pool.store<std::uint64_t>(value, payload); // never flushed!
    pool.store<std::uint64_t>(key, 1);
    pool.persist(key, 8);

    // "Manually call the recovery program" (Section 7.3): materialize
    // the crash image and verify what recovery would read.
    const bool found = CrossFailureChecker::check(
        debugger, pool.device(),
        [&](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t k = 0, v = 0;
            std::memcpy(&k, image.data() + key, 8);
            std::memcpy(&v, image.data() + value, 8);
            if (k == 1 && v != payload) {
                return "recovery reads key=1 but the value bytes never "
                       "reached the persistence domain";
            }
            return "";
        },
        {.seq = runtime.eventCount(), .policy = CrashPolicy::DropPending});
    std::printf("Cross-failure check: %s\n",
                found ? "INCONSISTENT (bug reported)" : "consistent");

    // --- Part 2: undo-log recovery of a torn transaction ------------
    const Addr pair = pool.alloc(128);
    pool.store<std::uint64_t>(pair, 7);      // field a
    pool.store<std::uint64_t>(pair + 64, 7); // field b (own line)
    pool.persist(pair, 128);

    Transaction tx(pool);
    tx.begin();
    tx.addRange(pair, 8);
    tx.addRange(pair + 64, 8);
    pool.store<std::uint64_t>(pair, 8);
    pool.store<std::uint64_t>(pair + 64, 8);
    // CRASH here: no commit. Materialize the image with the log's
    // writebacks landed (the pessimal torn state).
    CrashSimulator sim(pool.device());
    auto image = sim.crashImage(CrashPolicy::CommitPending);

    const auto rolled_back = TxRecovery::rollback(pool, image);
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, image.data() + pair, 8);
    std::memcpy(&b, image.data() + pair + 64, 8);
    std::printf("Undo-log recovery rolled back %zu entries; "
                "a=%llu b=%llu (expected 7/7)\n",
                rolled_back.size(), static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
    tx.abort();

    runtime.programEnd();
    std::printf("\nFinal bug report:\n%s", debugger.bugs().summary().c_str());
    return found && a == 7 && b == 7 ? 0 : 1;
}
