/**
 * @file
 * Relaxed persistency models: the Figure 7 bugs.
 *
 * Demonstrates the three relaxed-model bugs the paper studies first:
 *  (a) a redundant fence inside an epoch section,
 *  (b) persisting B from another strand before A is durable,
 *  (c) an epoch whose stores are not durable at epoch end,
 * each detected by the corresponding PMDebugger rule — rules no other
 * evaluated tool has (Table 6).
 *
 *   $ ./build/examples/persistency_models
 */

#include <cstdio>

#include "core/debugger.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "trace/runtime.hh"

namespace
{

using namespace pmdb;

/** Figure 7a: more than one fence in an epoch section. */
void
redundantEpochFence()
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    {
        PmemPool pool(runtime, 1 << 20, "fig7a.pool");
        const Addr a = pool.alloc(64);

        Transaction tx(pool);
        tx.begin();                 // Epoch-begin
        tx.addRange(a, 16);
        pool.store<std::uint64_t>(a, 1);      // write A
        pool.persist(a, 8);         // clwb A; sfence  <-- redundant
        pool.store<std::uint64_t>(a + 8, 2);  // write B
        tx.commit();                // clwb B; sfence; Epoch-end
    }
    runtime.programEnd();
    std::printf("(a) redundant epoch fence:      %s\n",
                debugger.bugs().hasAny(BugType::RedundantEpochFence)
                    ? "DETECTED"
                    : "missed");
}

/** Figure 7b: strand 1 persists B before strand 0's A is durable. */
void
strandOrderViolation()
{
    DebuggerConfig config;
    config.model = PersistencyModel::Strand;
    config.orderSpec = OrderSpec::fromText("persist_before A B\n");
    PmRuntime runtime;
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);
    {
        PmemPool pool(runtime, 1 << 20, "fig7b.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);
        pool.registerVariable("A", a, 8);
        pool.registerVariable("B", b, 8);

        runtime.strandBegin(0);
        pool.store<std::uint64_t>(a, 1); // write A
        pool.store<std::uint64_t>(b, 2); // write B
        pool.flush(a, 8);                // clwb A (no barrier yet)
        runtime.strandEnd(0);

        runtime.strandBegin(1);
        pool.flush(b, 8); // persist B in the other strand
        pool.fence();     // persist barrier
        runtime.strandEnd(1);

        runtime.strandBegin(0);
        pool.fence();
        pool.flush(b, 8);
        pool.fence();
        runtime.strandEnd(0);
        runtime.joinStrand();
    }
    runtime.programEnd();
    std::printf("(b) lack ordering in strands:   %s\n",
                debugger.bugs().hasAny(BugType::LackOrderingInStrands)
                    ? "DETECTED"
                    : "missed");
}

/** Figure 7c / 9c: a store in the epoch is not durable at epoch end. */
void
lackDurabilityInEpoch()
{
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);
    {
        PmemPool pool(runtime, 1 << 20, "fig7c.pool");
        const Addr a = pool.alloc(128);

        Transaction tx(pool);
        tx.begin();                           // Epoch-begin
        pool.store<std::uint64_t>(a, 1);      // write A (never logged!)
        tx.addRange(a + 64, 8);               // only B is registered
        pool.store<std::uint64_t>(a + 64, 2); // write B
        tx.commit();                          // clwb B; sfence; end
    }
    runtime.programEnd();
    std::printf("(c) lack durability in epoch:   %s\n",
                debugger.bugs().hasAny(BugType::LackDurabilityInEpoch)
                    ? "DETECTED"
                    : "missed");
}

} // namespace

int
main()
{
    std::printf("Relaxed persistency model bugs (Figure 7):\n");
    redundantEpochFence();
    strandOrderViolation();
    lackDurabilityInEpoch();
    return 0;
}
