/**
 * @file
 * Domain scenario: debugging a persistent key-value store with four
 * different tools.
 *
 * Runs the hashmap_atomic workload with an injected ordering bug (the
 * bucket head is published and persisted before the entry it points
 * to) under PMDebugger, Pmemcheck, PMTest and XFDetector, and shows
 * who catches what — the Table 6 story on one concrete bug.
 *
 *   $ ./build/examples/kvstore_debugging
 */

#include <cstdio>
#include <memory>

#include "detectors/pmdebugger_detector.hh"
#include "detectors/registry.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace pmdb;

    auto workload = makeWorkload("hashmap_atomic");
    std::printf("Scenario: hashmap_atomic with the "
                "'bucket published before entry' ordering bug.\n"
                "Required order (from the debugger config file):\n  %s\n",
                workload->orderSpecText().c_str());

    for (const std::string &tool :
         {std::string("pmdebugger"), std::string("pmemcheck"),
          std::string("pmtest"), std::string("xfdetector")}) {
        PmRuntime runtime;

        DebuggerConfig config;
        config.model = workload->model();
        config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
        auto detector = makeDetector(tool, config);
        runtime.attach(detector.get());

        WorkloadOptions options;
        options.operations = 500;
        options.faults.enable("hmatomic_bucket_before_entry");
        if (tool == "pmtest") {
            // PMTest needs the programmer's assertions in the code; the
            // workload carries the annotations its developers added.
            options.pmtest =
                static_cast<PmTestDetector *>(detector.get());
        }
        workload->run(runtime, options);
        detector->finalize();

        std::printf("\n--- %s ---\n", tool.c_str());
        if (detector->bugs().total() == 0) {
            std::printf("  (no bugs reported)\n");
            continue;
        }
        std::size_t shown = 0;
        for (const BugReport &bug : detector->bugs().bugs()) {
            if (++shown > 5)
                break;
            std::printf("  %s\n", bug.toString().c_str());
        }
        if (detector->bugs().total() > 5) {
            std::printf("  ... and %zu more site(s)\n",
                        detector->bugs().total() - 5);
        }
    }

    std::printf("\nExpected: PMDebugger, PMTest and XFDetector report "
                "the order violation\n(no-order-guarantee); Pmemcheck "
                "cannot check ordering at all (Table 6).\n");
    return 0;
}
