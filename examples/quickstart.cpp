/**
 * @file
 * Quickstart: debug a small persistent-memory program with PMDebugger.
 *
 * The program below writes a record into a PM pool with three classic
 * crash-consistency mistakes — a store that is never flushed, a flush
 * that is never fenced, and a redundant flush. PMDebugger observes the
 * instrumented stream and reports all three.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "core/debugger.hh"
#include "pmdk/pool.hh"
#include "trace/runtime.hh"

int
main()
{
    using namespace pmdb;

    // 1. Create the instrumentation runtime and attach PMDebugger.
    //    (With Valgrind this is `valgrind --tool=pmdebugger ./app`;
    //    here the runtime plays Valgrind's role.)
    PmRuntime runtime;
    PmDebugger debugger;
    runtime.attach(&debugger);

    {
        // 2. Create a PM pool — this is the Register_pmem step.
        PmemPool pool(runtime, 1 << 20, "quickstart.pool");

        // 3. A correct persist: store -> CLWB -> SFENCE.
        const Addr good = pool.alloc(64);
        pool.store<std::uint64_t>(good, 0xc0ffee);
        pool.persist(good, 8);

        // Bug 1 (redundant flush): the same line flushed twice before
        // its fence — a performance bug.
        const Addr doubled = pool.alloc(64);
        pool.store<std::uint64_t>(doubled, 3);
        pool.flush(doubled, 8);
        pool.flush(doubled, 8);
        pool.fence();

        // Bug 2 (no durability, missing CLF): the store is never
        // written back.
        const Addr never_flushed = pool.alloc(64);
        pool.store<std::uint64_t>(never_flushed, 1);

        // Bug 3 (no durability, missing fence): flushed, but no later
        // fence ever guarantees completion of the writeback.
        const Addr never_fenced = pool.alloc(64);
        pool.store<std::uint64_t>(never_fenced, 2);
        pool.flush(never_fenced, 8);
    }

    // 4. End of program: PMDebugger runs its finalize rules.
    runtime.programEnd();

    // 5. Read the report.
    std::printf("%s\n", debugger.bugs().summary().c_str());
    std::printf("Processed %llu instrumented events; "
                "%zu bug site(s) found (expected 3).\n",
                static_cast<unsigned long long>(runtime.eventCount()),
                debugger.bugs().total());
    return debugger.bugs().total() == 3 ? 0 : 1;
}
