/**
 * @file
 * YCSB sweep: detector slowdowns across the six YCSB core loads run
 * against the mini-memcached (the workload set the paper uses for its
 * characterization, Figure 2, exercised here for performance as
 * well). Write-heavy loads (A, F) produce the most PM traffic and the
 * widest detector separation; read-only load C bounds the
 * instrumentation floor.
 */

#include <cstdio>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    const std::size_t ops = scaled(30000);
    TextTable table;
    table.setHeader({"load", "native(s)", "nulgrind", "pmdebugger",
                     "pmemcheck", "pmc/pmd"});

    for (char load = 'a'; load <= 'f'; ++load) {
        const std::string workload = std::string("ycsb_") + load;
        const double native = runMedian(workload, "", ops).seconds;
        const double nulgrind =
            runMedian(workload, "nulgrind", ops).seconds;
        const double pmdebugger =
            runMedian(workload, "pmdebugger", ops).seconds;
        const double pmemcheck =
            runMedian(workload, "pmemcheck", ops).seconds;
        table.addRow({workload, fmtDouble(native, 4),
                      fmtFactor(nulgrind / native),
                      fmtFactor(pmdebugger / native),
                      fmtFactor(pmemcheck / native),
                      fmtFactor(pmemcheck / pmdebugger, 2)});
    }

    std::printf("=== YCSB A-F against memcached: detector slowdowns "
                "===\n%s\n",
                table.render().c_str());
    std::printf("(loads A and F are update-heavy — the most PM events "
                "per op and the widest\ndetector gap; load C is "
                "read-only and bounds the instrumentation floor)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
