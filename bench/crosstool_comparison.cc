/**
 * @file
 * Section 7.2 "Comparison with other state-of-the-arts": PMDebugger vs
 * XFDetector and PMTest on the Table 4 benchmarks (all except r_tree,
 * which neither baseline evaluates). Slowdowns exclude instrumentation
 * differences exactly as the paper does: XFDetector/PMTest use
 * different instrumentation mechanisms, so only relative debugging
 * cost is comparable.
 *
 * Paper: XFDetector ~370x over native (cross-failure replay), PMTest
 * ~3.8x (annotation-based, cheapest), PMDebugger ~7.5x — within 2x of
 * PMTest while finding 38 more bugs than PMTest does (Table 6).
 */

#include <cstdio>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    // All Table 4 benchmarks except r_tree (Section 7.2).
    const std::vector<std::string> workloads = {
        "b_tree",        "c_tree",         "rb_tree",
        "hashmap_tx",    "hashmap_atomic", "synth_strand",
        "memcached",     "redis"};

    TextTable table;
    table.setHeader({"benchmark", "pmtest", "pmdebugger", "xfdetector",
                     "xf/pmd"});

    double sum_pmtest = 0.0, sum_pmdebugger = 0.0, sum_xf = 0.0;
    for (const std::string &workload : workloads) {
        // XFDetector replays its trace prefix at every failure point;
        // keep the series at a size its superlinear cost can finish.
        const std::size_t ops = scaled(10000);
        const double native = runMedian(workload, "", ops).seconds;
        const double pmtest =
            runMedian(workload, "pmtest", ops).seconds;
        const double pmdebugger =
            runMedian(workload, "pmdebugger", ops).seconds;
        const double xfdetector =
            runMedian(workload, "xfdetector", ops, 1, 1).seconds;

        table.addRow({workload, fmtFactor(pmtest / native),
                      fmtFactor(pmdebugger / native),
                      fmtFactor(xfdetector / native),
                      fmtFactor(xfdetector / pmdebugger)});
        sum_pmtest += pmtest / native;
        sum_pmdebugger += pmdebugger / native;
        sum_xf += xfdetector / native;
    }

    std::printf("=== Section 7.2: cross-tool slowdown vs native ===\n%s\n",
                table.render().c_str());
    const double n = static_cast<double>(workloads.size());
    std::printf("Averages: pmtest %s, pmdebugger %s, xfdetector %s\n",
                fmtFactor(sum_pmtest / n).c_str(),
                fmtFactor(sum_pmdebugger / n).c_str(),
                fmtFactor(sum_xf / n).c_str());
    std::printf("(paper: PMTest 3.8x < PMDebugger 7.5x (within 2x) << "
                "XFDetector ~370x.\nThe ordering and the 'within a "
                "factor of 2 of PMTest' property are the\nreproduced "
                "shape; XFDetector's factor grows with trace length "
                "because every\nfailure point replays the prefix.)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
