/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: run a
 * (workload, detector) pair and measure wall-clock time, with the
 * persistence-domain model detached (real PM tracks persistence in
 * hardware) and repetitions for stability.
 *
 * PMDB_BENCH_SCALE scales every operation count (default 1.0); set it
 * below 1 for quick smoke runs of the full bench suite.
 */

#ifndef PMDB_BENCH_BENCH_UTIL_HH
#define PMDB_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/table.hh"
#include "detectors/registry.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Global operation-count scale from PMDB_BENCH_SCALE. */
inline double
benchScale()
{
    static const double scale = [] {
        if (const char *env = std::getenv("PMDB_BENCH_SCALE"))
            return std::max(0.001, std::atof(env));
        return 1.0;
    }();
    return scale;
}

inline std::size_t
scaled(std::size_t ops)
{
    return std::max<std::size_t>(64,
                                 static_cast<std::size_t>(
                                     static_cast<double>(ops) *
                                     benchScale()));
}

/** Visible core count (never 0). */
inline unsigned
benchCores()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

/**
 * Host-metadata fragment for BENCH_*.json rows: the visible core
 * count plus a core_limited flag set when the host has fewer cores
 * than the benchmark's widest parallel phase (@p parallelism).
 * Numbers measured core-limited reflect time-slicing, not capacity —
 * downstream consumers filter on the flag. Splice right after the
 * opening "bench" field so every emitter carries the same keys.
 */
inline std::string
hostMetaJson(unsigned parallelism = 1)
{
    const unsigned cores = benchCores();
    return "\"cores\": " + std::to_string(cores) +
           ", \"core_limited\": " +
           (cores < parallelism ? "true" : "false");
}

/**
 * Dispatch mode used for detector runs, from PMDB_DISPATCH
 * ("perevent" | "batched" | "async"). Batched is the default: it is
 * the production configuration of the pipeline and results are
 * bit-identical to per-event dispatch (tests/test_dispatch.cc).
 */
inline DispatchMode
benchDispatchMode()
{
    static const DispatchMode mode = [] {
        if (const char *env = std::getenv("PMDB_DISPATCH")) {
            const std::string v(env);
            if (v == "perevent" || v == "per-event")
                return DispatchMode::PerEvent;
            if (v == "async")
                return DispatchMode::Async;
            if (v != "batched")
                fatal("PMDB_DISPATCH: unknown mode " + v);
        }
        return DispatchMode::Batched;
    }();
    return mode;
}

/**
 * PMTest's annotation checkers and XFDetector's cross-failure
 * verifiers query sink/device state synchronously between events, so
 * those tools must stay on per-event dispatch (see their headers).
 */
inline bool
detectorSupportsBatching(const std::string &detector_name)
{
    return detector_name != "pmtest" && detector_name != "xfdetector";
}

/** One timed run of @p workload under @p detector ("" = native). */
struct BenchRun
{
    double seconds = 0.0;
    DebuggerStats stats;
    std::size_t bugSites = 0;
};

inline BenchRun
runWorkload(const std::string &workload_name,
            const std::string &detector_name, std::size_t ops,
            int threads = 1, std::uint64_t seed = 42,
            DispatchMode mode = benchDispatchMode())
{
    auto workload = makeWorkload(workload_name);
    if (!workload)
        fatal("bench: unknown workload " + workload_name);

    PmRuntime runtime;
    std::unique_ptr<Detector> detector;
    if (!detector_name.empty()) {
        DebuggerConfig config;
        config.model = workload->model();
        if (!workload->orderSpecText().empty()) {
            config.orderSpec =
                OrderSpec::fromText(workload->orderSpecText());
        }
        detector = makeDetector(detector_name, config);
        if (!detector)
            fatal("bench: unknown detector " + detector_name);
        runtime.attach(detector.get());
        if (detectorSupportsBatching(detector_name))
            runtime.setDispatchMode(mode);
    }

    WorkloadOptions options;
    options.operations = ops;
    options.seed = seed;
    options.threads = threads;
    options.trackPersistence = false; // hardware does this for free

    Stopwatch watch;
    workload->run(runtime, options);
    // Async runs are only done once every published batch has been
    // consumed; the drain barrier is part of the measured time.
    runtime.drain();
    BenchRun run;
    run.seconds = watch.elapsedSeconds();
    if (detector) {
        detector->finalize();
        run.stats = detector->stats();
        run.bugSites = detector->bugs().total();
    }
    return run;
}

/** Median-of-@p reps timing (fresh state each repetition). */
inline BenchRun
runMedian(const std::string &workload_name,
          const std::string &detector_name, std::size_t ops,
          int threads = 1, int reps = 3,
          DispatchMode mode = benchDispatchMode())
{
    // One unmeasured warm-up run (page faults, allocator growth), then
    // the median of the measured repetitions.
    runWorkload(workload_name, detector_name,
                std::max<std::size_t>(64, ops / 4), threads, 41, mode);
    std::vector<BenchRun> runs;
    for (int r = 0; r < reps; ++r) {
        runs.push_back(runWorkload(workload_name, detector_name, ops,
                                   threads, 42 + r, mode));
    }
    std::sort(runs.begin(), runs.end(),
              [](const BenchRun &a, const BenchRun &b) {
                  return a.seconds < b.seconds;
              });
    return runs[runs.size() / 2];
}

} // namespace pmdb

#endif // PMDB_BENCH_BENCH_UTIL_HH
