/**
 * @file
 * Fix-advisory engine benchmark.
 *
 * Runs the advisory corpus (3 seeds per case) over a panel of
 * repairable seeded suite bugs whose injection point is a SiteScope-
 * annotated program site, and checks the tentpole property end to end:
 * the top-ranked advisory must name the injected program site, with
 * every corpus trace repaired and verified. Reports per-case corpus
 * size, advisory count, top confidence, and — for the deletion
 * (performance) advisories — the estimated flushes/fences saved across
 * the corpus. Emits a JSON summary with the confidence distribution to
 * BENCH_advise.json (and stdout).
 *
 * Acceptance: every panel case reproduces its target on all corpus
 * traces, verifies all repairs, and top-ranks the expected site.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "advise/corpus.hh"
#include "advise/report.hh"
#include "bench/bench_util.hh"
#include "repair/case_repair.hh"

namespace pmdb
{
namespace
{

struct PanelCase
{
    const char *name;
    /** The SiteScope label of the injected bug's code path. */
    const char *expectedSite;
    std::size_t operations;
};

/** Repairable seeded bugs with site-annotated injection points. */
const PanelCase panel[] = {
    {"hashmap_atomic_entry_not_flushed",
     "hashmap_atomic.cc:insert.fill_entry", 50},
    {"hashmap_atomic_bucket_first",
     "hashmap_atomic.cc:insert.fill_entry", 50},
    {"hashmap_atomic_double_flush",
     "hashmap_atomic.cc:insert.persist_entry", 50},
    {"hashmap_atomic_flush_empty",
     "hashmap_atomic.cc:insert.audit_scratch", 50},
    {"pmdk_create_hashmap_fence", "hashmap_atomic.cc:create", 50},
    {"memcached_bug_1", "memcached.cc:setNew.late_header_update", 120},
    {"memcached_bug_4", "memcached.cc:setNew.persist_item", 120},
};

struct CaseRow
{
    std::string name;
    std::string topSite;
    std::string expectedSite;
    std::size_t corpus = 0;
    std::size_t reproduced = 0;
    std::size_t verified = 0;
    std::size_t advisories = 0;
    double topConfidence = 0.0;
    std::uint64_t savedFlushes = 0;
    std::uint64_t savedFences = 0;
    std::uint64_t replays = 0;
    bool siteOk = false;
};

int
benchMain()
{
    std::printf("=== Whole-program fix advisories ===\n\n");

    std::vector<CaseRow> rows;
    // Confidence distribution across all advisories of all panels.
    std::size_t conf_full = 0;
    std::size_t conf_high = 0;
    std::size_t conf_low = 0;

    for (const PanelCase &panel_case : panel) {
        const BugCase *bug_case = findBugCase(panel_case.name);
        if (!bug_case) {
            std::printf("WARNING: unknown case %s\n", panel_case.name);
            continue;
        }
        CorpusSpec spec;
        spec.seeds = {1, 2, 3};
        spec.operations = scaled(panel_case.operations);
        spec.workers = 2;
        const AdviseReport report = runAdviseCorpus(*bug_case, spec);

        CaseRow row;
        row.name = panel_case.name;
        row.expectedSite = panel_case.expectedSite;
        row.corpus = report.traces.size();
        for (const TraceOutcome &trace : report.traces) {
            row.reproduced += trace.targetPresent;
            row.verified += trace.verified;
            row.replays += trace.replays;
        }
        row.advisories = report.advisories.size();
        for (const FixAdvisory &advisory : report.advisories) {
            if (advisory.confidence >= 1.0)
                ++conf_full;
            else if (advisory.confidence >= 0.5)
                ++conf_high;
            else
                ++conf_low;
            row.savedFlushes += advisory.savedFlushes;
            row.savedFences += advisory.savedFences;
        }
        if (!report.advisories.empty()) {
            row.topSite = report.advisories.front().site;
            row.topConfidence = report.advisories.front().confidence;
        }
        row.siteOk = row.topSite == row.expectedSite;
        rows.push_back(std::move(row));
    }

    TextTable table;
    table.setHeader({"case", "corpus", "verified", "advisories",
                     "top site", "conf", "saved f/f", "ok"});
    bool all_ok = true;
    for (const CaseRow &row : rows) {
        const bool ok = row.siteOk && row.reproduced == row.corpus &&
                        row.verified == row.corpus;
        all_ok = all_ok && ok;
        char conf[16];
        std::snprintf(conf, sizeof(conf), "%.2f", row.topConfidence);
        table.addRow({row.name, fmtCount(row.corpus),
                      fmtCount(row.verified), fmtCount(row.advisories),
                      row.topSite, conf,
                      fmtCount(row.savedFlushes) + "/" +
                          fmtCount(row.savedFences),
                      ok ? "yes" : "NO"});
        if (!row.siteOk) {
            std::printf("WARNING: %s top-ranked %s, expected %s\n",
                        row.name.c_str(), row.topSite.c_str(),
                        row.expectedSite.c_str());
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("confidence distribution over %zu advisories: "
                "%zu at 1.0, %zu in [0.5,1.0), %zu below 0.5\n",
                conf_full + conf_high + conf_low, conf_full, conf_high,
                conf_low);

    std::string json =
        "{\"bench\": \"advise\", " + hostMetaJson() +
        ", \"cases\": " + std::to_string(rows.size()) +
        ", \"confidence_full\": " + std::to_string(conf_full) +
        ", \"confidence_high\": " + std::to_string(conf_high) +
        ", \"confidence_low\": " + std::to_string(conf_low) +
        ", \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CaseRow &row = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"case\": \"%s\", \"corpus\": %zu, "
            "\"reproduced\": %zu, \"verified\": %zu, "
            "\"advisories\": %zu, \"top_site\": \"%s\", "
            "\"top_confidence\": %.4f, \"saved_flushes\": %llu, "
            "\"saved_fences\": %llu, \"replays\": %llu, "
            "\"site_ok\": %s}",
            i ? ", " : "", row.name.c_str(), row.corpus, row.reproduced,
            row.verified, row.advisories, row.topSite.c_str(),
            row.topConfidence,
            static_cast<unsigned long long>(row.savedFlushes),
            static_cast<unsigned long long>(row.savedFences),
            static_cast<unsigned long long>(row.replays),
            row.siteOk ? "true" : "false");
        json += buf;
    }
    json += "]}";

    std::printf("\n%s\n", json.c_str());
    if (std::FILE *f = std::fopen("BENCH_advise.json", "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    }

    if (!all_ok)
        std::printf("WARNING: advisory acceptance failed (see table)\n");
    return all_ok ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
