/**
 * @file
 * Section 7.4 reproduction: the new bugs PMDebugger found — 19 in
 * memcached (Figure 9a's unpersisted ITEM_set_cas among them) and two
 * in PMDK (Figure 9b's redundant epoch fence in
 * data_store/create_hashmap, Figure 9c's lack of durability in the
 * array example) — and the comparison showing that XFDetector and
 * PMTest miss the PMDK bugs.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "detectors/pmdebugger_detector.hh"
#include "pmdk/tx.hh"

namespace pmdb
{
namespace
{

/** Run the as-shipped (buggy) memcached and count distinct bug sites. */
void
memcachedNewBugs()
{
    std::printf("--- memcached, as shipped (all 19 injected real bugs) "
                "---\n");
    auto workload = makeWorkload("memcached");
    DebuggerConfig config;
    config.model = PersistencyModel::Strict;
    config.orderSpec = OrderSpec::fromText(workload->orderSpecText());
    PmRuntime runtime;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);

    WorkloadOptions options;
    options.operations = scaled(5000);
    options.seed = 42;
    options.setRatio = 0.5;
    options.cacheCapacity = 512;
    options.faults.enable("mc_real_bugs");
    workload->run(runtime, options);
    detector.finalize();

    TextTable table;
    table.setHeader({"bug type", "unique sites"});
    for (int t = 0; t < bugTypeCount; ++t) {
        const auto type = static_cast<BugType>(t);
        const std::size_t n = detector.bugs().countOf(type);
        if (n)
            table.addRow({toString(type), std::to_string(n)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Total unique bug sites: %zu (the paper reports 19 "
                "distinct memcached bugs;\nFigure 9a — ITEM_set_cas "
                "modified but not persisted — is injection point "
                "mc_bug_1)\n\n",
                detector.bugs().total());
}

/** Figure 9b: redundant epoch fence in PMDK's hashmap_atomic create. */
void
pmdkCreateHashmapBug()
{
    std::printf("--- PMDK bug 2 (Figure 9b): redundant epoch fence in "
                "create_hashmap ---\n");
    for (const std::string &tool :
         {std::string("pmdebugger"), std::string("xfdetector"),
          std::string("pmtest"), std::string("pmemcheck")}) {
        PmRuntime runtime;
        auto detector = makeDetector(tool, {});
        runtime.attach(detector.get());
        auto workload = makeWorkload("hashmap_atomic");
        WorkloadOptions options;
        options.operations = 64;
        options.faults.enable("pmdk_create_bug");
        workload->run(runtime, options);
        detector->finalize();
        const bool found =
            detector->bugs().hasAny(BugType::RedundantEpochFence);
        std::printf("  %-12s %s\n", tool.c_str(),
                    found ? "DETECTED" : "missed");
    }
    std::printf("(confirmed by Intel, PMDK PR #4939)\n\n");
}

/** Figure 9c: the PMDK array example only persists the array pointer,
 * not the fields written earlier in the epoch. */
void
pmdkArrayExampleBug()
{
    std::printf("--- PMDK bug 3 (Figure 9c): lack durability in epoch, "
                "array example ---\n");
    PmRuntime runtime;
    PmDebuggerDetector detector;
    runtime.attach(&detector);
    {
        // The do_alloc/alloc_int pattern: info fields written in the
        // epoch, but only the freshly allocated array is persisted.
        PmemPool pool(runtime, 1 << 20, "array_example.pool");
        struct Info
        {
            char name[32];
            std::uint64_t size;
            std::uint64_t type;
            Addr array;
        };
        const Addr info = pool.alloc(sizeof(Info));
        pool.persist(info, sizeof(Info));

        Transaction tx(pool);
        tx.begin();
        // Lines 4-7 of Figure 9c: fields modified, never logged/flushed.
        pool.store<std::uint64_t>(info + offsetof(Info, size), 16);
        pool.store<std::uint64_t>(info + offsetof(Info, type), 1);
        const Addr array = tx.alloc(16 * sizeof(std::uint64_t));
        pool.store<Addr>(info + offsetof(Info, array), array);
        // alloc_int persists only the array (tx-registered); the info
        // fields ride nothing.
        tx.commit();
    }
    runtime.programEnd();
    const bool found =
        detector.bugs().hasAny(BugType::LackDurabilityInEpoch);
    std::printf("  pmdebugger   %s\n(confirmed by Intel, PMDK issue "
                "#4927)\n\n",
                found ? "DETECTED" : "missed");
}

int
benchMain()
{
    std::printf("=== Section 7.4: new bugs found by PMDebugger ===\n\n");
    memcachedNewBugs();
    pmdkCreateHashmapBug();
    pmdkArrayExampleBug();
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
