/**
 * @file
 * Crash-state model-checking benchmark.
 *
 * Part 1 — systematic coverage: model-check hashmap_atomic to crash
 * depth 3 and count distinct persistent states visited, the read-set
 * pruning ratio (recovery executions avoided), and states/sec.
 *
 * Part 2 — coverage vs single-crash exploration: run crashsim over
 * the same workload with its enumeration budget escalated until it
 * either saturates (complete single-crash space) or has consumed at
 * least the model checker's wall clock, and compare distinct states.
 * The acceptance bar is >= 10x: multi-crash recovery re-execution
 * reaches an order of magnitude more persistent states than any
 * single-crash budget can, because crashsim's space is bounded by one
 * execution's crash points no matter how much time it is given.
 *
 * Part 3 — determinism: the same search with 1 and 4 workers must be
 * bit-identical, and the seeded multi-crash recovery bug must be
 * found.
 *
 * Emits a JSON row to BENCH_modelcheck.json (and stdout).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "modelcheck/engine.hh"
#include "modelcheck/model.hh"
#include "workloads/crashsim_runner.hh"

namespace pmdb
{
namespace
{

ModelCheckResult
runModelCheck(const std::string &workload, bool buggy,
              const ModelCheckOptions &options)
{
    auto model = makeModelWorkload(workload, buggy);
    if (!model)
        fatal("modelcheck_bench: unknown workload " + workload);
    ModelChecker checker(*model, options);
    return checker.run();
}

int
benchMain()
{
    std::printf("=== Crash-state model checking: systematic coverage "
                "vs single-crash exploration ===\n\n");

    const std::size_t ops = std::max<std::size_t>(
        4, static_cast<std::size_t>(6 * benchScale()));

    ModelCheckOptions options;
    options.run.operations = ops;
    options.run.recoveryOperations = 1;
    options.run.seed = 42;
    options.maxDepth = 3;
    options.maxStates = 1 << 20;
    options.maxFindings = 1 << 10;
    options.workers = 1;

    // Part 1: the systematic search.
    const ModelCheckResult mc =
        runModelCheck("hashmap_atomic", false, options);
    const double pruning_ratio =
        mc.stats.prunedCandidates + mc.stats.executions > 0
            ? static_cast<double>(mc.stats.prunedCandidates) /
                  static_cast<double>(mc.stats.prunedCandidates +
                                      mc.stats.executions)
            : 0.0;
    const double states_per_sec =
        mc.seconds > 0.0
            ? static_cast<double>(mc.stats.distinctStates) / mc.seconds
            : 0.0;

    TextTable search;
    search.setHeader({"search", "distinct states", "executions",
                      "pruned", "seconds", "states/sec"});
    search.addRow({"modelcheck depth 3",
                   fmtCount(mc.stats.distinctStates),
                   fmtCount(mc.stats.executions),
                   fmtCount(mc.stats.prunedCandidates),
                   fmtDouble(mc.seconds, 4),
                   fmtCount(static_cast<std::size_t>(states_per_sec))});
    std::printf("--- modelcheck: hashmap_atomic x %zu ops ---\n%s\n",
                ops, search.render().c_str());

    // Part 2: crashsim over the same workload, budget escalated until
    // it saturates or has spent at least the model checker's wall
    // clock. Distinct states = enumerated - deduped.
    WorkloadOptions wl_options;
    wl_options.operations = ops;
    wl_options.poolBytes = std::size_t(1) << 17;

    CrashsimOptions cs_options;
    cs_options.maxFindings = 1 << 20;
    cs_options.workers = 1;

    CrashsimResult cs;
    double cs_seconds = 0.0;
    std::uint64_t cs_distinct = 0;
    std::size_t budget = 256;
    for (;;) {
        cs_options.maxImagesPerPoint = budget;
        Stopwatch watch;
        cs = runCrashsimWorkload("hashmap_atomic", wl_options,
                                 cs_options);
        cs_seconds = watch.elapsedSeconds();
        cs_distinct =
            cs.stats.imagesEnumerated - cs.stats.imagesDeduped;
        // Saturated: the bounds no longer cut anything short, so a
        // bigger budget cannot reach new states.
        if (cs.stats.truncatedPoints == 0)
            break;
        if (cs_seconds >= mc.seconds)
            break;
        budget *= 4;
    }
    const double coverage_ratio =
        cs_distinct > 0 ? static_cast<double>(mc.stats.distinctStates) /
                              static_cast<double>(cs_distinct)
                        : 0.0;

    TextTable coverage;
    coverage.setHeader({"explorer", "distinct states", "seconds",
                        "coverage"});
    coverage.addRow({"modelcheck depth 3",
                     fmtCount(mc.stats.distinctStates),
                     fmtDouble(mc.seconds, 4),
                     fmtFactor(coverage_ratio, 2)});
    coverage.addRow({"crashsim (single crash)", fmtCount(cs_distinct),
                     fmtDouble(cs_seconds, 4), fmtFactor(1.0, 2)});
    std::printf("--- coverage: crashsim budget escalated to %zu "
                "images/point ---\n%s\n",
                budget, coverage.render().c_str());

    // Part 3: worker-count determinism and the seeded recovery bug.
    ModelCheckOptions par = options;
    par.workers = 4;
    const ModelCheckResult four =
        runModelCheck("hashmap_atomic", false, par);
    const bool identical = mc.identicalTo(four);
    std::printf("4-worker results identical to single-threaded: %s\n",
                identical ? "yes" : "NO — BUG");

    ModelCheckOptions bug_options;
    bug_options.run.operations = 3;
    bug_options.maxDepth = 3;
    const ModelCheckResult seeded =
        runModelCheck("mc_undo_flush", true, bug_options);
    const bool bug_found = !seeded.findings.empty();
    std::printf("seeded depth-2 recovery bug (mc_undo_flush): %s\n",
                bug_found ? "found" : "MISSED");

    const bool coverage_ok = coverage_ratio >= 10.0;
    if (!coverage_ok) {
        std::printf("WARNING: coverage ratio %.2fx below the 10x "
                    "acceptance bar\n",
                    coverage_ratio);
    }

    char json[1024];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"modelcheck\", %s, "
        "\"workload\": \"hashmap_atomic\", \"ops\": %zu, "
        "\"depth\": 3, "
        "\"distinct_states\": %llu, \"executions\": %llu, "
        "\"pruned_candidates\": %llu, \"pruning_ratio\": %.3f, "
        "\"states_per_sec\": %.0f, \"seconds\": %.4f, "
        "\"crashsim_distinct_states\": %llu, "
        "\"crashsim_seconds\": %.4f, "
        "\"crashsim_budget\": %zu, "
        "\"coverage_ratio\": %.2f, "
        "\"workers_identical\": %s, "
        "\"seeded_bug_found\": %s}",
        hostMetaJson(4).c_str(), ops,
        static_cast<unsigned long long>(mc.stats.distinctStates),
        static_cast<unsigned long long>(mc.stats.executions),
        static_cast<unsigned long long>(mc.stats.prunedCandidates),
        pruning_ratio, states_per_sec, mc.seconds,
        static_cast<unsigned long long>(cs_distinct), cs_seconds,
        budget, coverage_ratio, identical ? "true" : "false",
        bug_found ? "true" : "false");

    std::printf("\n%s\n", json);
    if (std::FILE *f = std::fopen("BENCH_modelcheck.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    }

    return identical && bug_found && coverage_ok ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
