/**
 * @file
 * Telemetry-overhead benchmark: the dispatch-path cost of the
 * always-on metrics substrate.
 *
 * Part 1 measures the primitives in isolation (striped counter add,
 * histogram record, the enabled() gate) in ns/op. Part 2 runs the
 * dispatch micro-stream (same shape as dispatch_bench: fence
 * intervals of 64 stores + collective flush + fence, batched mode —
 * the production pipeline) with telemetry enabled and disabled in
 * drift-cancelling OFF-ON-OFF / ON-OFF-ON triplets, and reports the
 * median relative overhead across triplets. The gate: enabled
 * dispatch must stay within 2% of disabled at full scale (scaled
 * smoke runs report the number but only warn — sub-second runs
 * measure noise, not cost). Bug verdicts must be identical either
 * way.
 *
 * Emits a JSON row to BENCH_telemetry.json (and stdout).
 */

#include <cstdio>
#include <random>

#include "bench/bench_util.hh"
#include "core/debugger.hh"
#include "telemetry/metrics.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

struct MicroResult
{
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
    std::size_t bugs = 0;
};

/** Same stream as dispatch_bench's micro part: dispatch-dominated. */
MicroResult
runMicro(std::size_t fence_intervals)
{
    constexpr std::size_t storesPerInterval = 64;
    constexpr std::size_t bytesPerStore = 8;
    constexpr std::size_t regionBytes = 1 << 20;

    PmRuntime runtime;
    const auto debugger = makeDetector("pmdebugger", DebuggerConfig{});
    runtime.attach(debugger.get());
    runtime.setThreadSafe(true);
    runtime.setDispatchMode(DispatchMode::Batched);

    Stopwatch watch;
    Addr base = 0;
    for (std::size_t i = 0; i < fence_intervals; ++i) {
        for (std::size_t s = 0; s < storesPerInterval; ++s)
            runtime.store(base + s * bytesPerStore, bytesPerStore);
        const std::size_t spanBytes = storesPerInterval * bytesPerStore;
        runtime.flush(base, static_cast<std::uint32_t>(spanBytes));
        runtime.fence();
        base = (base + spanBytes) % regionBytes;
    }
    runtime.programEnd();

    MicroResult result;
    result.seconds = watch.elapsedSeconds();
    debugger->finalize();
    result.events = runtime.eventCount();
    result.eventsPerSec =
        result.seconds > 0.0
            ? static_cast<double>(result.events) / result.seconds
            : 0.0;
    result.bugs = debugger->bugs().total();
    return result;
}

/**
 * Fastest repetition: the run least disturbed by the scheduler. Under
 * preemption noise (shared single-vCPU hosts) the minimum is the
 * honest estimator of the code's cost — medians still carry whatever
 * interruptions landed in half the runs.
 */
MicroResult
fastestOf(std::vector<MicroResult> runs)
{
    std::sort(runs.begin(), runs.end(),
              [](const MicroResult &a, const MicroResult &b) {
                  return a.seconds < b.seconds;
              });
    return runs.front();
}

/** ns/op over @p iters calls of @p op (called with the iteration). */
template <typename Op>
double
nsPerOp(std::size_t iters, Op &&op)
{
    Stopwatch watch;
    for (std::size_t i = 0; i < iters; ++i)
        op(i);
    return watch.elapsedSeconds() * 1e9 /
           static_cast<double>(iters);
}

int
benchMain()
{
    std::printf("=== Telemetry overhead: dispatch path with metrics "
                "on vs off ===\n\n");

    // --- primitives ---------------------------------------------------
    const std::size_t iters = scaled(4000000);
    telemetry::Registry::global().resetForTest();
    telemetry::Counter &counter =
        telemetry::Registry::global().counter("bench.counter");
    telemetry::Histogram &hist =
        telemetry::Registry::global().histogram("bench.hist");
    const double counterNs =
        nsPerOp(iters, [&](std::size_t i) { counter.add(i & 1); });
    const double histNs =
        nsPerOp(iters, [&](std::size_t i) { hist.record(i); });
    volatile bool sink = false;
    const double gateNs = nsPerOp(iters, [&](std::size_t) {
        sink = telemetry::enabled();
    });
    telemetry::Registry::global().resetForTest();
    std::printf("primitives: counter add %.2f ns, histogram record "
                "%.2f ns, enabled() gate %.2f ns\n\n",
                counterNs, histNs, gateNs);

    // --- dispatch path ------------------------------------------------
    // Shared hosts drift: load ramps up and down over seconds, so any
    // estimator that compares "the on runs" against "the off runs" in
    // aggregate measures the drift, not the instrumentation. Each
    // repetition is therefore a drift-cancelling TRIPLET — OFF-ON-OFF
    // or ON-OFF-ON — where the middle run is compared against the mean
    // of the two outer runs: a linear speed ramp across the triplet
    // contributes equally to the middle and the outer mean, so it
    // cancels to first order (pairs only cancel constant offsets).
    // Orientations are exactly balanced (half each) and shuffled with
    // a fixed seed so any second-order position effect also cancels
    // and a strict alternation can't lock onto periodic host activity.
    // The median across triplets then discards the repetitions where a
    // scheduler interruption landed inside one run.
    const std::size_t intervals =
        benchScale() >= 1.0
            ? scaled(40000) / 4
            : std::max<std::size_t>(64, scaled(40000) / 8);
    const bool wasEnabled = telemetry::enabled();

    // Gated full-scale runs buy a tight median with more triplets;
    // smoke runs keep the step cheap.
    const int reps = benchScale() >= 1.0 ? 80 : 12;
    telemetry::setEnabled(false);
    runMicro(std::max<std::size_t>(64, intervals / 4));
    telemetry::setEnabled(true);
    runMicro(std::max<std::size_t>(64, intervals / 4));

    std::vector<bool> onMiddle(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        onMiddle[static_cast<std::size_t>(r)] = (r & 1) != 0;
    std::minstd_rand orderRng(12345);
    std::shuffle(onMiddle.begin(), onMiddle.end(), orderRng);

    std::vector<MicroResult> offRuns, onRuns;
    std::vector<double> tripletDiffPct;
    for (int r = 0; r < reps; ++r) {
        const bool middleOn = onMiddle[static_cast<std::size_t>(r)];
        double outerSec = 0.0;
        double middleSec = 0.0;
        for (int leg = 0; leg < 3; ++leg) {
            const bool runOn = (leg == 1) == middleOn;
            telemetry::setEnabled(runOn);
            MicroResult run = runMicro(intervals);
            (leg == 1 ? middleSec : outerSec) += run.seconds;
            (runOn ? onRuns : offRuns).push_back(std::move(run));
        }
        outerSec /= 2.0;
        // middleOn: on vs off-mean; else: off vs on-mean — both are
        // (on - off) / off up to the drift-free approximation.
        const double onSec = middleOn ? middleSec : outerSec;
        const double offSec = middleOn ? outerSec : middleSec;
        if (offSec > 0.0)
            tripletDiffPct.push_back((onSec - offSec) / offSec *
                                     100.0);
    }
    telemetry::setEnabled(wasEnabled);

    const MicroResult off = fastestOf(std::move(offRuns));
    const MicroResult on = fastestOf(std::move(onRuns));
    std::sort(tripletDiffPct.begin(), tripletDiffPct.end());
    const double overheadPct =
        tripletDiffPct.empty()
            ? 0.0
            : tripletDiffPct[tripletDiffPct.size() / 2];
    const bool identical =
        on.events == off.events && on.bugs == off.bugs;

    TextTable table;
    table.setHeader({"telemetry", "seconds", "events/sec"});
    table.addRow({"off", fmtDouble(off.seconds, 4),
                  fmtDouble(off.eventsPerSec, 0)});
    table.addRow({"on", fmtDouble(on.seconds, 4),
                  fmtDouble(on.eventsPerSec, 0)});
    std::printf("--- %llu events/run, batched dispatch, %d "
                "drift-cancelling triplets ---\n%s\n",
                static_cast<unsigned long long>(off.events), reps,
                table.render().c_str());
    std::printf("overhead: %.2f%% (gate: < 2%%)\n", overheadPct);
    std::printf("verdicts identical on vs off: %s\n",
                identical ? "yes" : "NO — BUG");

    // Scaled smoke runs finish in milliseconds and measure scheduler
    // noise; only hold the full-scale run to the 2% gate.
    const bool gated = benchScale() >= 1.0;
    const bool overheadOk = overheadPct < 2.0;
    if (!overheadOk && !gated) {
        std::printf("note: PMDB_BENCH_SCALE=%.3f — overhead gate "
                    "reported but not enforced at reduced scale\n",
                    benchScale());
    }

    char json[512];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"telemetry\", %s, \"events\": %llu, "
        "\"events_per_sec_off\": %.0f, \"events_per_sec_on\": %.0f, "
        "\"overhead_pct\": %.2f, \"counter_add_ns\": %.2f, "
        "\"histogram_record_ns\": %.2f, \"enabled_gate_ns\": %.2f, "
        "\"results_identical\": %s, \"overhead_ok\": %s}",
        hostMetaJson().c_str(),
        static_cast<unsigned long long>(on.events), off.eventsPerSec,
        on.eventsPerSec, overheadPct, counterNs, histNs, gateNs,
        identical ? "true" : "false", overheadOk ? "true" : "false");

    std::printf("\n%s\n", json);
    if (std::FILE *f = std::fopen("BENCH_telemetry.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    }

    return identical && (overheadOk || !gated) ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
