/**
 * @file
 * Pattern-space sweep: how each detector's bookkeeping cost moves as
 * the paper's three program patterns degrade.
 *
 * Section 3's characterization is the entire justification for
 * PMDebugger's design: records die at the nearest fence (Pattern 1)
 * and writebacks are collective (Pattern 2), so an append-only array
 * with interval metadata beats a tree. This bench uses the
 * parameterized generator to sweep exactly those properties and
 * measures PMDebugger and Pmemcheck on each point — quantifying where
 * PMDebugger's advantage comes from and where it shrinks (long
 * distances push records into its AVL tree, its own worst case).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "detectors/registry.hh"
#include "workloads/synth_patterns.hh"

namespace pmdb
{
namespace
{

double
runPattern(const PatternParams &params, const std::string &detector_name,
           std::size_t ops)
{
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
        PmRuntime runtime;
        std::unique_ptr<Detector> detector;
        if (!detector_name.empty()) {
            detector = makeDetector(detector_name, {});
            runtime.attach(detector.get());
        }
        PmemPool pool(runtime, 64 << 20, "sweep.pool",
                      /*track_persistence=*/false);
        PatternGenerator generator(pool, params, 42 + rep, 8192);
        Stopwatch watch;
        for (std::size_t i = 0; i < ops; ++i) {
            runtime.appOp();
            generator.operation();
        }
        generator.drain();
        times.push_back(watch.elapsedSeconds());
        if (detector)
            detector->finalize();
    }
    std::sort(times.begin(), times.end());
    return times[1];
}

int
benchMain()
{
    const std::size_t ops = scaled(30000);

    std::printf("=== Sweep 1: nearest-fence durability (Pattern 1) ===\n"
                "Fraction of stores persisted by the nearest fence; the "
                "rest defer 2-7 fences\n(and therefore migrate into the "
                "trackers' trees).\n\n");
    {
        TextTable table;
        table.setHeader({"d=1 weight", "native(s)", "pmdebugger",
                         "pmemcheck", "pmc/pmd"});
        for (double d1 : {1.0, 0.85, 0.6, 0.3, 0.0}) {
            PatternParams params;
            params.distanceWeights = {d1, (1 - d1) * 0.4,
                                      (1 - d1) * 0.3, (1 - d1) * 0.15,
                                      (1 - d1) * 0.1, (1 - d1) * 0.05};
            const double native = runPattern(params, "", ops);
            const double pmd = runPattern(params, "pmdebugger", ops);
            const double pmc = runPattern(params, "pmemcheck", ops);
            table.addRow({fmtDouble(d1, 2), fmtDouble(native, 4),
                          fmtFactor(pmd / native),
                          fmtFactor(pmc / native),
                          fmtFactor(pmc / pmd, 2)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("(as Pattern 1 degrades, PMDebugger's records "
                    "survive into its AVL tree and its\nadvantage "
                    "narrows — the paper's hashmap_tx effect, here "
                    "isolated)\n\n");
    }

    std::printf("=== Sweep 2: collective writeback (Pattern 2) ===\n\n");
    {
        TextTable table;
        table.setHeader({"collective ratio", "native(s)", "pmdebugger",
                         "pmemcheck", "pmc/pmd"});
        for (double collective : {1.0, 0.7, 0.4, 0.0}) {
            PatternParams params;
            params.collectiveRatio = collective;
            const double native = runPattern(params, "", ops);
            const double pmd = runPattern(params, "pmdebugger", ops);
            const double pmc = runPattern(params, "pmemcheck", ops);
            table.addRow({fmtDouble(collective, 2),
                          fmtDouble(native, 4), fmtFactor(pmd / native),
                          fmtFactor(pmc / native),
                          fmtFactor(pmc / pmd, 2)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("(collective writebacks are what the CLF-interval "
                    "metadata exploits: one\nmetadata update instead of "
                    "per-record work)\n\n");
    }

    std::printf("=== Sweep 3: instruction mix (Pattern 3) ===\n\n");
    {
        TextTable table;
        table.setHeader({"stores/op", "native(s)", "pmdebugger",
                         "pmemcheck", "pmc/pmd"});
        for (int stores : {1, 2, 4, 8}) {
            PatternParams params;
            params.storesPerOp = stores;
            const double native = runPattern(params, "", ops);
            const double pmd = runPattern(params, "pmdebugger", ops);
            const double pmc = runPattern(params, "pmemcheck", ops);
            table.addRow({std::to_string(stores), fmtDouble(native, 4),
                          fmtFactor(pmd / native),
                          fmtFactor(pmc / native),
                          fmtFactor(pmc / pmd, 2)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("(the more store-dominated the mix, the more "
                    "Pmemcheck's per-store tree\nmaintenance costs "
                    "relative to PMDebugger's O(1) appends)\n");
    }
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
