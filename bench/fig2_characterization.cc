/**
 * @file
 * Figure 2 reproduction: characterization of PM programs.
 *
 * Prints, for each workload of the paper's characterization set
 * (the PMDK micro-benchmarks plus YCSB loads A-F against memcached):
 *  (a) the store→durability-fence distance distribution,
 *  (b) the fraction of CLF intervals with collective writeback,
 *  (c) the store / writeback / fence instruction mix.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "charz/characterize.hh"
#include "trace/recorder.hh"

namespace pmdb
{
namespace
{

CharacterizationResult
characterizeWorkload(const std::string &name, std::size_t ops)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    auto workload = makeWorkload(name);
    WorkloadOptions options;
    options.operations = ops;
    options.seed = 42;
    options.trackPersistence = false;
    workload->run(runtime, options);
    return characterize(recorder.events());
}

int
benchMain()
{
    const std::vector<std::string> workloads = {
        "b_tree", "c_tree",  "rb_tree", "hashmap_tx", "hashmap_atomic",
        "ycsb_a", "ycsb_b",  "ycsb_c",  "ycsb_d",     "ycsb_e",
        "ycsb_f"};

    TextTable dist;
    dist.setHeader({"workload", "d=1", "d=2", "d=3", "d=4", "d=5",
                    "d>5", "cum<=3"});
    TextTable collective;
    collective.setHeader({"workload", "collective", "dispersed"});
    TextTable mix;
    mix.setHeader({"workload", "store", "writeback", "fence"});

    double sum_d1 = 0.0, sum_le3 = 0.0, sum_collective = 0.0;
    for (const std::string &name : workloads) {
        const auto r = characterizeWorkload(name, scaled(10000));
        dist.addRow({name, fmtPercent(r.distancePercent(1)),
                     fmtPercent(r.distancePercent(2)),
                     fmtPercent(r.distancePercent(3)),
                     fmtPercent(r.distancePercent(4)),
                     fmtPercent(r.distancePercent(5)),
                     fmtPercent(r.distancePercent(6)),
                     fmtPercent(r.distanceCumulativePercent(3))});
        collective.addRow({name, fmtPercent(r.collectivePercent()),
                           fmtPercent(100.0 - r.collectivePercent())});
        mix.addRow({name, fmtPercent(r.storePercent()),
                    fmtPercent(r.flushPercent()),
                    fmtPercent(r.fencePercent())});
        sum_d1 += r.distancePercent(1);
        sum_le3 += r.distanceCumulativePercent(3);
        sum_collective += r.collectivePercent();
    }

    std::printf("=== Figure 2a: store-to-fence distance distribution "
                "===\n%s\n",
                dist.render().c_str());
    std::printf("Average d=1: %s (paper: >77.7%% of stores)\n",
                fmtPercent(sum_d1 / workloads.size()).c_str());
    std::printf("Average d<=3: %s (paper: 84.5%%)\n\n",
                fmtPercent(sum_le3 / workloads.size()).c_str());

    std::printf("=== Figure 2b: collective vs dispersed writeback "
                "===\n%s\n",
                collective.render().c_str());
    std::printf("Average collective: %s (paper: >71%% of CLF "
                "intervals)\n\n",
                fmtPercent(sum_collective / workloads.size()).c_str());

    std::printf("=== Figure 2c: instruction mix ===\n%s\n",
                mix.render().c_str());
    std::printf("(paper: store >= 40.2%% everywhere, ~70%% for most "
                "micro-benchmarks)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
