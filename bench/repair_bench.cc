/**
 * @file
 * Trace minimization & repair benchmark.
 *
 * Runs the minimize/repair engine over every seeded suite case whose
 * target reproduces from a recorded trace and whose rule class has a
 * patch vocabulary: records the case detector-free, ddmin-minimizes the
 * witness against the target fingerprint, then synthesizes and
 * verifies a patch on the full trace. Reports per-case shrink factor,
 * replays-to-converge for both phases, and patch verification, plus
 * aggregate acceptance checks:
 *
 *  - at least 10 cases shrink >= 5x with the target preserved;
 *  - every attempted case gets a verified patch (the synthesizer
 *    covers its whole vocabulary).
 *
 * Emits a JSON summary to BENCH_repair.json (and stdout).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "repair/case_repair.hh"
#include "repair/minimize.hh"
#include "repair/patch.hh"
#include "workloads/bug_suite.hh"

namespace pmdb
{
namespace
{

struct CaseRow
{
    std::string name;
    std::string target;
    std::size_t originalEvents = 0;
    std::size_t minimizedEvents = 0;
    double shrink = 0.0;
    std::uint64_t minimizeReplays = 0;
    std::uint64_t repairReplays = 0;
    std::size_t edits = 0;
    bool verified = false;
};

int
benchMain()
{
    std::printf(
        "=== Trace minimization & automated flush/fence repair ===\n\n");

    std::vector<CaseRow> rows;
    std::size_t skipped_unreproduced = 0;
    std::size_t skipped_no_vocabulary = 0;

    for (const BugCase &bug_case : bugSuite()) {
        if (!ruleClassHasVocabulary(bug_case.expected)) {
            ++skipped_no_vocabulary;
            continue;
        }
        const LoadedTrace trace = recordCaseTrace(bug_case);
        const DebuggerConfig config = debuggerConfigFor(bug_case);
        BugFingerprint target;
        if (!caseTarget(bug_case, trace, &target)) {
            ++skipped_unreproduced;
            continue;
        }

        CaseRow row;
        row.name = bug_case.name;
        row.target = target.toString();
        row.originalEvents = trace.events.size();

        const MinimizeResult minimized =
            minimizeWitness(trace, target, config);
        row.minimizedEvents = minimized.events.size();
        row.shrink = minimized.stats.shrinkFactor();
        row.minimizeReplays = minimized.stats.replays;

        const RepairResult repaired =
            repairTrace(trace, target, config);
        row.repairReplays = repaired.replays;
        row.edits = repaired.patch.edits.size();
        row.verified = repaired.verified;
        rows.push_back(std::move(row));
    }

    TextTable table;
    table.setHeader({"case", "events", "min", "shrink", "replays(m)",
                     "replays(r)", "edits", "patch"});
    std::size_t shrink5x = 0;
    std::size_t verified_count = 0;
    std::uint64_t total_min_replays = 0;
    std::uint64_t total_rep_replays = 0;
    for (const CaseRow &row : rows) {
        if (row.shrink >= 5.0)
            ++shrink5x;
        if (row.verified)
            ++verified_count;
        total_min_replays += row.minimizeReplays;
        total_rep_replays += row.repairReplays;
        table.addRow({row.name, fmtCount(row.originalEvents),
                      fmtCount(row.minimizedEvents),
                      fmtFactor(row.shrink, 1),
                      fmtCount(row.minimizeReplays),
                      fmtCount(row.repairReplays), fmtCount(row.edits),
                      row.verified ? "verified" : "NONE"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("cases attempted %zu (skipped: %zu target not "
                "reproduced from trace, %zu no patch vocabulary)\n",
                rows.size(), skipped_unreproduced,
                skipped_no_vocabulary);
    std::printf("shrink >= 5x on %zu cases; verified patches %zu/%zu\n",
                shrink5x, verified_count, rows.size());

    const bool shrink_ok = shrink5x >= 10;
    const bool repair_ok = verified_count == rows.size();
    if (!shrink_ok) {
        std::printf("WARNING: only %zu cases shrank >= 5x (bar: 10)\n",
                    shrink5x);
    }
    if (!repair_ok) {
        for (const CaseRow &row : rows) {
            if (!row.verified)
                std::printf("WARNING: no verified patch for %s (%s)\n",
                            row.name.c_str(), row.target.c_str());
        }
    }

    std::string json =
        "{\"bench\": \"repair\", " + hostMetaJson(4) +
        ", \"cases\": " + std::to_string(rows.size()) +
        ", \"shrink_5x_cases\": " + std::to_string(shrink5x) +
        ", \"verified_patches\": " + std::to_string(verified_count) +
        ", \"minimize_replays\": " + std::to_string(total_min_replays) +
        ", \"repair_replays\": " + std::to_string(total_rep_replays) +
        ", \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CaseRow &row = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"case\": \"%s\", \"target\": \"%s\", "
            "\"events\": %zu, \"minimized\": %zu, \"shrink\": %.1f, "
            "\"minimize_replays\": %llu, \"repair_replays\": %llu, "
            "\"edits\": %zu, \"verified\": %s}",
            i ? ", " : "", row.name.c_str(), row.target.c_str(),
            row.originalEvents, row.minimizedEvents, row.shrink,
            static_cast<unsigned long long>(row.minimizeReplays),
            static_cast<unsigned long long>(row.repairReplays),
            row.edits, row.verified ? "true" : "false");
        json += buf;
    }
    json += "]}";

    std::printf("\n%s\n", json.c_str());
    if (std::FILE *f = std::fopen("BENCH_repair.json", "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    }

    return shrink_ok && repair_ok ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
