/**
 * @file
 * Two-writer shared-pool benchmark: aggregate events/s of the
 * shared_queue producer/consumer pair streaming into an in-process
 * daemon, with the cross-session engine active (pool announced in the
 * Hello) versus inactive (same workload, same pool file, sessions
 * unannounced — the daemon treats them as unrelated). The delta is
 * the full cost of cross-session detection: retaining the shared
 * events per session, the end-of-group merge sort, and the rule
 * replay.
 *
 * The pair runs in lock-step (every operation is a producer turn then
 * a consumer turn over the pool's coordination word), so the measured
 * stream is identical event-for-event between the two configurations
 * and across repetitions — the comparison isolates engine cost, not
 * scheduling luck.
 *
 * Emits a JSON row to BENCH_crossproc.json (and stdout). Exits
 * non-zero if the cross-engine run's verdict is wrong (the seeded
 * case must report exactly ops bugs; the clean case none).
 */

#include <cstdio>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hh"
#include "pmem/shared_device.hh"
#include "service/daemon.hh"
#include "service/remote_sink.hh"
#include "workloads/shared_queue.hh"

namespace pmdb
{
namespace
{

std::string
scratch(const std::string &stem)
{
    static int counter = 0;
    return "/tmp/pmdb_xpb." + std::to_string(::getpid()) + "." + stem +
           "." + std::to_string(counter++);
}

struct PairResult
{
    double seconds = 0.0;
    std::uint64_t sessionEvents = 0; // both writers' processed events
    std::uint64_t mergedEvents = 0;  // shared events replayed
    std::size_t crossBugs = 0;
};

/** One two-writer run; @p announce switches the cross engine on/off. */
PairResult
runPair(std::size_t ops, const std::string &fault, bool announce,
        std::size_t shards)
{
    ServiceConfig config;
    config.socketPath = scratch("sock");
    config.pool.shards = shards;
    ServiceDaemon daemon(config);
    std::string error;
    if (!daemon.start(&error))
        fatal("crossproc_bench: daemon start failed: " + error);

    const std::string pool_path = scratch("pool");
    if (!SharedPmemPool::createPoolFile(
            pool_path, SharedQueueWorkload::poolBytesFor(ops), &error))
        fatal("crossproc_bench: pool create failed: " + error);

    std::uint64_t events[2] = {0, 0};
    auto writerBody = [&](std::uint32_t writer, std::uint64_t *out) {
        SharedQueueWorkload workload;
        WorkloadOptions options;
        options.operations = ops;
        options.sharedPoolPath = pool_path;
        options.sharedWriter = writer;
        if (!fault.empty())
            options.faults.enable(fault);

        RemoteSink::Options ropts;
        ropts.socketPath = config.socketPath;
        ropts.ringPath = scratch("ring");
        ropts.model = workload.model();
        if (announce) {
            ropts.sharedPoolPath = pool_path;
            ropts.sharedWriterId = writer;
        }
        RemoteSink sink;
        std::string err;
        if (!sink.connect(ropts, &err))
            fatal("crossproc_bench: connect failed: " + err);
        PmRuntime runtime;
        runtime.attach(&sink);
        workload.run(runtime, options);
        ReportBody report;
        if (!sink.finish(&report, &err))
            fatal("crossproc_bench: finish failed: " + err);
        *out = report.eventsProcessed;
    };

    Stopwatch watch;
    std::thread producer(writerBody,
                         SharedQueueWorkload::producerWriter,
                         &events[0]);
    std::thread consumer(writerBody,
                         SharedQueueWorkload::consumerWriter,
                         &events[1]);
    producer.join();
    consumer.join();
    while (!daemon.waitForSessions(2, 100)) {
    }
    PairResult result;
    result.seconds = watch.elapsedSeconds();
    daemon.stop();
    result.sessionEvents = events[0] + events[1];
    for (const CrossGroupResult &group : daemon.crossprocResults()) {
        result.mergedEvents += group.eventsReplayed;
        result.crossBugs += group.bugs.size();
    }
    std::remove(pool_path.c_str());
    return result;
}

/** Warm-up + median-of-3. */
PairResult
timedPair(std::size_t ops, const std::string &fault, bool announce,
          std::size_t shards)
{
    runPair(std::max<std::size_t>(64, ops / 4), fault, announce, shards);
    std::vector<PairResult> runs;
    for (int r = 0; r < 3; ++r)
        runs.push_back(runPair(ops, fault, announce, shards));
    std::sort(runs.begin(), runs.end(),
              [](const PairResult &a, const PairResult &b) {
                  return a.seconds < b.seconds;
              });
    return runs[1];
}

int
benchMain()
{
    const std::size_t ops = scaled(2000);
    constexpr std::size_t shards = 4;

    const PairResult cleanOff = timedPair(ops, "", false, shards);
    const PairResult cleanOn = timedPair(ops, "", true, shards);
    const std::string fault = crossprocCases()[0].fault;
    const PairResult seededOn = timedPair(ops, fault, true, shards);

    const auto rate = [](const PairResult &r) {
        return r.seconds > 0.0
                   ? static_cast<double>(r.sessionEvents) / r.seconds
                   : 0.0;
    };
    const double overhead =
        cleanOff.seconds > 0.0
            ? (cleanOn.seconds - cleanOff.seconds) / cleanOff.seconds
            : 0.0;

    TextTable table;
    table.setHeader({"configuration", "seconds", "events",
                     "aggregate events/s", "merged", "cross bugs"});
    const auto addRow = [&](const char *name, const PairResult &r) {
        table.addRow({name, fmtDouble(r.seconds, 3),
                      fmtCount(r.sessionEvents),
                      fmtCount(static_cast<std::uint64_t>(rate(r))),
                      fmtCount(r.mergedEvents),
                      std::to_string(r.crossBugs)});
    };
    addRow("independent sessions", cleanOff);
    addRow("cross engine, clean", cleanOn);
    addRow("cross engine, seeded", seededOn);
    std::printf("--- shared_queue: 2 writers x %zu ops -> pmdbd "
                "(%zu shards) ---\n%s\n",
                ops, shards, table.render().c_str());
    std::printf("cross-session engine overhead vs independent "
                "sessions: %.1f%%\n", overhead * 100.0);

    const bool verdictOk =
        cleanOn.crossBugs == 0 && cleanOff.crossBugs == 0 &&
        cleanOff.mergedEvents == 0 && seededOn.crossBugs == ops;
    if (!verdictOk)
        std::printf("VERDICT MISMATCH: clean %zu/%zu bugs, seeded %zu "
                    "(want %zu)\n", cleanOff.crossBugs,
                    cleanOn.crossBugs, seededOn.crossBugs, ops);

    std::ostringstream json;
    json << "{\"bench\": \"crossproc\", "
         << hostMetaJson(static_cast<unsigned>(shards))
         << ", \"ops\": " << ops
         << ", \"shards\": " << shards
         << ", \"events_per_sec_independent\": "
         << fmtDouble(rate(cleanOff), 0)
         << ", \"events_per_sec_cross_clean\": "
         << fmtDouble(rate(cleanOn), 0)
         << ", \"events_per_sec_cross_seeded\": "
         << fmtDouble(rate(seededOn), 0)
         << ", \"merged_events_clean\": " << cleanOn.mergedEvents
         << ", \"cross_overhead\": " << fmtDouble(overhead, 4)
         << ", \"seeded_fault\": \"" << fault << "\""
         << ", \"seeded_cross_bugs\": " << seededOn.crossBugs
         << ", \"verdict_ok\": " << (verdictOk ? "true" : "false")
         << "}";
    std::printf("\n%s\n", json.str().c_str());
    if (std::FILE *f = std::fopen("BENCH_crossproc.json", "w")) {
        std::fprintf(f, "%s\n", json.str().c_str());
        std::fclose(f);
    }
    return verdictOk ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
