/**
 * @file
 * Dispatch-pipeline benchmark: events/sec through PmRuntime with the
 * PMDebugger detector attached, under per-event, batched and async
 * dispatch, plus a Fig-8-style workload wall-clock comparison of
 * synchronous batched vs async mode.
 *
 * The micro part attaches the registry's PMDebugger detector (DBI
 * cost model on) and measures dispatch + bookkeeping cost — the
 * overhead the batched pipeline attacks: per-event dispatch pays a
 * full clean-call charge and a virtual sink call per event, batched
 * dispatch pays an inline buffer-append per event and amortizes the
 * clean call, the sink virtual call and (in thread-safe mode, which
 * this runs in — Valgrind serializes guest threads, so production
 * dispatch is always serialized) the sink mutex over the whole batch.
 * The workload part also uses the registry detector so the async win
 * includes overlapping detection with application execution — note
 * that overlap needs a second core, so on single-CPU hosts the async
 * rows are informational only.
 *
 * Emits a JSON row to BENCH_dispatch.json (and stdout) so the perf
 * trajectory across PRs can be tracked.
 */

#include <cstdio>
#include <thread>

#include "bench/bench_util.hh"
#include "core/debugger.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

struct MicroResult
{
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
    std::size_t bugs = 0;
    std::uint64_t arrayFreed = 0;
    std::uint64_t treeInsertions = 0;
};

/**
 * Synthetic fence-interval stream over a 1 MiB region: runs of 64
 * eight-byte stores, one collective writeback covering the whole run,
 * then the fence. Collective flushes that match the CLF-interval
 * bounds are the common case the paper's Pattern 2 optimization
 * targets (Fig 2), and they keep flush handling O(1) so the
 * measurement is dominated by per-store dispatch + bookkeeping — the
 * cost the batched pipeline amortizes.
 */
MicroResult
runMicro(DispatchMode mode, std::size_t fence_intervals)
{
    constexpr std::size_t storesPerInterval = 64;
    constexpr std::size_t bytesPerStore = 8;
    constexpr std::size_t regionBytes = 1 << 20;

    PmRuntime runtime;
    const auto debugger = makeDetector("pmdebugger", DebuggerConfig{});
    runtime.attach(debugger.get());
    runtime.setThreadSafe(true);
    runtime.setDispatchMode(mode);

    Stopwatch watch;
    Addr base = 0;
    for (std::size_t i = 0; i < fence_intervals; ++i) {
        for (std::size_t s = 0; s < storesPerInterval; ++s)
            runtime.store(base + s * bytesPerStore, bytesPerStore);
        const std::size_t spanBytes = storesPerInterval * bytesPerStore;
        runtime.flush(base, static_cast<std::uint32_t>(spanBytes));
        runtime.fence();
        base = (base + spanBytes) % regionBytes;
    }
    runtime.programEnd();

    MicroResult result;
    result.seconds = watch.elapsedSeconds();
    debugger->finalize();
    result.events = runtime.eventCount();
    result.eventsPerSec =
        result.seconds > 0.0
            ? static_cast<double>(result.events) / result.seconds
            : 0.0;
    result.bugs = debugger->bugs().total();
    const DebuggerStats stats = debugger->stats();
    result.arrayFreed = stats.array.recordsCollectivelyFreed;
    result.treeInsertions = stats.tree.insertions;
    return result;
}

MicroResult
medianMicro(DispatchMode mode, std::size_t fence_intervals, int reps = 3)
{
    runMicro(mode, std::max<std::size_t>(64, fence_intervals / 4));
    std::vector<MicroResult> runs;
    for (int r = 0; r < reps; ++r)
        runs.push_back(runMicro(mode, fence_intervals));
    std::sort(runs.begin(), runs.end(),
              [](const MicroResult &a, const MicroResult &b) {
                  return a.seconds < b.seconds;
              });
    return runs[runs.size() / 2];
}

int
benchMain()
{
    std::printf("=== Dispatch pipeline: per-event vs batched vs async "
                "===\n\n");

    const std::size_t intervals = scaled(40000);

    const MicroResult per = medianMicro(DispatchMode::PerEvent, intervals);
    const MicroResult bat = medianMicro(DispatchMode::Batched, intervals);
    const MicroResult asy = medianMicro(DispatchMode::Async, intervals);

    const bool micro_identical =
        per.bugs == bat.bugs && per.bugs == asy.bugs &&
        per.arrayFreed == bat.arrayFreed &&
        per.arrayFreed == asy.arrayFreed &&
        per.treeInsertions == bat.treeInsertions &&
        per.treeInsertions == asy.treeInsertions;

    TextTable micro;
    micro.setHeader({"mode", "events", "seconds", "events/sec",
                     "vs per-event"});
    const auto row = [&](const char *name, const MicroResult &r) {
        micro.addRow({name, fmtCount(r.events), fmtDouble(r.seconds, 4),
                      fmtCount(static_cast<std::size_t>(r.eventsPerSec)),
                      fmtFactor(r.eventsPerSec / per.eventsPerSec, 2)});
    };
    row("per-event", per);
    row("batched", bat);
    row("async", asy);
    std::printf("--- micro: PMDebugger bookkeeping, store-dominated "
                "stream ---\n%s\n",
                micro.render().c_str());
    std::printf("results identical across modes: %s\n\n",
                micro_identical ? "yes" : "NO — BUG");

    // Fig-8-style: a real workload under the registry's DBI-based
    // PMDebugger detector; async overlaps detection (bookkeeping +
    // per-event DBI tax) with workload execution.
    const std::size_t ops = scaled(60000);
    const BenchRun sync_run = runMedian("b_tree", "pmdebugger", ops, 1, 3,
                                        DispatchMode::Batched);
    const BenchRun async_run = runMedian("b_tree", "pmdebugger", ops, 1, 3,
                                         DispatchMode::Async);
    // Equivalence must compare runs of the same stream: the timing
    // medians above may come from different-seed repetitions, so do a
    // dedicated fixed-seed pass per mode.
    const BenchRun sync_chk = runWorkload("b_tree", "pmdebugger", ops, 1,
                                          42, DispatchMode::Batched);
    const BenchRun async_chk = runWorkload("b_tree", "pmdebugger", ops, 1,
                                           42, DispatchMode::Async);
    const bool wl_identical =
        sync_chk.bugSites == async_chk.bugSites &&
        sync_chk.stats.array.recordsCollectivelyFreed ==
            async_chk.stats.array.recordsCollectivelyFreed &&
        sync_chk.stats.tree.insertions == async_chk.stats.tree.insertions;

    TextTable wl;
    wl.setHeader({"mode", "seconds", "speedup"});
    wl.addRow({"batched (sync)", fmtDouble(sync_run.seconds, 4),
               fmtFactor(1.0, 2)});
    wl.addRow({"async", fmtDouble(async_run.seconds, 4),
               fmtFactor(sync_run.seconds / async_run.seconds, 2)});
    std::printf("--- fig8-style: b_tree x %zu inserts under pmdebugger "
                "(DBI) ---\n%s\n",
                ops, wl.render().c_str());
    std::printf("results identical sync vs async: %s\n",
                wl_identical ? "yes" : "NO — BUG");

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    if (cores < 2) {
        std::printf("note: single-CPU host — async overlap needs a "
                    "second core, so the async rows only measure "
                    "pipeline overhead here\n");
    }

    const double batched_speedup = bat.eventsPerSec / per.eventsPerSec;
    const double async_speedup = sync_run.seconds / async_run.seconds;

    char json[1024];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"dispatch\", %s, \"events\": %llu, "
        "\"events_per_sec_perevent\": %.0f, "
        "\"events_per_sec_batched\": %.0f, "
        "\"events_per_sec_async\": %.0f, "
        "\"batched_speedup\": %.3f, "
        "\"fig8_b_tree_sync_s\": %.4f, \"fig8_b_tree_async_s\": %.4f, "
        "\"async_speedup\": %.3f, "
        "\"results_identical\": %s}",
        hostMetaJson(2).c_str(),
        static_cast<unsigned long long>(per.events),
        per.eventsPerSec, bat.eventsPerSec, asy.eventsPerSec,
        batched_speedup, sync_run.seconds, async_run.seconds,
        async_speedup,
        micro_identical && wl_identical ? "true" : "false");

    std::printf("\n%s\n", json);
    if (std::FILE *f = std::fopen("BENCH_dispatch.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    }

    return micro_identical && wl_identical ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
