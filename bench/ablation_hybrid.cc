/**
 * @file
 * Ablations of PMDebugger's design choices (Section 4):
 *
 *  - bookkeeping organization: the paper's hybrid array+tree vs a
 *    traditional tree-only design vs an array-only design;
 *  - the lazy merge threshold (Section 4.4's 500);
 *  - the memory-location array capacity (Section 4.1's fixed size).
 *
 * Each ablation reports debugging time on the workloads that stress
 * the corresponding mechanism.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "detectors/pmdebugger_detector.hh"

namespace pmdb
{
namespace
{

double
runConfiguredOnce(const std::string &workload_name,
                  const DebuggerConfig &base_config, std::size_t ops,
                  std::uint64_t seed)
{
    auto workload = makeWorkload(workload_name);
    DebuggerConfig config = base_config;
    config.model = workload->model();
    PmRuntime runtime;
    PmDebuggerDetector detector(std::move(config));
    runtime.attach(&detector);
    WorkloadOptions options;
    options.operations = ops;
    options.seed = seed;
    options.trackPersistence = false;
    Stopwatch watch;
    workload->run(runtime, options);
    const double seconds = watch.elapsedSeconds();
    detector.finalize();
    return seconds;
}

/** Median of three repetitions. */
double
runConfigured(const std::string &workload_name, DebuggerConfig config,
              std::size_t ops)
{
    std::vector<double> times;
    for (int r = 0; r < 3; ++r)
        times.push_back(runConfiguredOnce(workload_name, config, ops,
                                          42 + r));
    std::sort(times.begin(), times.end());
    return times[1];
}

int
benchMain()
{
    const std::size_t ops = scaled(30000);

    std::printf("=== Ablation 1: bookkeeping organization ===\n");
    {
        TextTable table;
        table.setHeader({"workload", "hybrid(s)", "tree-only(s)",
                         "array-only(s)", "tree-only/hybrid"});
        for (const std::string &workload :
             {std::string("b_tree"), std::string("hashmap_atomic"),
              std::string("hashmap_tx")}) {
            DebuggerConfig hybrid, tree_only, array_only;
            hybrid.bookkeeping = BookkeepingMode::Hybrid;
            tree_only.bookkeeping = BookkeepingMode::TreeOnly;
            array_only.bookkeeping = BookkeepingMode::ArrayOnly;
            const double th = runConfigured(workload, hybrid, ops);
            const double tt = runConfigured(workload, tree_only, ops);
            const double ta = runConfigured(workload, array_only, ops);
            table.addRow({workload, fmtDouble(th, 4), fmtDouble(tt, 4),
                          fmtDouble(ta, 4), fmtFactor(tt / th, 2)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("(the hybrid should beat tree-only everywhere — "
                    "that is the paper's core claim;\narray-only wins "
                    "only when nothing is long-lived and degrades on "
                    "hashmap_tx)\n\n");
    }

    std::printf("=== Ablation 2: lazy merge threshold (paper: 500) "
                "===\n");
    {
        TextTable table;
        table.setHeader({"threshold", "hashmap_tx(s)", "reorgs"});
        for (std::size_t threshold : {16, 64, 500, 4096}) {
            DebuggerConfig config;
            config.mergeThreshold = threshold;
            auto workload = makeWorkload("hashmap_tx");
            config.model = workload->model();
            PmRuntime runtime;
            PmDebuggerDetector detector(std::move(config));
            runtime.attach(&detector);
            WorkloadOptions options;
            options.operations = ops;
            options.trackPersistence = false;
            Stopwatch watch;
            workload->run(runtime, options);
            const double seconds = watch.elapsedSeconds();
            detector.finalize();
            table.addRow(
                {std::to_string(threshold), fmtDouble(seconds, 4),
                 fmtCount(detector.stats().tree.reorganizations)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("=== Ablation 3: memory-location array capacity ===\n");
    {
        TextTable table;
        table.setHeader({"capacity", "b_tree(s)", "overflow stores"});
        for (std::size_t capacity : {16, 256, 4096, 100000}) {
            DebuggerConfig config;
            config.arrayCapacity = capacity;
            auto workload = makeWorkload("b_tree");
            config.model = workload->model();
            PmRuntime runtime;
            PmDebuggerDetector detector(std::move(config));
            runtime.attach(&detector);
            WorkloadOptions options;
            options.operations = ops;
            options.trackPersistence = false;
            Stopwatch watch;
            workload->run(runtime, options);
            const double seconds = watch.elapsedSeconds();
            detector.finalize();
            table.addRow(
                {fmtCount(capacity), fmtDouble(seconds, 4),
                 fmtCount(detector.stats().array.overflowStores)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("(capacity only matters once fence intervals "
                    "overflow it; the paper sizes the\narray for "
                    "~100,000 stores per fence interval)\n");
    }
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
