/**
 * @file
 * Figure 11 + Section 7.5 reproduction: the average number of AVL
 * tree nodes per fence interval for PMDebugger vs Pmemcheck, and the
 * tree-reorganization counts behind the paper's "359,209 vs 788"
 * comparison on hashmap_atomic.
 */

#include <cstdio>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    const std::vector<std::string> workloads = {
        "b_tree",     "c_tree",         "r_tree",    "rb_tree",
        "hashmap_tx", "hashmap_atomic", "memcached", "redis"};

    TextTable table;
    table.setHeader({"workload", "pmdebugger nodes", "pmemcheck nodes",
                     "pmd reorgs", "pmc reorgs"});

    for (const std::string &workload : workloads) {
        const std::size_t ops = scaled(20000);
        const BenchRun pmd = runWorkload(workload, "pmdebugger", ops);
        const BenchRun pmc = runWorkload(workload, "pmemcheck", ops);
        table.addRow(
            {workload,
             fmtDouble(pmd.stats.avgTreeNodesPerFenceInterval(), 1),
             fmtDouble(pmc.stats.avgTreeNodesPerFenceInterval(), 1),
             fmtCount(pmd.stats.tree.reorganizations),
             fmtCount(pmc.stats.tree.reorganizations)});
    }

    std::printf("=== Figure 11: average AVL nodes per fence interval "
                "===\n%s\n",
                table.render().c_str());
    std::printf(
        "(paper: PMDebugger's tree holds <25 nodes everywhere except "
        "hashmap_tx (528,\nits deferred-persistence statistics), always "
        "below Pmemcheck's. Section 7.5:\non hashmap_atomic Pmemcheck "
        "performs 359,209 tree reorganizations vs\nPMDebugger's 788 — "
        "check the reorgs columns for the orders-of-magnitude gap.)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
