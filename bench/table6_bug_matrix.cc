/**
 * @file
 * Table 6 reproduction: the bug-detection capability matrix.
 *
 * Runs the full 78-case suite under all four detectors, prints the
 * per-type detection matrix with the paper's layout (bug cases per
 * type, check marks per tool), the total detections, the bug-type
 * coverage, and the false-negative / false-positive rates of
 * Section 7.3.
 */

#include <cstdio>

#include "common/table.hh"
#include "workloads/suite_runner.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    const std::vector<std::string> tools = {"pmemcheck", "pmtest",
                                            "xfdetector", "pmdebugger"};
    std::printf("Running the 78-case suite under 4 detectors "
                "(+ false-positive variants)...\n\n");
    const SuiteMatrix matrix = runSuite(tools, true);

    const BugType types[] = {
        BugType::NoDurability,        BugType::MultipleOverwrite,
        BugType::NoOrderGuarantee,    BugType::RedundantFlush,
        BugType::FlushNothing,        BugType::RedundantLogging,
        BugType::LackDurabilityInEpoch,
        BugType::RedundantEpochFence, BugType::LackOrderingInStrands,
        BugType::CrossFailureSemantic,
    };

    TextTable table;
    table.setHeader({"bug type", "cases", "pmemcheck", "pmtest",
                     "xfdetector", "pmdebugger"});
    for (BugType type : types) {
        std::vector<std::string> row = {toString(type)};
        const auto cases = casesOfType(type);
        row.push_back(std::to_string(cases.size()));
        for (const std::string &tool : tools) {
            int detected = 0;
            for (const BugCase *bug_case : cases) {
                if (matrix.at(tool).at(bug_case->id).detected)
                    ++detected;
            }
            if (detected == static_cast<int>(cases.size()))
                row.push_back("yes (" + std::to_string(detected) + ")");
            else if (detected == 0)
                row.push_back("no");
            else
                row.push_back("partial (" + std::to_string(detected) +
                              ")");
        }
        table.addRow(row);
    }
    std::printf("=== Table 6: detection capability matrix ===\n%s\n",
                table.render().c_str());

    TextTable summary;
    summary.setHeader({"tool", "bugs detected", "bug types",
                       "false-negative rate", "false positives"});
    for (const SuiteScore &score : scoreSuite(matrix)) {
        summary.addRow({score.detector, std::to_string(score.detected),
                        std::to_string(score.typesDetected),
                        fmtPercent(score.falseNegativeRate(
                            static_cast<int>(bugSuite().size()))),
                        std::to_string(score.falsePositives)});
    }
    std::printf("=== Section 7.3 summary ===\n%s\n",
                summary.render().c_str());
    std::printf("(paper: PMDebugger 78 bugs / 10 types / 0%% FN; "
                "XFDetector 65 / 6 / 16.7%%;\nPMTest 61 / 5 / 21.8%%; "
                "Pmemcheck 55 / 4 / 29.5%%; no false positives "
                "anywhere.)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
