/**
 * @file
 * google-benchmark micro-benchmarks for the per-event costs of each
 * detector's bookkeeping: store/CLF/fence processing on synthetic
 * streams shaped like the paper's patterns (collective, dispersed,
 * tree-bound), plus the raw data-structure operations.
 */

#include <benchmark/benchmark.h>

#include "core/avl_tree.hh"
#include "core/mem_array.hh"
#include "detectors/registry.hh"
#include "trace/runtime.hh"

namespace pmdb
{
namespace
{

/** Pattern 1/2 stream: per op, 3 stores to one line + CLF + fence. */
template <typename SinkFactory>
void
collectiveStream(benchmark::State &state, SinkFactory make_sink)
{
    auto sink = make_sink();
    PmRuntime runtime;
    runtime.setDbiCosts(0, 0); // isolate bookkeeping cost
    runtime.attach(sink.get());
    Addr base = 0;
    for (auto _ : state) {
        runtime.store(base, 8);
        runtime.store(base + 8, 8);
        runtime.store(base + 16, 8);
        runtime.flush(base, 64);
        runtime.fence();
        base = (base + 64) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations() * 5);
}

void
BM_CollectiveStream_PmDebugger(benchmark::State &state)
{
    collectiveStream(state, [] { return makeDetector("pmdebugger"); });
}
BENCHMARK(BM_CollectiveStream_PmDebugger);

void
BM_CollectiveStream_Pmemcheck(benchmark::State &state)
{
    collectiveStream(state, [] { return makeDetector("pmemcheck"); });
}
BENCHMARK(BM_CollectiveStream_Pmemcheck);

void
BM_CollectiveStream_Nulgrind(benchmark::State &state)
{
    collectiveStream(state, [] { return makeDetector("nulgrind"); });
}
BENCHMARK(BM_CollectiveStream_Nulgrind);

/** Dispersed stream: stores scattered over lines, flushed separately. */
template <typename SinkFactory>
void
dispersedStream(benchmark::State &state, SinkFactory make_sink)
{
    auto sink = make_sink();
    PmRuntime runtime;
    runtime.setDbiCosts(0, 0);
    runtime.attach(sink.get());
    Addr base = 0;
    for (auto _ : state) {
        runtime.store(base, 8);
        runtime.store(base + 4096, 8);
        runtime.flush(base, 64);
        runtime.flush(base + 4096, 64);
        runtime.fence();
        base = (base + 64) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations() * 5);
}

void
BM_DispersedStream_PmDebugger(benchmark::State &state)
{
    dispersedStream(state, [] { return makeDetector("pmdebugger"); });
}
BENCHMARK(BM_DispersedStream_PmDebugger);

void
BM_DispersedStream_Pmemcheck(benchmark::State &state)
{
    dispersedStream(state, [] { return makeDetector("pmemcheck"); });
}
BENCHMARK(BM_DispersedStream_Pmemcheck);

/** Long-lived records: stores that survive many fences (tree-bound). */
template <typename SinkFactory>
void
treeBoundStream(benchmark::State &state, SinkFactory make_sink)
{
    auto sink = make_sink();
    PmRuntime runtime;
    runtime.setDbiCosts(0, 0);
    runtime.attach(sink.get());
    Addr deferred = 1 << 22;
    for (auto _ : state) {
        runtime.store(deferred, 8); // never flushed here
        deferred = (1 << 22) + ((deferred + 64) & 0xffff);
        runtime.store(0, 8);
        runtime.flush(0, 64);
        runtime.fence();
    }
    state.SetItemsProcessed(state.iterations() * 4);
}

void
BM_TreeBoundStream_PmDebugger(benchmark::State &state)
{
    treeBoundStream(state, [] { return makeDetector("pmdebugger"); });
}
BENCHMARK(BM_TreeBoundStream_PmDebugger);

void
BM_TreeBoundStream_Pmemcheck(benchmark::State &state)
{
    treeBoundStream(state, [] { return makeDetector("pmemcheck"); });
}
BENCHMARK(BM_TreeBoundStream_Pmemcheck);

/** Raw structure ops: array append vs AVL insert. */
void
BM_MemArrayAppend(benchmark::State &state)
{
    MemoryLocationArray array(1 << 16);
    AvlTree tree;
    Addr addr = 0;
    for (auto _ : state) {
        if (array.full()) {
            array.applyFlush(AddrRange(0, ~Addr(0) - 64), tree);
            array.processFence(tree);
        }
        array.append(LocationRecord(AddrRange::fromSize(addr, 8),
                                    FlushState::NotFlushed, false, 1));
        addr += 8;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemArrayAppend);

void
BM_AvlInsertLazy(benchmark::State &state)
{
    AvlTree tree(MergePolicy::Lazy);
    Addr addr = 0;
    for (auto _ : state) {
        if (tree.size() > 4096)
            tree.clear();
        tree.insert(LocationRecord(AddrRange::fromSize(addr, 8),
                                   FlushState::NotFlushed, false, 1));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvlInsertLazy);

void
BM_AvlInsertEagerMerge(benchmark::State &state)
{
    AvlTree tree(MergePolicy::Eager);
    Addr addr = 0;
    for (auto _ : state) {
        if (tree.size() > 4096)
            tree.clear();
        // Adjacent inserts: every one triggers the eager merge.
        tree.insert(LocationRecord(AddrRange::fromSize(addr, 8),
                                   FlushState::NotFlushed, false, 1));
        addr += 8;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvlInsertEagerMerge);

} // namespace
} // namespace pmdb

BENCHMARK_MAIN();
