/**
 * @file
 * Figure 8 reproduction: slowdown of Nulgrind, PMDebugger and
 * Pmemcheck over native execution, for the seven micro-benchmarks at
 * 1K/10K/100K insertions (Fig 8a-g), memcached at 10K..100K memslap
 * operations (Fig 8h), and redis LRU tests at increasing sizes
 * (Fig 8i). Results are normalized by the native execution time with
 * detectors disabled, exactly as the paper's figure is.
 */

#include <cstdio>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

void
runSeries(const std::string &workload, const std::string &axis_label,
          const std::vector<std::size_t> &sizes)
{
    TextTable table;
    table.setHeader({axis_label, "native(s)", "nulgrind", "pmdebugger",
                     "pmemcheck", "pmc/pmd"});
    for (std::size_t size : sizes) {
        const std::size_t ops = scaled(size);
        const double native =
            runMedian(workload, "", ops).seconds;
        const double nulgrind =
            runMedian(workload, "nulgrind", ops).seconds;
        const double pmdebugger =
            runMedian(workload, "pmdebugger", ops).seconds;
        const double pmemcheck =
            runMedian(workload, "pmemcheck", ops).seconds;
        table.addRow({fmtCount(ops), fmtDouble(native, 4),
                      fmtFactor(nulgrind / native),
                      fmtFactor(pmdebugger / native),
                      fmtFactor(pmemcheck / native),
                      fmtFactor(pmemcheck / pmdebugger, 2)});
    }
    std::printf("--- %s ---\n%s\n", workload.c_str(),
                table.render().c_str());
}

int
benchMain()
{
    std::printf("=== Figure 8: slowdown vs native (detectors disabled) "
                "===\n\n");

    // Fig 8a-g: the seven micro-benchmarks, 1K/10K/100K insertions.
    for (const std::string &workload : microBenchmarkNames())
        runSeries(workload, "insertions", {1000, 10000, 100000});

    // Fig 8h: memcached under a memslap-style driver (5% sets).
    runSeries("memcached", "get/set ops", {10000, 40000, 70000, 100000});

    // Fig 8i: redis LRU simulation at increasing key counts (the
    // paper sweeps 100K..100M keys on real hardware; we sweep the
    // operation count with the same geometric spacing).
    runSeries("redis", "LRU ops", {10000, 30000, 100000, 300000});

    std::printf(
        "Shape notes (paper): Pmemcheck is the slowest Valgrind tool on "
        "every series,\nPMDebugger sits between Nulgrind and Pmemcheck, "
        "and the gap is widest on\nhashmap_atomic (collective "
        "writebacks) and narrowest on hashmap_tx (tree-bound).\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
