/**
 * @file
 * Table 5 reproduction: PMDebugger's speedup over Pmemcheck per
 * benchmark, both including instrumentation time ("With Instru.") and
 * with the instrumentation baseline subtracted ("W/O Instru."), which
 * isolates the bookkeeping advantage exactly as the paper's second
 * column does.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    struct Row
    {
        const char *workload;
        std::size_t ops;
    };
    const std::vector<Row> rows = {
        {"b_tree", 50000},       {"c_tree", 50000},
        {"r_tree", 50000},       {"rb_tree", 50000},
        {"hashmap_tx", 50000},   {"hashmap_atomic", 50000},
        {"synth_strand", 50000}, {"memcached", 100000},
        {"redis", 100000},
    };

    TextTable table;
    table.setHeader({"benchmark", "with instru.", "w/o instru."});

    double geo_with = 1.0, geo_without = 1.0;
    for (const Row &row : rows) {
        const std::size_t ops = scaled(row.ops);
        const double native = runMedian(row.workload, "", ops).seconds;
        const double nulgrind =
            runMedian(row.workload, "nulgrind", ops).seconds;
        const double pmdebugger =
            runMedian(row.workload, "pmdebugger", ops).seconds;
        const double pmemcheck =
            runMedian(row.workload, "pmemcheck", ops).seconds;

        // "With instrumentation": straight ratio of debugging times.
        const double with_instru = pmemcheck / pmdebugger;
        // "Without instrumentation": subtract the shared
        // instrumentation baseline (Nulgrind) and compare bookkeeping
        // time only, floored at the native op cost.
        const double base = std::max(nulgrind - native, 0.0);
        const double pmd_book = std::max(pmdebugger - base, native * 0.1);
        const double pmc_book = std::max(pmemcheck - base, native * 0.1);
        const double without_instru = pmc_book / pmd_book;

        table.addRow({row.workload, fmtFactor(with_instru, 2),
                      fmtFactor(without_instru, 2)});
        geo_with *= with_instru;
        geo_without *= without_instru;
    }

    std::printf("=== Table 5: PMDebugger speedup over Pmemcheck ===\n%s\n",
                table.render().c_str());
    std::printf("Geometric mean: with instru. %s, w/o instru. %s\n",
                fmtFactor(std::pow(geo_with, 1.0 / rows.size()), 2)
                    .c_str(),
                fmtFactor(std::pow(geo_without, 1.0 / rows.size()), 2)
                    .c_str());
    std::printf("(paper: 2.2x avg over the micro-benchmarks, 4.67x "
                "memcached, 2.1x redis with\ninstrumentation; larger "
                "without. Our instrumentation substrate is far cheaper\n"
                "than Valgrind, so absolute factors compress; the "
                "per-benchmark ordering —\nhashmap_tx worst, "
                "tree/atomic workloads best — is the reproduced "
                "shape.)\n");
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
