/**
 * @file
 * Detection-service benchmark: (a) shard scaling of the address-range
 * sharded detector pool on a synthetic store-heavy stream, and (b) an
 * ingestion sweep — 1/2/4/8 concurrent RemoteSink clients x 1/4
 * detector shards streaming into an in-process ServiceDaemon — that
 * reports aggregate events/s plus per-client fairness (min/max client
 * rate).
 *
 * Why shard scaling pays even on a single core: the synthetic stream
 * flushes every line individually, so each CLF closes a CLF interval
 * (§4.3) and the next applyFlush scans the fence interval's whole
 * accumulated interval-metadata list — cost grows with the number of
 * live intervals, quadratic over a fence interval. Sharding partitions
 * the bookkeeping space: each shard scans only its own stripes'
 * interval list, dividing that cost by the shard count. On top of
 * that, a fence interval's 131072 distinct locations overflow one
 * shard's fixed-capacity memory-location array (Section 4.1) into
 * AVL-tree insertion (Section 4.2), while 2+ shards stay under
 * capacity on the O(1) array path. Both effects are bookkeeping-space
 * partitioning, not thread parallelism, so the speedup holds on 1-CPU
 * hosts.
 *
 * Emits a JSON row to BENCH_service.json (and stdout). Exits non-zero
 * if the per-shard-count verdicts disagree (identity self-check).
 */

#include <cstdio>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hh"
#include "service/daemon.hh"
#include "service/remote_sink.hh"
#include "service/shard.hh"
#include "trace/event.hh"

namespace pmdb
{
namespace
{

constexpr Addr stripeBytes = 4ull << 20;
constexpr std::size_t stripes = 8;

/**
 * Store-heavy stream: per fence interval, every stripe gets
 * @p lines_per_stripe distinct 64-byte lines stored and flushed, then
 * one fence closes the interval. Fully persisted, so the verdict is
 * zero bugs and the identity check across shard counts is trivial to
 * state: same (empty) bug list, same store/flush totals.
 */
std::vector<Event>
buildStream(std::size_t rounds, std::size_t lines_per_stripe)
{
    std::vector<Event> events;
    events.reserve(rounds * (stripes * lines_per_stripe * 2 + 1) + 1);
    SeqNum seq = 1;
    auto emit = [&](EventKind kind, Addr addr, std::uint32_t size) {
        Event event;
        event.kind = kind;
        event.addr = addr;
        event.size = size;
        event.seq = seq++;
        events.push_back(event);
    };
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t stripe = 0; stripe < stripes; ++stripe) {
            const Addr base = static_cast<Addr>(stripe) * stripeBytes;
            for (std::size_t line = 0; line < lines_per_stripe;
                 ++line) {
                const Addr addr = base + 64 * line;
                emit(EventKind::Store, addr, 64);
                emit(EventKind::Flush, addr, 64);
            }
        }
        emit(EventKind::Fence, 0, 0);
    }
    emit(EventKind::ProgramEnd, 0, 0);
    return events;
}

struct ShardRun
{
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    SessionVerdict verdict;
};

/** Stream @p events through a pool of @p shards and time to verdict. */
ShardRun
runShardPool(std::size_t shards, const std::vector<Event> &events)
{
    ShardPoolConfig config;
    config.shards = shards;
    config.stripeBytes = stripeBytes;
    ShardPool pool(config);
    pool.start();

    DebuggerConfig debugger; // default epoch model, default capacity
    const SessionId session = 1;
    pool.openSession(session, debugger, /*pinned=*/false);

    // Route in ring-batch-sized chunks, mirroring the daemon's
    // tryPop(512) drain loop.
    constexpr std::size_t chunk = 512;
    Stopwatch watch;
    for (std::size_t at = 0; at < events.size(); at += chunk) {
        pool.routeEvents(session, events.data() + at,
                         std::min(chunk, events.size() - at));
    }
    ShardRun run;
    run.verdict = pool.closeSession(session, {});
    run.seconds = watch.elapsedSeconds();
    run.eventsPerSec =
        static_cast<double>(events.size()) / run.seconds;
    pool.stop();
    return run;
}

/**
 * One measured pass after an unmeasured warm-up. A single rep is
 * enough here: the shard effect under measurement is 2-5x, orders of
 * magnitude above run-to-run noise, and the quadratic 1-shard pass
 * dominates the bench's wall clock.
 */
ShardRun
timedShardRun(std::size_t shards, const std::vector<Event> &events,
              const std::vector<Event> &warmup)
{
    runShardPool(shards, warmup);
    return runShardPool(shards, events);
}

struct OneClient
{
    std::uint64_t events = 0;
    double seconds = 0.0;
};

/**
 * One ingestion client: connects a RemoteSink (Block policy) to the
 * daemon and pushes a flush+fence-punctuated store stream over a small
 * working set, so the measurement is ring + control-plane transport
 * cost, not detector bookkeeping.
 */
OneClient
runClient(const std::string &socket_path, int client,
          std::size_t store_count)
{
    RemoteSink sink;
    RemoteSink::Options options;
    options.socketPath = socket_path;
    options.ringPath = "/tmp/pmdb_bench." +
                       std::to_string(::getpid()) + "." +
                       std::to_string(client) + ".ring";
    std::string error;
    if (!sink.connect(options, &error))
        fatal("service_bench: connect failed: " + error);

    SeqNum seq = 1;
    Stopwatch watch;
    auto send = [&](EventKind kind, Addr addr, std::uint32_t size) {
        Event event;
        event.kind = kind;
        event.addr = addr;
        event.size = size;
        event.seq = seq++;
        sink.handle(event);
    };
    for (std::size_t i = 0; i < store_count; ++i) {
        const Addr addr = 0x1000 + 64 * (i % 64);
        send(EventKind::Store, addr, 64);
        if (i % 64 == 63) {
            send(EventKind::Flush, 0x1000, 64 * 64);
            send(EventKind::Fence, 0, 0);
        }
    }
    send(EventKind::ProgramEnd, 0, 0);

    ReportBody report;
    if (!sink.finish(&report, &error))
        fatal("service_bench: finish failed: " + error);
    OneClient result;
    result.events = report.eventsProcessed;
    result.seconds = watch.elapsedSeconds();
    return result;
}

struct ClientRun
{
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
    /** Slowest / fastest single-client rate (fairness spread). */
    double minClientRate = 0.0;
    double maxClientRate = 0.0;
};

/** Aggregate throughput of @p clients concurrent sessions. */
ClientRun
runClients(const std::string &socket_path, int clients,
           std::size_t stores_per_client)
{
    std::vector<std::thread> threads;
    std::vector<OneClient> per(static_cast<std::size_t>(clients));
    Stopwatch watch;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            per[static_cast<std::size_t>(c)] =
                runClient(socket_path, c, stores_per_client);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    ClientRun run;
    run.seconds = watch.elapsedSeconds();
    for (const OneClient &client : per) {
        run.events += client.events;
        const double rate =
            client.seconds > 0.0
                ? static_cast<double>(client.events) / client.seconds
                : 0.0;
        if (run.minClientRate == 0.0 || rate < run.minClientRate)
            run.minClientRate = rate;
        if (rate > run.maxClientRate)
            run.maxClientRate = rate;
    }
    run.eventsPerSec = static_cast<double>(run.events) / run.seconds;
    return run;
}

/** One ingest-sweep measurement point. */
struct SweepPoint
{
    std::size_t shards = 0;
    int clients = 0;
    ClientRun run;
};

/**
 * The ingestion sweep: for each shard count, one daemon serves
 * 1/2/4/8-client groups back to back. Two pollers multiplex all
 * rings; detector workers scale with the shard count.
 */
std::vector<SweepPoint>
runIngestSweep(std::size_t stores_per_client)
{
    std::vector<SweepPoint> points;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        ServiceConfig config;
        config.socketPath = "/tmp/pmdb_bench." +
                            std::to_string(::getpid()) + ".s" +
                            std::to_string(shards) + ".sock";
        config.pool.shards = shards;
        config.pollers = 2;
        ServiceDaemon daemon(config);
        std::string error;
        if (!daemon.start(&error))
            fatal("service_bench: daemon start failed: " + error);
        runClients(config.socketPath, 1,
                   std::max<std::size_t>(64, stores_per_client / 4));
        for (const int clients : {1, 2, 4, 8}) {
            SweepPoint point;
            point.shards = shards;
            point.clients = clients;
            point.run = runClients(config.socketPath, clients,
                                   stores_per_client);
            points.push_back(point);
        }
        daemon.stop();
    }
    return points;
}

int
benchMain()
{
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());

    // --- shard scaling -------------------------------------------------
    // 8 stripes x 16384 lines = 131072 distinct locations per fence
    // interval: 1.3x one shard's array capacity (forced AVL overflow),
    // under capacity per shard at 2 and 4 shards (array path).
    const std::size_t lines = scaled(16384);
    const std::vector<Event> stream = buildStream(3, lines);
    const std::vector<Event> warmup =
        buildStream(1, std::max<std::size_t>(64, lines / 8));

    const ShardRun s1 = timedShardRun(1, stream, warmup);
    const ShardRun s2 = timedShardRun(2, stream, warmup);
    const ShardRun s4 = timedShardRun(4, stream, warmup);

    const bool identical =
        s1.verdict.bugs.size() == s2.verdict.bugs.size() &&
        s1.verdict.bugs.size() == s4.verdict.bugs.size() &&
        s1.verdict.stats.stores == s2.verdict.stats.stores &&
        s1.verdict.stats.stores == s4.verdict.stats.stores &&
        s1.verdict.stats.flushes == s2.verdict.stats.flushes &&
        s1.verdict.stats.flushes == s4.verdict.stats.flushes;

    TextTable shard_table;
    shard_table.setHeader(
        {"shards", "seconds", "events/s", "speedup", "tree inserts"});
    const auto addShardRow = [&](std::size_t n, const ShardRun &run) {
        shard_table.addRow(
            {std::to_string(n), fmtDouble(run.seconds, 3),
             fmtCount(static_cast<std::uint64_t>(run.eventsPerSec)),
             fmtFactor(s1.seconds / run.seconds, 2),
             fmtCount(run.verdict.stats.tree.insertions)});
    };
    addShardRow(1, s1);
    addShardRow(2, s2);
    addShardRow(4, s4);
    std::printf("--- shard scaling: %zu-event store-heavy stream, "
                "%zu stripes x %zu lines per fence interval ---\n%s\n",
                stream.size(), stripes, lines,
                shard_table.render().c_str());
    const double shard_speedup = s1.seconds / s4.seconds;
    std::printf("verdicts identical across shard counts: %s\n",
                identical ? "yes" : "NO — BUG");
    std::printf("4-shard >= 2x 1-shard: %s (%.2fx)\n",
                shard_speedup >= 2.0 ? "yes" : "no", shard_speedup);
    if (benchScale() < 1.0) {
        std::printf("note: PMDB_BENCH_SCALE < 1 shrinks the working "
                    "set below the array-overflow threshold, so the "
                    "shard speedup target only applies at full "
                    "scale\n");
    }

    // --- multi-client ingestion sweep ---------------------------------
    const std::size_t stores = scaled(200000);
    const std::vector<SweepPoint> sweep = runIngestSweep(stores);

    // Aggregate rate of the 1-client group at each shard count, the
    // scaling baseline for that shard count's rows.
    const auto baseRate = [&](std::size_t shards) {
        for (const SweepPoint &point : sweep) {
            if (point.shards == shards && point.clients == 1)
                return point.run.eventsPerSec;
        }
        return 0.0;
    };

    TextTable client_table;
    client_table.setHeader({"shards", "clients", "events", "seconds",
                            "aggregate events/s", "vs 1 client",
                            "client min", "client max"});
    for (const SweepPoint &point : sweep) {
        const double base = baseRate(point.shards);
        client_table.addRow(
            {std::to_string(point.shards),
             std::to_string(point.clients),
             fmtCount(point.run.events),
             fmtDouble(point.run.seconds, 3),
             fmtCount(
                 static_cast<std::uint64_t>(point.run.eventsPerSec)),
             fmtFactor(base > 0.0 ? point.run.eventsPerSec / base
                                  : 0.0,
                       2),
             fmtCount(static_cast<std::uint64_t>(
                 point.run.minClientRate)),
             fmtCount(static_cast<std::uint64_t>(
                 point.run.maxClientRate))});
    }
    std::printf("--- ingestion sweep: concurrent RemoteSink clients "
                "-> pmdbd (2 pollers, block policy) ---\n%s\n",
                client_table.render().c_str());
    const auto ratioAt = [&](std::size_t shards, int clients) {
        const double base = baseRate(shards);
        for (const SweepPoint &point : sweep) {
            if (point.shards == shards && point.clients == clients)
                return base > 0.0 ? point.run.eventsPerSec / base
                                  : 0.0;
        }
        return 0.0;
    };
    std::printf("4-client aggregate vs 1-client: %.2fx at 1 shard, "
                "%.2fx at 4 shards (%u core%s visible)\n",
                ratioAt(1, 4), ratioAt(4, 4), cores,
                cores == 1 ? "" : "s");
    if (cores < 4) {
        std::printf("note: multi-client scaling is core-bound; the "
                    ">=4x aggregate target needs >=4 cores (this "
                    "host pins every thread to %u)\n", cores);
    }

    // The sweep's largest client group; aggregate scaling numbers from
    // hosts with fewer cores than clients measure time-slicing, not
    // ingestion capacity — flag them for downstream consumers.
    constexpr unsigned maxClients = 8;

    std::ostringstream json;
    json << "{\"bench\": \"service\", " << hostMetaJson(maxClients)
         << ", \"shard_stream_events\": " << stream.size()
         << ", \"events_per_sec_shard1\": "
         << fmtDouble(s1.eventsPerSec, 0)
         << ", \"events_per_sec_shard2\": "
         << fmtDouble(s2.eventsPerSec, 0)
         << ", \"events_per_sec_shard4\": "
         << fmtDouble(s4.eventsPerSec, 0)
         << ", \"shard_speedup_4x1\": "
         << fmtDouble(shard_speedup, 3)
         << ", \"shard_speedup_2x1\": "
         << fmtDouble(s1.seconds / s2.seconds, 3)
         << ", \"ingest_stores_per_client\": " << stores
         << ", \"ingest\": [";
    bool first = true;
    for (const SweepPoint &point : sweep) {
        if (!first)
            json << ", ";
        first = false;
        json << "{\"shards\": " << point.shards
             << ", \"clients\": " << point.clients
             << ", \"events\": " << point.run.events
             << ", \"seconds\": " << fmtDouble(point.run.seconds, 3)
             << ", \"events_per_sec\": "
             << fmtDouble(point.run.eventsPerSec, 0)
             << ", \"vs_1_client\": "
             << fmtDouble(ratioAt(point.shards, point.clients), 3)
             << ", \"client_min_events_per_sec\": "
             << fmtDouble(point.run.minClientRate, 0)
             << ", \"client_max_events_per_sec\": "
             << fmtDouble(point.run.maxClientRate, 0) << "}";
    }
    json << "], \"ingest_ratio_4v1_shard1\": "
         << fmtDouble(ratioAt(1, 4), 3)
         << ", \"ingest_ratio_4v1_shard4\": "
         << fmtDouble(ratioAt(4, 4), 3)
         << ", \"results_identical\": "
         << (identical ? "true" : "false") << "}";

    std::printf("\n%s\n", json.str().c_str());
    if (std::FILE *f = std::fopen("BENCH_service.json", "w")) {
        std::fprintf(f, "%s\n", json.str().c_str());
        std::fclose(f);
    }

    return identical ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
