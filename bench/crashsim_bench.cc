/**
 * @file
 * Crash-state exploration benchmark.
 *
 * Part 1 — capture rate: crash points/sec captured by the incremental
 * per-cache-line delta capture (CrashsimSession, O(dirty lines) per
 * boundary) vs a naive capture that materializes a full crash image
 * (CrashSimulator::crashImage, O(pool size)) at every fence. The
 * engine's acceptance bar is a >= 5x capture-rate advantage.
 *
 * Part 2 — exploration: run a seeded-fault workload end to end
 * (capture + bounded enumeration + recovery verification +
 * minimization) single-threaded and with 4 workers, checking the
 * results are bit-identical and reporting the parallel speedup,
 * images deduped and bugs found.
 *
 * Emits a JSON row to BENCH_crashsim.json (and stdout).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "crashsim/capture.hh"
#include "pmdk/pool.hh"
#include "workloads/crashsim_runner.hh"

namespace pmdb
{
namespace
{

/**
 * The baseline the delta capture replaces: a PersistenceObserver that
 * copies the full crash image at every boundary. The copy is folded
 * into a checksum (a real naive capture would retain or spill each
 * image; retaining thousands of pool-sized copies would dominate the
 * comparison with allocator effects, so only the mandatory O(pool)
 * materialization cost is measured).
 */
class NaiveCapture : public PersistenceObserver
{
  public:
    void adopt(const PmemDevice &device)
    {
        device_ = &device;
        device.setPersistenceObserver(this);
    }

    void onLineQueued(std::uint64_t, const PendingLine &) override {}

    void onBoundary(const Event &, int) override
    {
        if (!device_)
            return;
        const std::vector<std::uint8_t> image =
            CrashSimulator(*device_).crashImage(CrashPolicy::DropPending);
        for (std::size_t i = 0; i < image.size(); i += 4096)
            checksum_ ^= image[i];
        ++points_;
    }

    void onDeviceDestroyed() override { device_ = nullptr; }

    std::uint64_t points() const { return points_; }
    std::uint8_t checksum() const { return checksum_; }

  private:
    const PmemDevice *device_ = nullptr;
    std::uint64_t points_ = 0;
    std::uint8_t checksum_ = 0;
};

struct CaptureResult
{
    double seconds = 0.0;
    std::uint64_t points = 0;
    double pointsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(points) / seconds
                             : 0.0;
    }
};

/**
 * A fence-interval stream over a multi-MiB pool: a handful of dirty
 * lines per fence, which is the regime the delta capture targets —
 * capture work proportional to the dirty lines, not the pool.
 */
CaptureResult
runCapture(bool naive, std::size_t fence_intervals)
{
    constexpr std::size_t poolBytes = 4 << 20;
    constexpr std::size_t linesPerInterval = 8;

    PmRuntime runtime;
    PmemPool pool(runtime, poolBytes, "capture.pool", true);
    const Addr base = pool.alloc(1 << 20);

    CrashsimSession session;
    NaiveCapture naive_capture;
    if (naive)
        naive_capture.adopt(pool.device());
    else
        session.adopt(pool.device());

    Stopwatch watch;
    Addr cursor = base;
    for (std::size_t i = 0; i < fence_intervals; ++i) {
        for (std::size_t l = 0; l < linesPerInterval; ++l) {
            const Addr addr = cursor + l * cacheLineSize;
            pool.store<std::uint64_t>(addr, i);
            pool.flush(addr, 8);
        }
        pool.fence();
        cursor = base + (i * linesPerInterval * cacheLineSize) %
                            (1 << 19);
    }
    runtime.programEnd();

    CaptureResult result;
    result.seconds = watch.elapsedSeconds();
    result.points = naive ? naive_capture.points()
                          : session.log().points.size();
    return result;
}

CaptureResult
medianCapture(bool naive, std::size_t fence_intervals, int reps = 3)
{
    runCapture(naive, std::max<std::size_t>(16, fence_intervals / 8));
    std::vector<CaptureResult> runs;
    for (int r = 0; r < reps; ++r)
        runs.push_back(runCapture(naive, fence_intervals));
    std::sort(runs.begin(), runs.end(),
              [](const CaptureResult &a, const CaptureResult &b) {
                  return a.seconds < b.seconds;
              });
    return runs[runs.size() / 2];
}

int
benchMain()
{
    std::printf("=== Crash-state exploration: capture rate and "
                "parallel verification ===\n\n");

    // Part 1: incremental delta capture vs naive full-image capture.
    const std::size_t intervals = scaled(4000);
    const CaptureResult delta = medianCapture(false, intervals);
    const CaptureResult naive = medianCapture(true, intervals);
    const double capture_speedup =
        naive.pointsPerSec() > 0.0
            ? delta.pointsPerSec() / naive.pointsPerSec()
            : 0.0;

    TextTable capture;
    capture.setHeader({"capture", "crash points", "seconds",
                       "points/sec", "vs naive"});
    capture.addRow({"delta (incremental)", fmtCount(delta.points),
                    fmtDouble(delta.seconds, 4),
                    fmtCount(static_cast<std::size_t>(
                        delta.pointsPerSec())),
                    fmtFactor(capture_speedup, 2)});
    capture.addRow({"naive (full image)", fmtCount(naive.points),
                    fmtDouble(naive.seconds, 4),
                    fmtCount(static_cast<std::size_t>(
                        naive.pointsPerSec())),
                    fmtFactor(1.0, 2)});
    std::printf("--- capture: 4 MiB pool, 8 dirty lines per fence "
                "---\n%s\n",
                capture.render().c_str());

    // Part 2: end-to-end exploration of a seeded-fault workload,
    // single-threaded vs 4 workers.
    WorkloadOptions wl_options;
    wl_options.operations = scaled(120);
    wl_options.poolBytes = 1 << 20;
    wl_options.faults.enable("hmatomic_skip_entry_flush");

    CrashsimOptions explore_options;
    explore_options.maxFindings = 1 << 20; // compare complete results
    explore_options.workers = 1;
    const CrashsimResult one = runCrashsimWorkload(
        "hashmap_atomic", wl_options, explore_options);
    explore_options.workers = 4;
    const CrashsimResult four = runCrashsimWorkload(
        "hashmap_atomic", wl_options, explore_options);
    const bool identical = one.identicalTo(four);
    const double parallel_speedup =
        four.exploreSeconds > 0.0
            ? one.exploreSeconds / four.exploreSeconds
            : 0.0;

    TextTable explore;
    explore.setHeader({"workers", "images verified", "findings",
                       "explore s", "speedup"});
    explore.addRow({"1",
                    fmtCount(one.stats.imagesVerified),
                    fmtCount(one.findings.size()),
                    fmtDouble(one.exploreSeconds, 4),
                    fmtFactor(1.0, 2)});
    explore.addRow({"4",
                    fmtCount(four.stats.imagesVerified),
                    fmtCount(four.findings.size()),
                    fmtDouble(four.exploreSeconds, 4),
                    fmtFactor(parallel_speedup, 2)});
    std::printf("--- explore: hashmap_atomic x %zu ops, "
                "hmatomic_skip_entry_flush ---\n%s\n",
                wl_options.operations, explore.render().c_str());
    std::printf("crash points %llu, images enumerated %llu, deduped "
                "%llu, bugs found %zu\n",
                static_cast<unsigned long long>(one.stats.points),
                static_cast<unsigned long long>(
                    one.stats.imagesEnumerated),
                static_cast<unsigned long long>(
                    one.stats.imagesDeduped),
                one.findings.size());
    std::printf("4-worker results identical to single-threaded: %s\n",
                identical ? "yes" : "NO — BUG");

    const bool capture_ok = capture_speedup >= 5.0;
    if (!capture_ok) {
        std::printf("WARNING: delta capture advantage %.2fx below the "
                    "5x acceptance bar\n",
                    capture_speedup);
    }

    char json[1024];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"crashsim\", %s, "
        "\"capture_points\": %llu, "
        "\"capture_points_per_sec_delta\": %.0f, "
        "\"capture_points_per_sec_naive\": %.0f, "
        "\"capture_speedup\": %.2f, "
        "\"explore_points\": %llu, "
        "\"explore_points_per_sec\": %.0f, "
        "\"images_enumerated\": %llu, \"images_deduped\": %llu, "
        "\"images_verified\": %llu, \"bugs_found\": %zu, "
        "\"parallel_speedup_4w\": %.2f, "
        "\"results_identical\": %s}",
        hostMetaJson(4).c_str(),
        static_cast<unsigned long long>(delta.points),
        delta.pointsPerSec(), naive.pointsPerSec(), capture_speedup,
        static_cast<unsigned long long>(one.stats.points),
        one.exploreSeconds > 0.0
            ? static_cast<double>(one.stats.points) / one.exploreSeconds
            : 0.0,
        static_cast<unsigned long long>(one.stats.imagesEnumerated),
        static_cast<unsigned long long>(one.stats.imagesDeduped),
        static_cast<unsigned long long>(one.stats.imagesVerified),
        one.findings.size(), parallel_speedup,
        identical ? "true" : "false");

    std::printf("\n%s\n", json);
    if (std::FILE *f = std::fopen("BENCH_crashsim.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    }

    return identical && capture_ok ? 0 : 1;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
