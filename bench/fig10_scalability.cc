/**
 * @file
 * Figure 10 reproduction: memcached slowdown at 1/2/4/6 driver
 * threads. Native memcached scales across threads (sharded locks);
 * any Valgrind-style detector serializes the instrumented stream, so
 * Pmemcheck's slowdown grows almost linearly with the thread count
 * while PMDebugger's grows much more slowly thanks to its cheap
 * bookkeeping (Section 7.5).
 */

#include <cstdio>
#include <thread>

#include "bench/bench_util.hh"

namespace pmdb
{
namespace
{

int
benchMain()
{
    const std::size_t ops = scaled(200000);
    TextTable table;
    table.setHeader({"threads", "native(s)", "pmdebugger", "pmemcheck",
                     "pmc/pmd"});

    for (int threads : {1, 2, 4, 6}) {
        const double native =
            runMedian("memcached", "", ops, threads).seconds;
        const double pmdebugger =
            runMedian("memcached", "pmdebugger", ops, threads).seconds;
        const double pmemcheck =
            runMedian("memcached", "pmemcheck", ops, threads).seconds;
        table.addRow({std::to_string(threads), fmtDouble(native, 4),
                      fmtFactor(pmdebugger / native),
                      fmtFactor(pmemcheck / native),
                      fmtFactor(pmemcheck / pmdebugger, 2)});
    }

    std::printf("=== Figure 10: memcached slowdown vs thread count "
                "===\n%s\n",
                table.render().c_str());
    std::printf("(paper: Pmemcheck's slowdown grows ~linearly with "
                "threads; PMDebugger's grows\nmuch more slowly — the "
                "shape to check is the widening pmc/pmd column.)\n");
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("host parallelism: %u hardware thread(s)\n", cores);
    if (cores <= 1) {
        std::printf(
            "NOTE: this host has a single CPU, so the native baseline "
            "cannot scale with\nthreads and the paper's divergence "
            "(which is driven by native scaling against\na serialized "
            "detector) cannot manifest; on a multicore host the native "
            "column\nshrinks with threads and both slowdown columns "
            "grow, Pmemcheck's faster.\n");
    }
    return 0;
}

} // namespace
} // namespace pmdb

int
main()
{
    return pmdb::benchMain();
}
