#include "charz/characterize.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace pmdb
{

namespace
{

/** One pending (not yet durable) store being tracked. */
struct PendingStore
{
    AddrRange range;
    /** Fence count at the time of the store. */
    std::uint64_t fencesAtStore;
    /** Merged flushed sub-ranges. */
    std::vector<AddrRange> covered;
    /** CLF interval this store belongs to. */
    std::size_t interval;
    bool coverageComplete = false;
    bool resolved = false;
};

/** One CLF interval being classified (Figure 2b). */
struct IntervalState
{
    std::uint64_t storeCount = 0;
    std::uint64_t uncovered = 0;
    /** Distinct CLF events that covered at least one of its stores. */
    std::uint64_t contributingFlushes = 0;
    SeqNum lastContributingFlush = 0;
    bool classified = false;
};

void
addCoverage(PendingStore &store, const AddrRange &part)
{
    store.covered.push_back(part);
    std::sort(store.covered.begin(), store.covered.end(),
              [](const AddrRange &a, const AddrRange &b) {
                  return a.start < b.start;
              });
    std::vector<AddrRange> merged;
    for (const AddrRange &p : store.covered) {
        if (!merged.empty() && merged.back().adjacentOrOverlapping(p))
            merged.back() = merged.back().unionWith(p);
        else
            merged.push_back(p);
    }
    store.covered = std::move(merged);
    for (const AddrRange &p : store.covered) {
        if (p.contains(store.range)) {
            store.coverageComplete = true;
            break;
        }
    }
}

} // namespace

CharacterizationResult
characterize(const std::vector<Event> &trace)
{
    CharacterizationResult result;

    std::vector<PendingStore> pending;
    std::vector<IntervalState> intervals;
    /** Cache line index -> pending-store indices touching that line. */
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> byLine;
    std::uint64_t fence_count = 0;
    std::size_t current_interval = ~std::size_t(0);

    auto openInterval = [&]() {
        intervals.push_back(IntervalState{});
        current_interval = intervals.size() - 1;
    };
    openInterval();

    for (const Event &event : trace) {
        switch (event.kind) {
          case EventKind::Store: {
            ++result.stores;
            PendingStore store;
            store.range = event.range();
            store.fencesAtStore = fence_count;
            store.interval = current_interval;
            pending.push_back(std::move(store));
            const std::size_t idx = pending.size() - 1;
            ++intervals[current_interval].storeCount;
            ++intervals[current_interval].uncovered;
            const std::uint64_t first = cacheLineIndex(event.addr);
            const std::uint64_t last =
                cacheLineIndex(event.addr + event.size - 1);
            for (std::uint64_t line = first; line <= last; ++line)
                byLine[line].push_back(idx);
            break;
          }
          case EventKind::Flush: {
            ++result.flushes;
            const AddrRange range = event.range();
            const std::uint64_t first = cacheLineIndex(range.start);
            const std::uint64_t last = cacheLineIndex(range.end - 1);
            for (std::uint64_t line = first; line <= last; ++line) {
                auto it = byLine.find(line);
                if (it == byLine.end())
                    continue;
                for (std::size_t idx : it->second) {
                    PendingStore &store = pending[idx];
                    if (store.resolved || store.coverageComplete)
                        continue;
                    const AddrRange part = store.range.intersect(range);
                    if (part.empty())
                        continue;
                    addCoverage(store, part);
                    IntervalState &interval = intervals[store.interval];
                    if (store.coverageComplete && !interval.classified) {
                        --interval.uncovered;
                        if (interval.lastContributingFlush != event.seq) {
                            ++interval.contributingFlushes;
                            interval.lastContributingFlush = event.seq;
                        }
                        if (interval.uncovered == 0) {
                            interval.classified = true;
                            if (interval.contributingFlushes == 1)
                                ++result.collectiveIntervals;
                            else
                                ++result.dispersedIntervals;
                        }
                    }
                }
            }
            // A CLF ends the current interval (the next store starts a
            // new one).
            if (intervals[current_interval].storeCount > 0)
                openInterval();
            break;
          }
          case EventKind::Fence:
          case EventKind::JoinStrand: {
            ++result.fences;
            ++fence_count;
            // Resolve stores whose coverage is complete.
            for (PendingStore &store : pending) {
                if (store.resolved || !store.coverageComplete)
                    continue;
                store.resolved = true;
                ++result.resolvedStores;
                const std::uint64_t distance =
                    fence_count - store.fencesAtStore;
                const std::size_t bucket =
                    distance >= 6 ? 5 : static_cast<std::size_t>(
                                            distance - 1);
                ++result.distanceCounts[bucket];
            }
            // Compact: drop resolved stores periodically to bound work.
            if (pending.size() > 65536) {
                std::vector<PendingStore> kept;
                std::vector<std::size_t> remap(pending.size(),
                                               ~std::size_t(0));
                for (std::size_t i = 0; i < pending.size(); ++i) {
                    if (!pending[i].resolved) {
                        remap[i] = kept.size();
                        kept.push_back(std::move(pending[i]));
                    }
                }
                pending = std::move(kept);
                for (auto &[line, list] : byLine) {
                    std::vector<std::size_t> updated;
                    for (std::size_t idx : list) {
                        if (remap[idx] != ~std::size_t(0))
                            updated.push_back(remap[idx]);
                    }
                    list = std::move(updated);
                }
                std::erase_if(byLine,
                              [](const auto &kv) {
                                  return kv.second.empty();
                              });
            }
            break;
          }
          default:
            break;
        }
    }

    for (const PendingStore &store : pending) {
        if (!store.resolved)
            ++result.unresolvedStores;
    }
    return result;
}

double
CharacterizationResult::distancePercent(int d) const
{
    if (!resolvedStores || d < 1 || d > 6)
        return 0.0;
    return 100.0 * static_cast<double>(distanceCounts[d - 1]) /
           static_cast<double>(resolvedStores);
}

double
CharacterizationResult::distanceCumulativePercent(int d) const
{
    double total = 0.0;
    for (int i = 1; i <= d && i <= 6; ++i)
        total += distancePercent(i);
    return total;
}

double
CharacterizationResult::collectivePercent() const
{
    const std::uint64_t total = collectiveIntervals + dispersedIntervals;
    if (!total)
        return 0.0;
    return 100.0 * static_cast<double>(collectiveIntervals) /
           static_cast<double>(total);
}

double
CharacterizationResult::storePercent() const
{
    const std::uint64_t total = stores + flushes + fences;
    return total ? 100.0 * static_cast<double>(stores) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CharacterizationResult::flushPercent() const
{
    const std::uint64_t total = stores + flushes + fences;
    return total ? 100.0 * static_cast<double>(flushes) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CharacterizationResult::fencePercent() const
{
    const std::uint64_t total = stores + flushes + fences;
    return total ? 100.0 * static_cast<double>(fences) /
                       static_cast<double>(total)
                 : 0.0;
}

std::string
CharacterizationResult::toString() const
{
    std::ostringstream out;
    out << "stores=" << stores << " flushes=" << flushes
        << " fences=" << fences << "\ndistance:";
    for (int d = 1; d <= 5; ++d)
        out << " d" << d << "=" << distancePercent(d) << "%";
    out << " d>5=" << distancePercent(6) << "%";
    out << "\ncollective=" << collectivePercent() << "%";
    return out.str();
}

} // namespace pmdb
