/**
 * @file
 * PM program characterization (Section 3, Figure 2).
 *
 * Reproduces the paper's three measurements over an instrumented
 * trace:
 *
 *  - Figure 2a: the distribution of the *distance* between a store and
 *    the fence that guarantees its durability — the number of fences
 *    from the store up to and including the durability fence (the
 *    first fence after a CLF has fully covered the store);
 *  - Figure 2b: the fraction of CLF intervals with *collective*
 *    writeback (all locations updated in the interval persisted by a
 *    single CLF) versus *dispersed* writeback (multiple CLFs needed);
 *  - Figure 2c: the instruction mix of store / writeback / fence.
 *
 * These three patterns motivate PMDebugger's design (Patterns 1-3).
 */

#ifndef PMDB_CHARZ_CHARACTERIZE_HH
#define PMDB_CHARZ_CHARACTERIZE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace pmdb
{

/** Results of characterizing one trace. */
struct CharacterizationResult
{
    /** Distance histogram: index d-1 counts stores with distance d
     * (1..5); index 5 counts distance > 5. */
    std::array<std::uint64_t, 6> distanceCounts{};
    /** Stores whose durability fence was observed. */
    std::uint64_t resolvedStores = 0;
    /** Stores never durable within the trace. */
    std::uint64_t unresolvedStores = 0;

    /** CLF intervals persisted by one single CLF. */
    std::uint64_t collectiveIntervals = 0;
    /** CLF intervals needing multiple CLFs. */
    std::uint64_t dispersedIntervals = 0;

    std::uint64_t stores = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;

    /** Percentage of resolved stores with distance bucket @p d (1-6,
     * 6 meaning ">5"). */
    double distancePercent(int d) const;

    /** Percentage of stores with distance <= @p d. */
    double distanceCumulativePercent(int d) const;

    double collectivePercent() const;

    /** Percentage of each instruction among the three (Figure 2c). */
    double storePercent() const;
    double flushPercent() const;
    double fencePercent() const;

    std::string toString() const;
};

/** Characterize a recorded trace. */
CharacterizationResult characterize(const std::vector<Event> &trace);

} // namespace pmdb

#endif // PMDB_CHARZ_CHARACTERIZE_HH
