#include "advise/report.hh"

#include <cstdio>
#include <sstream>

#include "core/report.hh"

namespace pmdb
{

namespace
{

/** Locale-independent fixed-point rendering ("0.8571"). */
std::string
fixed4(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    return buf;
}

} // namespace

std::string
adviseReportToJson(const AdviseReport &report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"version\": \"" << jsonEscape(report.version) << "\",\n"
        << "  \"case\": \"" << jsonEscape(report.caseName) << "\",\n"
        << "  \"rule\": \"" << jsonEscape(report.rule) << "\",\n"
        << "  \"optimize\": " << (report.optimize ? "true" : "false")
        << ",\n"
        << "  \"min_confidence\": " << fixed4(report.minConfidence)
        << ",\n";

    out << "  \"traces\": [";
    for (std::size_t i = 0; i < report.traces.size(); ++i) {
        const TraceOutcome &trace = report.traces[i];
        out << (i ? ",\n" : "\n")
            << "    {\"label\": \"" << jsonEscape(trace.label)
            << "\", \"events\": " << trace.traceEvents
            << ", \"minimized_events\": " << trace.minimizedEvents
            << ", \"target_present\": "
            << (trace.targetPresent ? "true" : "false")
            << ", \"verified\": "
            << (trace.verified ? "true" : "false")
            << ", \"edits\": " << trace.edits.size()
            << ", \"replays\": " << trace.replays << "}";
    }
    out << (report.traces.empty() ? "]" : "\n  ]") << ",\n";

    out << "  \"advisories\": [";
    for (std::size_t i = 0; i < report.advisories.size(); ++i) {
        const FixAdvisory &advisory = report.advisories[i];
        out << (i ? ",\n" : "\n")
            << "    {\"rank\": " << i + 1
            << ", \"site\": \"" << jsonEscape(advisory.site)
            << "\", \"op\": \"" << toString(advisory.op)
            << "\", \"rule\": \"" << toString(advisory.rule)
            << "\", \"confidence\": " << fixed4(advisory.confidence)
            << ", \"confirmations\": " << advisory.confirmations
            << ", \"opportunities\": " << advisory.opportunities
            << ", \"counter_no_patch\": " << advisory.counterNoPatch
            << ", \"counter_unverified\": " << advisory.counterUnverified
            << ", \"edit_count\": " << advisory.editCount
            << ", \"saved_flushes\": " << advisory.savedFlushes
            << ", \"saved_fences\": " << advisory.savedFences
            << ", \"saved_logs\": " << advisory.savedLogs
            << ", \"headline\": \"" << jsonEscape(advisory.headline())
            << "\", \"example\": \"" << jsonEscape(advisory.example)
            << "\"}";
    }
    out << (report.advisories.empty() ? "]" : "\n  ]") << "\n";

    out << "}\n";
    return out.str();
}

std::string
adviseReportToText(const AdviseReport &report)
{
    std::ostringstream out;
    out << "advisory report (" << report.version << ") for case "
        << report.caseName << " [" << report.rule << "]"
        << (report.optimize ? " — optimization view" : "") << "\n";

    std::size_t recorded = 0;
    std::size_t reproduced = 0;
    std::size_t verified = 0;
    for (const TraceOutcome &trace : report.traces) {
        ++recorded;
        reproduced += trace.targetPresent;
        verified += trace.verified;
    }
    out << "corpus: " << recorded << " traces, " << reproduced
        << " reproduced the target, " << verified
        << " repaired and verified\n";
    for (const TraceOutcome &trace : report.traces) {
        out << "  [" << trace.label << "] " << trace.traceEvents
            << " events";
        if (trace.minimizedEvents)
            out << " (witness " << trace.minimizedEvents << ")";
        if (!trace.targetPresent)
            out << ", target not reproduced";
        else if (trace.verified)
            out << ", verified: " << trace.strategy;
        else
            out << ", repair NOT verified";
        out << "\n";
    }

    if (report.advisories.empty()) {
        out << "no advisory at or above confidence "
            << fixed4(report.minConfidence) << "\n";
        return out.str();
    }

    out << "advisories (ranked):\n";
    for (std::size_t i = 0; i < report.advisories.size(); ++i) {
        const FixAdvisory &advisory = report.advisories[i];
        out << "  #" << i + 1 << " " << advisory.headline()
            << " (confidence " << fixed4(advisory.confidence);
        if (advisory.counterNoPatch || advisory.counterUnverified) {
            out << ", counter-evidence " << advisory.counterNoPatch
                << " clean / " << advisory.counterUnverified
                << " unverified";
        }
        out << ")\n";
        if (advisory.performance) {
            out << "     saves ~" << advisory.savedFlushes
                << " flushes, " << advisory.savedFences << " fences, "
                << advisory.savedLogs << " log appends across the corpus\n";
        }
        if (!advisory.example.empty())
            out << "     e.g. " << advisory.example << "\n";
    }
    return out.str();
}

} // namespace pmdb
