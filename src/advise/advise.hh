/**
 * @file
 * Whole-program fix advisories: cluster verified per-trace repairs into
 * ranked per-site advice.
 *
 * The repair engine (src/repair/) patches exactly one recorded trace.
 * This module lifts those patches to the *program* level, the way
 * program-repair systems ("Automated Insertion of Flushes and Fences
 * for Persistency") and flush/fence optimizers (Bentō) operate: record
 * many traces of the same workload under varied seeds, thread counts
 * and YCSB mixes, repair each one, map every verified TraceEdit back to
 * its stable program site (the SiteScope names interned in the trace),
 * and cluster the edits by (site, op, rule). A site whose patch recurs
 * across the whole corpus — "insert CLWB after store at
 * hashmap_atomic.cc:insert.fill_entry, confirmed in 6/6 traces" — is a
 * durable one-line program fix, not a trace accident. Counter-evidence
 * (traces where the site executed but needed no patch, or whose repair
 * failed verification) lowers the advisory's confidence score.
 */

#ifndef PMDB_ADVISE_ADVISE_HH
#define PMDB_ADVISE_ADVISE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/bug.hh"
#include "repair/patch.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

/** The program-level operation a fix advisory recommends. */
enum class AdviceOp : std::uint8_t
{
    /** Add a CLWB of the repaired range (durability fix). */
    InsertFlush,
    /** Add an SFENCE at the violated boundary (ordering fix). */
    InsertFence,
    /** Remove a redundant CLWB (performance fix). */
    DeleteFlush,
    /** Remove a redundant SFENCE (performance fix). */
    DeleteFence,
    /** Remove a redundant undo-log append (performance fix). */
    DeleteLog,
};

/** Stable kebab-case name ("insert-flush"), used in reports and JSON. */
const char *toString(AdviceOp op);

/** True for the deletion (Bentō-style performance) advice ops. */
bool isDeletionAdvice(AdviceOp op);

/** Map a trace edit to its advisory op. */
AdviceOp adviceOpOf(const TraceEdit &edit);

/** One verified per-trace edit resolved to its program site. */
struct SiteEdit
{
    std::string site;
    AdviceOp op = AdviceOp::InsertFlush;
    BugType rule = BugType::NoDurability;
    /** The repair engine's advisory line for this edit. */
    std::string note;
};

/** Per-trace repair outcome: one corpus member's evidence. */
struct TraceOutcome
{
    /** Deterministic parameter label ("seed=9,threads=2,mix=b"). */
    std::string label;
    /** The target bug reproduced on this trace. */
    bool targetPresent = false;
    /** The repair verified under the full PR-4 contract. */
    bool verified = false;
    /** Target fingerprint string (empty when not reproduced). */
    std::string target;
    /** Winning repair strategy line. */
    std::string strategy;
    /** Site-resolved edits of the verified patch. */
    std::vector<SiteEdit> edits;
    /**
     * Events per program site in the *recorded* trace — the advisory
     * clusterer's opportunity evidence: a site that executed in a
     * trace whose repair needed no patch there is counter-evidence.
     */
    std::map<std::string, std::uint64_t> siteEvents;
    /** Recorded trace length. */
    std::size_t traceEvents = 0;
    /** Witness length repair ran on (0 = repaired the full trace). */
    std::size_t minimizedEvents = 0;
    /** Oracle replays spent (minimize + repair). */
    std::uint64_t replays = 0;
};

/** One ranked per-site advisory. */
struct FixAdvisory
{
    std::string site;
    AdviceOp op = AdviceOp::InsertFlush;
    BugType rule = BugType::NoDurability;
    /** Traces whose verified patch contains this (site,op,rule) edit. */
    std::size_t confirmations = 0;
    /** Traces in which the site executed at all. */
    std::size_t opportunities = 0;
    /** Counter-evidence: site executed, repair clean, no edit here. */
    std::size_t counterNoPatch = 0;
    /** Counter-evidence: site executed, repair failed verification. */
    std::size_t counterUnverified = 0;
    /** confirmations / opportunities. */
    double confidence = 0.0;
    /** Total such edits across all confirming traces. */
    std::uint64_t editCount = 0;
    /** Estimated flushes saved across the corpus (deletion advice). */
    std::uint64_t savedFlushes = 0;
    /** Estimated fences saved across the corpus (deletion advice). */
    std::uint64_t savedFences = 0;
    /** Estimated log appends saved across the corpus. */
    std::uint64_t savedLogs = 0;
    /** Example repair note from one confirming trace. */
    std::string example;
    /** True for deletion advisories (performance fixes). */
    bool performance = false;

    /** "insert CLWB after store at <site> — confirmed in k/n traces". */
    std::string headline() const;
};

/**
 * Cluster verified per-trace edits by (site, op, rule) across the
 * corpus and rank the result. Purely a function of the outcomes:
 * confidence descending, then confirmations descending, then
 * (site, op, rule) ascending — a total order, so the ranking is
 * bit-identical however the outcomes were computed.
 */
std::vector<FixAdvisory>
clusterAdvisories(const std::vector<TraceOutcome> &outcomes);

/**
 * Bentō-style optimization view: keep only deletion advisories and
 * re-rank by estimated savings (flushes+fences+logs descending, then
 * confidence, then key) — the order a developer would apply
 * performance fixes in.
 */
std::vector<FixAdvisory>
optimizeView(const std::vector<FixAdvisory> &advisories);

/** Events per program site of @p trace (RegisterPmem excluded). */
std::map<std::string, std::uint64_t>
siteEventCounts(const LoadedTrace &trace);

/**
 * Resolve @p edit to a site label. Prefers the interned SiteScope name
 * the edit was attributed to; traces recorded without annotations fall
 * back to a region-relative label ("pool+0x140") from the registration
 * covering the edit's address, or "(anonymous)".
 */
std::string resolveSite(const LoadedTrace &trace, const TraceEdit &edit);

} // namespace pmdb

#endif // PMDB_ADVISE_ADVISE_HH
