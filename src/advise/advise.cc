#include "advise/advise.hh"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/logging.hh"

namespace pmdb
{

const char *
toString(AdviceOp op)
{
    switch (op) {
      case AdviceOp::InsertFlush: return "insert-flush";
      case AdviceOp::InsertFence: return "insert-fence";
      case AdviceOp::DeleteFlush: return "delete-flush";
      case AdviceOp::DeleteFence: return "delete-fence";
      case AdviceOp::DeleteLog:   return "delete-log";
    }
    return "unknown";
}

bool
isDeletionAdvice(AdviceOp op)
{
    switch (op) {
      case AdviceOp::DeleteFlush:
      case AdviceOp::DeleteFence:
      case AdviceOp::DeleteLog:
        return true;
      default:
        return false;
    }
}

AdviceOp
adviceOpOf(const TraceEdit &edit)
{
    const bool insert = edit.op == TraceEdit::Op::Insert;
    switch (edit.event.kind) {
      case EventKind::Flush:
        return insert ? AdviceOp::InsertFlush : AdviceOp::DeleteFlush;
      case EventKind::Fence:
        return insert ? AdviceOp::InsertFence : AdviceOp::DeleteFence;
      case EventKind::TxLog:
        if (!insert)
            return AdviceOp::DeleteLog;
        break;
      default:
        break;
    }
    panic(std::string("adviceOpOf: unexpected ") +
          (insert ? "insert of " : "delete of ") +
          toString(edit.event.kind));
}

std::string
FixAdvisory::headline() const
{
    std::string what;
    switch (op) {
      case AdviceOp::InsertFlush:
        what = "insert CLWB after store";
        break;
      case AdviceOp::InsertFence:
        what = "insert SFENCE";
        break;
      case AdviceOp::DeleteFlush:
        what = "delete redundant CLWB";
        break;
      case AdviceOp::DeleteFence:
        what = "delete redundant SFENCE";
        break;
      case AdviceOp::DeleteLog:
        what = "delete redundant log append";
        break;
    }
    return what + " at " + site + " [" + toString(rule) +
           "], confirmed in " + std::to_string(confirmations) + "/" +
           std::to_string(opportunities) + " traces";
}

std::map<std::string, std::uint64_t>
siteEventCounts(const LoadedTrace &trace)
{
    std::map<std::string, std::uint64_t> counts;
    for (const Event &event : trace.events) {
        if (event.kind == EventKind::RegisterPmem ||
            event.nameId == noName ||
            event.nameId >= trace.names.size()) {
            continue;
        }
        ++counts[trace.names.name(event.nameId)];
    }
    return counts;
}

std::string
resolveSite(const LoadedTrace &trace, const TraceEdit &edit)
{
    if (edit.siteId != noName && edit.siteId < trace.names.size())
        return trace.names.name(edit.siteId);

    // Unannotated trace: fall back to the registration in effect at the
    // edit's anchor that covers its address — "region+0xoff" is stable
    // across runs as long as allocation order is.
    const Addr addr = edit.event.addr;
    if (addr != 0) {
        const Event *region = nullptr;
        for (const Event &event : trace.events) {
            if (edit.anchorSeq && event.seq > edit.anchorSeq)
                break;
            if (event.kind == EventKind::RegisterPmem &&
                event.range().contains(addr)) {
                region = &event;
            }
        }
        if (region && region->nameId < trace.names.size()) {
            char off[32];
            std::snprintf(off, sizeof(off), "+0x%llx",
                          static_cast<unsigned long long>(
                              addr - region->addr));
            return trace.names.name(region->nameId) + off;
        }
    }
    return "(anonymous)";
}

std::vector<FixAdvisory>
clusterAdvisories(const std::vector<TraceOutcome> &outcomes)
{
    // Cluster key → advisory under construction. std::map keeps the
    // pre-sort order deterministic.
    using Key = std::tuple<std::string, int, int>;
    std::map<Key, FixAdvisory> clusters;

    for (const TraceOutcome &outcome : outcomes) {
        if (!outcome.verified)
            continue;
        // Which keys this trace confirms (a patch may carry several
        // edits of the same key — one confirmation, several edits).
        std::map<Key, bool> seen;
        for (const SiteEdit &edit : outcome.edits) {
            const Key key{edit.site, static_cast<int>(edit.op),
                          static_cast<int>(edit.rule)};
            FixAdvisory &advisory = clusters[key];
            if (advisory.site.empty()) {
                advisory.site = edit.site;
                advisory.op = edit.op;
                advisory.rule = edit.rule;
                advisory.performance = isDeletionAdvice(edit.op);
                advisory.example = edit.note;
            }
            ++advisory.editCount;
            if (isDeletionAdvice(edit.op)) {
                switch (edit.op) {
                  case AdviceOp::DeleteFlush: ++advisory.savedFlushes;
                      break;
                  case AdviceOp::DeleteFence: ++advisory.savedFences;
                      break;
                  default: ++advisory.savedLogs;
                      break;
                }
            }
            if (!seen[key]) {
                seen[key] = true;
                ++advisory.confirmations;
            }
        }
    }

    // Opportunity and counter-evidence pass: every trace where the
    // site executed weighs in, whether or not it needed the patch.
    for (auto &[key, advisory] : clusters) {
        for (const TraceOutcome &outcome : outcomes) {
            if (!outcome.siteEvents.count(advisory.site))
                continue;
            ++advisory.opportunities;
            bool confirmed = false;
            if (outcome.verified) {
                for (const SiteEdit &edit : outcome.edits) {
                    if (edit.site == advisory.site &&
                        edit.op == advisory.op &&
                        edit.rule == advisory.rule) {
                        confirmed = true;
                        break;
                    }
                }
            }
            if (confirmed)
                continue;
            if (outcome.targetPresent && !outcome.verified)
                ++advisory.counterUnverified;
            else
                ++advisory.counterNoPatch;
        }
        // Fallback site labels may never appear as event sites; a
        // confirmation is itself proof the site executed.
        if (advisory.opportunities < advisory.confirmations)
            advisory.opportunities = advisory.confirmations;
        advisory.confidence =
            advisory.opportunities
                ? static_cast<double>(advisory.confirmations) /
                      static_cast<double>(advisory.opportunities)
                : 0.0;
    }

    std::vector<FixAdvisory> ranked;
    ranked.reserve(clusters.size());
    for (auto &[key, advisory] : clusters)
        ranked.push_back(std::move(advisory));
    std::sort(ranked.begin(), ranked.end(),
              [](const FixAdvisory &a, const FixAdvisory &b) {
                  if (a.confidence != b.confidence)
                      return a.confidence > b.confidence;
                  if (a.confirmations != b.confirmations)
                      return a.confirmations > b.confirmations;
                  return std::tie(a.site, a.op, a.rule) <
                         std::tie(b.site, b.op, b.rule);
              });
    return ranked;
}

std::vector<FixAdvisory>
optimizeView(const std::vector<FixAdvisory> &advisories)
{
    std::vector<FixAdvisory> perf;
    for (const FixAdvisory &advisory : advisories) {
        if (advisory.performance)
            perf.push_back(advisory);
    }
    std::sort(perf.begin(), perf.end(),
              [](const FixAdvisory &a, const FixAdvisory &b) {
                  const std::uint64_t sa =
                      a.savedFlushes + a.savedFences + a.savedLogs;
                  const std::uint64_t sb =
                      b.savedFlushes + b.savedFences + b.savedLogs;
                  if (sa != sb)
                      return sa > sb;
                  if (a.confidence != b.confidence)
                      return a.confidence > b.confidence;
                  return std::tie(a.site, a.op, a.rule) <
                         std::tie(b.site, b.op, b.rule);
              });
    return perf;
}

} // namespace pmdb
