/**
 * @file
 * Advisory report rendering: versioned JSON for tooling, ranked text
 * for humans. Both renderings are pure functions of the AdviseReport —
 * no timestamps, worker counts or timings — so a corpus that computed
 * identical outcomes produces byte-identical files.
 */

#ifndef PMDB_ADVISE_REPORT_HH
#define PMDB_ADVISE_REPORT_HH

#include <string>

#include "advise/corpus.hh"

namespace pmdb
{

/** Render @p report as a versioned JSON document. */
std::string adviseReportToJson(const AdviseReport &report);

/** Render @p report as the ranked human-readable advisory list. */
std::string adviseReportToText(const AdviseReport &report);

} // namespace pmdb

#endif // PMDB_ADVISE_REPORT_HH
