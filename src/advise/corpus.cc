#include "advise/corpus.hh"

#include <atomic>
#include <thread>

#include "repair/oracle.hh"

namespace pmdb
{

namespace
{

/** Record, repair and site-attribute one grid member. */
TraceOutcome
adviseOneTrace(const BugCase &bug_case, const CaseParams &params,
               const CorpusSpec &spec)
{
    TraceOutcome outcome;
    outcome.label = params.label();

    const LoadedTrace trace = recordCaseTrace(bug_case, true, &params);
    outcome.traceEvents = trace.events.size();
    outcome.siteEvents = siteEventCounts(trace);

    BugFingerprint target;
    if (!caseTarget(bug_case, trace, &target))
        return outcome;
    outcome.targetPresent = true;
    outcome.target = target.toString();

    const DebuggerConfig config = debuggerConfigFor(bug_case);

    // Correctness targets repair faster on a minimal witness; the
    // performance rules must see the whole trace so the deletion
    // cascade counts every redundant occurrence, not just the one the
    // minimizer kept.
    LoadedTrace input;
    input.names = trace.names;
    input.events = trace.events;
    if (spec.minimizeFirst && isCorrectnessRule(bug_case.expected)) {
        MinimizeResult min =
            minimizeWitness(trace, target, config, spec.minimize);
        outcome.replays += min.stats.replays;
        if (min.reproduced) {
            outcome.minimizedEvents = min.stats.minimizedEvents;
            input.events = std::move(min.events);
        }
    }

    const RepairResult result =
        repairTrace(input, target, config, spec.repair);
    outcome.replays += result.replays;
    outcome.verified = result.verified;
    outcome.strategy = result.patch.strategy;
    if (!result.verified)
        return outcome;

    outcome.edits.reserve(result.patch.edits.size());
    for (const TraceEdit &edit : result.patch.edits) {
        SiteEdit site_edit;
        site_edit.site = resolveSite(trace, edit);
        site_edit.op = adviceOpOf(edit);
        site_edit.rule = edit.rule;
        site_edit.note = edit.note;
        outcome.edits.push_back(std::move(site_edit));
    }
    return outcome;
}

} // namespace

std::vector<CaseParams>
CorpusSpec::enumerate() const
{
    std::vector<CaseParams> grid;
    grid.reserve(seeds.size() * threads.size() * mixes.size());
    for (const std::uint64_t seed : seeds) {
        for (const int thread_count : threads) {
            for (const char mix : mixes) {
                CaseParams params;
                params.seed = seed;
                params.threads = thread_count;
                params.ycsbMix = mix;
                params.operations = operations;
                grid.push_back(params);
            }
        }
    }
    return grid;
}

AdviseReport
runAdviseCorpus(const BugCase &bug_case, const CorpusSpec &spec)
{
    const std::vector<CaseParams> grid = spec.enumerate();

    // Indexed fan-out: worker w claims grid slots via an atomic cursor
    // and writes into its slot only, so the merged vector — and
    // everything derived from it — is independent of the worker count.
    std::vector<TraceOutcome> outcomes(grid.size());
    std::atomic<std::size_t> cursor{0};
    const auto work = [&]() {
        for (;;) {
            const std::size_t at = cursor.fetch_add(1);
            if (at >= grid.size())
                return;
            outcomes[at] = adviseOneTrace(bug_case, grid[at], spec);
        }
    };

    std::size_t pool = spec.workers ? spec.workers : 1;
    pool = std::min(pool, grid.size());
    if (pool <= 1) {
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t w = 0; w < pool; ++w)
            threads.emplace_back(work);
        for (std::thread &thread : threads)
            thread.join();
    }

    AdviseReport report;
    report.caseName = bug_case.name;
    report.rule = toString(bug_case.expected);
    report.advisories = clusterAdvisories(outcomes);
    report.traces = std::move(outcomes);
    return report;
}

} // namespace pmdb
