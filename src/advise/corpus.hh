/**
 * @file
 * Advisory corpus runner: record → minimize → repair → attribute, over
 * a deterministic grid of workload parameters.
 *
 * One corpus is one bug case run many times — every (seed, threads,
 * YCSB mix) combination of the spec records its own trace through the
 * suite's scenario, the repair engine patches each trace independently,
 * and the per-trace edits are resolved to program sites for the
 * clusterer. Repairs fan out over a worker pool, but every trace's
 * outcome lands in its pre-assigned grid slot and the cluster step is a
 * pure function of that vector, so the report is bit-identical for any
 * worker count (given deterministic recordings, i.e. single-threaded
 * workloads).
 */

#ifndef PMDB_ADVISE_CORPUS_HH
#define PMDB_ADVISE_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "advise/advise.hh"
#include "repair/case_repair.hh"
#include "repair/minimize.hh"
#include "repair/patch.hh"
#include "workloads/bug_suite.hh"

namespace pmdb
{

/** On-disk report format version. */
inline const char *adviseReportVersion = "pmdb-advise-v1";

/** The parameter grid and budgets of one advisory corpus. */
struct CorpusSpec
{
    /** Workload seeds to sweep (0 = case default). */
    std::vector<std::uint64_t> seeds{0};
    /** Thread counts to sweep (0 = case default). */
    std::vector<int> threads{0};
    /** YCSB mix letters to sweep (0 = case default). */
    std::vector<char> mixes{0};
    /** Operation-count override for every member (0 = case default). */
    std::size_t operations = 0;
    /** Repair worker threads; 0 or 1 runs inline. */
    std::size_t workers = 1;
    /**
     * Minimize correctness-rule witnesses before repairing (faster).
     * Performance rules always repair the full trace so the cascade
     * deletes every redundant occurrence and the savings estimates
     * cover the whole execution.
     */
    bool minimizeFirst = true;
    RepairOptions repair;
    MinimizeOptions minimize;

    /** The seeds × threads × mixes grid, in deterministic order. */
    std::vector<CaseParams> enumerate() const;
};

/** The versioned advisory report (JSON/text via advise/report.hh). */
struct AdviseReport
{
    std::string version = adviseReportVersion;
    std::string caseName;
    /** Rule class of the case's expected bug. */
    std::string rule;
    /** Report renders the optimization (deletions-by-savings) view. */
    bool optimize = false;
    /** Advisories below this confidence were filtered out. */
    double minConfidence = 0.0;
    /** Per-trace evidence, in grid order. */
    std::vector<TraceOutcome> traces;
    /** Ranked advisories (already filtered to the requested view). */
    std::vector<FixAdvisory> advisories;
};

/**
 * Record, repair and attribute every grid member of @p spec for
 * @p bug_case, then cluster into ranked advisories. The returned
 * report holds the full ranked advisory list; callers apply
 * optimizeView()/confidence filtering for the requested view.
 */
AdviseReport runAdviseCorpus(const BugCase &bug_case,
                             const CorpusSpec &spec);

} // namespace pmdb

#endif // PMDB_ADVISE_CORPUS_HH
