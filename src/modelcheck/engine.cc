#include "modelcheck/engine.hh"

#include <thread>
#include <unistd.h>
#include <unordered_set>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stopwatch.hh"
#include "crashsim/explore.hh"
#include "modelcheck/pruner.hh"
#include "service/remote_sink.hh"
#include "telemetry/metrics.hh"

namespace pmdb
{

namespace
{

/** Absolute image identity: XOR of every line's content hash. */
std::uint64_t
imageContentHash(const std::vector<std::uint8_t> &image)
{
    std::uint64_t hash = 0;
    const std::uint64_t lines = image.size() / cacheLineSize;
    for (std::uint64_t line = 0; line < lines; ++line)
        hash ^= lineContentHash(line,
                                image.data() + line * cacheLineSize);
    return hash;
}

} // namespace

ModelChecker::ModelChecker(ModelWorkload &workload,
                           ModelCheckOptions options)
    : workload_(workload), options_(std::move(options))
{
    runCfg_ = options_.run;
    if (!options_.connectSocket.empty())
        runCfg_.recordEvents = true;
}

void
ModelChecker::processGroup(const Group &group, const StateCache &frozen,
                           GroupOutcome &out)
{
    const CrashPointLog &log = *group.log;
    ImageCursor cursor(log);
    // Shared across this execution's points: the forward-rolling
    // cursor makes adjacent points' images cheap to compare, and most
    // duplicates are exactly there (point k+1's drop-everything image
    // is point k's land-all image).
    std::unordered_set<std::uint64_t> seen_here;

    for (std::size_t p = 0; p < log.points.size(); ++p) {
        const CrashPoint &point = log.points[p];
        bool truncated = false;
        const std::vector<std::vector<std::size_t>> candidates =
            enumerateCrashCandidates(log, point, runCfg_.sim,
                                     &truncated);
        if (truncated)
            ++out.truncatedPoints;
        out.enumerated += candidates.size();

        cursor.advanceTo(p);
        ReadSetPruner pruner(log, point, options_.prune);

        for (const std::vector<std::size_t> &candidate : candidates) {
            // Anchor the cursor's baseline-relative delta hash to this
            // log's absolute baseline identity (Group::logBaseHash).
            const std::uint64_t hash =
                group.logBaseHash ^
                (candidate.empty() ? cursor.baseHash()
                                   : cursor.candidateHash(candidate));
            if (!seen_here.insert(hash).second) {
                ++out.localDuplicates;
                continue;
            }

            CandidateOutcome outcome;
            outcome.hash = hash;
            outcome.pointIdx = p;
            if (frozen.contains(hash)) {
                // Visited in a previous round or run; the recovery
                // edge out of this state has already been explored.
                outcome.cachedSkip = true;
                out.candidates.push_back(std::move(outcome));
                continue;
            }
            if (!pruner.shouldRun(candidate)) {
                // Covered by a representative: same recovery
                // execution, but still a distinct persistent state —
                // the merge counts its identity into the visited set
                // without re-executing.
                out.candidates.push_back(std::move(outcome));
                continue;
            }

            cursor.apply(candidate);
            std::vector<std::uint8_t> image = cursor.image();
            cursor.revert();

            ModelExecution exec =
                workload_.runRecovery(std::move(image), runCfg_);
            pruner.observeReads(exec.reads);
            ++out.executions;
            out.crashPoints += exec.log.points.size();
            dispatchToService(exec);

            outcome.executed = true;
            outcome.inconsistency = std::move(exec.inconsistency);
            // Inconsistent states are reported, not expanded: their
            // recovery already failed, so operating past it explores
            // the consequences of a bug rather than new program
            // behavior.
            if (outcome.inconsistency.empty())
                outcome.childLog =
                    std::make_shared<const CrashPointLog>(
                        std::move(exec.log));
            out.candidates.push_back(std::move(outcome));
        }

        out.pruned += pruner.pruned();
        out.refinements += pruner.refinements();
    }
}

ModelCheckResult
ModelChecker::run()
{
    Stopwatch watch;
    ModelCheckResult result;
    ModelCheckStats &stats = result.stats;

    StateCache cache;
    if (!options_.cachePath.empty()) {
        std::string err;
        if (!cache.load(options_.cachePath, &err))
            fatal("modelcheck: " + err);
    }

    ModelExecution initial = workload_.runInitial(runCfg_);
    ++stats.executions;
    stats.crashPoints += initial.log.points.size();
    dispatchToService(initial);
    if (!initial.inconsistency.empty()) {
        // The workload broke without any crash; depth-0 finding.
        ModelCheckFinding finding;
        finding.detail = initial.inconsistency;
        result.findings.push_back(std::move(finding));
    }

    std::vector<Group> frontier;
    const auto expand = [&](std::shared_ptr<const CrashPointLog> log,
                            std::size_t depth,
                            std::vector<SeqNum> chain,
                            std::vector<Group> &into) {
        if (depth > options_.maxDepth || log->points.empty())
            return;
        Group group;
        group.logBaseHash = imageContentHash(log->baseline);
        group.log = std::move(log);
        group.depth = depth;
        group.chainPrefix = std::move(chain);
        into.push_back(std::move(group));
    };
    expand(std::make_shared<const CrashPointLog>(std::move(initial.log)),
           1, {}, frontier);

    while (!frontier.empty() && !stats.budgetExhausted) {
        ++stats.rounds;
        const bool telemetryOn = telemetry::enabled();
        const std::uint64_t roundStart =
            telemetryOn ? telemetry::nowNs() : 0;
        std::vector<GroupOutcome> outcomes(frontier.size());

        // Parallel phase: the cache is frozen (read-only), so each
        // group's outcome is independent of scheduling.
        std::size_t workers = options_.workers > 0 ? options_.workers : 1;
        if (workers > frontier.size())
            workers = frontier.size();
        if (workers <= 1) {
            for (std::size_t i = 0; i < frontier.size(); ++i)
                processGroup(frontier[i], cache, outcomes[i]);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            std::atomic<std::size_t> next{0};
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&]() {
                    for (;;) {
                        const std::size_t i =
                            next.fetch_add(1, std::memory_order_relaxed);
                        if (i >= frontier.size())
                            return;
                        processGroup(frontier[i], cache, outcomes[i]);
                    }
                });
            }
            for (std::thread &thread : pool)
                thread.join();
        }

        // Sequential merge in (group, candidate) order: the only place
        // cache, findings, frontier and frontierHash mutate.
        std::vector<Group> next_frontier;
        for (std::size_t i = 0;
             i < frontier.size() && !stats.budgetExhausted; ++i) {
            const Group &group = frontier[i];
            GroupOutcome &outcome = outcomes[i];
            stats.candidates += outcome.enumerated;
            stats.prunedCandidates += outcome.pruned;
            stats.refinements += outcome.refinements;
            stats.executions += outcome.executions;
            stats.crashPoints += outcome.crashPoints;
            stats.dedupedStates += outcome.localDuplicates;
            stats.truncatedPoints += outcome.truncatedPoints;

            for (CandidateOutcome &cand : outcome.candidates) {
                if (cand.cachedSkip) {
                    ++stats.dedupedStates;
                    continue;
                }
                if (!cache.insert(cand.hash)) {
                    // Another group reached the same state this round.
                    ++stats.dedupedStates;
                    continue;
                }
                ++stats.distinctStates;
                result.frontierHash =
                    mix64(result.frontierHash ^ mix64(cand.hash));

                std::vector<SeqNum> chain = group.chainPrefix;
                chain.push_back(group.log->points[cand.pointIdx].seq);
                if (!cand.inconsistency.empty() &&
                    result.findings.size() < options_.maxFindings) {
                    ModelCheckFinding finding;
                    finding.depth = group.depth;
                    finding.crashSeqs = chain;
                    finding.stateHash = cand.hash;
                    finding.detail = cand.inconsistency;
                    result.findings.push_back(std::move(finding));
                }
                if (cand.childLog && group.depth < options_.maxDepth)
                    expand(cand.childLog, group.depth + 1,
                           std::move(chain), next_frontier);
                if (stats.distinctStates >= options_.maxStates) {
                    stats.budgetExhausted = true;
                    break;
                }
            }
        }
        if (telemetryOn) {
            telemetry::Registry::global()
                .histogram("modelcheck.round_ns")
                .record(telemetry::nowNs() - roundStart);
        }
        frontier = std::move(next_frontier);
    }

    if (!options_.cachePath.empty()) {
        std::string err;
        if (!cache.save(options_.cachePath, &err))
            warn("modelcheck: failed to persist state cache: " + err);
    }
    result.cacheStates = cache.size();
    result.connectSessions = connectSessions_.load();
    result.connectErrors = connectErrors_.load();
    result.seconds = watch.elapsedSeconds();
    return result;
}

void
ModelChecker::dispatchToService(const ModelExecution &exec)
{
    if (options_.connectSocket.empty())
        return;

    RemoteSink::Options sink_options;
    sink_options.socketPath = options_.connectSocket;
    sink_options.ringPath =
        options_.scratchDir + "/pmdb_mc_ring_" +
        std::to_string(::getpid()) + "_" +
        std::to_string(ringSeq_.fetch_add(1));

    RemoteSink sink;
    std::string err;
    if (!sink.connect(sink_options, &err)) {
        connectErrors_.fetch_add(1);
        return;
    }

    // The sink interns names ahead of the events that reference them;
    // replaying the recorded table in id order reproduces the ids the
    // events carry.
    NameTable names;
    for (const std::string &name : exec.names)
        names.intern(name);
    sink.attached(names);
    for (const Event &event : exec.events)
        sink.handle(event);
    if (!exec.inconsistency.empty()) {
        BugReport report;
        report.type = BugType::CrossFailureSemantic;
        report.detail = exec.inconsistency;
        sink.reportBug(report);
    }

    ReportBody body;
    if (sink.finish(&body, &err))
        connectSessions_.fetch_add(1);
    else
        connectErrors_.fetch_add(1);
}

} // namespace pmdb
