/**
 * @file
 * Jaaru-style lazy-crash-simulation pruning for one crash point.
 *
 * At a crash point with pending lines P, the 2^|P| candidate images
 * differ *only* on which subset of P landed. A recovery execution is a
 * deterministic function of the bytes it reads — so two candidates
 * that agree on every line recovery actually reads must drive
 * byte-identical recovery executions, and only one of them (the
 * *representative*) needs to run.
 *
 * The pruner learns "what recovery reads" lazily, the way Jaaru's
 * constraint refinement does: it starts with an empty read set, and
 * after each representative executes, the lines that execution read
 * (restricted to P) refine the equivalence. Candidates are classified
 * by a projection key — the content identity of their landed lines
 * restricted to the read set. Equal key ⇒ the already-executed
 * representative read exactly the same bytes ⇒ same execution.
 *
 * Soundness (the induction is spelled out in DESIGN.md §11): when a
 * candidate c is classified, every previously executed representative
 * r has already contributed reads(r) to the read set R. If c's
 * projection onto R equals r's, then c agrees with r on a superset of
 * reads(r); recovery's first read then returns the same bytes, hence
 * the same next read, and inductively the whole execution — including
 * its read set and final image — is identical. Refinement only grows
 * R, so earlier classifications remain covered.
 *
 * The projection key is an XOR of position-salted line-content hashes
 * (the state-identity hash of crash_points.hh), so distinct
 * projections could in principle collide on 64 bits; as with the
 * visited-state cache this can only merge states, never invent a
 * finding, and the engine counts every pruned candidate's state
 * identity in the visited set regardless.
 *
 * Call protocol (enforced by the engine, single-threaded per point):
 * shouldRun(c) classifies c against the current read set and, when it
 * returns true, registers c as a representative; the caller must then
 * execute c's recovery and pass its read set to observeReads() before
 * classifying the next candidate.
 */

#ifndef PMDB_MODELCHECK_PRUNER_HH
#define PMDB_MODELCHECK_PRUNER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "crashsim/crash_points.hh"
#include "trace/read_set.hh"

namespace pmdb
{

/** Per-crash-point equivalence pruner over recovery read sets. */
class ReadSetPruner
{
  public:
    /**
     * @p enabled false turns the pruner into a pass-through (every
     * candidate runs) for A/B measurement.
     */
    ReadSetPruner(const CrashPointLog &log, const CrashPoint &point,
                  bool enabled);

    /**
     * True if @p candidate (indices into CrashPointLog::lines) needs
     * its own recovery execution; false if an executed representative
     * already covers it.
     */
    bool shouldRun(const std::vector<std::size_t> &candidate);

    /** Feed the just-executed representative's read set. */
    void observeReads(const ReadSet &reads);

    /** Candidates collapsed into a representative's class. */
    std::uint64_t pruned() const { return pruned_; }

    /** Times the read set grew and the classes were rebuilt. */
    std::uint64_t refinements() const { return refinements_; }

  private:
    std::uint64_t
    projectionKey(const std::vector<std::size_t> &candidate) const;

    const CrashPointLog &log_;
    bool enabled_;
    /** Cache-line indices pending at this point. */
    std::unordered_set<std::uint64_t> pointLines_;
    /** Lines of pointLines_ some representative's recovery has read. */
    std::unordered_set<std::uint64_t> readLines_;
    /** Executed representatives (to re-key after refinement). */
    std::vector<std::vector<std::size_t>> representatives_;
    /** Projection keys of representatives_ under readLines_. */
    std::unordered_set<std::uint64_t> repKeys_;
    std::uint64_t pruned_ = 0;
    std::uint64_t refinements_ = 0;
};

} // namespace pmdb

#endif // PMDB_MODELCHECK_PRUNER_HH
