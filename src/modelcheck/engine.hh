/**
 * @file
 * Systematic crash-state model checker.
 *
 * Where crashsim explores the crash states of *one* execution, the
 * model checker closes the loop: every candidate crash image is fed
 * back into the workload's recovery path as a fresh instrumented
 * execution, whose own crash points seed the next round. The search is
 * a breadth-first frontier over (execution, crash point, landed-subset)
 * triples, bounded by crash depth and by a distinct-state budget:
 *
 *   round 0:  initial execution from an empty pool
 *   round d:  for every crash point of every round-(d-1) execution,
 *             enumerate candidate images (crashsim's bounded
 *             enumerator), skip states already visited, prune
 *             candidates a recovery read-set representative covers
 *             (pruner.hh), execute recovery on the survivors, record
 *             inconsistencies as findings, and push the consistent
 *             recoveries' crash points into round d+1.
 *
 * This is what lets it find *multi-crash* bugs — persistence mistakes
 * in recovery code itself, whose trigger state only exists after a
 * first crash — that single-crash exploration is structurally unable
 * to reach (see modelcheckOnlyCases()).
 *
 * Determinism: results are bit-identical for any worker count. Within
 * a round, groups (one per explored execution) are processed in
 * parallel against a *frozen* visited-state cache; each group's work
 * is a pure function of (group, frozen cache, config), so the set of
 * executions a group performs does not depend on how groups are
 * distributed over threads. All mutation — cache inserts, finding order, frontier
 * construction, the rolling frontierHash — happens in a sequential
 * merge that walks outcomes in (group, candidate) order. The price is
 * that two groups reaching the same new state in one round both
 * execute it (the merge then dedups); rounds are the synchronization
 * grain.
 *
 * The visited-state cache can be persisted (ModelCheckOptions::
 * cachePath), making searches resumable: a rerun reloads the cache,
 * re-derives the frontier, and only executes states no prior run
 * covered.
 */

#ifndef PMDB_MODELCHECK_ENGINE_HH
#define PMDB_MODELCHECK_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "modelcheck/model.hh"
#include "modelcheck/state_cache.hh"

namespace pmdb
{

struct ModelCheckOptions
{
    /** Per-execution workload configuration (ops, seed, sim bounds). */
    ModelRunConfig run;

    /**
     * Maximum crashes along one trajectory. Depth 1 is crashsim-with-
     * real-recovery; the modelcheck-only bugs need >= 2.
     */
    std::size_t maxDepth = 2;

    /**
     * Distinct-state budget: the search stops expanding once this many
     * *new* states have been visited this run (stats.budgetExhausted
     * tells whether the bound bit).
     */
    std::size_t maxStates = 4096;

    /** Worker threads per round (results identical for any value). */
    std::size_t workers = 1;

    /** Read-set pruning (off = execute every non-duplicate candidate). */
    bool prune = true;

    /** Persist the visited-state cache here (empty = in-memory only). */
    std::string cachePath;

    /** Cap on recorded findings. */
    std::size_t maxFindings = 64;

    /**
     * When non-empty, every execution's event stream is also dispatched
     * to the pmdbd daemon at this control socket as its own service
     * session (forces ModelRunConfig::recordEvents).
     */
    std::string connectSocket;

    /** Where --connect ring files are created. */
    std::string scratchDir = "/tmp";
};

/** One inconsistency the search found. */
struct ModelCheckFinding
{
    /** Crashes taken to reach the bad state. */
    std::size_t depth = 0;

    /**
     * Boundary event seqs of the crash chain, outermost execution
     * first. Each seq is local to its execution's event stream.
     */
    std::vector<SeqNum> crashSeqs;

    /** Identity hash of the inconsistent image. */
    std::uint64_t stateHash = 0;

    /** The recovery verdict. */
    std::string detail;

    bool operator==(const ModelCheckFinding &) const = default;
};

struct ModelCheckStats
{
    /** Instrumented executions (initial + recoveries). */
    std::uint64_t executions = 0;
    /** Crash points captured across all executions. */
    std::uint64_t crashPoints = 0;
    /** Candidate images enumerated (before any dedup). */
    std::uint64_t candidates = 0;
    /** Candidates a read-set representative covered (not executed). */
    std::uint64_t prunedCandidates = 0;
    /** Candidates whose state identity was already visited. */
    std::uint64_t dedupedStates = 0;
    /** New states visited this run. */
    std::uint64_t distinctStates = 0;
    /** Crash points whose enumeration the sim bounds cut short. */
    std::uint64_t truncatedPoints = 0;
    /** Read-set refinements (pruner equivalence rebuilds). */
    std::uint64_t refinements = 0;
    /** Frontier rounds processed. */
    std::uint64_t rounds = 0;
    /** The maxStates budget stopped the search before the frontier. */
    bool budgetExhausted = false;

    bool operator==(const ModelCheckStats &) const = default;
};

struct ModelCheckResult
{
    std::vector<ModelCheckFinding> findings;
    ModelCheckStats stats;

    /**
     * Order-sensitive rolling hash over the newly visited states in
     * merge order — the determinism witness: any two runs with the
     * same config and prior cache must agree on it exactly.
     */
    std::uint64_t frontierHash = 0;

    /** Visited-state cache size after the run (prior + new states). */
    std::size_t cacheStates = 0;

    /** Wall clock (not part of identicalTo). */
    double seconds = 0.0;

    /** @name --connect delivery counters (not part of identicalTo) */
    /** @{ */
    std::uint64_t connectSessions = 0;
    std::uint64_t connectErrors = 0;
    /** @} */

    /** Bit-identical search outcome (timing and transport excluded). */
    bool identicalTo(const ModelCheckResult &other) const
    {
        return findings == other.findings && stats == other.stats &&
               frontierHash == other.frontierHash &&
               cacheStates == other.cacheStates;
    }
};

/** Frontier search driver. One instance runs one search. */
class ModelChecker
{
  public:
    ModelChecker(ModelWorkload &workload, ModelCheckOptions options);

    ModelCheckResult run();

  private:
    /**
     * One frontier entry: an explored execution, all of whose crash
     * points this round expands. Grouping by execution (not by point)
     * lets one ImageCursor roll forward over the whole log and one
     * local dedup set absorb the heavy cross-point duplicates — the
     * drop-everything image at point k+1 *is* point k's land-all
     * image — before any recovery runs.
     */
    struct Group
    {
        std::shared_ptr<const CrashPointLog> log;
        /** Crashes taken when this execution crashes (again). */
        std::size_t depth = 0;
        /** Boundary seqs of the crashes that led to this execution. */
        std::vector<SeqNum> chainPrefix;
        /**
         * Full content hash of the log's baseline image. ImageCursor
         * hashes are XOR deltas *relative to their log's baseline*;
         * anchoring them here turns them into absolute image
         * identities comparable across executions — without it, a
         * child state would alias whatever parent state shares its
         * delta shape.
         */
        std::uint64_t logBaseHash = 0;
    };

    /** Worker-side result for one candidate, merged sequentially. */
    struct CandidateOutcome
    {
        std::uint64_t hash = 0;
        /** Crash point (index into the group's log) it came from. */
        std::size_t pointIdx = 0;
        /** Frozen-cache hit: skipped before pruning or execution. */
        bool cachedSkip = false;
        /** A recovery execution ran for this candidate. */
        bool executed = false;
        std::string inconsistency;
        /** Next-round capture (null when not executed or inconsistent). */
        std::shared_ptr<const CrashPointLog> childLog;
    };

    struct GroupOutcome
    {
        std::vector<CandidateOutcome> candidates;
        std::uint64_t enumerated = 0;
        /** Image hashes repeated within this execution's points. */
        std::uint64_t localDuplicates = 0;
        std::uint64_t pruned = 0;
        std::uint64_t refinements = 0;
        std::uint64_t executions = 0;
        std::uint64_t crashPoints = 0;
        std::uint64_t truncatedPoints = 0;
    };

    /** Pure worker step: no shared mutation, @p frozen is read-only. */
    void processGroup(const Group &group, const StateCache &frozen,
                      GroupOutcome &out);

    /** Replay one execution's stream to the daemon (--connect). */
    void dispatchToService(const ModelExecution &exec);

    ModelWorkload &workload_;
    ModelCheckOptions options_;
    /** options_.run with recordEvents forced when connected. */
    ModelRunConfig runCfg_;
    /** Unique ring-file suffix per --connect session. */
    std::atomic<std::uint64_t> ringSeq_{0};
    std::atomic<std::uint64_t> connectSessions_{0};
    std::atomic<std::uint64_t> connectErrors_{0};
};

} // namespace pmdb

#endif // PMDB_MODELCHECK_ENGINE_HH
