#include "modelcheck/pruner.hh"

namespace pmdb
{

ReadSetPruner::ReadSetPruner(const CrashPointLog &log,
                             const CrashPoint &point, bool enabled)
    : log_(log), enabled_(enabled)
{
    for (std::size_t i = point.pendingBegin; i < point.pendingEnd; ++i)
        pointLines_.insert(log.lines[i].line);
}

std::uint64_t
ReadSetPruner::projectionKey(
    const std::vector<std::size_t> &candidate) const
{
    // Content identity of the candidate's landed lines restricted to
    // the learned read set. Lines outside the read set are invisible
    // to every representative executed so far; lines not landed show
    // the point's base image, which all candidates share.
    std::uint64_t key = 0;
    for (std::size_t idx : candidate) {
        const CapturedLine &cl = log_.lines[idx];
        if (readLines_.count(cl.line))
            key ^= lineContentHash(cl.line, cl.data.data());
    }
    return key;
}

bool
ReadSetPruner::shouldRun(const std::vector<std::size_t> &candidate)
{
    if (!enabled_)
        return true;
    const std::uint64_t key = projectionKey(candidate);
    if (repKeys_.count(key)) {
        ++pruned_;
        return false;
    }
    representatives_.push_back(candidate);
    repKeys_.insert(key);
    return true;
}

void
ReadSetPruner::observeReads(const ReadSet &reads)
{
    if (!enabled_)
        return;
    bool grew = false;
    for (std::uint64_t line : reads.lines()) {
        if (pointLines_.count(line))
            grew |= readLines_.insert(line).second;
    }
    if (!grew)
        return;
    // The equivalence got finer: re-key every representative under the
    // grown read set so future classifications compare against the
    // refined classes.
    ++refinements_;
    repKeys_.clear();
    for (const std::vector<std::size_t> &rep : representatives_)
        repKeys_.insert(projectionKey(rep));
}

} // namespace pmdb
