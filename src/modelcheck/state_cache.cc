#include "modelcheck/state_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <vector>

namespace pmdb
{

namespace
{

constexpr char cacheMagic[8] = {'P', 'M', 'D', 'B', 'M', 'C', 'C', '1'};

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
StateCache::load(const std::string &path, std::string *error)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        if (errno == ENOENT)
            return true; // first run: nothing persisted yet
        return fail(error, path + ": " + std::strerror(errno));
    }

    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return fail(error, path + ": " + std::strerror(errno));

    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
        std::memcmp(magic, cacheMagic, sizeof(magic)) != 0) {
        std::fclose(file);
        return fail(error, path + ": not a modelcheck state cache");
    }
    if (std::fread(&count, sizeof(count), 1, file) != 1) {
        std::fclose(file);
        return fail(error, path + ": truncated header");
    }
    const std::uint64_t expected =
        16 + count * sizeof(std::uint64_t);
    if (static_cast<std::uint64_t>(st.st_size) != expected) {
        std::fclose(file);
        return fail(error, path + ": size disagrees with state count");
    }

    std::vector<std::uint64_t> hashes(count);
    if (count > 0 &&
        std::fread(hashes.data(), sizeof(std::uint64_t), count, file) !=
            count) {
        std::fclose(file);
        return fail(error, path + ": truncated state list");
    }
    std::fclose(file);

    for (std::uint64_t hash : hashes)
        states_.insert(hash);
    return true;
}

bool
StateCache::save(const std::string &path, std::string *error) const
{
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return fail(error, tmp + ": " + std::strerror(errno));

    const std::uint64_t count = states_.size();
    bool ok =
        std::fwrite(cacheMagic, 1, sizeof(cacheMagic), file) ==
            sizeof(cacheMagic) &&
        std::fwrite(&count, sizeof(count), 1, file) == 1;
    for (auto it = states_.begin(); ok && it != states_.end(); ++it) {
        const std::uint64_t hash = *it;
        ok = std::fwrite(&hash, sizeof(hash), 1, file) == 1;
    }
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return fail(error, tmp + ": write failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail(error, path + ": " + std::strerror(errno));
    }
    return true;
}

} // namespace pmdb
