/**
 * @file
 * Visited-state cache for the crash-state model checker.
 *
 * States are durable pool images, identified by the crashsim engine's
 * 64-bit XOR-of-line-content-hashes image identity (crash_points.hh:
 * lineContentHash). The cache is the search's dedup set: a candidate
 * crash image whose identity is already present has been covered by an
 * earlier execution (this run or a previous one) and is not executed
 * again.
 *
 * Identity is a *hash*, so two genuinely different images colliding on
 * 64 bits would alias — the second one would be skipped. That is the
 * standard stateless-model-checking compromise (Jaaru and CHESS hash
 * states the same way); with position-salted per-line FNV mixing the
 * collision probability across even millions of states is ~2^-40-ish,
 * and a collision can only suppress a state, never invent a finding.
 * tests/test_modelcheck.cc pins this behavior.
 *
 * Disk format (little-endian, written by save(), read by load()):
 *
 *   offset 0   8-byte magic "PMDBMCC1"
 *   offset 8   u64 count
 *   offset 16  count * u64 state hashes (unordered)
 *
 * load() merges the file's states into the in-memory set, so a
 * resumed search starts knowing every state any prior run covered;
 * save() rewrites the whole set. Truncated or foreign files are
 * rejected (load returns false and leaves the set unchanged).
 */

#ifndef PMDB_MODELCHECK_STATE_CACHE_HH
#define PMDB_MODELCHECK_STATE_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_set>

namespace pmdb
{

/** Persistent set of visited persistent-state identities. */
class StateCache
{
  public:
    /** Add @p hash; true if it was new. */
    bool insert(std::uint64_t hash)
    {
        return states_.insert(hash).second;
    }

    bool contains(std::uint64_t hash) const
    {
        return states_.count(hash) != 0;
    }

    std::size_t size() const { return states_.size(); }

    void clear() { states_.clear(); }

    const std::unordered_set<std::uint64_t> &states() const
    {
        return states_;
    }

    /**
     * Merge the states persisted at @p path into the set. A missing
     * file is not an error (first run); a malformed one is.
     */
    bool load(const std::string &path, std::string *error = nullptr);

    /** Atomically rewrite @p path with the current set. */
    bool save(const std::string &path, std::string *error = nullptr) const;

  private:
    std::unordered_set<std::uint64_t> states_;
};

} // namespace pmdb

#endif // PMDB_MODELCHECK_STATE_CACHE_HH
