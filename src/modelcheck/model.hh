/**
 * @file
 * Workload interface for the crash-state model checker.
 *
 * The checker (engine.hh) explores a state space whose nodes are
 * durable pool images and whose edges are *executions*: the initial
 * run from an empty pool, and — for every candidate crash image — a
 * recovery run that reopens the image, repairs it, and continues
 * operating. A ModelWorkload supplies both edge types as fully
 * instrumented executions, each captured by a CrashsimSession so the
 * engine can enumerate where the *next* crash may cut it.
 *
 * Contract for implementations:
 *  - Executions are deterministic functions of (config, input image):
 *    same image in, same event stream and final image out. The pruning
 *    soundness argument (DESIGN.md §11) and the resumable state cache
 *    both stand on this.
 *  - runRecovery() must *detect* inconsistent images (return a
 *    non-empty ModelExecution::inconsistency) rather than crash on
 *    them, and must read the image through the pool's instrumented
 *    read path so the execution's read set is complete.
 *  - Recovery repairs and continuation operations must follow the
 *    workload's real persistence discipline — recovery code has crash
 *    windows of its own, and finding the multi-crash bugs in them is
 *    the point of the exercise.
 */

#ifndef PMDB_MODELCHECK_MODEL_HH
#define PMDB_MODELCHECK_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crashsim/crash_points.hh"
#include "trace/event.hh"
#include "trace/read_set.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Per-execution configuration for a model-checked workload. */
struct ModelRunConfig
{
    /** Operations the initial execution performs. */
    std::size_t operations = 8;

    /**
     * Operations each recovery execution performs after repairing the
     * image — the continuation that exposes crash points *past* the
     * first failure. Zero checks recovery itself but never deepens
     * the heap.
     */
    std::size_t recoveryOperations = 1;

    /** Key/value stream seed (recoveries derive their own stream). */
    std::uint64_t seed = 42;

    /** Pool size in bytes (0 = workload default). */
    std::size_t poolBytes = 0;

    /** Active fault injections (empty = correct program). */
    FaultSet faults;

    /** Crash-point capture and enumeration bounds. */
    CrashsimOptions sim;

    /**
     * Record the event stream and name table of every execution
     * (needed to dispatch executions to a pmdbd daemon; off by
     * default — recording is pure overhead otherwise).
     */
    bool recordEvents = false;
};

/** One instrumented execution observed by the model checker. */
struct ModelExecution
{
    /** Crash points captured while the execution ran. */
    CrashPointLog log;

    /** Durable pool image when the execution finished. */
    std::vector<std::uint8_t> finalImage;

    /**
     * Non-empty when the execution's recovery logic found the input
     * image inconsistent — the model checker's bug signal.
     */
    std::string inconsistency;

    /** Cache lines the execution read (recovery dependence set). */
    ReadSet reads;

    /** Recorded event stream (only when ModelRunConfig::recordEvents). */
    std::vector<Event> events;

    /** Interned names in id order, for replaying @ref events. */
    std::vector<std::string> names;
};

/** A workload the model checker can drive through crash-recover cycles. */
class ModelWorkload
{
  public:
    virtual ~ModelWorkload() = default;

    virtual const char *name() const = 0;

    /** Run the initial execution from a fresh pool. */
    virtual ModelExecution runInitial(const ModelRunConfig &cfg) = 0;

    /**
     * Reopen @p image as a crashed pool, run recovery (verdict +
     * repair) and, if the image was consistent, the continuation
     * operations.
     */
    virtual ModelExecution runRecovery(std::vector<std::uint8_t> image,
                                       const ModelRunConfig &cfg) = 0;
};

/** Names of all model-checkable workloads. */
std::vector<std::string> modelWorkloadNames();

/**
 * Build a model workload by name; nullptr for unknown names.
 * @p buggy selects the seeded-bug variant of the modelcheck-only
 * workloads (mc_*); the evaluation workloads take faults via
 * ModelRunConfig instead and ignore it.
 */
std::unique_ptr<ModelWorkload>
makeModelWorkload(const std::string &name, bool buggy = false);

/** A seeded multi-crash recovery bug (reachable only ≥2 crashes deep). */
struct ModelCheckCase
{
    std::string name;
    /** What the bug is and why depth-1 checking cannot see it. */
    std::string description;
    /** Search depth at which the buggy variant must be caught. */
    std::size_t depth = 2;
};

/**
 * The modelcheck-only seeded bugs: recovery-path persistence bugs
 * whose trigger state exists only after a first crash, so single-crash
 * exploration (crashsim) is structurally unable to reach them.
 */
const std::vector<ModelCheckCase> &modelcheckOnlyCases();

} // namespace pmdb

#endif // PMDB_MODELCHECK_MODEL_HH
