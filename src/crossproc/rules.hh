/**
 * @file
 * Cross-writer persistency rules over a merged multi-session stream.
 *
 * A per-session detector sees one process's stores, flushes and fences
 * and can prove that *that process* made its own data durable before
 * depending on it. When two processes map one shared pool
 * (src/pmem/shared_device.hh), a whole class of bugs lives in the
 * seams between their histories and is invisible to both per-session
 * views:
 *
 *  - **unflushed-cross-writer-read**: writer B reads a line writer A
 *    dirtied and never even flushed. B's detector sees a plain load of
 *    bytes it never stored (nothing to check); A's detector sees a
 *    store that A eventually persists (no per-session violation) — yet
 *    at the moment B consumed the value, a crash would have fed B's
 *    downstream effects from data that never existed durably.
 *  - **publish-before-persist**: B reads A's *pending* (flushed but
 *    unfenced) data, then B stores a dependent value (the handoff —
 *    say a consumed-index) and fences it durable while A's source line
 *    is still not durable. Each writer's own flush/fence discipline is
 *    impeccable in isolation; the cross-writer dependency inverts
 *    durability order.
 *  - **cross-writer epoch overlap**: B stores into a line A touched
 *    inside A's still-open epoch section. Epoch atomicity is
 *    per-writer state; neither session's detector knows the other has
 *    an epoch open over that address.
 *
 * CrossRuleEngine replays the *merged* stream — every shared-pool
 * event of every writer, in global fence-clock ticket order — and
 * mirrors the pool's per-writer dirty/pending/durable line lifecycle
 * to evaluate exactly these rules. Per-line state is partitioned by
 * the same address-stripe function the shard pool routes with (minus
 * the per-session salt: cross-session state must live with the home
 * stripe of the address, not with any one session), so each stripe's
 * table is the natural unit to colocate with its home shard. The
 * replay itself is a deterministic left fold over the ticket order, so
 * results are bit-identical for any shard count.
 */

#ifndef PMDB_CROSSPROC_RULES_HH
#define PMDB_CROSSPROC_RULES_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "trace/event.hh"

namespace pmdb
{

/** The inter-writer rule a CrossBug violates. */
enum class CrossBugType : std::uint8_t
{
    /** B read a line A dirtied and never flushed. */
    UnflushedCrossWriterRead,
    /** B fenced a dependent store while A's source was not durable. */
    PublishBeforePersist,
    /** B stored into a line inside A's still-open epoch. */
    EpochOverlap,
};

const char *toString(CrossBugType type);

/** One detected inter-writer violation. */
struct CrossBug
{
    CrossBugType type = CrossBugType::UnflushedCrossWriterRead;
    /** Cache line (or range) whose durability was at risk. */
    AddrRange range;
    /** Writer whose non-durable data was involved. */
    std::uint32_t ownerWriter = 0;
    /** Writer that observed / published / intruded. */
    std::uint32_t observerWriter = 0;
    /** Global-clock ticket of the event that completed the violation. */
    SeqNum ticket = 0;

    /**
     * Canonical single-line rendering; the report-identity tests
     * compare these strings byte-for-byte across shard counts.
     */
    std::string toString() const;

    bool operator==(const CrossBug &other) const = default;
};

/**
 * Deterministic merged-stream replayer. Feed every shared-pool event
 * (Event::global != 0) of every writer in ticket order, then call
 * finish(); bugs() is the verdict, in detection order.
 */
class CrossRuleEngine
{
  public:
    /**
     * @p shards / @p stripeBytes reproduce the shard pool's routing
     * shape so per-line state lives with the home stripe of its
     * address. The verdict provably does not depend on @p shards (the
     * replay is sequential); the tests assert it anyway.
     */
    CrossRuleEngine(std::size_t shards, Addr stripeBytes);

    /** Replay one merged-stream event issued by @p writer. */
    void feed(std::uint32_t writer, const Event &event);

    /** End of all streams; no rule fires at end-of-group today. */
    void finish();

    const std::vector<CrossBug> &bugs() const { return bugs_; }

    /** Shared-pool events replayed. */
    std::uint64_t eventsReplayed() const { return replayed_; }

  private:
    /** Mirror of one cache line's cross-writer persistence state. */
    struct LineView
    {
        bool dirty = false;
        bool pending = false;
        std::uint32_t dirtyWriter = 0;
        std::uint32_t pendingWriter = 0;
        /** Writer with an open epoch that touched the line, if any. */
        std::uint32_t epochWriter = 0;
        /** Which instance of that writer's epochs touched it. */
        std::uint64_t epochInstance = 0;
    };

    /** A reader's unsatisfied dependency on another writer's data. */
    struct Dependency
    {
        std::uint64_t line = 0;
        std::uint32_t ownerWriter = 0;
        SeqNum loadTicket = 0;
    };

    /** Per-writer replay state. */
    struct WriterView
    {
        /** Ticket of the writer's most recent store; 0 if none. */
        SeqNum lastStoreTicket = 0;
        /** Open epoch nesting depth. */
        int epochDepth = 0;
        /** Instance id of the writer's outermost open epoch. */
        std::uint64_t epochInstance = 0;
        /** Pending-read dependencies on other writers' data. */
        std::vector<Dependency> deps;
    };

    LineView &lineAt(std::uint64_t line);
    const LineView *findLine(std::uint64_t line) const;
    WriterView &writerAt(std::uint32_t writer);
    void onStore(std::uint32_t writer, const Event &event);
    void onLoad(std::uint32_t writer, const Event &event);
    void onFlush(std::uint32_t writer, const Event &event);
    void onFence(std::uint32_t writer, const Event &event);
    void onEpochBegin(std::uint32_t writer);
    void onEpochEnd(std::uint32_t writer);
    /** A line became durable: dependencies on it are satisfied. */
    void lineDurable(std::uint64_t line);

    std::size_t shards_;
    Addr stripeBytes_;
    /**
     * Per-line state, one table per home stripe (the map key is the
     * line index within the stripe's table). shardOf(addr) without the
     * session salt picks the table.
     */
    std::vector<std::unordered_map<std::uint64_t, LineView>> stripes_;
    std::unordered_map<std::uint32_t, WriterView> writers_;
    std::uint64_t epochCounter_ = 0;
    std::uint64_t replayed_ = 0;
    std::vector<CrossBug> bugs_;
};

} // namespace pmdb

#endif // PMDB_CROSSPROC_RULES_HH
