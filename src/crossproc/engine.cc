#include "crossproc/engine.hh"

#include <algorithm>
#include <sstream>

#include "telemetry/metrics.hh"

namespace pmdb
{

namespace
{

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
CrossGroupResult::toJson() const
{
    std::ostringstream out;
    out << "{\"pool\": \"" << escapeJson(pool) << "\", \"writers\": [";
    for (std::size_t i = 0; i < writers.size(); ++i)
        out << (i ? ", " : "") << writers[i];
    out << "], \"events_replayed\": " << eventsReplayed
        << ", \"cross_bugs\": [";
    for (std::size_t i = 0; i < bugs.size(); ++i) {
        out << (i ? ", " : "") << "{\"rule\": \""
            << toString(bugs[i].type) << "\", \"detail\": \""
            << escapeJson(bugs[i].toString()) << "\"}";
    }
    out << "]}";
    return out.str();
}

CrossprocEngine::CrossprocEngine(std::size_t shards, Addr stripeBytes)
    : shards_(shards), stripeBytes_(stripeBytes)
{
}

void
CrossprocEngine::joinGroup(std::uint32_t id, const std::string &pool,
                           std::uint32_t writer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sessionPool_[id] = pool;
    groups_[pool].members[id].writer = writer;
}

void
CrossprocEngine::feed(std::uint32_t id, const Event *events,
                      std::size_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessionPool_.find(id);
    if (it == sessionPool_.end())
        return;
    Member &member = groups_[it->second].members[id];
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].global != 0)
            member.events.push_back(events[i]);
    }
}

void
CrossprocEngine::sessionComplete(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessionPool_.find(id);
    if (it == sessionPool_.end())
        return;
    const std::string pool = it->second;
    auto groupIt = groups_.find(pool);
    if (groupIt == groups_.end())
        return;
    Group &group = groupIt->second;
    group.members[id].complete = true;
    const bool allDone = std::all_of(
        group.members.begin(), group.members.end(),
        [](const auto &entry) { return entry.second.complete; });
    if (!allDone)
        return;
    const bool telemetryOn = telemetry::enabled();
    const std::uint64_t start = telemetryOn ? telemetry::nowNs() : 0;
    evaluate(pool, group);
    if (telemetryOn) {
        telemetry::Registry::global()
            .histogram("crossproc.merge_ns")
            .record(telemetry::nowNs() - start);
        telemetry::Registry::global()
            .counter("crossproc.groups_evaluated")
            .add(1);
    }
    for (const auto &[member, info] : group.members)
        sessionPool_.erase(member);
    groups_.erase(groupIt);
}

void
CrossprocEngine::evaluate(const std::string &pool, Group &group)
{
    // Merge the members' retained streams into ticket order. Each
    // member's stream is already ticket-ascending (the pool draws
    // tickets in program order), so a k-way linear merge would do;
    // collect-and-sort keeps the code obvious and the cost is
    // evaluation-time only, off every ingest path.
    struct Tagged
    {
        std::uint32_t writer;
        const Event *event;
    };
    std::vector<Tagged> merged;
    std::size_t total = 0;
    for (const auto &[id, member] : group.members)
        total += member.events.size();
    merged.reserve(total);
    for (const auto &[id, member] : group.members) {
        for (const Event &event : member.events)
            merged.push_back({member.writer, &event});
    }
    std::sort(merged.begin(), merged.end(),
              [](const Tagged &a, const Tagged &b) {
                  return a.event->global < b.event->global;
              });

    CrossRuleEngine rules(shards_, stripeBytes_);
    for (const Tagged &entry : merged)
        rules.feed(entry.writer, *entry.event);
    rules.finish();

    CrossGroupResult result;
    result.pool = pool;
    for (const auto &[id, member] : group.members)
        result.writers.push_back(member.writer);
    std::sort(result.writers.begin(), result.writers.end());
    result.eventsReplayed = rules.eventsReplayed();
    result.bugs = rules.bugs();
    results_.push_back(std::move(result));
}

std::vector<CrossGroupResult>
CrossprocEngine::results() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_;
}

std::string
CrossprocEngine::resultsJson() const
{
    const std::vector<CrossGroupResult> all = results();
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < all.size(); ++i)
        out << (i ? ", " : "") << all[i].toJson();
    out << "]";
    return out.str();
}

} // namespace pmdb

