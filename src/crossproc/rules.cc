#include "crossproc/rules.hh"

#include <algorithm>
#include <sstream>

namespace pmdb
{

const char *
toString(CrossBugType type)
{
    switch (type) {
      case CrossBugType::UnflushedCrossWriterRead:
        return "unflushed-cross-writer-read";
      case CrossBugType::PublishBeforePersist:
        return "publish-before-persist";
      case CrossBugType::EpochOverlap:
        return "cross-writer-epoch-overlap";
    }
    return "unknown";
}

std::string
CrossBug::toString() const
{
    std::ostringstream out;
    out << pmdb::toString(type) << " range=[0x" << std::hex << range.start
        << ",0x" << range.end << ")" << std::dec
        << " owner=w" << ownerWriter << " observer=w" << observerWriter
        << " ticket=" << ticket;
    return out.str();
}

CrossRuleEngine::CrossRuleEngine(std::size_t shards, Addr stripeBytes)
    : shards_(shards ? shards : 1),
      stripeBytes_(stripeBytes ? stripeBytes : (64ull << 20)),
      stripes_(shards_)
{
}

CrossRuleEngine::LineView &
CrossRuleEngine::lineAt(std::uint64_t line)
{
    // Home-stripe routing: same stripe function as ShardPool::shardOf,
    // without the per-session salt — this state belongs to the address,
    // not to any one session.
    const Addr addr = line * cacheLineSize;
    const std::size_t stripe =
        static_cast<std::size_t>((addr / stripeBytes_) % shards_);
    return stripes_[stripe][line];
}

const CrossRuleEngine::LineView *
CrossRuleEngine::findLine(std::uint64_t line) const
{
    const Addr addr = line * cacheLineSize;
    const std::size_t stripe =
        static_cast<std::size_t>((addr / stripeBytes_) % shards_);
    const auto it = stripes_[stripe].find(line);
    return it == stripes_[stripe].end() ? nullptr : &it->second;
}

CrossRuleEngine::WriterView &
CrossRuleEngine::writerAt(std::uint32_t writer)
{
    return writers_[writer];
}

void
CrossRuleEngine::feed(std::uint32_t writer, const Event &event)
{
    if (event.global == 0)
        return; // not a shared-pool operation
    ++replayed_;
    switch (event.kind) {
      case EventKind::Store:
        onStore(writer, event);
        break;
      case EventKind::Load:
        onLoad(writer, event);
        break;
      case EventKind::Flush:
        onFlush(writer, event);
        break;
      case EventKind::Fence:
        onFence(writer, event);
        break;
      case EventKind::EpochBegin:
        onEpochBegin(writer);
        break;
      case EventKind::EpochEnd:
        onEpochEnd(writer);
        break;
      default:
        break;
    }
}

void
CrossRuleEngine::finish()
{
}

void
CrossRuleEngine::onStore(std::uint32_t writer, const Event &event)
{
    WriterView &view = writerAt(writer);
    view.lastStoreTicket = event.global;
    const AddrRange range = event.range();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        LineView &state = lineAt(line);
        // Rule 3: the line is inside another writer's still-open epoch
        // section — its atomic unit now spans two failure domains.
        if (state.epochWriter != 0 && state.epochWriter != writer) {
            const WriterView &other = writerAt(state.epochWriter);
            if (other.epochDepth > 0 &&
                other.epochInstance == state.epochInstance) {
                bugs_.push_back({CrossBugType::EpochOverlap,
                                 AddrRange::fromSize(line * cacheLineSize,
                                                     cacheLineSize),
                                 state.epochWriter, writer,
                                 event.global});
            }
        }
        state.dirty = true;
        state.dirtyWriter = writer;
        if (view.epochDepth > 0) {
            state.epochWriter = writer;
            state.epochInstance = view.epochInstance;
        }
    }
}

void
CrossRuleEngine::onLoad(std::uint32_t writer, const Event &event)
{
    WriterView &view = writerAt(writer);
    const AddrRange range = event.range();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        const LineView *state = findLine(line);
        if (!state)
            continue;
        // Rule 1: reading another writer's dirty (never even flushed)
        // data — a crash now would erase the value the reader already
        // acted on.
        if (state->dirty && state->dirtyWriter != writer) {
            bugs_.push_back({CrossBugType::UnflushedCrossWriterRead,
                             AddrRange::fromSize(line * cacheLineSize,
                                                 cacheLineSize),
                             state->dirtyWriter, writer, event.global});
            continue;
        }
        // Rule 2 arming: the value read is flushed but unfenced. Not a
        // bug by itself — the reader may wait for durability — but if
        // the reader fences a dependent store first, the durability
        // order inverts. Record the dependency.
        if (state->pending && state->pendingWriter != writer) {
            view.deps.push_back(
                {line, state->pendingWriter, event.global});
        }
    }
}

void
CrossRuleEngine::onFlush(std::uint32_t writer, const Event &event)
{
    const AddrRange range = event.range();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        LineView &state = lineAt(line);
        if (!state.dirty)
            continue;
        // The CLF queues a writeback of the line's current bytes; the
        // flushing writer's fence will complete it (mirrors
        // SharedPmemPool::flush).
        state.dirty = false;
        state.pending = true;
        state.pendingWriter = writer;
    }
}

void
CrossRuleEngine::onFence(std::uint32_t writer, const Event &event)
{
    // First complete this writer's own pending writebacks — a fence
    // that durable-izes the very line a dependency waits on satisfies
    // that dependency in the same instant, so no bug may fire on it.
    for (auto &stripe : stripes_) {
        for (auto &[line, state] : stripe) {
            if (state.pending && state.pendingWriter == writer) {
                state.pending = false;
                state.pendingWriter = 0;
                lineDurable(line);
            }
        }
    }
    // Rule 2: the writer fenced while holding a dependency on another
    // writer's still-non-durable data, and it has stored (published)
    // since acquiring that dependency.
    WriterView &view = writerAt(writer);
    std::vector<Dependency> kept;
    kept.reserve(view.deps.size());
    for (const Dependency &dep : view.deps) {
        const LineView *state = findLine(dep.line);
        const bool sourceAtRisk =
            state && (state->dirty || state->pending);
        if (!sourceAtRisk)
            continue; // became durable some other way: satisfied
        if (view.lastStoreTicket > dep.loadTicket) {
            bugs_.push_back({CrossBugType::PublishBeforePersist,
                             AddrRange::fromSize(dep.line * cacheLineSize,
                                                 cacheLineSize),
                             dep.ownerWriter, writer, event.global});
            continue; // reported once; drop the dependency
        }
        kept.push_back(dep); // no publish yet: keep watching
    }
    view.deps.swap(kept);
}

void
CrossRuleEngine::onEpochBegin(std::uint32_t writer)
{
    WriterView &view = writerAt(writer);
    if (view.epochDepth == 0)
        view.epochInstance = ++epochCounter_;
    ++view.epochDepth;
}

void
CrossRuleEngine::onEpochEnd(std::uint32_t writer)
{
    WriterView &view = writerAt(writer);
    if (view.epochDepth > 0)
        --view.epochDepth;
    // Closed epochs leave their touch marks behind; the overlap rule
    // checks the owner's *current* open instance, so stale marks can
    // never fire.
}

void
CrossRuleEngine::lineDurable(std::uint64_t line)
{
    for (auto &[writer, view] : writers_) {
        auto &deps = view.deps;
        deps.erase(std::remove_if(deps.begin(), deps.end(),
                                  [line](const Dependency &dep) {
                                      return dep.line == line;
                                  }),
                   deps.end());
    }
}

} // namespace pmdb
