/**
 * @file
 * Daemon-side cross-session detection engine.
 *
 * Sessions whose Hello announces a sharedPoolPath form a **group** per
 * pool. While each session streams, the daemon's pollers pass every
 * drained frame through feed(), which retains just the shared-pool
 * events (Event::global != 0). When the last member of a group
 * completes, the engine merge-sorts the members' retained streams by
 * global fence-clock ticket — the pool guarantees tickets order the
 * actual shared-memory mutations — and replays the total order through
 * CrossRuleEngine. Per-session detection is untouched: the same events
 * still flow to the shard pool, and cross-writer verdicts are reported
 * per group, not attributed to any one session.
 */

#ifndef PMDB_CROSSPROC_ENGINE_HH
#define PMDB_CROSSPROC_ENGINE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crossproc/rules.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Verdict for one completed shared-pool group. */
struct CrossGroupResult
{
    /** Pool path the group's sessions announced. */
    std::string pool;
    /** Writer ids that joined, ascending. */
    std::vector<std::uint32_t> writers;
    /** Shared-pool events replayed across all members. */
    std::uint64_t eventsReplayed = 0;
    /** Inter-writer violations, in merged-replay detection order. */
    std::vector<CrossBug> bugs;

    /** JSON object used by pmdbd --json and pmdb_crossproc. */
    std::string toJson() const;
};

/** Groups shared-pool sessions and runs the cross-writer rules. */
class CrossprocEngine
{
  public:
    /** Mirror the shard pool's routing shape (see CrossRuleEngine). */
    CrossprocEngine(std::size_t shards, Addr stripeBytes);

    /** Session @p id announced membership of @p pool as @p writer. */
    void joinGroup(std::uint32_t id, const std::string &pool,
                   std::uint32_t writer);

    /**
     * Retain the shared-pool events of a drained frame. No-op for
     * sessions that never joined a group, so the ingest hot path pays
     * one hash probe per frame at most.
     */
    void feed(std::uint32_t id, const Event *events, std::size_t count);

    /**
     * Session @p id finished (served or aborted). When it is the last
     * open member of its group, the group is evaluated and its result
     * recorded.
     */
    void sessionComplete(std::uint32_t id);

    /** Verdicts of all evaluated groups, in completion order. */
    std::vector<CrossGroupResult> results() const;

    /** JSON array of all group verdicts. */
    std::string resultsJson() const;

  private:
    struct Member
    {
        std::uint32_t writer = 0;
        bool complete = false;
        std::vector<Event> events;
    };

    struct Group
    {
        /** Keyed by session id; ordered so merge ties (which cannot
         *  happen for distinct tickets) would still break predictably. */
        std::map<std::uint32_t, Member> members;
    };

    void evaluate(const std::string &pool, Group &group);

    std::size_t shards_;
    Addr stripeBytes_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Group> groups_;
    std::unordered_map<std::uint32_t, std::string> sessionPool_;
    std::vector<CrossGroupResult> results_;
};

} // namespace pmdb

#endif // PMDB_CROSSPROC_ENGINE_HH
