/**
 * @file
 * Behavioural model of XFDetector (Liu et al., ASPLOS'20), the
 * cross-failure bug detector.
 *
 * XFDetector injects failure points into the pre-failure execution and,
 * for each, replays/examines the execution to detect cross-failure
 * bugs (post-failure code reading non-durable or semantically
 * inconsistent data). That per-failure-point replay is what makes it
 * the slowest tool in the comparison (~370x over native, Section 7.2);
 * to remain usable it must restrict the number of instrumented failure
 * points, which is also why it misses bugs in large applications such
 * as memcached (Section 7.4).
 *
 * Coverage (Table 6): no-durability, multiple overwrites, no order
 * guarantee, redundant flushes, redundant logging, cross-failure
 * semantic — six types. No flush-nothing, no relaxed-model rules.
 */

#ifndef PMDB_DETECTORS_XFDETECTOR_HH
#define PMDB_DETECTORS_XFDETECTOR_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/avl_tree.hh"
#include "core/bug.hh"
#include "core/rules.hh"
#include "core/stats.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/** Configuration for the XFDetector model. */
struct XfDetectorConfig
{
    /**
     * Maximum number of failure points to exercise. XFDetector
     * restricts failure points to bound its overhead — at the cost of
     * coverage (Section 7.4).
     */
    std::size_t maxFailurePoints = 500;

    /**
     * Inject a failure point at every Nth fence, spreading the points
     * over the execution instead of clustering them at the start.
     */
    std::uint64_t fenceStride = 64;

    /** Ordering constraints (XFDetector also takes these from the
     * programmer, Section 8). */
    OrderSpec orderSpec;

    /**
     * Flag overwrites of not-yet-persisted data. Like pmemcheck's
     * mult-stores switch this is opt-in, because batched-persistence
     * idioms legally overwrite volatile-dirty data.
     */
    bool detectMultipleOverwrite = false;
};

/**
 * The XFDetector baseline detector.
 *
 * XFDetector requires synchronous delivery: its cross-failure verifier
 * reads the PmemDevice crash image at failure points *during* event
 * handling, so it depends on the device sink having processed exactly
 * the events preceding the failure point. The runtime honours
 * requiresSynchronousDelivery() and feeds it per event even when other
 * sinks run batched, so its evaluation order never changes (and
 * batching would buy it nothing anyway).
 */
class XfDetector : public Detector
{
  public:
    /**
     * Optional cross-failure verifier invoked at each failure point;
     * returns an empty string when the post-failure state is
     * consistent, or a description of the inconsistency.
     */
    using CrossFailureVerifier = std::function<std::string()>;

    explicit XfDetector(XfDetectorConfig config = {});

    const char *detectorName() const override { return "xfdetector"; }

    bool isDbiBased() const override { return true; }

    bool requiresSynchronousDelivery() const override { return true; }

    void handle(const Event &event) override;

    const BugCollector &bugs() const override { return bugs_; }

    void finalize() override;

    DebuggerStats stats() const override;

    void
    setCrossFailureVerifier(CrossFailureVerifier verifier)
    {
        verifier_ = std::move(verifier);
    }

    /** Failure points actually exercised. */
    std::size_t failurePointsRun() const { return failurePointsRun_; }

    /** Shadow operations replayed across all failure points. */
    std::uint64_t replayedOps() const { return replayedOps_; }

  private:
    void processStore(const Event &event);
    void processFlush(const Event &event);
    void processFence(const Event &event);
    void runFailurePoint(const Event &event);

    XfDetectorConfig config_;
    AvlTree tree_;
    OrderTracker orderTracker_;
    std::vector<AddrRange> loggedThisEpoch_;
    /** Recorded pre-failure trace, replayed at failure points. */
    std::vector<Event> trace_;
    CrossFailureVerifier verifier_;
    BugCollector bugs_;
    DebuggerStats base_;
    const NameTable *names_ = nullptr;

    std::uint64_t fenceCount_ = 0;
    std::size_t failurePointsRun_ = 0;
    std::uint64_t replayedOps_ = 0;
    int epochDepth_ = 0;
    bool finalized_ = false;
    SeqNum lastSeq_ = 0;

  public:
    void attached(const NameTable &names) override { names_ = &names; }
};

} // namespace pmdb

#endif // PMDB_DETECTORS_XFDETECTOR_HH
