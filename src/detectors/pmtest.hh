/**
 * @file
 * Behavioural model of PMTest (Liu et al., ASPLOS'19), the
 * annotation-based, performance-optimized PM testing framework.
 *
 * PMTest relies on the programmer to insert assertion-like checkers
 * into the program: code regions are bracketed by PMTest_START/END,
 * and within them the programmer asserts durability (isPersist) and
 * ordering (isOrderedBefore) of specific variables, plus transaction
 * checkers. Only operations inside annotated regions are tracked at
 * all — which is why PMTest is fast (~3.8x) and why its coverage is
 * the lowest of the evaluated tools (Table 6): any bug not covered by
 * a programmer-added checker is missed.
 *
 * Coverage (Table 6): no-durability, multiple overwrites, no order
 * guarantee, redundant flushes, redundant logging — five types, each
 * only where annotated.
 */

#ifndef PMDB_DETECTORS_PMTEST_HH
#define PMDB_DETECTORS_PMTEST_HH

#include <vector>

#include "core/bug.hh"
#include "core/stats.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/**
 * The PMTest baseline detector with its annotation API.
 *
 * PMTest requires synchronous delivery: its annotation checkers
 * (isPersist / isOrderedBefore / txChecker) are called synchronously
 * from the instrumented program between events, so the op log must be
 * current at every program point — deferred dispatch would let a
 * checker run before the ops it asserts about were delivered. The
 * runtime honours requiresSynchronousDelivery() and feeds it per event
 * even in Batched/Async mode.
 */
class PmTestDetector : public Detector
{
  public:
    PmTestDetector() = default;

    const char *detectorName() const override { return "pmtest"; }

    bool requiresSynchronousDelivery() const override { return true; }

    void handle(const Event &event) override;

    const BugCollector &bugs() const override { return bugs_; }

    void finalize() override { finalized_ = true; }

    DebuggerStats stats() const override { return base_; }

    /** @name Annotation API (called from instrumented programs). */
    /** @{ */

    /** PMTest_START: begin tracking operations. */
    void pmTestStart();

    /** PMTest_END: stop tracking and discard the op log. */
    void pmTestEnd();

    bool inRegion() const { return inRegion_; }

    /**
     * Enable the in-region overwrite checker (PMTest's mult-store
     * assertion mode). Opt-in, because epoch-model code legally
     * overwrites data before the commit barrier.
     */
    void setOverwriteChecks(bool on) { overwriteChecks_ = on; }

    /**
     * Assert that [addr, addr+size) is durable at this program point
     * (its last tracked store has been flushed and fenced). Reports a
     * NoDurability bug on failure. Returns true if the check passed.
     */
    bool isPersist(Addr addr, std::size_t size);

    /**
     * Assert that @p first became durable strictly before @p second.
     * Reports a NoOrderGuarantee bug on failure.
     */
    bool isOrderedBefore(Addr first_addr, std::size_t first_size,
                         Addr second_addr, std::size_t second_size);

    /**
     * Transaction checker: assert the object at @p addr is logged at
     * most once in the current checker scope (reports RedundantLogging)
     * — the scope resets at pmTestStart().
     */
    void txChecker(Addr addr, std::size_t size);

    /** @} */

  private:
    struct Op
    {
        EventKind kind;
        AddrRange range;
        SeqNum seq;
    };

    /**
     * Absolute ordinal (within the region's op log) of the fence that
     * made the last store to @p range durable; -1 if not durable. Only
     * ops with index < @p end_idx are considered.
     */
    long durableFenceIndex(const AddrRange &range,
                           std::size_t end_idx) const;

    bool inRegion_ = false;
    bool overwriteChecks_ = false;
    std::vector<Op> ops_;
    std::vector<AddrRange> loggedObjects_;
    BugCollector bugs_;
    DebuggerStats base_;
    bool finalized_ = false;
    SeqNum lastSeq_ = 0;
};

} // namespace pmdb

#endif // PMDB_DETECTORS_PMTEST_HH
