/**
 * @file
 * Detector-interface adapter for PmDebugger, so the comparison
 * harnesses can drive it uniformly alongside the baseline models.
 */

#ifndef PMDB_DETECTORS_PMDEBUGGER_DETECTOR_HH
#define PMDB_DETECTORS_PMDEBUGGER_DETECTOR_HH

#include "core/debugger.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/** PMDebugger behind the uniform Detector interface. */
class PmDebuggerDetector : public Detector
{
  public:
    explicit PmDebuggerDetector(DebuggerConfig config = {})
        : impl_(std::move(config))
    {
    }

    const char *detectorName() const override { return "pmdebugger"; }

    bool isDbiBased() const override { return true; }

    void attached(const NameTable &names) override
    {
        impl_.attached(names);
    }

    void handle(const Event &event) override { impl_.handle(event); }

    /** Forward batches so the store-run fast path stays engaged. */
    void
    handleBatch(const Event *events, std::size_t count) override
    {
        impl_.handleBatch(events, count);
    }

    const BugCollector &bugs() const override { return impl_.bugs(); }

    void finalize() override { impl_.finalize(); }

    DebuggerStats stats() const override { return impl_.stats(); }

    /** Access the underlying debugger (custom rules, cross-failure). */
    PmDebugger &debugger() { return impl_; }
    const PmDebugger &debugger() const { return impl_; }

  private:
    PmDebugger impl_;
};

} // namespace pmdb

#endif // PMDB_DETECTORS_PMDEBUGGER_DETECTOR_HH
