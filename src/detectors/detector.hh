/**
 * @file
 * Common interface for all bug detectors in the comparison harness.
 *
 * The paper evaluates PMDebugger against Pmemcheck (industry-quality),
 * PMTest (annotation-based, performance-optimized) and XFDetector
 * (cross-failure testing). Each is modelled here as a TraceSink with a
 * uniform reporting interface so that the Table 6 detection matrix and
 * the Fig 8/10 performance comparisons drive every tool through the
 * identical instrumented stream.
 */

#ifndef PMDB_DETECTORS_DETECTOR_HH
#define PMDB_DETECTORS_DETECTOR_HH

#include <memory>
#include <string>

#include "core/bug.hh"
#include "core/stats.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** A crash-consistency bug detector consuming the instrumented stream. */
class Detector : public TraceSink
{
  public:
    /** Stable tool name ("pmdebugger", "pmemcheck", ...). */
    virtual const char *detectorName() const = 0;

    /** Bugs found so far. */
    virtual const BugCollector &bugs() const = 0;

    /** Run end-of-program checks (idempotent). */
    virtual void finalize() = 0;

    /** Bookkeeping statistics, where the model tracks them. */
    virtual DebuggerStats stats() const { return {}; }
};

} // namespace pmdb

#endif // PMDB_DETECTORS_DETECTOR_HH
