/**
 * @file
 * Behavioural model of Intel's Persistence Inspector (Table 1's
 * "Persist. Ins." row).
 *
 * Persistence Inspector is a *post-mortem* tool: a collection phase
 * records every PM access to an on-disk log, and a separate analysis
 * phase reasons about durability and ordering afterwards. That design
 * gives it high overhead (Table 1: "high") and a PMDK-oriented bug
 * surface comparable to pmemcheck's: missing flushes/fences
 * (no-durability), excessive flushes (redundant-flush) and excessive
 * logging within transactions (redundant-logging).
 *
 * The model buffers the whole trace during collection (the memory/IO
 * cost that dominates the real tool) and runs its passes at finalize.
 * The paper lists the tool in Table 1 but does not include it in the
 * Table 6 evaluation; it is provided here for completeness of the
 * tool landscape and as a second post-mortem consumer of the trace
 * substrate.
 */

#ifndef PMDB_DETECTORS_PERSISTENCE_INSPECTOR_HH
#define PMDB_DETECTORS_PERSISTENCE_INSPECTOR_HH

#include <vector>

#include "core/avl_tree.hh"
#include "core/bug.hh"
#include "core/stats.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/** The Persistence Inspector baseline detector. */
class PersistenceInspector : public Detector
{
  public:
    PersistenceInspector() = default;

    const char *detectorName() const override
    {
        return "persistence_inspector";
    }

    bool isDbiBased() const override { return true; }

    /** Collection phase: buffer everything. */
    void handle(const Event &event) override;

    /** Collection phase is a bulk append under batched dispatch. */
    void handleBatch(const Event *events, std::size_t count) override;

    const BugCollector &bugs() const override { return bugs_; }

    /** Analysis phase: replay the buffered trace through the rules. */
    void finalize() override;

    DebuggerStats stats() const override;

    /** Size of the collected trace (the post-mortem cost driver). */
    std::size_t collectedEvents() const { return trace_.size(); }

  private:
    void analyze();

    std::vector<Event> trace_;
    BugCollector bugs_;
    DebuggerStats base_;
    bool finalized_ = false;
};

} // namespace pmdb

#endif // PMDB_DETECTORS_PERSISTENCE_INSPECTOR_HH
