#include "detectors/registry.hh"

#include "detectors/pmdebugger_detector.hh"
#include "detectors/pmemcheck.hh"
#include "detectors/persistence_inspector.hh"
#include "detectors/pmtest.hh"
#include "detectors/xfdetector.hh"

namespace pmdb
{

std::vector<std::string>
detectorNames()
{
    return {"pmdebugger", "pmemcheck", "pmtest", "xfdetector",
            "persistence_inspector", "nulgrind"};
}

std::unique_ptr<Detector>
makeDetector(const std::string &name, const DebuggerConfig &config)
{
    if (name == "pmdebugger")
        return std::make_unique<PmDebuggerDetector>(config);
    if (name == "pmemcheck")
        return std::make_unique<PmemcheckDetector>();
    if (name == "pmtest")
        return std::make_unique<PmTestDetector>();
    if (name == "xfdetector") {
        XfDetectorConfig xf;
        xf.orderSpec = config.orderSpec;
        return std::make_unique<XfDetector>(xf);
    }
    if (name == "persistence_inspector")
        return std::make_unique<PersistenceInspector>();
    if (name == "nulgrind")
        return std::make_unique<NulgrindDetector>();
    return nullptr;
}

} // namespace pmdb
