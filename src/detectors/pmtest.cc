#include "detectors/pmtest.hh"

#include <algorithm>

namespace pmdb
{

void
PmTestDetector::handle(const Event &event)
{
    lastSeq_ = event.seq;
    switch (event.kind) {
      case EventKind::Store:
        ++base_.stores;
        break;
      case EventKind::Flush:
        ++base_.flushes;
        break;
      case EventKind::Fence:
        ++base_.fences;
        break;
      case EventKind::ProgramEnd:
        finalize();
        return;
      default:
        return;
    }

    // The defining property of PMTest: operations outside annotated
    // regions are not tracked at all.
    if (!inRegion_)
        return;

    if (event.kind == EventKind::Flush) {
        // Redundant flush: a prior CLF covered this range and no store
        // has touched it since.
        const AddrRange range = event.range();
        for (std::size_t i = ops_.size(); i-- > 0;) {
            const Op &op = ops_[i];
            if (op.kind == EventKind::Store && op.range.overlaps(range))
                break;
            if (op.kind == EventKind::Flush && op.range.overlaps(range)) {
                BugReport report;
                report.type = BugType::RedundantFlush;
                report.range = range;
                report.seq = event.seq;
                report.detail =
                    "region flushed again with no intervening store";
                bugs_.report(report);
                break;
            }
        }
    }

    if (event.kind == EventKind::Store && overwriteChecks_) {
        // Overwrite of data whose durability was never established
        // (evaluated before this store enters the log).
        const AddrRange range = event.range();
        for (std::size_t i = ops_.size(); i-- > 0;) {
            const Op &op = ops_[i];
            if (op.kind != EventKind::Store || !op.range.overlaps(range))
                continue;
            if (durableFenceIndex(op.range, ops_.size()) < 0) {
                BugReport report;
                report.type = BugType::MultipleOverwrite;
                report.range = range;
                report.seq = event.seq;
                report.detail = "overwrite before durability (annotated "
                                "region)";
                bugs_.report(report);
            }
            break;
        }
    }

    ops_.push_back({event.kind, event.range(), event.seq});
}

void
PmTestDetector::pmTestStart()
{
    inRegion_ = true;
    ops_.clear();
    loggedObjects_.clear();
}

void
PmTestDetector::pmTestEnd()
{
    inRegion_ = false;
    ops_.clear();
}

long
PmTestDetector::durableFenceIndex(const AddrRange &range,
                                  std::size_t end_idx) const
{
    end_idx = std::min(end_idx, ops_.size());

    // Locate the last store overlapping the range, counting fence
    // ordinals along the way so different calls share one timeline.
    std::size_t store_idx = end_idx;
    for (std::size_t i = end_idx; i-- > 0;) {
        if (ops_[i].kind == EventKind::Store &&
            ops_[i].range.overlaps(range)) {
            store_idx = i;
            break;
        }
    }
    if (store_idx == end_idx)
        return -1;

    long fence_ordinal = 0;
    for (std::size_t i = 0; i < store_idx; ++i) {
        if (ops_[i].kind == EventKind::Fence)
            ++fence_ordinal;
    }

    // Accumulate flush coverage after the store; durability is reached
    // at the first fence following complete coverage.
    std::vector<AddrRange> covered;
    auto is_covered = [&]() {
        std::sort(covered.begin(), covered.end(),
                  [](const AddrRange &a, const AddrRange &b) {
                      return a.start < b.start;
                  });
        AddrRange merged;
        bool first = true;
        for (const AddrRange &p : covered) {
            if (first) {
                merged = p;
                first = false;
            } else if (merged.adjacentOrOverlapping(p)) {
                merged = merged.unionWith(p);
            } else {
                merged = p;
            }
            if (merged.contains(range))
                return true;
        }
        return !first && merged.contains(range);
    };

    bool coverage_complete = false;
    for (std::size_t i = store_idx + 1; i < end_idx; ++i) {
        const Op &op = ops_[i];
        if (op.kind == EventKind::Flush) {
            const AddrRange part = op.range.intersect(range);
            if (!part.empty()) {
                covered.push_back(part);
                coverage_complete = is_covered();
            }
        } else if (op.kind == EventKind::Fence) {
            ++fence_ordinal;
            if (coverage_complete)
                return fence_ordinal;
        } else if (op.kind == EventKind::Store &&
                   op.range.overlaps(range)) {
            // Overwritten again: restart coverage from here.
            covered.clear();
            coverage_complete = false;
        }
    }
    return -1;
}

bool
PmTestDetector::isPersist(Addr addr, std::size_t size)
{
    if (!inRegion_)
        return true;
    const AddrRange range = AddrRange::fromSize(addr, size);

    bool has_store = false;
    bool has_flush = false;
    for (const Op &op : ops_) {
        if (op.kind == EventKind::Store && op.range.overlaps(range))
            has_store = true;
        if (op.kind == EventKind::Flush && op.range.overlaps(range))
            has_flush = true;
    }
    if (!has_store)
        return true; // the store happened outside the annotated region

    if (durableFenceIndex(range, ops_.size()) >= 0)
        return true;

    BugReport report;
    report.type = BugType::NoDurability;
    report.range = range;
    report.seq = lastSeq_;
    report.cause = has_flush ? DurabilityCause::MissingFence
                             : DurabilityCause::MissingFlush;
    report.detail = "isPersist assertion failed";
    bugs_.report(report);
    return false;
}

bool
PmTestDetector::isOrderedBefore(Addr first_addr, std::size_t first_size,
                                Addr second_addr, std::size_t second_size)
{
    if (!inRegion_)
        return true;
    const AddrRange first = AddrRange::fromSize(first_addr, first_size);
    const AddrRange second = AddrRange::fromSize(second_addr, second_size);

    const long first_durable = durableFenceIndex(first, ops_.size());
    const long second_durable = durableFenceIndex(second, ops_.size());

    const bool ok =
        first_durable >= 0 &&
        (second_durable < 0 || first_durable < second_durable);
    if (!ok) {
        BugReport report;
        report.type = BugType::NoOrderGuarantee;
        report.range = second;
        report.seq = lastSeq_;
        report.detail = "isOrderedBefore assertion failed";
        bugs_.report(report);
    }
    return ok;
}

void
PmTestDetector::txChecker(Addr addr, std::size_t size)
{
    if (!inRegion_)
        return;
    const AddrRange range = AddrRange::fromSize(addr, size);
    for (const AddrRange &logged : loggedObjects_) {
        if (logged.overlaps(range)) {
            BugReport report;
            report.type = BugType::RedundantLogging;
            report.range = range;
            report.seq = lastSeq_;
            report.detail = "TX checker: object logged more than once";
            bugs_.report(report);
            break;
        }
    }
    loggedObjects_.push_back(range);
}

} // namespace pmdb
