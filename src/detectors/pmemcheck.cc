#include "detectors/pmemcheck.hh"

namespace pmdb
{

PmemcheckDetector::PmemcheckDetector(PmemcheckConfig config)
    : config_(config), tree_(MergePolicy::Eager)
{
}

void
PmemcheckDetector::handle(const Event &event)
{
    lastSeq_ = event.seq;
    switch (event.kind) {
      case EventKind::Store:
        processStore(event);
        break;
      case EventKind::Flush:
        processFlush(event);
        break;
      case EventKind::Fence:
      case EventKind::JoinStrand:
        processFence(event);
        break;
      case EventKind::EpochBegin:
        // PMDK emits transaction client requests; pmemcheck suppresses
        // overwrite reports inside them (stores in an epoch may be
        // legally overwritten before the commit barrier).
        ++epochDepth_;
        break;
      case EventKind::EpochEnd:
        if (epochDepth_ > 0)
            --epochDepth_;
        break;
      case EventKind::ProgramEnd:
        finalize();
        break;
      default:
        break;
    }
}

void
PmemcheckDetector::handleBatch(const Event *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].kind != EventKind::Store) {
            handle(events[i]);
            continue;
        }
        lastSeq_ = events[i].seq;
        processStore(events[i]);
    }
}

void
PmemcheckDetector::simulateExecontext(const Event &event)
{
    // Pmemcheck records every store with its execution context:
    // Valgrind captures the guest call stack, hashes it, and interns
    // it in the execontext table. That per-store work is a large part
    // of why bookkeeping dominates pmemcheck's overhead (~82%,
    // Section 1). We model it as hashing a stack-sized buffer and an
    // interning-table probe.
    std::uint64_t frames[8];
    for (int i = 0; i < 8; ++i)
        frames[i] = event.addr * 0x9e3779b97f4a7c15ULL + i * event.size;
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(frames);
    for (std::size_t i = 0; i < sizeof(frames); ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    ++execontexts_[hash & 0x3ff];
}

void
PmemcheckDetector::processStore(const Event &event)
{
    ++base_.stores;
    simulateExecontext(event);
    const AddrRange range = event.range();

    if (config_.detectMultipleOverwrite && epochDepth_ == 0 &&
        tree_.overlapsAny(range)) {
        BugReport report;
        report.type = BugType::MultipleOverwrite;
        report.range = range;
        report.seq = event.seq;
        report.detail = "store overwrites data not yet persisted";
        bugs_.report(report);
    }

    // Every store goes straight into the tree; the eager merge policy
    // coalesces it with adjacent tracked regions (constant
    // re-organization, the Section 7.5 overhead).
    tree_.insert(LocationRecord(range, FlushState::NotFlushed, false,
                                event.seq));
}

void
PmemcheckDetector::processFlush(const Event &event)
{
    ++base_.flushes;
    const AvlTree::FlushOutcome outcome = tree_.applyFlush(event.range());

    if (config_.detectFlushNothing && !outcome.hitAny) {
        BugReport report;
        report.type = BugType::FlushNothing;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "CLF persists no prior store";
        bugs_.report(report);
    }
    if (config_.detectRedundantFlush && outcome.hitAny &&
        !outcome.hitUnflushed) {
        BugReport report;
        report.type = BugType::RedundantFlush;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "region already flushed before the nearest fence";
        bugs_.report(report);
    }
}

void
PmemcheckDetector::processFence(const Event &event)
{
    (void)event;
    ++base_.fences;
    tree_.removeFlushed(nullptr);
    base_.treeNodeSampleSum += tree_.size();
    ++base_.treeNodeSamples;
}

void
PmemcheckDetector::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    if (!config_.detectNoDurability)
        return;
    tree_.forEach([&](const LocationRecord &rec) {
        BugReport report;
        report.type = BugType::NoDurability;
        report.range = rec.range;
        report.seq = lastSeq_;
        report.cause = rec.state == FlushState::Flushed
                           ? DurabilityCause::MissingFence
                           : DurabilityCause::MissingFlush;
        report.detail = rec.state == FlushState::Flushed
                            ? "flushed but never fenced"
                            : "never flushed";
        bugs_.report(report);
    });
}

DebuggerStats
PmemcheckDetector::stats() const
{
    DebuggerStats stats = base_;
    stats.tree = tree_.stats();
    return stats;
}

} // namespace pmdb
