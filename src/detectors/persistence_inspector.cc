#include "detectors/persistence_inspector.hh"

namespace pmdb
{

void
PersistenceInspector::handle(const Event &event)
{
    switch (event.kind) {
      case EventKind::Store:
        ++base_.stores;
        break;
      case EventKind::Flush:
        ++base_.flushes;
        break;
      case EventKind::Fence:
        ++base_.fences;
        break;
      case EventKind::ProgramEnd:
        trace_.push_back(event);
        finalize();
        return;
      default:
        break;
    }
    trace_.push_back(event);
}

void
PersistenceInspector::handleBatch(const Event *events, std::size_t count)
{
    trace_.reserve(trace_.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
        switch (events[i].kind) {
          case EventKind::Store:
            ++base_.stores;
            break;
          case EventKind::Flush:
            ++base_.flushes;
            break;
          case EventKind::Fence:
            ++base_.fences;
            break;
          case EventKind::ProgramEnd:
            trace_.push_back(events[i]);
            finalize();
            return;
          default:
            break;
        }
        trace_.push_back(events[i]);
    }
}

void
PersistenceInspector::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    analyze();
}

void
PersistenceInspector::analyze()
{
    // Post-mortem pass 1: durability and flush-redundancy analysis
    // over the collected trace (tree-based, like pmemcheck's online
    // tracking, but run after the fact).
    AvlTree tree(MergePolicy::Eager);
    int epoch_depth = 0;
    std::vector<AddrRange> logged_this_tx;
    SeqNum last_seq = 0;

    for (const Event &event : trace_) {
        last_seq = event.seq;
        switch (event.kind) {
          case EventKind::Store:
            tree.insert(LocationRecord(event.range(),
                                       FlushState::NotFlushed, false,
                                       event.seq));
            break;
          case EventKind::Flush: {
            const AvlTree::FlushOutcome outcome =
                tree.applyFlush(event.range());
            if (outcome.hitAny && !outcome.hitUnflushed) {
                BugReport report;
                report.type = BugType::RedundantFlush;
                report.range = event.range();
                report.seq = event.seq;
                report.detail = "excessive flush of clean data";
                bugs_.report(report);
            }
            break;
          }
          case EventKind::Fence:
          case EventKind::JoinStrand:
            tree.removeFlushed(nullptr);
            break;
          case EventKind::EpochBegin:
            ++epoch_depth;
            break;
          case EventKind::EpochEnd:
            if (epoch_depth > 0)
                --epoch_depth;
            logged_this_tx.clear();
            break;
          case EventKind::TxLog: {
            const AddrRange range = event.range();
            for (const AddrRange &logged : logged_this_tx) {
                if (logged.overlaps(range)) {
                    BugReport report;
                    report.type = BugType::RedundantLogging;
                    report.range = range;
                    report.seq = event.seq;
                    report.detail = "excessive logging within one "
                                    "transaction";
                    bugs_.report(report);
                    break;
                }
            }
            logged_this_tx.push_back(range);
            break;
          }
          default:
            break;
        }
    }

    // Pass 2: whatever survives the trace was never made durable.
    tree.forEach([&](const LocationRecord &rec) {
        BugReport report;
        report.type = BugType::NoDurability;
        report.range = rec.range;
        report.seq = last_seq;
        report.cause = rec.state == FlushState::Flushed
                           ? DurabilityCause::MissingFence
                           : DurabilityCause::MissingFlush;
        report.detail = rec.state == FlushState::Flushed
                            ? "flushed but never fenced"
                            : "never flushed";
        bugs_.report(report);
    });
}

DebuggerStats
PersistenceInspector::stats() const
{
    return base_;
}

} // namespace pmdb
