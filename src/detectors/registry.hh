/**
 * @file
 * Factory for detectors by tool name, used by benches and examples
 * ("./run.sh <CHECKER> ..." in the paper's artifact maps to this).
 */

#ifndef PMDB_DETECTORS_REGISTRY_HH
#define PMDB_DETECTORS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/** A no-bookkeeping detector: the Nulgrind instrumentation baseline. */
class NulgrindDetector : public Detector
{
  public:
    const char *detectorName() const override { return "nulgrind"; }

    bool isDbiBased() const override { return true; }

    void
    handle(const Event &event) override
    {
        (void)event;
        ++eventCount_;
    }

    /** Batched dispatch collapses to one counter bump per batch. */
    void
    handleBatch(const Event *events, std::size_t count) override
    {
        (void)events;
        eventCount_ += count;
    }

    const BugCollector &bugs() const override { return bugs_; }

    void finalize() override {}

    std::uint64_t eventCount() const { return eventCount_; }

  private:
    BugCollector bugs_;
    std::uint64_t eventCount_ = 0;
};

/** Names of all detectors the registry can build. */
std::vector<std::string> detectorNames();

/**
 * Build a detector by name: "pmdebugger", "pmemcheck", "pmtest",
 * "xfdetector" or "nulgrind". The debugger config parameterizes
 * PMDebugger (model, order spec, ...); the order spec is also passed
 * to XFDetector. Returns nullptr for unknown names.
 */
std::unique_ptr<Detector> makeDetector(const std::string &name,
                                       const DebuggerConfig &config = {});

} // namespace pmdb

#endif // PMDB_DETECTORS_REGISTRY_HH
