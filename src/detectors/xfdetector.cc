#include "detectors/xfdetector.hh"

namespace pmdb
{

XfDetector::XfDetector(XfDetectorConfig config)
    : config_(std::move(config)), tree_(MergePolicy::Lazy)
{
    orderTracker_.configure(config_.orderSpec);
}

void
XfDetector::handle(const Event &event)
{
    lastSeq_ = event.seq;
    trace_.push_back(event);

    switch (event.kind) {
      case EventKind::Store:
        processStore(event);
        break;
      case EventKind::Flush:
        processFlush(event);
        break;
      case EventKind::Fence:
      case EventKind::JoinStrand:
        processFence(event);
        break;
      case EventKind::EpochBegin:
        ++epochDepth_;
        break;
      case EventKind::EpochEnd:
        if (epochDepth_ > 0)
            --epochDepth_;
        loggedThisEpoch_.clear();
        break;
      case EventKind::TxLog: {
        const AddrRange range = event.range();
        for (const AddrRange &logged : loggedThisEpoch_) {
            if (logged.overlaps(range)) {
                BugReport report;
                report.type = BugType::RedundantLogging;
                report.range = range;
                report.seq = event.seq;
                report.detail = "object logged twice in one transaction";
                bugs_.report(report);
                break;
            }
        }
        loggedThisEpoch_.push_back(range);
        break;
      }
      case EventKind::RegisterPmem:
        if (names_ && event.nameId != noName) {
            orderTracker_.onRegister(names_->name(event.nameId),
                                     event.range());
        }
        break;
      case EventKind::ProgramEnd:
        finalize();
        break;
      default:
        break;
    }
}

void
XfDetector::processStore(const Event &event)
{
    ++base_.stores;
    orderTracker_.onStore(event);
    const AddrRange range = event.range();

    if (config_.detectMultipleOverwrite && epochDepth_ == 0 &&
        tree_.overlapsAny(range)) {
        BugReport report;
        report.type = BugType::MultipleOverwrite;
        report.range = range;
        report.seq = event.seq;
        report.detail = "store overwrites data not yet persisted";
        bugs_.report(report);
    }
    tree_.insert(LocationRecord(range, FlushState::NotFlushed, false,
                                event.seq));
}

void
XfDetector::processFlush(const Event &event)
{
    ++base_.flushes;
    orderTracker_.onFlush(event);
    const AvlTree::FlushOutcome outcome = tree_.applyFlush(event.range());
    if (outcome.hitAny && !outcome.hitUnflushed) {
        BugReport report;
        report.type = BugType::RedundantFlush;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "region already flushed before the nearest fence";
        bugs_.report(report);
    }
}

void
XfDetector::processFence(const Event &event)
{
    ++base_.fences;
    ++fenceCount_;

    const std::vector<int> newly_durable = orderTracker_.onFence();
    for (int second : newly_durable) {
        for (const auto &[x, y] : orderTracker_.pairs()) {
            if (y != second)
                continue;
            const OrderTracker::Var &first = orderTracker_.var(x);
            if (!first.stored)
                continue;
            const bool ok = first.durable &&
                            first.durableAtFence <
                                orderTracker_.fenceIndex();
            if (!ok) {
                BugReport report;
                report.type = BugType::NoOrderGuarantee;
                report.range = orderTracker_.var(y).range;
                report.seq = event.seq;
                report.detail = "'" + orderTracker_.var(y).name +
                                "' durable before '" + first.name + "'";
                bugs_.report(report);
            }
        }
    }

    tree_.removeFlushed(nullptr);

    // Failure-point injection: one failure point every fenceStride
    // fences, up to the instrumented budget. Each point replays the
    // pre-failure trace — the dominant, superlinear cost that makes
    // cross-failure testing so slow (Section 7.2).
    if (fenceCount_ % config_.fenceStride == 0 &&
        failurePointsRun_ < config_.maxFailurePoints) {
        runFailurePoint(event);
    }
}

void
XfDetector::runFailurePoint(const Event &event)
{
    ++failurePointsRun_;

    // Replay the pre-failure trace over a shadow persistence map —
    // the dominant cost of cross-failure testing. The shadow state
    // distinguishes dirty / flush-pending / durable cache lines at the
    // failure point.
    std::unordered_map<std::uint64_t, int> shadow; // line -> state
    std::vector<std::uint64_t> pending;            // lines in state 2
    for (const Event &e : trace_) {
        ++replayedOps_;
        switch (e.kind) {
          case EventKind::Store: {
            const AddrRange r = e.range();
            const std::uint64_t first = cacheLineIndex(r.start);
            const std::uint64_t last = cacheLineIndex(r.end - 1);
            for (std::uint64_t line = first; line <= last; ++line)
                shadow[line] = 1; // dirty
            break;
          }
          case EventKind::Flush: {
            const AddrRange r = e.range();
            const std::uint64_t first = cacheLineIndex(r.start);
            const std::uint64_t last = cacheLineIndex(r.end - 1);
            for (std::uint64_t line = first; line <= last; ++line) {
                auto it = shadow.find(line);
                if (it != shadow.end() && it->second == 1) {
                    it->second = 2; // flush pending
                    pending.push_back(line);
                }
            }
            break;
          }
          case EventKind::Fence:
          case EventKind::JoinStrand:
            for (std::uint64_t line : pending) {
                auto it = shadow.find(line);
                if (it != shadow.end() && it->second == 2)
                    it->second = 3; // durable
            }
            pending.clear();
            break;
          default:
            break;
        }
    }

    // Post-failure stage: run the registered recovery verifier against
    // the state at this failure point.
    if (verifier_) {
        const std::string inconsistency = verifier_();
        if (!inconsistency.empty()) {
            BugReport report;
            report.type = BugType::CrossFailureSemantic;
            report.seq = event.seq;
            report.detail = inconsistency;
            bugs_.report(report);
        }
    }
}

void
XfDetector::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    tree_.forEach([&](const LocationRecord &rec) {
        BugReport report;
        report.type = BugType::NoDurability;
        report.range = rec.range;
        report.seq = lastSeq_;
        report.cause = rec.state == FlushState::Flushed
                           ? DurabilityCause::MissingFence
                           : DurabilityCause::MissingFlush;
        report.detail = rec.state == FlushState::Flushed
                            ? "flushed but never fenced"
                            : "never flushed";
        bugs_.report(report);
    });
}

DebuggerStats
XfDetector::stats() const
{
    DebuggerStats stats = base_;
    stats.tree = tree_.stats();
    return stats;
}

} // namespace pmdb
