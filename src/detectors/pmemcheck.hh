/**
 * @file
 * Behavioural model of Pmemcheck, Intel's industry-quality Valgrind
 * tool for PM programs.
 *
 * Pmemcheck organizes every tracked store into a tree-like structure
 * keyed by address and re-organizes it continuously: each new store is
 * merged with adjacent tracked regions so the tree records information
 * for larger locations (Section 2.2). That per-store maintenance —
 * bookkeeping is ~82% of its total overhead — is exactly the cost
 * PMDebugger's characterization shows to be unamortizable (Pattern 1:
 * most records die at the very next fence, so tree re-organization
 * rarely pays for itself).
 *
 * Coverage (Table 6): no-durability, multiple overwrites, redundant
 * flushes, flush-nothing — four bug types. No order checking, no
 * relaxed-model rules, no cross-failure testing.
 */

#ifndef PMDB_DETECTORS_PMEMCHECK_HH
#define PMDB_DETECTORS_PMEMCHECK_HH

#include <array>

#include "core/avl_tree.hh"
#include "core/bug.hh"
#include "core/stats.hh"
#include "detectors/detector.hh"

namespace pmdb
{

/** Configuration for the Pmemcheck model. */
struct PmemcheckConfig
{
    /**
     * Pmemcheck "mult-stores" tracking: flag overwrites of dirty data.
     * Off by default, as in the real tool (--mult-stores=no); the bug
     * suite enables it for the overwrite cases.
     */
    bool detectMultipleOverwrite = false;
    bool detectRedundantFlush = true;
    bool detectFlushNothing = true;
    bool detectNoDurability = true;
};

/** The Pmemcheck baseline detector. */
class PmemcheckDetector : public Detector
{
  public:
    explicit PmemcheckDetector(PmemcheckConfig config = {});

    const char *detectorName() const override { return "pmemcheck"; }

    bool isDbiBased() const override { return true; }

    void handle(const Event &event) override;

    /**
     * Batched dispatch: store runs skip the per-event kind switch. The
     * modeled per-store cost (execontext interning, eager tree insert)
     * is unchanged — it is the tool's intrinsic overhead, not dispatch
     * overhead.
     */
    void handleBatch(const Event *events, std::size_t count) override;

    const BugCollector &bugs() const override { return bugs_; }

    void finalize() override;

    DebuggerStats stats() const override;

    /** Live tracked regions (exposed for Fig 11 probing). */
    std::size_t treeNodeCount() const { return tree_.size(); }

  private:
    void simulateExecontext(const Event &event);
    void processStore(const Event &event);
    void processFlush(const Event &event);
    void processFence(const Event &event);

    PmemcheckConfig config_;
    /** Eager merging on every insert: the traditional design. */
    AvlTree tree_;
    /** Interned execution contexts (see simulateExecontext). */
    std::array<std::uint32_t, 1024> execontexts_{};
    BugCollector bugs_;
    DebuggerStats base_;
    int epochDepth_ = 0;
    bool finalized_ = false;
    SeqNum lastSeq_ = 0;
};

} // namespace pmdb

#endif // PMDB_DETECTORS_PMEMCHECK_HH
