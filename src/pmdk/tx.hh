/**
 * @file
 * Mini-PMDK undo-log transactions (the epoch persistency model).
 *
 * A Transaction maps onto the paper's epoch section: begin() emits
 * EpochBegin (TX_BEGIN), commit() flushes every range added during the
 * transaction, issues the single closing SFENCE, and emits EpochEnd
 * (TX_END). Stores inside the epoch may persist in any order; the
 * commit barrier guarantees their durability (Section 2.3).
 *
 * Undo logging follows libpmemobj's single-drain design: each
 * addRange() appends a checksummed snapshot of the object's old bytes
 * to the pool's log region and flushes it *without* a fence; torn log
 * entries are detected at recovery via the checksum. Each append also
 * emits a TxLog event carrying the *data object's* address, which is
 * what the redundant-logging detection rule consumes (Section 5.2).
 *
 * Nested transactions collapse into the outermost epoch, exactly as
 * Section 6 describes: only the outermost begin/commit emit epoch
 * events and the commit barrier.
 */

#ifndef PMDB_PMDK_TX_HH
#define PMDB_PMDK_TX_HH

#include <cstdint>
#include <vector>

#include "pmdk/pool.hh"

namespace pmdb
{

/**
 * RAII transaction facade over a pool's transaction state.
 *
 * Usage:
 * @code
 *   Transaction tx(pool);
 *   tx.begin();
 *   tx.addRange(obj, sizeof(Node));
 *   pool.store(obj, ...);
 *   tx.commit();
 * @endcode
 */
class Transaction
{
  public:
    explicit Transaction(PmemPool &pool, ThreadId thread = 0);

    /** Aborts (rolls back) if the transaction is still open. */
    ~Transaction();

    Transaction(const Transaction &) = delete;
    Transaction &operator=(const Transaction &) = delete;

    /** Open the transaction (outermost emits EpochBegin). */
    void begin();

    /**
     * Snapshot [addr, addr+size) into the undo log and register the
     * range for flushing at commit (pmemobj_tx_add_range). Exact
     * re-additions of an already-registered range are skipped, as PMDK
     * does; returns true if a log entry was actually appended.
     */
    bool addRange(Addr addr, std::size_t size);

    /**
     * Register the range for commit-time flushing *without* logging
     * old data (pmemobj_tx_add_range with POBJ_XADD_NO_SNAPSHOT —
     * used for freshly allocated objects).
     */
    void addRangeNoSnapshot(Addr addr, std::size_t size);

    /** Allocate inside the transaction; durability rides the commit. */
    Addr alloc(std::size_t size);

    /** Commit: flush added ranges, truncate log, fence, TX_END. */
    void commit();

    /** Roll back every logged range and close the transaction. */
    void abort();

    bool isOpen() const { return open_; }

    /** Nesting depth of the pool's active transaction (0 = none). */
    static int depth(const PmemPool &pool) { return pool.txDepth_; }

  private:
    PmemPool &pool_;
    ThreadId thread_;
    bool open_ = false;
    bool outermost_ = false;
    /** Ranges this level added (for abort of just this level we still
     * roll back everything; PMDK aborts the whole outer tx too). */
    std::vector<AddrRange> myRanges_;
};

/** On-log-media entry header preceding each snapshot's old bytes. */
struct TxLogEntryHeader
{
    Addr objAddr;
    std::uint64_t size;
    std::uint64_t checksum;
};

/**
 * Transaction recovery over a crash image: scans the pool's log
 * region, validates checksums, and rolls back every intact entry.
 * Used by the cross-failure-semantic checks and the recovery example.
 */
class TxRecovery
{
  public:
    /** One recovered (rolled-back) undo entry. */
    struct RecoveredEntry
    {
        Addr objAddr;
        std::uint64_t size;
        bool checksumOk;
    };

    /** Location of a pool's undo-log region, capturable by value. */
    struct TxLogRegion
    {
        Addr base = 0;
        std::size_t size = 0;
    };

    /**
     * Apply intact undo entries from @p image (a crash image of
     * @p pool's address space) back into the image. Returns the
     * entries found, in log order.
     */
    static std::vector<RecoveredEntry>
    rollback(const PmemPool &pool, std::vector<std::uint8_t> &image);

    /**
     * Pool-free variant for recovery verifiers that outlive the pool
     * (crash-state exploration): same semantics as rollback(), keyed
     * by a log region captured earlier via logRegionOf().
     */
    static std::vector<RecoveredEntry>
    rollbackImage(Addr log_region, std::size_t log_region_size,
                  std::vector<std::uint8_t> &image);

    /** Capture @p pool's log-region location by value. */
    static TxLogRegion logRegionOf(const PmemPool &pool);

    /**
     * Instrumented in-place recovery of a reopened pool (the rollback
     * a real pmemobj_open performs): scan the undo log through the
     * pool's read path, restore every checksum-intact entry with
     * persisted stores, then truncate the log. Restores are made
     * durable *before* the truncation (two drains) — if recovery
     * itself crashes, either the log is still valid and a rerun
     * redoes the idempotent rollback, or every restore has landed.
     * Unlike rollbackImage() this emits the full store/CLF/fence
     * stream, so recovery becomes an execution the model checker can
     * crash again.
     */
    static std::vector<RecoveredEntry> recoverPool(PmemPool &pool);
};

/** FNV-1a checksum used for log-entry integrity. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace pmdb

#endif // PMDB_PMDK_TX_HH
