#include "pmdk/tx.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace pmdb
{

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace
{

std::uint64_t
entryChecksum(const TxLogEntryHeader &header, const void *old_data)
{
    std::uint64_t h = fnv1a(&header.objAddr, sizeof(header.objAddr));
    h = fnv1a(&header.size, sizeof(header.size), h);
    return fnv1a(old_data, header.size, h);
}

constexpr std::size_t logHeaderBytes = sizeof(std::uint64_t);

std::size_t
alignUp8(std::size_t v)
{
    return (v + 7) & ~std::size_t(7);
}

} // namespace

Transaction::Transaction(PmemPool &pool, ThreadId thread)
    : pool_(pool), thread_(thread)
{
}

Transaction::~Transaction()
{
    if (open_)
        abort();
}

void
Transaction::begin()
{
    if (open_)
        panic("Transaction::begin: already open");
    open_ = true;
    outermost_ = pool_.txDepth_ == 0;
    ++pool_.txDepth_;
    if (outermost_) {
        pool_.txLogBytes_ = 0;
        pool_.txRanges_.clear();
        pool_.txThread_ = thread_;
        pool_.runtime().epochBegin(thread_);
    }
}

bool
Transaction::addRange(Addr addr, std::size_t size)
{
    if (!open_)
        panic("Transaction::addRange: transaction not open");
    if (size == 0)
        return false;

    // pmemobj_tx_add_range skips ranges already snapshotted in this
    // transaction; we dedup exact re-additions (the common pattern of
    // helper functions re-adding the node they modify).
    const AddrRange range_key = AddrRange::fromSize(addr, size);
    for (const AddrRange &prior : pool_.txRanges_) {
        if (prior == range_key)
            return false;
    }

    // Snapshot the object's current bytes into the undo log. The log
    // append is flushed but not fenced (libpmemobj's single-drain
    // design); torn entries are caught at recovery by the checksum.
    std::vector<std::uint8_t> old_data(size);
    pool_.readBytes(addr, old_data.data(), size);

    TxLogEntryHeader header;
    header.objAddr = addr;
    header.size = size;
    header.checksum = entryChecksum(header, old_data.data());

    const Addr entry_addr =
        pool_.logRegion() + logHeaderBytes + pool_.txLogBytes_;
    const std::size_t entry_bytes =
        alignUp8(sizeof(header) + size);
    if (logHeaderBytes + pool_.txLogBytes_ + entry_bytes >
        pool_.logRegionSize()) {
        fatal("Transaction: undo log region overflow");
    }

    pool_.writeBytes(entry_addr, &header, sizeof(header), thread_);
    pool_.writeBytes(entry_addr + sizeof(header), old_data.data(), size,
                     thread_);
    pool_.flush(entry_addr, sizeof(header) + size, FlushKind::Clwb,
                thread_);

    pool_.txLogBytes_ += entry_bytes;
    const std::uint64_t log_bytes = pool_.txLogBytes_;
    pool_.writeBytes(pool_.logRegion(), &log_bytes, sizeof(log_bytes),
                     thread_);
    pool_.flush(pool_.logRegion(), sizeof(log_bytes), FlushKind::Clwb,
                thread_);

    // The redundant-logging rule consumes this event: it carries the
    // logged data object's address (Section 5.2).
    pool_.runtime().txLog(addr, static_cast<std::uint32_t>(size), thread_);

    const AddrRange range = AddrRange::fromSize(addr, size);
    pool_.txRanges_.push_back(range);
    myRanges_.push_back(range);
    return true;
}

void
Transaction::addRangeNoSnapshot(Addr addr, std::size_t size)
{
    if (!open_)
        panic("Transaction::addRangeNoSnapshot: transaction not open");
    if (size == 0)
        return;
    const AddrRange range = AddrRange::fromSize(addr, size);
    pool_.txRanges_.push_back(range);
    myRanges_.push_back(range);
}

Addr
Transaction::alloc(std::size_t size)
{
    if (!open_)
        panic("Transaction::alloc: transaction not open");
    std::size_t block = size;
    const Addr addr = pool_.allocNoFence(size, &block);
    // Register the whole zero-initialized block (not just the requested
    // size): the commit barrier must flush every line the allocation
    // dirtied.
    addRangeNoSnapshot(addr, block);
    return addr;
}

void
Transaction::commit()
{
    if (!open_)
        panic("Transaction::commit: transaction not open");
    open_ = false;
    --pool_.txDepth_;
    if (!outermost_)
        return; // inner commit: durability rides the outermost barrier

    // Flush every modified range at cache-line granularity, emitting
    // each line at most once (libpmemobj dedups snapshotted ranges the
    // same way, which is why a correct transaction contains no
    // redundant flushes).
    std::vector<Addr> lines;
    for (const AddrRange &range : pool_.txRanges_) {
        const Addr first = cacheLineBase(range.start);
        const Addr last = cacheLineBase(range.end - 1);
        for (Addr line = first; line <= last; line += cacheLineSize)
            lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (Addr line : lines)
        pool_.runtime().flush(line, cacheLineSize, FlushKind::Clwb,
                              thread_);

    // Truncate the undo log, then issue the epoch's single barrier.
    const std::uint64_t zero = 0;
    pool_.writeBytes(pool_.logRegion(), &zero, sizeof(zero), thread_);
    pool_.flush(pool_.logRegion(), sizeof(zero), FlushKind::Clwb, thread_);
    pool_.fence(thread_);
    pool_.runtime().epochEnd(thread_);

    pool_.txRanges_.clear();
    pool_.txLogBytes_ = 0;
}

void
Transaction::abort()
{
    if (!open_)
        panic("Transaction::abort: transaction not open");
    open_ = false;
    --pool_.txDepth_;
    if (!outermost_) {
        // PMDK aborts the whole outer transaction when an inner one
        // aborts; we model the common case where the caller unwinds to
        // the outermost level, which performs the rollback.
        return;
    }

    // Walk the undo log (newest first) restoring old bytes.
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> entries;
    std::size_t off = 0;
    while (off < pool_.txLogBytes_) {
        const Addr entry_addr = pool_.logRegion() + logHeaderBytes + off;
        TxLogEntryHeader header;
        pool_.readBytes(entry_addr, &header, sizeof(header));
        std::vector<std::uint8_t> old_data(header.size);
        pool_.readBytes(entry_addr + sizeof(header), old_data.data(),
                        header.size);
        entries.emplace_back(header.objAddr, std::move(old_data));
        off += alignUp8(sizeof(header) + header.size);
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        pool_.writeBytes(it->first, it->second.data(), it->second.size(),
                         thread_);
        pool_.flush(it->first, it->second.size(), FlushKind::Clwb,
                    thread_);
    }

    const std::uint64_t zero = 0;
    pool_.writeBytes(pool_.logRegion(), &zero, sizeof(zero), thread_);
    pool_.flush(pool_.logRegion(), sizeof(zero), FlushKind::Clwb, thread_);
    pool_.fence(thread_);
    pool_.runtime().epochEnd(thread_);

    pool_.txRanges_.clear();
    pool_.txLogBytes_ = 0;
}

std::vector<TxRecovery::RecoveredEntry>
TxRecovery::rollback(const PmemPool &pool, std::vector<std::uint8_t> &image)
{
    return rollbackImage(pool.logRegion_, pool.logRegionSize_, image);
}

TxRecovery::TxLogRegion
TxRecovery::logRegionOf(const PmemPool &pool)
{
    return {pool.logRegion_, pool.logRegionSize_};
}

std::vector<TxRecovery::RecoveredEntry>
TxRecovery::recoverPool(PmemPool &pool)
{
    std::vector<RecoveredEntry> recovered;
    const Addr log_base = pool.logRegion_;
    const std::size_t region_size = pool.logRegionSize_;

    std::uint64_t log_bytes = pool.load<std::uint64_t>(log_base);
    if (log_bytes > region_size - logHeaderBytes)
        log_bytes = 0; // corrupt length word: nothing to roll back
    if (log_bytes == 0)
        return recovered;

    // Restore intact entries in log order (rollbackImage semantics),
    // flushing each restored range; one fence drains them together.
    std::size_t off = 0;
    bool restored_any = false;
    while (off + sizeof(TxLogEntryHeader) <= log_bytes) {
        const Addr entry_addr = log_base + logHeaderBytes + off;
        const auto header = pool.load<TxLogEntryHeader>(entry_addr);
        if (header.size == 0 ||
            entry_addr + sizeof(header) + header.size >
                log_base + region_size) {
            break;
        }
        std::vector<std::uint8_t> old_data(header.size);
        pool.readBytes(entry_addr + sizeof(header), old_data.data(),
                       header.size);
        const bool ok =
            entryChecksum(header, old_data.data()) == header.checksum;
        if (ok) {
            pool.writeBytes(header.objAddr, old_data.data(), header.size);
            pool.flush(header.objAddr, header.size);
            restored_any = true;
        }
        recovered.push_back({header.objAddr, header.size, ok});
        off += alignUp8(sizeof(header) + header.size);
    }
    if (restored_any)
        pool.fence();

    // Truncate the log only after the restores are durable, so a crash
    // anywhere inside recovery leaves either a valid log or a fully
    // rolled-back image.
    const std::uint64_t zero = 0;
    pool.writeBytes(log_base, &zero, sizeof(zero));
    pool.persist(log_base, sizeof(zero));
    return recovered;
}

std::vector<TxRecovery::RecoveredEntry>
TxRecovery::rollbackImage(Addr log_base, std::size_t log_region_size,
                          std::vector<std::uint8_t> &image)
{
    std::vector<RecoveredEntry> recovered;
    if (log_base + logHeaderBytes > image.size())
        return recovered;

    std::uint64_t log_bytes = 0;
    std::memcpy(&log_bytes, image.data() + log_base, sizeof(log_bytes));
    if (log_bytes > log_region_size - logHeaderBytes)
        return recovered; // corrupt length word: nothing to roll back

    std::size_t off = 0;
    while (off + sizeof(TxLogEntryHeader) <= log_bytes) {
        const Addr entry_addr = log_base + logHeaderBytes + off;
        TxLogEntryHeader header;
        std::memcpy(&header, image.data() + entry_addr, sizeof(header));
        if (header.size == 0 ||
            entry_addr + sizeof(header) + header.size > image.size()) {
            break;
        }
        const std::uint8_t *old_data =
            image.data() + entry_addr + sizeof(header);
        const bool ok = entryChecksum(header, old_data) == header.checksum;
        if (ok) {
            std::memcpy(image.data() + header.objAddr, old_data,
                        header.size);
        }
        recovered.push_back({header.objAddr, header.size, ok});
        off += alignUp8(sizeof(header) + header.size);
    }
    return recovered;
}

} // namespace pmdb
