#include "pmdk/pool.hh"

#include <cstring>

#include "common/logging.hh"

namespace pmdb
{

namespace
{

/** Size-class bucket for the volatile free lists (power-of-two classes). */
std::size_t
sizeClass(std::size_t size)
{
    std::size_t cls = 0;
    std::size_t cap = 64;
    while (cap < size && cls < 24) {
        cap <<= 1;
        ++cls;
    }
    return cls;
}

std::size_t
sizeClassBytes(std::size_t cls)
{
    return std::size_t(64) << cls;
}

} // namespace

PmemPool::PmemPool(PmRuntime &runtime, std::size_t size,
                   const std::string &name, bool track_persistence)
    : runtime_(runtime), device_(std::make_unique<PmemDevice>(size)),
      name_(name), deviceAttached_(track_persistence), freeLists_(25)
{
    if (size < rootOffset_ + 64 * 1024)
        fatal("PmemPool: pool size too small (min 64KiB past the root)");
    if (deviceAttached_)
        runtime_.attach(device_.get());
    runtime_.registerPmem(name_, 0, static_cast<std::uint32_t>(size));

    // Reserve a transaction undo-log region at the tail of the pool.
    logRegionSize_ = std::min<std::size_t>(size / 8, 1 << 20);
    logRegion_ = size - logRegionSize_;
}

PmemPool::PmemPool(PmRuntime &runtime, std::vector<std::uint8_t> image,
                   const std::string &name, bool track_persistence)
    : runtime_(runtime),
      device_(std::make_unique<PmemDevice>(std::move(image))), name_(name),
      deviceAttached_(track_persistence), freeLists_(25)
{
    const std::size_t size = device_->size();
    if (size < rootOffset_ + 64 * 1024)
        fatal("PmemPool: reopened image too small");
    if (deviceAttached_)
        runtime_.attach(device_.get());
    runtime_.registerPmem(name_, 0, static_cast<std::uint32_t>(size));

    // The log region's location is a function of the pool size, so a
    // reopen lands on the same undo log the crashed run was appending.
    logRegionSize_ = std::min<std::size_t>(size / 8, 1 << 20);
    logRegion_ = size - logRegionSize_;
}

PmemPool::~PmemPool()
{
    if (deviceAttached_)
        runtime_.detach(device_.get());
}

void
PmemPool::recoverHeap()
{
    std::lock_guard<std::mutex> guard(allocMutex_);
    if (heapBase_ == 0) {
        // No root requested yet; mirror allocInternal's default.
        heapBase_ = rootOffset_ + allocAlign_;
    }
    for (auto &list : freeLists_)
        list.clear();
    heapUsed_ = 0;

    // Walk the block sequence from the heap base. A header is valid if
    // its size is an exact size class that keeps the block inside the
    // heap and its state is a known value; the first invalid header
    // marks the frontier of durably completed allocations.
    Addr slot = heapBase_;
    while (slot + allocAlign_ + headerSize_ < logRegion_) {
        const Addr data = slot + allocAlign_;
        const BlockHeader header = load<BlockHeader>(data - headerSize_);
        const bool size_valid =
            header.size >= allocAlign_ &&
            (header.size & (header.size - 1)) == 0 &&
            data + header.size <= logRegion_;
        if (!size_valid || (header.state != 0 && header.state != 1))
            break;
        if (header.state == 0) {
            freeLists_[sizeClass(header.size)].push_back(data);
        } else {
            heapUsed_ += header.size;
        }
        slot = (data + header.size + allocAlign_ - 1) &
               ~Addr(allocAlign_ - 1);
    }
    bump_ = slot;
}

Addr
PmemPool::root(std::size_t size)
{
    if (rootSizeReserved_ == 0) {
        rootSizeReserved_ =
            (size + allocAlign_ - 1) & ~(allocAlign_ - 1);
        heapBase_ = rootOffset_ + rootSizeReserved_;
        bump_ = heapBase_;
    } else if (size > rootSizeReserved_) {
        fatal("PmemPool::root: root object cannot grow");
    }
    return rootOffset_;
}

Addr
PmemPool::alloc(std::size_t size)
{
    return allocInternal(size, true, true, nullptr);
}

Addr
PmemPool::allocNoFence(std::size_t size, std::size_t *block_out)
{
    // Transactional allocation: the data's flushes and the fence both
    // ride the commit barrier (which flushes the registered range), so
    // neither is issued here — issuing them would make the commit's
    // flush of untouched lines redundant.
    return allocInternal(size, false, false, block_out);
}

Addr
PmemPool::allocInternal(std::size_t size, bool fence_after,
                        bool flush_data, std::size_t *block_out)
{
    std::lock_guard<std::mutex> guard(allocMutex_);
    if (heapBase_ == 0) {
        // No root requested; heap starts right after the root slot.
        heapBase_ = rootOffset_ + allocAlign_;
        bump_ = heapBase_;
    }
    if (size == 0)
        size = 1;

    const std::size_t cls = sizeClass(size);
    const std::size_t block = sizeClassBytes(cls);

    // Block layout: one full cache line of slack holding the header in
    // its tail, then the cache-line-aligned user data. Keeping the
    // header line disjoint from the data lines means header flushes
    // and data flushes never alias.
    Addr data = 0;
    if (!freeLists_[cls].empty()) {
        data = freeLists_[cls].back();
        freeLists_[cls].pop_back();
    } else {
        const Addr slot = bump_; // always cache-line aligned
        data = slot + allocAlign_;
        const Addr next =
            (data + block + allocAlign_ - 1) & ~(allocAlign_ - 1);
        if (next >= logRegion_)
            fatal("PmemPool::alloc: out of pool space");
        bump_ = next;
    }

    // Persist the block header, as PMDK's atomic allocator does: the
    // allocation must survive a crash, so the metadata store is flushed
    // and fenced.
    BlockHeader header{block, 1, 0};
    const Addr hdr_addr = data - headerSize_;
    writeBytes(hdr_addr, &header, sizeof(header));
    flush(hdr_addr, sizeof(header));

    // Zero the user data so the freshly allocated object has a defined
    // durable state. Like pmem_memset_persist, the zeroing loop flushes
    // each line as soon as it is written (one short CLF interval per
    // line) rather than dirtying the whole block and flushing at the
    // end — which on large blocks would also be pathological for any
    // interval-based tracker.
    std::vector<std::uint8_t> zeros(std::min<std::size_t>(block,
                                                          cacheLineSize),
                                    0);
    std::size_t lines_since_drain = 0;
    for (std::size_t off = 0; off < block; off += cacheLineSize) {
        const std::size_t chunk =
            std::min<std::size_t>(cacheLineSize, block - off);
        writeBytes(data + off, zeros.data(), chunk);
        if (flush_data) {
            flush(data + off, chunk);
            // Large ranges drain periodically (pmem_memset_persist
            // does the same) so no single fence interval accumulates
            // an unbounded number of CLF intervals.
            if (++lines_since_drain >= 64) {
                fence();
                lines_since_drain = 0;
            }
        }
    }

    // Atomic allocations fence immediately; transactional allocations
    // ride the commit barrier instead (pmemobj_tx_alloc semantics).
    if (fence_after)
        fence();

    heapUsed_ += block;
    if (block_out)
        *block_out = block;
    return data;
}

void
PmemPool::freeObj(Addr addr)
{
    std::lock_guard<std::mutex> guard(allocMutex_);
    const Addr hdr_addr = addr - headerSize_;
    BlockHeader header = load<BlockHeader>(hdr_addr);
    if (header.state != 1)
        panic("PmemPool::freeObj: double free or bad pointer");
    header.state = 0;
    writeBytes(hdr_addr, &header, sizeof(header));
    persist(hdr_addr, sizeof(header));
    heapUsed_ -= header.size;
    freeLists_[sizeClass(header.size)].push_back(addr);
}

void
PmemPool::writeBytes(Addr addr, const void *data, std::size_t size,
                     ThreadId thread)
{
    device_->write(addr, data, size);
    // A compiled program issues machine stores of at most vector width;
    // binary instrumentation sees each of them. Emit one store event
    // per 16-byte chunk so large struct writes produce the same
    // instruction mix Valgrind would observe (Figure 2c).
    constexpr std::size_t maxStoreBytes = 16;
    while (size > maxStoreBytes) {
        runtime_.store(addr, maxStoreBytes, thread);
        addr += maxStoreBytes;
        size -= maxStoreBytes;
    }
    runtime_.store(addr, static_cast<std::uint32_t>(size), thread);
}

void
PmemPool::readBytes(Addr addr, void *out, std::size_t size) const
{
    // Reads are not instrumented as events, but the runtime's read
    // tracker (when installed by the model checker) records the lines
    // a recovery execution depends on.
    runtime_.noteRead(addr, size);
    device_->read(addr, out, size);
}

void
PmemPool::flush(Addr addr, std::size_t size, FlushKind kind,
                ThreadId thread)
{
    if (size == 0)
        return;
    const Addr first = cacheLineBase(addr);
    const Addr last = cacheLineBase(addr + size - 1);
    for (Addr line = first; line <= last; line += cacheLineSize)
        runtime_.flush(line, cacheLineSize, kind, thread);
}

void
PmemPool::fence(ThreadId thread)
{
    runtime_.fence(thread);
}

void
PmemPool::persist(Addr addr, std::size_t size, ThreadId thread)
{
    flush(addr, size, FlushKind::Clwb, thread);
    fence(thread);
}

void
PmemPool::registerVariable(const std::string &name, Addr addr,
                           std::size_t size)
{
    runtime_.registerPmem(name, addr, static_cast<std::uint32_t>(size));
}

} // namespace pmdb
