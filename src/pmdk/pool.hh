/**
 * @file
 * Mini-PMDK: a persistent-memory object pool over the simulated device.
 *
 * Substitutes for Intel's libpmemobj (the paper's PMDK workloads run on
 * it). The pool provides:
 *
 *  - a root object at a fixed offset, like pmemobj_root();
 *  - a persistent heap with a free-list allocator whose metadata
 *    updates are themselves instrumented, flushed and fenced (so the
 *    allocator contributes realistic store/CLF/fence patterns to the
 *    trace, as PMDK's allocator does);
 *  - pmemobj-style persist primitives: flush() emits one CLWB event per
 *    covered cache line, fence() emits SFENCE, persist() = flush+fence.
 *
 * Every write goes through the PmRuntime instrumentation layer, so any
 * attached detector observes the full instruction stream.
 */

#ifndef PMDB_PMDK_POOL_HH
#define PMDB_PMDK_POOL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "pmem/device.hh"
#include "trace/runtime.hh"

namespace pmdb
{

/** Typed offset into a pool; the null value is offset 0. */
template <typename T>
struct Pptr
{
    Addr off = 0;

    Pptr() = default;
    explicit Pptr(Addr o) : off(o) {}

    bool isNull() const { return off == 0; }
    explicit operator bool() const { return off != 0; }

    bool operator==(const Pptr &other) const = default;
};

/**
 * A persistent object pool. Owns the simulated device; the caller owns
 * the runtime (so detectors can be attached before or after pool
 * creation).
 */
class PmemPool
{
  public:
    /**
     * Create a pool of @p size bytes named @p name; the name is used to
     * register the PM region with the debugger (Register_pmem).
     *
     * @param track_persistence attach the device's persistence-domain
     *        model (dirty lines, pending writebacks, crash images) to
     *        the event stream. On for correctness and crash testing;
     *        performance benchmarks turn it off because real PM does
     *        this tracking in hardware at zero software cost, and it
     *        would otherwise inflate the "native" baseline.
     */
    PmemPool(PmRuntime &runtime, std::size_t size,
             const std::string &name = "pool",
             bool track_persistence = true);

    /**
     * Reopen a pool from a crash image: the device starts with
     * @p image as both its volatile and durable content, modelling a
     * real PM file mapped back after a failure. Call root() (with the
     * original root size) and then recoverHeap() before allocating.
     */
    PmemPool(PmRuntime &runtime, std::vector<std::uint8_t> image,
             const std::string &name = "pool",
             bool track_persistence = true);

    ~PmemPool();

    PmemPool(const PmemPool &) = delete;
    PmemPool &operator=(const PmemPool &) = delete;

    PmRuntime &runtime() { return runtime_; }
    PmemDevice &device() { return *device_; }
    const PmemDevice &device() const { return *device_; }

    /** @name Root object. */
    /** @{ */

    /**
     * Return the root object's offset, sizing it to at least @p size on
     * first call (like pmemobj_root).
     */
    Addr root(std::size_t size);

    /** @} */

    /** @name Allocation. */
    /** @{ */

    /**
     * Allocate @p size bytes of zeroed persistent memory. The block
     * header update is persisted (store + CLWB + SFENCE), as PMDK's
     * atomic allocations are.
     */
    Addr alloc(std::size_t size);

    template <typename T>
    Pptr<T>
    allocFor()
    {
        return Pptr<T>(alloc(sizeof(T)));
    }

    /**
     * Allocate for a transaction: the zeroed data is stored but not
     * flushed and no fence is issued — the commit barrier flushes the
     * registered range and guarantees durability (pmemobj_tx_alloc
     * semantics). @p block_out receives the full block size (the
     * size-class rounding), which is what the caller must register.
     */
    Addr allocNoFence(std::size_t size, std::size_t *block_out = nullptr);

    /** Free a block previously returned by alloc(). */
    void freeObj(Addr addr);

    /** Bytes of heap currently handed out. */
    std::size_t heapUsed() const { return heapUsed_; }

    /**
     * Rebuild the volatile allocator state (bump pointer, free lists)
     * from the durable block headers of a reopened pool. Allocation is
     * sequential and every header is persisted before its block is
     * handed out, so only the youngest block can have a torn or absent
     * header — the scan stops at the first invalid one, reclaiming
     * everything behind it. Requires root() to have been called with
     * the original root size (the heap base must match).
     */
    void recoverHeap();

    /** @} */

    /** @name Instrumented data path. */
    /** @{ */

    /** Store @p size bytes (emits a Store event). */
    void writeBytes(Addr addr, const void *data, std::size_t size,
                    ThreadId thread = 0);

    /** Read @p size bytes from the volatile image (not instrumented). */
    void readBytes(Addr addr, void *out, std::size_t size) const;

    template <typename T>
    void
    store(Addr addr, const T &value, ThreadId thread = 0)
    {
        writeBytes(addr, &value, sizeof(T), thread);
    }

    template <typename T>
    T
    load(Addr addr) const
    {
        T value;
        readBytes(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    storeAt(Pptr<T> ptr, const T &value, ThreadId thread = 0)
    {
        store<T>(ptr.off, value, thread);
    }

    template <typename T>
    T
    loadAt(Pptr<T> ptr) const
    {
        return load<T>(ptr.off);
    }

    /** Emit one CLWB event per cache line covering [addr, addr+size). */
    void flush(Addr addr, std::size_t size,
               FlushKind kind = FlushKind::Clwb, ThreadId thread = 0);

    /** Emit an SFENCE event. */
    void fence(ThreadId thread = 0);

    /** pmemobj_persist: flush the range, then fence. */
    void persist(Addr addr, std::size_t size, ThreadId thread = 0);

    /** @} */

    /** Register a named variable with the debugger (order specs). */
    void registerVariable(const std::string &name, Addr addr,
                          std::size_t size);

  private:
    friend class Transaction;
    friend class TxRecovery;

    Addr allocInternal(std::size_t size, bool fence_after,
                       bool flush_data, std::size_t *block_out = nullptr);

    struct BlockHeader
    {
        std::uint64_t size;
        std::uint32_t state; // 1 = allocated, 0 = free
        std::uint32_t pad;
    };

    static constexpr Addr rootOffset_ = 4096;
    static constexpr std::size_t headerSize_ = sizeof(BlockHeader);
    static constexpr std::size_t allocAlign_ = 64;

    /** Offset of the per-pool transaction undo-log region. */
    Addr logRegion() const { return logRegion_; }
    std::size_t logRegionSize() const { return logRegionSize_; }

    PmRuntime &runtime_;
    std::unique_ptr<PmemDevice> device_;
    std::string name_;
    bool deviceAttached_ = true;
    Addr rootSizeReserved_ = 0;
    Addr heapBase_ = 0;
    Addr bump_ = 0;
    std::size_t heapUsed_ = 0;
    Addr logRegion_ = 0;
    std::size_t logRegionSize_ = 0;
    /** Volatile free lists: size-class bucket -> block offsets. */
    std::vector<std::vector<Addr>> freeLists_;
    /** Serializes allocator metadata for multi-threaded workloads. */
    std::mutex allocMutex_;

    /** @name Transaction state (managed by the Transaction facade). */
    /** @{ */
    int txDepth_ = 0;
    /** Volatile mirror of the log append offset. */
    std::size_t txLogBytes_ = 0;
    /** Ranges to flush at the outermost commit. */
    std::vector<AddrRange> txRanges_;
    ThreadId txThread_ = 0;
    /** @} */
};

} // namespace pmdb

#endif // PMDB_PMDK_POOL_HH
