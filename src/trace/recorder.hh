/**
 * @file
 * Trace recording and replay.
 *
 * TraceRecorder captures the instrumented stream into memory so that
 * the characterization tool (Section 3) can analyse it offline and so
 * that XFDetector's failure-point replay (Section 7.2/7.3) can re-feed
 * the pre-failure prefix. NulgrindSink is the paper's "Nulgrind"
 * baseline: identical instrumentation, zero bookkeeping.
 */

#ifndef PMDB_TRACE_RECORDER_HH
#define PMDB_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "trace/sink.hh"

namespace pmdb
{

/** Records every event (and keeps a copy of the name table pointer). */
class TraceRecorder : public TraceSink
{
  public:
    void attached(const NameTable &names) override { names_ = &names; }

    void handle(const Event &event) override { events_.push_back(event); }

    /** Batched dispatch appends the whole run in one go. */
    void
    handleBatch(const Event *events, std::size_t count) override
    {
        events_.insert(events_.end(), events, events + count);
    }

    const std::vector<Event> &events() const { return events_; }

    const NameTable *names() const { return names_; }

    void clear() { events_.clear(); }

  private:
    std::vector<Event> events_;
    const NameTable *names_ = nullptr;
};

/**
 * Replays a recorded trace into one or more sinks. Used by offline
 * analyses; the events keep their original sequence numbers.
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(const std::vector<Event> &events)
        : events_(events)
    {
    }

    /** Feed the whole trace (or the first @p limit events) to @p sink. */
    void
    replay(TraceSink &sink,
           std::size_t limit = ~static_cast<std::size_t>(0)) const
    {
        const std::size_t n = std::min(limit, events_.size());
        for (std::size_t i = 0; i < n; ++i)
            sink.handle(events_[i]);
    }

  private:
    const std::vector<Event> &events_;
};

/**
 * Instrumentation-only sink: counts events but performs no bookkeeping.
 * Measuring a workload with only this sink attached reproduces the
 * paper's Nulgrind column in Figure 8.
 */
class NulgrindSink : public TraceSink
{
  public:
    void
    handle(const Event &event) override
    {
        ++counts_[static_cast<std::size_t>(event.kind)];
    }

    std::uint64_t
    count(EventKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (auto c : counts_)
            sum += c;
        return sum;
    }

  private:
    std::uint64_t counts_[16] = {};
};

} // namespace pmdb

#endif // PMDB_TRACE_RECORDER_HH
