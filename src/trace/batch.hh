/**
 * @file
 * Fixed-capacity accumulation buffer for instrumented events.
 *
 * Batching is how the runtime amortizes per-event dispatch cost: one
 * virtual handleBatch() call per sink per batch instead of one virtual
 * handle() per sink per event, one DBI cost-model charge per batch, and
 * (in thread-safe mode) one sink-dispatch critical section per batch.
 * The batch never reorders events: sinks observe exactly the per-event
 * stream, just in chunks.
 */

#ifndef PMDB_TRACE_BATCH_HH
#define PMDB_TRACE_BATCH_HH

#include <cstddef>
#include <vector>

#include "trace/event.hh"

namespace pmdb
{

/** Capacity used by PmRuntime unless overridden (setBatchCapacity). */
constexpr std::size_t defaultBatchCapacity = 256;

/** A fixed-capacity, in-order buffer of pending events. */
class EventBatch
{
  public:
    explicit EventBatch(std::size_t capacity = defaultBatchCapacity)
    {
        setCapacity(capacity);
    }

    /** Resize the buffer; only legal while the batch is empty. */
    void
    setCapacity(std::size_t capacity)
    {
        events_.resize(capacity ? capacity : 1);
        size_ = 0;
    }

    std::size_t capacity() const { return events_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= events_.size(); }

    /** Append one event; the caller guarantees the batch is not full. */
    void push(const Event &event) { events_[size_++] = event; }

    const Event *data() const { return events_.data(); }

    void clear() { size_ = 0; }

  private:
    std::vector<Event> events_;
    std::size_t size_ = 0;
};

} // namespace pmdb

#endif // PMDB_TRACE_BATCH_HH
