#include "trace/read_set.hh"

namespace pmdb
{

void
ReadSet::note(Addr addr, std::size_t size)
{
    if (size == 0)
        return;
    const std::uint64_t first = cacheLineIndex(addr);
    const std::uint64_t last = cacheLineIndex(addr + size - 1);
    for (std::uint64_t line = first; line <= last; ++line)
        lines_.insert(line);
}

bool
ReadSet::merge(const ReadSet &other)
{
    bool grew = false;
    for (std::uint64_t line : other.lines_)
        grew |= lines_.insert(line).second;
    return grew;
}

} // namespace pmdb
