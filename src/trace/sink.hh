/**
 * @file
 * Consumer interface for the instrumented event stream.
 */

#ifndef PMDB_TRACE_SINK_HH
#define PMDB_TRACE_SINK_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hh"

namespace pmdb
{

/**
 * Interned string table for event names (registered PM variables).
 * Owned by the runtime; sinks receive a reference when attached.
 */
class NameTable
{
  public:
    /** Intern @p name, returning its stable id. */
    std::uint32_t intern(const std::string &name);

    /** Look up a previously interned name. */
    const std::string &name(std::uint32_t id) const;

    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_;
    /** name → id index so intern() is O(1) amortized, not O(n). */
    std::unordered_map<std::string, std::uint32_t> index_;
};

/**
 * A consumer of instrumented events. Detectors, the PM device model and
 * trace recorders all implement this interface, so bug-detection
 * capability and performance measurements come from the same stream.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once when the sink is attached to a runtime. */
    virtual void attached(const NameTable &names) { (void)names; }

    /** Deliver one instrumented event. */
    virtual void handle(const Event &event) = 0;

    /**
     * Deliver a batch of events in stream order. The runtime uses this
     * for batched/async dispatch; the default implementation preserves
     * per-event semantics, so sinks only override it when they can
     * process a run of events cheaper than event-by-event.
     */
    virtual void
    handleBatch(const Event *events, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            handle(events[i]);
    }

    /**
     * True for tools that rely on dynamic binary instrumentation
     * (Valgrind in the paper: Nulgrind, Pmemcheck, PMDebugger,
     * XFDetector). While any such sink is attached, the runtime
     * charges the calibrated binary-translation overhead to every
     * event and every application operation — the cost that dominates
     * the paper's Figure 8 slowdowns. Annotation-based tools (PMTest)
     * return false: they pay no translation tax, which is exactly why
     * PMTest is the fastest tool in the comparison.
     */
    virtual bool isDbiBased() const { return false; }

    /**
     * True for sinks whose state is coupled synchronously to the
     * application between events — the PM device model (the program
     * writes its image directly, so dirty/pending tracking must advance
     * in lockstep), PMTest (annotation checkers run mid-stream) and
     * XFDetector (cross-failure verifiers read the device crash image
     * during handling). The runtime delivers to such sinks per event
     * even in Batched/Async mode; only batching-tolerant sinks are fed
     * through handleBatch().
     */
    virtual bool requiresSynchronousDelivery() const { return false; }
};

} // namespace pmdb

#endif // PMDB_TRACE_SINK_HH
