#include "trace/trace_file.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace pmdb
{

namespace
{

// Version 2: EventKind gained Load (renumbering the packed kind byte)
// and PackedEvent gained the shared-pool global clock field. Version-1
// files are rejected by magic rather than silently misdecoded.
constexpr char traceMagic[8] = {'P', 'M', 'D', 'B',
                                'T', 'R', 'C', '2'};

constexpr char streamMagic[8] = {'P', 'M', 'D', 'B',
                                 'T', 'R', 'S', '2'};

/** Stream record tags. */
constexpr char nameTag = 'N';
constexpr char eventTag = 'E';

/** Fixed-width on-disk event layout. */
struct PackedEvent
{
    std::uint8_t kind;
    std::uint8_t flushKind;
    std::int32_t thread;
    std::int32_t strand;
    std::uint32_t nameId;
    std::uint64_t addr;
    std::uint32_t size;
    std::uint64_t seq;
    std::uint64_t global;
};

struct FileCloser
{
    void
    operator()(std::FILE *file) const
    {
        if (file)
            std::fclose(file);
    }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

template <typename T>
bool
writeValue(std::FILE *file, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, file) == 1;
}

template <typename T>
bool
readValue(std::FILE *file, T *value)
{
    return std::fread(value, sizeof(T), 1, file) == 1;
}

PackedEvent
pack(const Event &event)
{
    PackedEvent packed;
    packed.kind = static_cast<std::uint8_t>(event.kind);
    packed.flushKind = static_cast<std::uint8_t>(event.flushKind);
    packed.thread = event.thread;
    packed.strand = event.strand;
    packed.nameId = event.nameId;
    packed.addr = event.addr;
    packed.size = event.size;
    packed.seq = event.seq;
    packed.global = event.global;
    return packed;
}

Event
unpack(const PackedEvent &packed)
{
    Event event;
    event.kind = static_cast<EventKind>(packed.kind);
    event.flushKind = static_cast<FlushKind>(packed.flushKind);
    event.thread = packed.thread;
    event.strand = packed.strand;
    event.nameId = packed.nameId;
    event.addr = packed.addr;
    event.size = packed.size;
    event.seq = packed.seq;
    event.global = packed.global;
    return event;
}

} // namespace

bool
writeTraceFile(const std::string &path, const std::vector<Event> &events,
               const NameTable &names, std::string *error)
{
    FileHandle file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return fail(error, "cannot open " + path + " for writing");

    if (std::fwrite(traceMagic, sizeof(traceMagic), 1, file.get()) != 1)
        return fail(error, "write failed: magic");

    const auto name_count = static_cast<std::uint32_t>(names.size());
    if (!writeValue(file.get(), name_count))
        return fail(error, "write failed: name count");
    for (std::uint32_t i = 0; i < name_count; ++i) {
        const std::string &name = names.name(i);
        const auto len = static_cast<std::uint32_t>(name.size());
        if (!writeValue(file.get(), len) ||
            (len && std::fwrite(name.data(), 1, len, file.get()) != len)) {
            return fail(error, "write failed: name table");
        }
    }

    const auto event_count = static_cast<std::uint64_t>(events.size());
    if (!writeValue(file.get(), event_count))
        return fail(error, "write failed: event count");
    for (const Event &event : events) {
        const PackedEvent packed = pack(event);
        if (!writeValue(file.get(), packed))
            return fail(error, "write failed: event record");
    }
    return true;
}

bool
readTraceFile(const std::string &path, LoadedTrace *out,
              std::string *error)
{
    FileHandle file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return fail(error, "cannot open " + path);

    char magic[sizeof(traceMagic)];
    if (std::fread(magic, sizeof(magic), 1, file.get()) != 1 ||
        std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        return fail(error, path + " is not a PMDB trace (bad magic)");
    }

    std::uint32_t name_count = 0;
    if (!readValue(file.get(), &name_count))
        return fail(error, "truncated trace: name count");
    for (std::uint32_t i = 0; i < name_count; ++i) {
        std::uint32_t len = 0;
        if (!readValue(file.get(), &len) || len > (1u << 20))
            return fail(error, "truncated trace: name length");
        std::string name(len, '\0');
        if (len && std::fread(name.data(), 1, len, file.get()) != len)
            return fail(error, "truncated trace: name bytes");
        out->names.intern(name);
    }

    std::uint64_t event_count = 0;
    if (!readValue(file.get(), &event_count))
        return fail(error, "truncated trace: event count");
    out->events.clear();
    out->events.reserve(event_count);
    for (std::uint64_t i = 0; i < event_count; ++i) {
        PackedEvent packed;
        if (!readValue(file.get(), &packed))
            return fail(error, "truncated trace: event records");
        out->events.push_back(unpack(packed));
    }
    return true;
}

TraceStreamWriter::~TraceStreamWriter()
{
    close();
}

bool
TraceStreamWriter::open(const std::string &path, std::string *error)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return fail(error, "cannot open " + path + " for writing");
    events_ = 0;
    names_ = 0;
    if (std::fwrite(streamMagic, sizeof(streamMagic), 1, file_) != 1) {
        close();
        return fail(error, "write failed: stream magic");
    }
    return true;
}

bool
TraceStreamWriter::appendName(std::uint32_t id, const std::string &name)
{
    if (!file_ || id != names_)
        return false;
    const auto len = static_cast<std::uint32_t>(name.size());
    if (std::fputc(nameTag, file_) == EOF || !writeValue(file_, id) ||
        !writeValue(file_, len) ||
        (len && std::fwrite(name.data(), 1, len, file_) != len)) {
        return false;
    }
    ++names_;
    return true;
}

bool
TraceStreamWriter::syncNames(const NameTable &names)
{
    while (names_ < names.size()) {
        if (!appendName(names_, names.name(names_)))
            return false;
    }
    return true;
}

bool
TraceStreamWriter::append(const Event &event)
{
    if (!file_)
        return false;
    const PackedEvent packed = pack(event);
    if (std::fputc(eventTag, file_) == EOF ||
        !writeValue(file_, packed)) {
        return false;
    }
    ++events_;
    return true;
}

bool
TraceStreamWriter::flush()
{
    return file_ && std::fflush(file_) == 0;
}

bool
TraceStreamWriter::close()
{
    if (!file_)
        return true;
    const bool ok = std::fflush(file_) == 0;
    std::fclose(file_);
    file_ = nullptr;
    return ok;
}

bool
readTraceStream(const std::string &path, LoadedTrace *out,
                bool *truncated, std::string *error)
{
    if (truncated)
        *truncated = false;
    FileHandle file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return fail(error, "cannot open " + path);

    char magic[sizeof(streamMagic)];
    if (std::fread(magic, sizeof(magic), 1, file.get()) != 1 ||
        std::memcmp(magic, streamMagic, sizeof(magic)) != 0) {
        return fail(error,
                    path + " is not a PMDB stream trace (bad magic)");
    }

    out->events.clear();
    const auto tail = [&] {
        if (truncated)
            *truncated = true;
        return true;
    };
    for (;;) {
        const int tag = std::fgetc(file.get());
        if (tag == EOF)
            return true; // clean end: file stops at a record boundary
        if (tag == nameTag) {
            std::uint32_t id = 0;
            std::uint32_t len = 0;
            if (!readValue(file.get(), &id) ||
                !readValue(file.get(), &len)) {
                return tail();
            }
            if (len > (1u << 20))
                return fail(error, "corrupt stream: name length");
            std::string name(len, '\0');
            if (len &&
                std::fread(name.data(), 1, len, file.get()) != len) {
                return tail();
            }
            if (id != out->names.size())
                return fail(error, "corrupt stream: name id order");
            out->names.intern(name);
        } else if (tag == eventTag) {
            PackedEvent packed;
            if (!readValue(file.get(), &packed))
                return tail();
            out->events.push_back(unpack(packed));
        } else {
            return fail(error, "corrupt stream: unknown record tag");
        }
    }
}

bool
readAnyTrace(const std::string &path, LoadedTrace *out, bool *truncated,
             std::string *error)
{
    if (truncated)
        *truncated = false;
    char magic[sizeof(traceMagic)] = {};
    {
        FileHandle file(std::fopen(path.c_str(), "rb"));
        if (!file)
            return fail(error, "cannot open " + path);
        if (std::fread(magic, sizeof(magic), 1, file.get()) != 1)
            return fail(error, path + " is not a PMDB trace (too short)");
    }
    if (std::memcmp(magic, traceMagic, sizeof(magic)) == 0)
        return readTraceFile(path, out, error);
    if (std::memcmp(magic, streamMagic, sizeof(magic)) == 0)
        return readTraceStream(path, out, truncated, error);
    return fail(error, path + " is not a PMDB trace (bad magic)");
}

} // namespace pmdb
