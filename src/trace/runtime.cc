#include "trace/runtime.hh"

#include <algorithm>
#include <condition_variable>
#include <thread>

#include "common/logging.hh"
#include "telemetry/metrics.hh"

namespace pmdb
{

namespace
{

/**
 * Dispatch-path metrics, resolved once. Only per-batch work touches
 * the histogram (never per event), and it carries the whole story:
 * client.batch_fill's sum is the events dispatched and its count the
 * batches flushed. The events counter backs the per-event dispatch
 * mode only, where each event already pays a full clean-call charge.
 */
struct DispatchMetrics
{
    telemetry::Counter &events =
        telemetry::Registry::global().counter("client.events_dispatched");
    telemetry::Histogram &batchFill =
        telemetry::Registry::global().histogram("client.batch_fill");

    static DispatchMetrics &
    get()
    {
        static DispatchMetrics instance;
        return instance;
    }
};

/**
 * Thread-local batch-fill accumulator. Synchronous sinks flush at
 * every ordering boundary, so batches are small (~a fence interval)
 * and deliver() runs hot; even one atomic histogram record per batch
 * shows up against the 2% budget. Plain local adds here, spilled into
 * the shared histogram every 64 batches and at thread exit, keep the
 * per-batch cost to a TLS access plus three stores.
 */
struct BatchFillLocal
{
    telemetry::HistogramSnapshot delta;

    void
    note(std::uint64_t fill)
    {
        ++delta.buckets[telemetry::histogramBucketOf(fill)];
        ++delta.count;
        delta.sum += fill;
        if ((delta.count & 63) == 0)
            spill();
    }

    void
    spill()
    {
        if (delta.count == 0)
            return;
        DispatchMetrics::get().batchFill.recordBulk(delta);
        delta = telemetry::HistogramSnapshot{};
    }

    ~BatchFillLocal() { spill(); }
};

BatchFillLocal &
batchFillLocal()
{
    thread_local BatchFillLocal local;
    return local;
}

} // namespace

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Store:        return "store";
      case EventKind::Load:         return "load";
      case EventKind::Flush:        return "flush";
      case EventKind::Fence:        return "fence";
      case EventKind::EpochBegin:   return "epoch-begin";
      case EventKind::EpochEnd:     return "epoch-end";
      case EventKind::StrandBegin:  return "strand-begin";
      case EventKind::StrandEnd:    return "strand-end";
      case EventKind::JoinStrand:   return "join-strand";
      case EventKind::TxLog:        return "tx-log";
      case EventKind::RegisterPmem: return "register-pmem";
      case EventKind::ProgramEnd:   return "program-end";
    }
    return "unknown";
}

const char *
toString(FlushKind kind)
{
    switch (kind) {
      case FlushKind::Clwb:       return "clwb";
      case FlushKind::Clflush:    return "clflush";
      case FlushKind::Clflushopt: return "clflushopt";
    }
    return "unknown";
}

const char *
toString(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::PerEvent: return "per-event";
      case DispatchMode::Batched:  return "batched";
      case DispatchMode::Async:    return "async";
    }
    return "unknown";
}

std::uint32_t
NameTable::intern(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.push_back(name);
    index_.emplace(name, id);
    return id;
}

const std::string &
NameTable::name(std::uint32_t id) const
{
    if (id >= names_.size())
        panic("NameTable::name: id out of range");
    return names_[id];
}

/**
 * Bounded single-producer/single-consumer pipe of event batches plus
 * the consumer thread that drains them into the sinks. The producer is
 * the dispatching thread (already serialized by the runtime mutex in
 * thread-safe mode); publish() blocks while all slots are in flight,
 * which bounds the detection lag behind the application.
 */
struct PmRuntime::AsyncPipe
{
    explicit AsyncPipe(PmRuntime &runtime)
        : owner(runtime), consumer([this] { run(); })
    {
    }

    ~AsyncPipe()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            stop = true;
        }
        cvWork.notify_all();
        consumer.join();
    }

    /** Producer side: copy the batch into a free slot (may block). */
    void
    publish(const EventBatch &batch)
    {
        std::unique_lock<std::mutex> lock(m);
        cvSpace.wait(lock, [&] { return count < slots; });
        pending[head].assign(batch.data(), batch.data() + batch.size());
        head = (head + 1) % slots;
        ++count;
        cvWork.notify_one();
    }

    /** Block until every published batch has been delivered. */
    void
    awaitEmpty()
    {
        std::unique_lock<std::mutex> lock(m);
        cvSpace.wait(lock, [&] { return count == 0 && !busy; });
    }

    void
    run()
    {
        std::vector<Event> work;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(m);
                cvWork.wait(lock, [&] { return count > 0 || stop; });
                if (count == 0) {
                    if (stop)
                        return;
                    continue;
                }
                work.swap(pending[tail]);
                tail = (tail + 1) % slots;
                --count;
                busy = true;
            }
            cvSpace.notify_all();
            owner.deliver(work.data(), work.size());
            work.clear();
            {
                std::lock_guard<std::mutex> lock(m);
                busy = false;
            }
            cvSpace.notify_all();
        }
    }

    static constexpr std::size_t slots = 8;

    PmRuntime &owner;
    std::array<std::vector<Event>, slots> pending;
    std::size_t head = 0;
    std::size_t tail = 0;
    std::size_t count = 0;
    /** True while the consumer is delivering a popped batch. */
    bool busy = false;
    bool stop = false;
    std::mutex m;
    std::condition_variable cvWork;
    std::condition_variable cvSpace;
    /** Last member: starts consuming as soon as the pipe exists. */
    std::thread consumer;
};

PmRuntime::PmRuntime()
{
    for (auto &strand : strandByThread_)
        strand.store(noStrand, std::memory_order_relaxed);
}

PmRuntime::~PmRuntime()
{
    // Deliver anything still buffered so no mode loses events; the
    // pipe destructor joins the consumer thread.
    drain();
    pipe_.reset();
}

void
PmRuntime::setDispatchMode(DispatchMode mode)
{
    if (mode == mode_)
        return;
    drain();
    pipe_.reset();
    mode_ = mode;
    if (mode_ == DispatchMode::Async)
        pipe_ = std::make_unique<AsyncPipe>(*this);
}

void
PmRuntime::setBatchCapacity(std::size_t capacity)
{
    drain();
    batchCapacity_ = capacity ? capacity : 1;
    batch_.setCapacity(batchCapacity_);
    for (auto &slot : threadBatches_) {
        if (slot)
            slot->setCapacity(batchCapacity_);
    }
}

void
PmRuntime::drain()
{
    if (mode_ == DispatchMode::PerEvent)
        return;
    // Producers must be quiescent (threads joined) at drain points;
    // flush order across threads is arbitrary, like any cross-thread
    // interleaving.
    for (auto &slot : threadBatches_) {
        if (slot)
            flushThreadBatch(*slot);
    }
    if (threadSafe_) {
        std::lock_guard<std::mutex> lock(mutex_);
        flushLocked();
    } else {
        flushLocked();
    }
    if (pipe_)
        pipe_->awaitEmpty();
    // Publish this thread's accumulated batch-fill samples so registry
    // totals are exact at every drain barrier (other threads spill at
    // thread exit).
    batchFillLocal().spill();
}

void
PmRuntime::attach(TraceSink *sink)
{
    if (!sink)
        panic("PmRuntime::attach: null sink");
    drain();
    sinks_.push_back(sink);
    if (sink->isDbiBased())
        ++dbiSinks_;
    rebuildPartition();
    sink->attached(names_);
}

void
PmRuntime::detach(TraceSink *sink)
{
    drain();
    const auto it = std::find(sinks_.begin(), sinks_.end(), sink);
    if (it == sinks_.end())
        return;
    if (sink->isDbiBased())
        --dbiSinks_;
    sinks_.erase(it);
    rebuildPartition();
}

void
PmRuntime::rebuildPartition()
{
    batchSinks_.clear();
    syncSinks_.clear();
    dbiBatchSinks_ = 0;
    dbiSyncSinks_ = 0;
    for (TraceSink *sink : sinks_) {
        if (sink->requiresSynchronousDelivery()) {
            syncSinks_.push_back(sink);
            if (sink->isDbiBased())
                ++dbiSyncSinks_;
        } else {
            batchSinks_.push_back(sink);
            if (sink->isDbiBased())
                ++dbiBatchSinks_;
        }
    }
}

void
PmRuntime::dbiSpin(std::uint32_t units)
{
    // Deterministic busy work standing in for binary-translated guest
    // instructions; the volatile accumulator keeps the optimizer from
    // deleting it.
    static thread_local volatile std::uint64_t accumulator = 0x9e37;
    std::uint64_t x = accumulator;
    for (std::uint32_t i = 0; i < units; ++i)
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    accumulator = x;
}

void
PmRuntime::appOp(std::uint32_t weight)
{
    if (dbiSinks_ > 0)
        dbiSpin(weight * dbiOpCost_);
}

bool
PmRuntime::isBoundary(EventKind kind)
{
    switch (kind) {
      case EventKind::Store:
      case EventKind::Load:
      case EventKind::Flush:
      case EventKind::TxLog:
        return false;
      default:
        return true;
    }
}

void
PmRuntime::deliver(const Event *events, std::size_t count)
{
    if (count == 0)
        return;
    // Buffered-instrumentation cost model: batched dispatch pays one
    // clean-call charge per drained buffer (the per-event append tax
    // was already charged at enqueue). In Async mode this runs on the
    // consumer thread, off the application's critical path.
    if (dbiBatchSinks_ > 0)
        dbiSpin(dbiEventCost_);
    if (telemetry::enabled())
        batchFillLocal().note(count);
    for (TraceSink *sink : batchSinks_)
        sink->handleBatch(events, count);
}

void
PmRuntime::flushLocked()
{
    if (batch_.empty())
        return;
    if (pipe_) {
        pipe_->publish(batch_);
        batch_.clear();
        return;
    }
    deliver(batch_.data(), batch_.size());
    batch_.clear();
}

void
PmRuntime::enqueueLocked(Event &event)
{
    if (threadSafe_) {
        // Threads on the per-thread batch path bump seq_ atomically, so
        // every writer must (mixing plain and atomic access races).
        std::atomic_ref<SeqNum> seq(seq_);
        event.seq = seq.fetch_add(1, std::memory_order_relaxed) + 1;
    } else {
        event.seq = ++seq_;
    }
    if (mode_ == DispatchMode::PerEvent) {
        // Unbuffered instrumentation: every event is a full clean call
        // out of translated code.
        if (dbiSinks_ > 0)
            dbiSpin(dbiEventCost_);
        if (telemetry::enabled())
            DispatchMetrics::get().events.add(1);
        for (TraceSink *sink : sinks_)
            sink->handle(event);
        return;
    }
    // Sinks coupled synchronously to the application (the device
    // model, annotation checkers, cross-failure verifiers) always see
    // events inline, in dispatch order — deferring them would let
    // program-side state run ahead of their view of the stream.
    if (!syncSinks_.empty()) {
        if (dbiSyncSinks_ > 0)
            dbiSpin(dbiEventCost_);
        for (TraceSink *sink : syncSinks_)
            sink->handle(event);
    }
    // Buffered instrumentation: the translated code only pays a short
    // inline buffer-append stub per event.
    if (dbiBatchSinks_ > 0)
        dbiSpin(dbiAppendCost_);
    batch_.push(event);
    // Ordering boundaries flush so sink state is coherent with the
    // application at every synchronization point; a full batch flushes
    // to cap buffering between boundaries. Async mode skips boundary
    // flushes: its sinks are only coherent at drain() barriers anyway,
    // and full batches keep the pipe's per-publish cost amortized.
    if (batch_.full() || (!pipe_ && isBoundary(event.kind)))
        flushLocked();
}

void
PmRuntime::dispatchBatchedThreadSafe(Event &event)
{
    EventBatch *batch = threadBatchFor(event.thread);
    if (!batch) {
        // Overflow ThreadIds (beyond the lock-free array) share batch_
        // under the mutex — correct, just not the fast path.
        std::lock_guard<std::mutex> lock(mutex_);
        enqueueLocked(event);
        return;
    }
    std::atomic_ref<SeqNum> seq(seq_);
    event.seq = seq.fetch_add(1, std::memory_order_relaxed) + 1;
    // Synchronously-coupled sinks still get per-event delivery under
    // the mutex; only the batching-tolerant sinks ride the lock-free
    // per-thread batch. None of the perf-path configurations attach a
    // sync sink, so the fast path stays lock-free where it matters.
    if (!syncSinks_.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dbiSyncSinks_ > 0)
            dbiSpin(dbiEventCost_);
        for (TraceSink *sink : syncSinks_)
            sink->handle(event);
    }
    if (dbiBatchSinks_ > 0)
        dbiSpin(dbiAppendCost_);
    batch->push(event);
    if (batch->full() || (!pipe_ && isBoundary(event.kind)))
        flushThreadBatch(*batch);
}

void
PmRuntime::dispatch(Event event)
{
    // Consume the pending shared-pool ticket (if any) whether or not
    // sinks are attached, so a stamp armed for this operation can never
    // leak onto a later unrelated event.
    if (nextGlobal_ != 0) {
        event.global = nextGlobal_;
        nextGlobal_ = 0;
    }
    // Native (no-sink) runs must not serialize the application: bump
    // the sequence atomically and return. Only instrumented runs pay
    // the serialization, exactly like guest threads under Valgrind.
    if (sinks_.empty()) {
        std::atomic_ref<SeqNum> seq(seq_);
        seq.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (!threadSafe_) {
        enqueueLocked(event);
        return;
    }
    if (mode_ == DispatchMode::PerEvent) {
        std::lock_guard<std::mutex> lock(mutex_);
        enqueueLocked(event);
        return;
    }
    // Thread-safe batched/async: append to the calling thread's own
    // batch without a lock; the sink mutex is taken once per flushed
    // batch instead of once per event.
    dispatchBatchedThreadSafe(event);
}

EventBatch *
PmRuntime::threadBatchFor(ThreadId thread)
{
    if (thread < 0 || thread >= maxTrackedThreads)
        return nullptr;
    auto &slot = threadBatches_[static_cast<std::size_t>(thread)];
    if (!slot)
        slot = std::make_unique<EventBatch>(batchCapacity_);
    return slot.get();
}

void
PmRuntime::flushThreadBatch(EventBatch &batch)
{
    if (batch.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (pipe_) {
        pipe_->publish(batch);
        batch.clear();
        return;
    }
    deliver(batch.data(), batch.size());
    batch.clear();
}

StrandId
PmRuntime::strandOf(ThreadId thread) const
{
    if (thread >= 0 && thread < maxTrackedThreads)
        return strandByThread_[static_cast<std::size_t>(thread)].load(
            std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(strandMutex_);
    const auto it = strandOverflow_.find(thread);
    return it == strandOverflow_.end() ? noStrand : it->second;
}

void
PmRuntime::setStrand(ThreadId thread, StrandId strand)
{
    if (thread >= 0 && thread < maxTrackedThreads) {
        strandByThread_[static_cast<std::size_t>(thread)].store(
            strand, std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(strandMutex_);
    strandOverflow_[thread] = strand;
}

void
PmRuntime::siteEnter(const std::string &name, ThreadId thread)
{
    std::uint32_t id;
    {
        // Worker threads open sites concurrently; interning mutates the
        // shared NameTable and must be serialized.
        std::lock_guard<std::mutex> lock(siteMutex_);
        id = names_.intern(name);
    }
    if (thread >= 0 && thread < maxTrackedThreads) {
        auto &slot = siteStacks_[static_cast<std::size_t>(thread)];
        if (!slot)
            slot = std::make_unique<std::vector<std::uint32_t>>();
        slot->push_back(id);
        return;
    }
    std::lock_guard<std::mutex> lock(siteMutex_);
    siteOverflow_[thread].push_back(id);
}

void
PmRuntime::siteLeave(ThreadId thread)
{
    if (thread >= 0 && thread < maxTrackedThreads) {
        auto &slot = siteStacks_[static_cast<std::size_t>(thread)];
        if (slot && !slot->empty())
            slot->pop_back();
        return;
    }
    std::lock_guard<std::mutex> lock(siteMutex_);
    auto it = siteOverflow_.find(thread);
    if (it != siteOverflow_.end() && !it->second.empty())
        it->second.pop_back();
}

std::uint32_t
PmRuntime::siteOf(ThreadId thread) const
{
    if (thread >= 0 && thread < maxTrackedThreads) {
        const auto &slot = siteStacks_[static_cast<std::size_t>(thread)];
        return (slot && !slot->empty()) ? slot->back() : noName;
    }
    std::lock_guard<std::mutex> lock(siteMutex_);
    const auto it = siteOverflow_.find(thread);
    return (it != siteOverflow_.end() && !it->second.empty())
               ? it->second.back()
               : noName;
}

void
PmRuntime::store(Addr addr, std::uint32_t size, ThreadId thread)
{
    Event e;
    e.kind = EventKind::Store;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::load(Addr addr, std::uint32_t size, ThreadId thread)
{
    noteRead(addr, size);
    Event e;
    e.kind = EventKind::Load;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::flush(Addr addr, std::uint32_t size, FlushKind kind,
                 ThreadId thread)
{
    Event e;
    e.kind = EventKind::Flush;
    e.flushKind = kind;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::fence(ThreadId thread)
{
    Event e;
    e.kind = EventKind::Fence;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    dispatch(e);
}

void
PmRuntime::epochBegin(ThreadId thread)
{
    Event e;
    e.kind = EventKind::EpochBegin;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    dispatch(e);
}

void
PmRuntime::epochEnd(ThreadId thread)
{
    Event e;
    e.kind = EventKind::EpochEnd;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    dispatch(e);
}

void
PmRuntime::strandBegin(StrandId strand, ThreadId thread)
{
    setStrand(thread, strand);
    Event e;
    e.kind = EventKind::StrandBegin;
    e.thread = thread;
    e.strand = strand;
    e.nameId = siteOf(thread);
    dispatch(e);
}

void
PmRuntime::strandEnd(StrandId strand, ThreadId thread)
{
    Event e;
    e.kind = EventKind::StrandEnd;
    e.thread = thread;
    e.strand = strand;
    e.nameId = siteOf(thread);
    dispatch(e);
    setStrand(thread, noStrand);
}

void
PmRuntime::joinStrand(ThreadId thread)
{
    Event e;
    e.kind = EventKind::JoinStrand;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    dispatch(e);
}

void
PmRuntime::txLog(Addr addr, std::uint32_t size, ThreadId thread)
{
    Event e;
    e.kind = EventKind::TxLog;
    e.thread = thread;
    e.strand = strandOf(thread);
    e.nameId = siteOf(thread);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::registerPmem(const std::string &name, Addr addr,
                        std::uint32_t size)
{
    Event e;
    e.kind = EventKind::RegisterPmem;
    e.nameId = names_.intern(name);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::programEnd()
{
    Event e;
    e.kind = EventKind::ProgramEnd;
    dispatch(e);
    // The blocking barrier of the async pipeline: finalize rules read
    // detector state, so everything must be delivered before callers
    // inspect the sinks.
    drain();
}

} // namespace pmdb
