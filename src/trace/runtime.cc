#include "trace/runtime.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace pmdb
{

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Store:        return "store";
      case EventKind::Flush:        return "flush";
      case EventKind::Fence:        return "fence";
      case EventKind::EpochBegin:   return "epoch-begin";
      case EventKind::EpochEnd:     return "epoch-end";
      case EventKind::StrandBegin:  return "strand-begin";
      case EventKind::StrandEnd:    return "strand-end";
      case EventKind::JoinStrand:   return "join-strand";
      case EventKind::TxLog:        return "tx-log";
      case EventKind::RegisterPmem: return "register-pmem";
      case EventKind::ProgramEnd:   return "program-end";
    }
    return "unknown";
}

const char *
toString(FlushKind kind)
{
    switch (kind) {
      case FlushKind::Clwb:       return "clwb";
      case FlushKind::Clflush:    return "clflush";
      case FlushKind::Clflushopt: return "clflushopt";
    }
    return "unknown";
}

std::uint32_t
NameTable::intern(const std::string &name)
{
    for (std::uint32_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return i;
    }
    names_.push_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

const std::string &
NameTable::name(std::uint32_t id) const
{
    if (id >= names_.size())
        panic("NameTable::name: id out of range");
    return names_[id];
}

void
PmRuntime::attach(TraceSink *sink)
{
    if (!sink)
        panic("PmRuntime::attach: null sink");
    sinks_.push_back(sink);
    if (sink->isDbiBased())
        ++dbiSinks_;
    sink->attached(names_);
}

void
PmRuntime::detach(TraceSink *sink)
{
    const auto it = std::find(sinks_.begin(), sinks_.end(), sink);
    if (it == sinks_.end())
        return;
    if (sink->isDbiBased())
        --dbiSinks_;
    sinks_.erase(it);
}

void
PmRuntime::dbiSpin(std::uint32_t units)
{
    // Deterministic busy work standing in for binary-translated guest
    // instructions; the volatile accumulator keeps the optimizer from
    // deleting it.
    static thread_local volatile std::uint64_t accumulator = 0x9e37;
    std::uint64_t x = accumulator;
    for (std::uint32_t i = 0; i < units; ++i)
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    accumulator = x;
}

void
PmRuntime::appOp(std::uint32_t weight)
{
    if (dbiSinks_ > 0)
        dbiSpin(weight * dbiOpCost_);
}

void
PmRuntime::dispatch(Event event)
{
    // Native (no-sink) runs must not serialize the application: bump
    // the sequence atomically and return. Only instrumented runs pay
    // the serialization, exactly like guest threads under Valgrind.
    if (sinks_.empty()) {
        std::atomic_ref<SeqNum> seq(seq_);
        seq.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (threadSafe_) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dbiSinks_ > 0)
            dbiSpin(dbiEventCost_);
        event.seq = ++seq_;
        for (TraceSink *sink : sinks_)
            sink->handle(event);
    } else {
        if (dbiSinks_ > 0)
            dbiSpin(dbiEventCost_);
        event.seq = ++seq_;
        for (TraceSink *sink : sinks_)
            sink->handle(event);
    }
}

void
PmRuntime::store(Addr addr, std::uint32_t size, ThreadId thread)
{
    Event e;
    e.kind = EventKind::Store;
    e.thread = thread;
    e.strand = currentStrand_;
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::flush(Addr addr, std::uint32_t size, FlushKind kind,
                 ThreadId thread)
{
    Event e;
    e.kind = EventKind::Flush;
    e.flushKind = kind;
    e.thread = thread;
    e.strand = currentStrand_;
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::fence(ThreadId thread)
{
    Event e;
    e.kind = EventKind::Fence;
    e.thread = thread;
    e.strand = currentStrand_;
    dispatch(e);
}

void
PmRuntime::epochBegin(ThreadId thread)
{
    Event e;
    e.kind = EventKind::EpochBegin;
    e.thread = thread;
    e.strand = currentStrand_;
    dispatch(e);
}

void
PmRuntime::epochEnd(ThreadId thread)
{
    Event e;
    e.kind = EventKind::EpochEnd;
    e.thread = thread;
    e.strand = currentStrand_;
    dispatch(e);
}

void
PmRuntime::strandBegin(StrandId strand, ThreadId thread)
{
    currentStrand_ = strand;
    Event e;
    e.kind = EventKind::StrandBegin;
    e.thread = thread;
    e.strand = strand;
    dispatch(e);
}

void
PmRuntime::strandEnd(StrandId strand, ThreadId thread)
{
    Event e;
    e.kind = EventKind::StrandEnd;
    e.thread = thread;
    e.strand = strand;
    dispatch(e);
    currentStrand_ = noStrand;
}

void
PmRuntime::joinStrand(ThreadId thread)
{
    Event e;
    e.kind = EventKind::JoinStrand;
    e.thread = thread;
    e.strand = currentStrand_;
    dispatch(e);
}

void
PmRuntime::txLog(Addr addr, std::uint32_t size, ThreadId thread)
{
    Event e;
    e.kind = EventKind::TxLog;
    e.thread = thread;
    e.strand = currentStrand_;
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::registerPmem(const std::string &name, Addr addr,
                        std::uint32_t size)
{
    Event e;
    e.kind = EventKind::RegisterPmem;
    e.nameId = names_.intern(name);
    e.addr = addr;
    e.size = size;
    dispatch(e);
}

void
PmRuntime::programEnd()
{
    Event e;
    e.kind = EventKind::ProgramEnd;
    dispatch(e);
}

} // namespace pmdb
