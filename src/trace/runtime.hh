/**
 * @file
 * PmRuntime: the instrumentation runtime every PM program in this
 * repository runs on.
 *
 * This substitutes for the paper's Valgrind-based binary
 * instrumentation: workloads call store()/flush()/fence()/... and the
 * runtime assigns sequence numbers and dispatches the events to all
 * attached sinks. Running with zero sinks measures native execution;
 * attaching only NulgrindSink measures pure instrumentation overhead
 * (the paper's "Nulgrind" baseline); attaching a detector measures that
 * detector's debugging overhead.
 *
 * Dispatch runs in one of three modes (setDispatchMode):
 *
 *  - PerEvent (default): every event is delivered to every sink
 *    immediately — the seed behavior, required by sinks whose state is
 *    queried synchronously between events (PMTest annotations,
 *    XFDetector cross-failure verifiers reading the device image).
 *  - Batched: events accumulate in a fixed-capacity EventBatch and are
 *    flushed to sinks when the batch fills, at every ordering boundary
 *    (fence / epoch / strand / join / register / program-end), and at
 *    attach()/detach()/drain(). One virtual handleBatch() per sink per
 *    batch replaces one virtual handle() per sink per event, and the
 *    DBI cost model charges its per-event clean call once per batch
 *    (buffered instrumentation: events pay only a short inline
 *    buffer-append stub). In thread-safe mode each
 *    thread accumulates into its own lock-free batch and the sink mutex
 *    is taken once per batch flush instead of once per event (each
 *    ThreadId must be driven by at most one OS thread, which is how
 *    every workload in this repository uses the API).
 *  - Async: batches are published to a fixed-size ring and drained by a
 *    consumer thread, overlapping detection with workload execution.
 *    Async batches flush only at capacity and at drain() — sink state
 *    is coherent only at drain points anyway, so per-boundary publishes
 *    would buy nothing but condition-variable traffic. drain() (called
 *    by programEnd()) is the blocking barrier.
 *
 * Because batches are flushed in stream order and each sink receives
 * events in exactly per-event order, detector results for any
 * single-threaded event stream are bit-identical across the three
 * modes (tests/test_dispatch.cc asserts this). Multi-threaded streams
 * keep per-thread event order but deliver cross-thread interleavings
 * at batch rather than event granularity.
 */

#ifndef PMDB_TRACE_RUNTIME_HH
#define PMDB_TRACE_RUNTIME_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/batch.hh"
#include "trace/event.hh"
#include "trace/read_set.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** How PmRuntime delivers events to its sinks. */
enum class DispatchMode
{
    /** Deliver each event immediately (seed semantics). */
    PerEvent,
    /** Accumulate into an EventBatch; flush at capacity/boundaries. */
    Batched,
    /** Batched, with delivery on a consumer thread (SPSC ring). */
    Async,
};

const char *toString(DispatchMode mode);

/**
 * Dispatches instrumented PM operations to attached sinks.
 *
 * Sinks are non-owning observers; the caller keeps them alive for the
 * lifetime of the runtime. By default the runtime is single-threaded;
 * setThreadSafe(true) serializes dispatch with a mutex, mirroring how
 * Valgrind serializes guest threads (used by the Fig 10 scalability
 * experiment).
 */
class PmRuntime
{
  public:
    PmRuntime();
    ~PmRuntime();

    PmRuntime(const PmRuntime &) = delete;
    PmRuntime &operator=(const PmRuntime &) = delete;

    /** Attach an event consumer (drains pending events first). */
    void attach(TraceSink *sink);

    /** Detach a previously attached consumer (drains first). */
    void detach(TraceSink *sink);

    /** Serialize event dispatch across threads. */
    void setThreadSafe(bool on) { threadSafe_ = on; }

    /** @name Dispatch pipeline configuration. */
    /** @{ */

    /** Select the dispatch mode; switching drains pending events. */
    void setDispatchMode(DispatchMode mode);

    /** Convenience: toggle Batched mode (off returns to PerEvent). */
    void setBatched(bool on)
    {
        setDispatchMode(on ? DispatchMode::Batched
                           : DispatchMode::PerEvent);
    }

    /**
     * Toggle the async pipeline: batches drain on a consumer thread so
     * detection overlaps workload execution. Turning async off falls
     * back to synchronous Batched mode.
     */
    void setAsync(bool on)
    {
        setDispatchMode(on ? DispatchMode::Async : DispatchMode::Batched);
    }

    /** Batch capacity for Batched/Async modes (drains, then resizes). */
    void setBatchCapacity(std::size_t capacity);

    DispatchMode dispatchMode() const { return mode_; }

    /**
     * Flush the pending batch and, in Async mode, block until the
     * consumer thread has delivered everything published so far. After
     * drain() returns, every sink has observed every event issued
     * before the call. No-op in PerEvent mode.
     */
    void drain();

    /** @} */

    /**
     * Mark one application-level operation (a request, an insert).
     * When a DBI-based sink is attached, this charges the operation's
     * share of binary-translation overhead — modelling that Valgrind
     * slows down *all* guest instructions, not just PM accesses.
     * Without a DBI sink this is (nearly) free.
     */
    void appOp(std::uint32_t weight = 1);

    /**
     * Calibrate the DBI cost model (spin units; see appOp).
     *
     * @p per_event is the clean-call charge: the register save/restore
     * and callout that unbuffered instrumentation pays on *every*
     * event, and that buffered (Batched/Async) dispatch pays once per
     * drained buffer. @p per_append is the short inline buffer-append
     * stub that buffered instrumentation pays per event instead — the
     * few translated instructions that spill an event record into the
     * trace buffer (cf. trace-buffer designs such as drcachesim's).
     */
    void
    setDbiCosts(std::uint32_t per_event, std::uint32_t per_app_op,
                std::uint32_t per_append = 4)
    {
        dbiEventCost_ = per_event;
        dbiOpCost_ = per_app_op;
        dbiAppendCost_ = per_append;
    }

    /** @name Instrumented operations (Section 2.1 / Table 2). */
    /** @{ */

    /** A store of @p size bytes at @p addr in persistent memory. */
    void store(Addr addr, std::uint32_t size, ThreadId thread = 0);

    /**
     * An instrumented load of [addr, addr+size). Only multi-writer
     * shared-pool programs emit Load events (per-session detection is
     * load-free, matching the paper); the cross-session engine needs
     * them to see when one writer observes another's data. Also feeds
     * the read-set tracker when one is installed.
     */
    void load(Addr addr, std::uint32_t size, ThreadId thread = 0);

    /** A cache-line writeback covering [addr, addr+size). */
    void flush(Addr addr, std::uint32_t size,
               FlushKind kind = FlushKind::Clwb, ThreadId thread = 0);

    /** An SFENCE: completes pending writebacks, orders persists. */
    void fence(ThreadId thread = 0);

    /** Epoch section begin (TX_BEGIN). */
    void epochBegin(ThreadId thread = 0);

    /** Epoch section end (TX_END); emits the section's closing barrier. */
    void epochEnd(ThreadId thread = 0);

    /** Strand section begin; subsequent events of @p thread carry @p strand. */
    void strandBegin(StrandId strand, ThreadId thread = 0);

    /** Strand section end. */
    void strandEnd(StrandId strand, ThreadId thread = 0);

    /** Explicit ordering join across strands. */
    void joinStrand(ThreadId thread = 0);

    /** Undo-log append for the object at [addr, addr+size). */
    void txLog(Addr addr, std::uint32_t size, ThreadId thread = 0);

    /**
     * Register a persistent region / named variable for debugging
     * (Register_pmem of Table 2). Named variables let the order-spec
     * configuration refer to program symbols.
     */
    void registerPmem(const std::string &name, Addr addr,
                      std::uint32_t size);

    /** Signal end of program; drains, and sinks run finalize rules. */
    void programEnd();

    /** @} */

    /** @name Program-site annotation (fix advisories). */
    /** @{ */

    /**
     * Enter a named program site for @p thread. While a site is open,
     * every event the thread issues carries the site's interned name in
     * Event::nameId (RegisterPmem keeps the variable name; ProgramEnd
     * stays anonymous). Sites are the advisory engine's join key: a
     * stable "file.cc:function.step" label that survives seed, thread
     * count, and mix variation, so verified per-trace patches can be
     * clustered back to the program location that needs the fix.
     * Nesting is allowed; the innermost open site wins. Detectors
     * ignore nameId on non-RegisterPmem events and fingerprints never
     * include it, so annotating a workload changes no report.
     */
    void siteEnter(const std::string &name, ThreadId thread = 0);

    /** Leave the innermost open site of @p thread. */
    void siteLeave(ThreadId thread = 0);

    /** Interned name of the innermost open site; noName if none. */
    std::uint32_t siteOf(ThreadId thread) const;

    /** @} */

    /** @name Read-set annotation (crash-state model checking). */
    /** @{ */

    /**
     * Install (or remove, with nullptr) a read-set tracker. While one
     * is installed, instrumented reads (PmemPool::readBytes) record
     * the cache lines they touch — the model checker uses the recovery
     * execution's read set to prune crash candidates that cannot
     * change recovery's behavior. Reads are not events: they carry no
     * sequence number and are never dispatched to sinks (matching the
     * paper's load-free instrumentation).
     */
    void setReadTracker(ReadSet *tracker) { readTracker_ = tracker; }

    /** Record a read of [addr, addr+size); no-op without a tracker. */
    void
    noteRead(Addr addr, std::size_t size)
    {
        if (readTracker_)
            readTracker_->note(addr, size);
    }

    /** @} */

    /** @name Shared-pool global clock (cross-session detection). */
    /** @{ */

    /**
     * Arm a one-shot global-clock ticket: the *next* dispatched event
     * carries @p ticket in Event::global, after which the stamp resets
     * to zero. SharedPmemPool draws the ticket from the pool's global
     * fence clock *before* mutating shared memory and arms it here, so
     * the cross-writer order of tickets can never invert the order of
     * the memory operations they describe. Shared-pool programs drive
     * the runtime from one thread, so the stamp needs no
     * synchronization (it pairs with the operation issued on the same
     * call stack).
     */
    void setNextGlobal(SeqNum ticket) { nextGlobal_ = ticket; }

    /** @} */

    /** Total events dispatched so far. */
    SeqNum eventCount() const { return seq_; }

    const NameTable &names() const { return names_; }

    /** Open strand of @p thread; noStrand outside strand sections. */
    StrandId strandOf(ThreadId thread) const;

  private:
    /** Bounded SPSC pipe + consumer thread for Async mode. */
    struct AsyncPipe;

    /** Threads whose strand state lives in the lock-free array. */
    static constexpr ThreadId maxTrackedThreads = 256;

    void dispatch(Event event);
    void enqueueLocked(Event &event);
    void dispatchBatchedThreadSafe(Event &event);
    void flushLocked();
    /** Deliver a per-thread batch: sink mutex once for the whole batch. */
    void flushThreadBatch(EventBatch &batch);
    /** Lock-free per-thread batch; null for overflow ThreadIds. */
    EventBatch *threadBatchFor(ThreadId thread);
    void deliver(const Event *events, std::size_t count);
    /** Recompute batchSinks_/syncSinks_ after attach/detach. */
    void rebuildPartition();
    void setStrand(ThreadId thread, StrandId strand);
    static bool isBoundary(EventKind kind);
    static void dbiSpin(std::uint32_t units);

    std::vector<TraceSink *> sinks_;
    /**
     * sinks_ partitioned by delivery policy: batchSinks_ receive
     * handleBatch() in Batched/Async mode; syncSinks_
     * (requiresSynchronousDelivery) always receive handle() inline at
     * dispatch, interleaved with the application.
     */
    std::vector<TraceSink *> batchSinks_;
    std::vector<TraceSink *> syncSinks_;
    /** Number of attached DBI-based sinks (total / per partition). */
    int dbiSinks_ = 0;
    int dbiBatchSinks_ = 0;
    int dbiSyncSinks_ = 0;
    std::uint32_t dbiEventCost_ = 25;
    std::uint32_t dbiOpCost_ = 400;
    /** Inline buffer-append charge per event in Batched/Async modes. */
    std::uint32_t dbiAppendCost_ = 4;
    NameTable names_;
    SeqNum seq_ = 0;

    DispatchMode mode_ = DispatchMode::PerEvent;
    EventBatch batch_;
    std::size_t batchCapacity_ = defaultBatchCapacity;
    /**
     * Per-thread accumulation batches for thread-safe Batched/Async
     * dispatch, created lazily by the owning thread. Only the thread
     * driving that ThreadId touches its slot while events flow; drain()
     * walks all slots and assumes producers are quiescent (workloads
     * join their threads before programEnd()).
     */
    std::array<std::unique_ptr<EventBatch>, maxTrackedThreads>
        threadBatches_;
    std::unique_ptr<AsyncPipe> pipe_;

    /**
     * Strand id of the currently open strand per thread; noStrand if
     * none. Small ThreadIds use a lock-free atomic array so the hot
     * event-building path never takes a lock; larger ids fall back to a
     * mutex-guarded map.
     */
    std::array<std::atomic<StrandId>, maxTrackedThreads> strandByThread_;
    std::unordered_map<ThreadId, StrandId> strandOverflow_;
    mutable std::mutex strandMutex_;

    /**
     * Per-thread open-site stacks (innermost last), created lazily by
     * the owning thread. Like threadBatches_, only the OS thread
     * driving a ThreadId touches its slot, so reads on the event path
     * are lock-free; overflow ThreadIds share a mutex-guarded map.
     * NameTable interning is serialized by siteMutex_ because worker
     * threads open sites concurrently.
     */
    std::array<std::unique_ptr<std::vector<std::uint32_t>>,
               maxTrackedThreads>
        siteStacks_;
    std::unordered_map<ThreadId, std::vector<std::uint32_t>>
        siteOverflow_;
    mutable std::mutex siteMutex_;

    bool threadSafe_ = false;
    std::mutex mutex_;

    /** Non-owning read-set tracker; null outside model-check runs. */
    ReadSet *readTracker_ = nullptr;

    /** One-shot shared-pool ticket consumed by the next dispatch. */
    SeqNum nextGlobal_ = 0;
};

/**
 * RAII guard for a program site: opens @p name on construction, closes
 * it on destruction. The conventional label format is
 * "file.cc:function.step" (e.g. "hashmap_atomic.cc:insert.fill_entry").
 */
class SiteScope
{
  public:
    SiteScope(PmRuntime &runtime, const std::string &name,
              ThreadId thread = 0)
        : runtime_(runtime), thread_(thread)
    {
        runtime_.siteEnter(name, thread_);
    }

    ~SiteScope() { runtime_.siteLeave(thread_); }

    SiteScope(const SiteScope &) = delete;
    SiteScope &operator=(const SiteScope &) = delete;

  private:
    PmRuntime &runtime_;
    ThreadId thread_;
};

} // namespace pmdb

#endif // PMDB_TRACE_RUNTIME_HH
