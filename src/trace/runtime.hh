/**
 * @file
 * PmRuntime: the instrumentation runtime every PM program in this
 * repository runs on.
 *
 * This substitutes for the paper's Valgrind-based binary
 * instrumentation: workloads call store()/flush()/fence()/... and the
 * runtime assigns sequence numbers and dispatches the events to all
 * attached sinks. Running with zero sinks measures native execution;
 * attaching only NulgrindSink measures pure instrumentation overhead
 * (the paper's "Nulgrind" baseline); attaching a detector measures that
 * detector's debugging overhead.
 */

#ifndef PMDB_TRACE_RUNTIME_HH
#define PMDB_TRACE_RUNTIME_HH

#include <mutex>
#include <string>
#include <vector>

#include "trace/event.hh"
#include "trace/sink.hh"

namespace pmdb
{

/**
 * Dispatches instrumented PM operations to attached sinks.
 *
 * Sinks are non-owning observers; the caller keeps them alive for the
 * lifetime of the runtime. By default the runtime is single-threaded;
 * setThreadSafe(true) serializes dispatch with a mutex, mirroring how
 * Valgrind serializes guest threads (used by the Fig 10 scalability
 * experiment).
 */
class PmRuntime
{
  public:
    PmRuntime() = default;

    PmRuntime(const PmRuntime &) = delete;
    PmRuntime &operator=(const PmRuntime &) = delete;

    /** Attach an event consumer. The runtime does not take ownership. */
    void attach(TraceSink *sink);

    /** Detach a previously attached consumer. */
    void detach(TraceSink *sink);

    /** Serialize event dispatch across threads. */
    void setThreadSafe(bool on) { threadSafe_ = on; }

    /**
     * Mark one application-level operation (a request, an insert).
     * When a DBI-based sink is attached, this charges the operation's
     * share of binary-translation overhead — modelling that Valgrind
     * slows down *all* guest instructions, not just PM accesses.
     * Without a DBI sink this is (nearly) free.
     */
    void appOp(std::uint32_t weight = 1);

    /** Calibrate the DBI cost model (spin units; see appOp). */
    void
    setDbiCosts(std::uint32_t per_event, std::uint32_t per_app_op)
    {
        dbiEventCost_ = per_event;
        dbiOpCost_ = per_app_op;
    }

    /** @name Instrumented operations (Section 2.1 / Table 2). */
    /** @{ */

    /** A store of @p size bytes at @p addr in persistent memory. */
    void store(Addr addr, std::uint32_t size, ThreadId thread = 0);

    /** A cache-line writeback covering [addr, addr+size). */
    void flush(Addr addr, std::uint32_t size,
               FlushKind kind = FlushKind::Clwb, ThreadId thread = 0);

    /** An SFENCE: completes pending writebacks, orders persists. */
    void fence(ThreadId thread = 0);

    /** Epoch section begin (TX_BEGIN). */
    void epochBegin(ThreadId thread = 0);

    /** Epoch section end (TX_END); emits the section's closing barrier. */
    void epochEnd(ThreadId thread = 0);

    /** Strand section begin; subsequent events carry @p strand. */
    void strandBegin(StrandId strand, ThreadId thread = 0);

    /** Strand section end. */
    void strandEnd(StrandId strand, ThreadId thread = 0);

    /** Explicit ordering join across strands. */
    void joinStrand(ThreadId thread = 0);

    /** Undo-log append for the object at [addr, addr+size). */
    void txLog(Addr addr, std::uint32_t size, ThreadId thread = 0);

    /**
     * Register a persistent region / named variable for debugging
     * (Register_pmem of Table 2). Named variables let the order-spec
     * configuration refer to program symbols.
     */
    void registerPmem(const std::string &name, Addr addr,
                      std::uint32_t size);

    /** Signal end of program; sinks run their finalize rules. */
    void programEnd();

    /** @} */

    /** Total events dispatched so far. */
    SeqNum eventCount() const { return seq_; }

    const NameTable &names() const { return names_; }

  private:
    void dispatch(Event event);
    static void dbiSpin(std::uint32_t units);

    std::vector<TraceSink *> sinks_;
    /** Number of attached DBI-based sinks. */
    int dbiSinks_ = 0;
    std::uint32_t dbiEventCost_ = 25;
    std::uint32_t dbiOpCost_ = 400;
    NameTable names_;
    SeqNum seq_ = 0;
    /** Strand id of the currently open strand per thread; noStrand if none. */
    StrandId currentStrand_ = noStrand;
    bool threadSafe_ = false;
    std::mutex mutex_;
};

} // namespace pmdb

#endif // PMDB_TRACE_RUNTIME_HH
