/**
 * @file
 * On-disk trace format.
 *
 * Recorded event streams can be saved and re-loaded, enabling the
 * record-once / analyze-many workflow that post-mortem tools (Intel's
 * Persistence Inspector) use, offline characterization, and detector
 * regression testing against frozen traces.
 *
 * Format (little-endian, version 1):
 *   magic   "PMDBTRC1"                      (8 bytes)
 *   u32     name count                       + each: u32 len, bytes
 *   u64     event count                      + each: packed EventRecord
 */

#ifndef PMDB_TRACE_TRACE_FILE_HH
#define PMDB_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/sink.hh"

namespace pmdb
{

/** A loaded trace: events plus the interned names they reference. */
struct LoadedTrace
{
    std::vector<Event> events;
    NameTable names;
};

/**
 * Write @p events (and @p names, which their nameIds index) to
 * @p path. Returns false and fills @p error on I/O failure.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<Event> &events,
                    const NameTable &names,
                    std::string *error = nullptr);

/**
 * Load a trace written by writeTraceFile. Returns false and fills
 * @p error on I/O failure or format mismatch.
 */
bool readTraceFile(const std::string &path, LoadedTrace *out,
                   std::string *error = nullptr);

} // namespace pmdb

#endif // PMDB_TRACE_TRACE_FILE_HH
