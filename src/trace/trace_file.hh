/**
 * @file
 * On-disk trace format.
 *
 * Recorded event streams can be saved and re-loaded, enabling the
 * record-once / analyze-many workflow that post-mortem tools (Intel's
 * Persistence Inspector) use, offline characterization, and detector
 * regression testing against frozen traces.
 *
 * Format (little-endian, version 1):
 *   magic   "PMDBTRC1"                      (8 bytes)
 *   u32     name count                       + each: u32 len, bytes
 *   u64     event count                      + each: packed EventRecord
 *
 * The batch format above needs the full event vector up front. The
 * *stream* format ("PMDBTRS1") is an append-only sibling for writers
 * that cannot know the final event count — live spill-to-disk under
 * backpressure, long-running recorders: a magic header followed by
 * tagged records ('N' interned name, 'E' packed event), flushable at
 * any record boundary. Because a crash can truncate the file
 * mid-record, readTraceStream recovers the longest valid prefix
 * instead of failing.
 */

#ifndef PMDB_TRACE_TRACE_FILE_HH
#define PMDB_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/sink.hh"

namespace pmdb
{

/** A loaded trace: events plus the interned names they reference. */
struct LoadedTrace
{
    std::vector<Event> events;
    NameTable names;
};

/**
 * Write @p events (and @p names, which their nameIds index) to
 * @p path. Returns false and fills @p error on I/O failure.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<Event> &events,
                    const NameTable &names,
                    std::string *error = nullptr);

/**
 * Load a trace written by writeTraceFile. Returns false and fills
 * @p error on I/O failure or format mismatch.
 */
bool readTraceFile(const std::string &path, LoadedTrace *out,
                   std::string *error = nullptr);

/**
 * Incremental writer for the stream trace format: events (and the
 * names they reference) are appended one record at a time, and flush()
 * makes everything written so far durable enough for a concurrent or
 * post-crash reader to recover it. This is the degradation path of the
 * detection service (a slow consumer spills the live stream to disk)
 * and works standalone for record-as-you-go tracing.
 */
class TraceStreamWriter
{
  public:
    TraceStreamWriter() = default;
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    /** Create/truncate @p path and write the stream header. */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return file_ != nullptr; }

    /**
     * Append one interned-name record. Ids must arrive in intern order
     * (0, 1, 2, ...) so readers can rebuild the NameTable; appending
     * out of order fails.
     */
    bool appendName(std::uint32_t id, const std::string &name);

    /**
     * Append every name of @p names not yet written. Call before
     * appending an event whose nameId is new.
     */
    bool syncNames(const NameTable &names);

    /** Append one event record. */
    bool append(const Event &event);

    /** Flush buffered records to the OS (record-boundary durability). */
    bool flush();

    /** Flush and close; open() may be called again afterwards. */
    bool close();

    std::uint64_t eventsWritten() const { return events_; }
    std::uint32_t namesWritten() const { return names_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t events_ = 0;
    std::uint32_t names_ = 0;
};

/**
 * Load a stream trace written by TraceStreamWriter. A truncated tail —
 * the writer crashed or was killed mid-record — is not an error: the
 * longest valid record prefix is returned and @p truncated (when
 * non-null) is set. Returns false only for I/O failures, a bad header,
 * or structural corruption (an unknown record tag).
 */
bool readTraceStream(const std::string &path, LoadedTrace *out,
                     bool *truncated = nullptr,
                     std::string *error = nullptr);

/**
 * Load a trace of either format, dispatching on the file's magic:
 * "PMDBTRC1" (batch) or "PMDBTRS1" (stream). For stream traces a
 * truncated tail sets @p truncated exactly as readTraceStream does;
 * batch traces never set it (a short batch file is a hard error, since
 * its header promised a count it cannot deliver).
 */
bool readAnyTrace(const std::string &path, LoadedTrace *out,
                  bool *truncated = nullptr,
                  std::string *error = nullptr);

} // namespace pmdb

#endif // PMDB_TRACE_TRACE_FILE_HH
