/**
 * @file
 * Cache-line read-set annotation for recovery executions.
 *
 * The crash-state model checker (src/modelcheck) prunes candidate
 * crash images Jaaru-style: a candidate whose durable content differs
 * from an already-executed representative only on lines the
 * representative's recovery never *read* must drive recovery through
 * the identical decision sequence, so it needs no execution of its
 * own. That argument needs the read set of each recovery execution at
 * cache-line granularity — PmRuntime::setReadTracker() installs one of
 * these and every instrumented pool read (PmemPool::readBytes) lands
 * here.
 *
 * The set deliberately over-approximates: every read is recorded, even
 * of bytes the program itself wrote earlier in the same execution.
 * Over-approximation only shrinks the pruned class, never its
 * soundness.
 */

#ifndef PMDB_TRACE_READ_SET_HH
#define PMDB_TRACE_READ_SET_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace pmdb
{

/** Set of cache-line indices an execution has read. */
class ReadSet
{
  public:
    /** Record a read of [addr, addr+size). */
    void note(Addr addr, std::size_t size);

    bool contains(std::uint64_t line) const
    {
        return lines_.count(line) != 0;
    }

    std::size_t size() const { return lines_.size(); }
    bool empty() const { return lines_.empty(); }

    const std::unordered_set<std::uint64_t> &lines() const
    {
        return lines_;
    }

    /** Merge another read set into this one; true if lines were new. */
    bool merge(const ReadSet &other);

    void clear() { lines_.clear(); }

  private:
    std::unordered_set<std::uint64_t> lines_;
};

} // namespace pmdb

#endif // PMDB_TRACE_READ_SET_HH
