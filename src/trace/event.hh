/**
 * @file
 * The instrumented PM event stream.
 *
 * The paper instruments three fundamental operations — memory store,
 * cache-line flush (CLWB / CLFLUSH / CLFLUSHOPT) and memory fence
 * (SFENCE) — with Valgrind, plus the epoch/strand region annotations of
 * Table 2. This module defines that stream as typed events. Every PM
 * program in this repository issues its persistent-memory operations
 * through PmRuntime, which dispatches these events to attached
 * TraceSinks (detectors, the PM device model, recorders).
 */

#ifndef PMDB_TRACE_EVENT_HH
#define PMDB_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pmdb
{

/** The kind of an instrumented PM operation. */
enum class EventKind : std::uint8_t
{
    /** A store to registered persistent memory. */
    Store,
    /**
     * An instrumented read of persistent memory. Only multi-writer
     * shared-pool programs emit these (src/pmem/shared_device.hh):
     * cross-process visibility rules need to see *when* one writer
     * observes another writer's data. Per-session detectors ignore
     * Load events entirely — single-writer detection stays load-free,
     * matching the paper's instrumentation.
     */
    Load,
    /** A cache-line writeback (CLF) instruction. */
    Flush,
    /** An ordering / durability fence (SFENCE). */
    Fence,
    /** Epoch section begin (PMDK TX_BEGIN). */
    EpochBegin,
    /** Epoch section end (PMDK TX_END); implies a durability barrier. */
    EpochEnd,
    /** Strand section begin (strand persistency model). */
    StrandBegin,
    /** Strand section end. */
    StrandEnd,
    /** Explicit cross-strand ordering point (JoinStrand). */
    JoinStrand,
    /**
     * An undo-log append inside a transaction. The address/size denote
     * the *logged data object*, per Section 5.2's redundant-logging rule
     * ("the address of the data object in the log is treated as the
     * address to be stored into").
     */
    TxLog,
    /** Registration of a persistent region or named variable. */
    RegisterPmem,
    /** End of a traced program; detectors run their finalize rules. */
    ProgramEnd,
};

/** Which CLF instruction performed a Flush event. */
enum class FlushKind : std::uint8_t
{
    Clwb,
    Clflush,
    Clflushopt,
};

/** Sentinel: event does not belong to any strand section. */
constexpr StrandId noStrand = -1;

/** Sentinel: event carries no interned name. */
constexpr std::uint32_t noName = ~std::uint32_t(0);

/**
 * One instrumented operation. Events are POD and cheap to copy; string
 * payloads (variable names for RegisterPmem) are interned in the
 * runtime's NameTable and referenced by id.
 */
struct Event
{
    EventKind kind = EventKind::Store;
    FlushKind flushKind = FlushKind::Clwb;
    ThreadId thread = 0;
    /** Strand section the event belongs to; noStrand outside strands. */
    StrandId strand = noStrand;
    /**
     * Interned name id. RegisterPmem: the registered variable's name.
     * All other kinds: the innermost open SiteScope program site at
     * emission time (noName outside any site). Detectors only consult
     * it on RegisterPmem; fingerprints never include it, so annotating
     * a workload with sites cannot change its bug fingerprints.
     */
    std::uint32_t nameId = noName;
    Addr addr = 0;
    std::uint32_t size = 0;
    /** Monotonic per-runtime sequence number. */
    SeqNum seq = 0;
    /**
     * Global shared-pool clock ticket. Zero for every event of a
     * single-writer program. When the program operates on a
     * multi-writer SharedPmemPool, each instrumented operation draws a
     * ticket from the pool's global fence clock *before* touching
     * shared memory, so tickets order operations across all writer
     * processes — the cross-session rule engine merges the per-session
     * streams by this field. Fingerprints and per-session detectors
     * never consult it.
     */
    SeqNum global = 0;

    AddrRange range() const { return AddrRange::fromSize(addr, size); }
};

/** Human-readable event kind, for reports and debugging. */
const char *toString(EventKind kind);

/** Human-readable CLF mnemonic. */
const char *toString(FlushKind kind);

} // namespace pmdb

#endif // PMDB_TRACE_EVENT_HH
