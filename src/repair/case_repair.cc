#include "repair/case_repair.hh"

#include "trace/recorder.hh"

namespace pmdb
{

const BugCase *
findBugCase(const std::string &name)
{
    for (const BugCase &bug_case : bugSuite()) {
        if (bug_case.name == name)
            return &bug_case;
    }
    return nullptr;
}

DebuggerConfig
debuggerConfigFor(const BugCase &bug_case)
{
    DebuggerConfig config;
    config.model = bug_case.model;
    if (!bug_case.orderSpec.empty())
        config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
    return config;
}

LoadedTrace
recordCaseTrace(const BugCase &bug_case, bool buggy,
                const CaseParams *params)
{
    PmRuntime runtime;
    TraceRecorder recorder;
    runtime.attach(&recorder);
    CaseEnv env{runtime};
    env.buggy = buggy;
    env.params = params;
    bug_case.scenario(env);
    // Most scenarios end the program themselves; close the trace for
    // the ones that do not, without doubling the marker.
    if (recorder.events().empty() ||
        recorder.events().back().kind != EventKind::ProgramEnd) {
        runtime.programEnd();
    }
    runtime.detach(&recorder);

    LoadedTrace trace;
    trace.events = recorder.events();
    trace.names = runtime.names();
    return trace;
}

bool
caseTarget(const BugCase &bug_case, const LoadedTrace &trace,
           BugFingerprint *out)
{
    const ReplayOracle oracle(debuggerConfigFor(bug_case), trace.names);
    const ReplayReport report = oracle.replay(trace.events);
    for (const BugReport &bug : report.bugs) {
        if (bug.type == bug_case.expected) {
            *out = fingerprintOf(bug);
            return true;
        }
    }
    return false;
}

} // namespace pmdb
