#include "repair/minimize.hh"

#include <algorithm>
#include <unordered_map>

namespace pmdb
{

namespace
{

std::uint64_t
fnv1a(const void *data, std::size_t size,
      std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * A deletion unit: either a single event or a matched Begin/End marker
 * pair. The minimizer deletes whole units, never half a section.
 */
struct Unit
{
    std::vector<std::size_t> eventIdx;
    /** Enclosing pair unit, or -1 at top level. */
    int parent = -1;
    /** Pinned units (ProgramEnd) survive every candidate. */
    bool pinned = false;
};

bool
isBegin(EventKind kind)
{
    return kind == EventKind::EpochBegin || kind == EventKind::StrandBegin;
}

bool
matches(EventKind begin, EventKind end)
{
    return (begin == EventKind::EpochBegin &&
            end == EventKind::EpochEnd) ||
           (begin == EventKind::StrandBegin &&
            end == EventKind::StrandEnd);
}

/**
 * Partition the trace into deletion units and record, for every event,
 * which unit owns it and which pair unit encloses it. Sections are
 * matched per thread with a stack; a mismatched or unclosed marker
 * degrades to a singleton unit (the trace was structurally odd to begin
 * with, so the minimizer just treats the marker as opaque).
 */
struct UnitIndex
{
    std::vector<Unit> units;
    /** Event index -> owning unit. */
    std::vector<int> ownerOf;

    explicit UnitIndex(const std::vector<Event> &events)
        : ownerOf(events.size(), -1)
    {
        // Per-thread stack of open section units (unit id + Begin kind).
        std::unordered_map<ThreadId,
                           std::vector<std::pair<int, EventKind>>>
            open;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const Event &event = events[i];
            auto &stack = open[event.thread];
            const int enclosing = stack.empty() ? -1 : stack.back().first;
            if (isBegin(event.kind)) {
                Unit unit;
                unit.eventIdx.push_back(i);
                unit.parent = enclosing;
                units.push_back(std::move(unit));
                const int id = static_cast<int>(units.size() - 1);
                ownerOf[i] = id;
                stack.emplace_back(id, event.kind);
            } else if (event.kind == EventKind::EpochEnd ||
                       event.kind == EventKind::StrandEnd) {
                if (!stack.empty() &&
                    matches(stack.back().second, event.kind)) {
                    const int id = stack.back().first;
                    units[id].eventIdx.push_back(i);
                    ownerOf[i] = id;
                    stack.pop_back();
                } else {
                    addSingleton(i, enclosing, false);
                }
            } else {
                addSingleton(i, enclosing,
                             event.kind == EventKind::ProgramEnd);
            }
        }
    }

    void
    addSingleton(std::size_t eventIdx, int parent, bool pinned)
    {
        Unit unit;
        unit.eventIdx.push_back(eventIdx);
        unit.parent = parent;
        unit.pinned = pinned;
        units.push_back(std::move(unit));
        ownerOf[eventIdx] = static_cast<int>(units.size() - 1);
    }

    /**
     * Structural closure: @p kept plus every enclosing pair unit, so no
     * surviving event is orphaned outside its section markers.
     */
    std::vector<int>
    closure(const std::vector<int> &kept) const
    {
        std::vector<char> in(units.size(), 0);
        for (int id : kept) {
            for (int u = id; u != -1 && !in[u]; u = units[u].parent)
                in[u] = 1;
        }
        std::vector<int> out;
        for (std::size_t u = 0; u < units.size(); ++u) {
            if (in[u])
                out.push_back(static_cast<int>(u));
        }
        return out;
    }

    /** Event indices (trace order) covered by a closed unit set. */
    std::vector<std::size_t>
    eventsOf(const std::vector<int> &closed) const
    {
        std::vector<std::size_t> idx;
        for (int u : closed) {
            idx.insert(idx.end(), units[u].eventIdx.begin(),
                       units[u].eventIdx.end());
        }
        std::sort(idx.begin(), idx.end());
        return idx;
    }
};

/** ddmin search state shared between rounds. */
struct Search
{
    const std::vector<Event> &events;
    const UnitIndex &index;
    const ReplayOracle &oracle;
    const BugFingerprint &target;
    const MinimizeOptions &options;
    MinimizeStats &stats;
    /** kept-event-set hash -> "target still reported". */
    std::unordered_map<std::uint64_t, bool> verdicts;
    std::vector<int> pinned;

    bool
    budgetLeft() const
    {
        return oracle.replays() < options.maxReplays;
    }

    /**
     * Does the closed unit set @p closed (which must include pinned
     * units) still reproduce the target bug?
     */
    bool
    reproduces(const std::vector<int> &closed)
    {
        const std::vector<std::size_t> idx = index.eventsOf(closed);
        std::uint64_t hash = fnv1a(idx.data(),
                                   idx.size() * sizeof(idx[0]));
        hash = fnv1a(&hash, sizeof(hash)); // avoid the empty-set fixpoint
        if (auto it = verdicts.find(hash); it != verdicts.end()) {
            ++stats.cacheHits;
            return it->second;
        }
        std::vector<Event> candidate;
        candidate.reserve(idx.size());
        for (std::size_t i : idx)
            candidate.push_back(events[i]);
        const bool hit = oracle.replay(candidate).has(target);
        verdicts.emplace(hash, hit);
        return hit;
    }

    /** @p deletable plus pinned units, closed. */
    std::vector<int>
    close(const std::vector<int> &deletable) const
    {
        std::vector<int> kept = deletable;
        kept.insert(kept.end(), pinned.begin(), pinned.end());
        return index.closure(kept);
    }
};

/**
 * Classic ddmin over the deletable units. Returns the reduced deletable
 * set; pinned units are re-added (and the set closed) around every
 * oracle query.
 */
std::vector<int>
ddmin(Search &search, std::vector<int> current)
{
    std::size_t n = 2;
    while (current.size() >= 2 && search.budgetLeft()) {
        const std::size_t chunk =
            (current.size() + n - 1) / n; // ceil(size / n)
        bool reduced = false;

        // Try each subset alone.
        for (std::size_t c = 0; c * chunk < current.size(); ++c) {
            const auto first = current.begin() +
                               static_cast<std::ptrdiff_t>(c * chunk);
            const auto last =
                current.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(current.size(), (c + 1) * chunk));
            std::vector<int> subset(first, last);
            if (!search.budgetLeft())
                return current;
            if (search.reproduces(search.close(subset))) {
                current = std::move(subset);
                n = 2;
                reduced = true;
                break;
            }
        }
        if (reduced)
            continue;

        // Try each complement (skip for n == 2: complements are the
        // other subset, already tested above).
        if (n > 2) {
            for (std::size_t c = 0; c * chunk < current.size(); ++c) {
                std::vector<int> complement;
                complement.reserve(current.size());
                for (std::size_t i = 0; i < current.size(); ++i) {
                    if (i / chunk != c)
                        complement.push_back(current[i]);
                }
                if (!search.budgetLeft())
                    return current;
                if (search.reproduces(search.close(complement))) {
                    current = std::move(complement);
                    n = std::max<std::size_t>(n - 1, 2);
                    reduced = true;
                    break;
                }
            }
        }
        if (reduced)
            continue;

        if (n >= current.size())
            break;
        n = std::min(current.size(), 2 * n);
    }
    return current;
}

} // namespace

MinimizeResult
minimizeWitness(const LoadedTrace &trace, const BugFingerprint &target,
                const DebuggerConfig &config,
                const MinimizeOptions &options)
{
    MinimizeResult result;
    result.stats.originalEvents = trace.events.size();

    const UnitIndex index(trace.events);
    const ReplayOracle oracle(config, trace.names);
    Search search{trace.events, index,   oracle, target,
                  options,      result.stats, {},     {}};

    std::vector<int> deletable;
    for (std::size_t u = 0; u < index.units.size(); ++u) {
        if (index.units[u].pinned)
            search.pinned.push_back(static_cast<int>(u));
        else
            deletable.push_back(static_cast<int>(u));
    }

    if (!search.reproduces(search.close(deletable))) {
        result.reproduced = false;
        result.stats.replays = oracle.replays();
        return result;
    }
    result.reproduced = true;

    const std::vector<int> minimal = ddmin(search, std::move(deletable));
    for (std::size_t i : index.eventsOf(search.close(minimal)))
        result.events.push_back(trace.events[i]);

    result.stats.minimizedEvents = result.events.size();
    result.stats.replays = oracle.replays();
    return result;
}

} // namespace pmdb
