/**
 * @file
 * Bug-suite integration for the minimize/repair engine.
 *
 * The seeded bug suite (Table 6) is the natural corpus for exercising
 * the minimizer and the repair synthesizer end to end: every case is a
 * self-contained PM program with a known bug of a known type. This
 * module records a case's event stream with *no* detectors attached (a
 * pure trace, exactly what `pmdb_tracetool record` produces), rebuilds
 * the PMDebugger configuration the suite runner would use for it, and
 * resolves the target fingerprint to minimize or repair against.
 */

#ifndef PMDB_REPAIR_CASE_REPAIR_HH
#define PMDB_REPAIR_CASE_REPAIR_HH

#include <string>

#include "repair/oracle.hh"
#include "trace/trace_file.hh"
#include "workloads/bug_suite.hh"

namespace pmdb
{

/** The suite case named @p name, or null. */
const BugCase *findBugCase(const std::string &name);

/** The PMDebugger configuration the suite runner drives this case with. */
DebuggerConfig debuggerConfigFor(const BugCase &bug_case);

/**
 * Record the case's event stream with no detectors attached — the
 * trace a recorder/service deployment would hand to offline analysis.
 * Cross-failure hooks no-op when nothing is armed, so every scenario
 * runs cleanly detector-free. @p params (optional) applies corpus
 * overrides (seed / thread count / YCSB mix / operations) on top of
 * the case's defaults; multi-threaded scenarios run thread-safe
 * dispatch automatically.
 */
LoadedTrace recordCaseTrace(const BugCase &bug_case, bool buggy = true,
                            const CaseParams *params = nullptr);

/**
 * Resolve the repair target for @p trace: the first reported bug whose
 * type matches the case's expected type. Returns false when the replay
 * does not reproduce one (e.g. cross-failure cases, whose bugs need
 * live verifiers).
 */
bool caseTarget(const BugCase &bug_case, const LoadedTrace &trace,
                BugFingerprint *out);

} // namespace pmdb

#endif // PMDB_REPAIR_CASE_REPAIR_HH
