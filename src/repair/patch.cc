#include "repair/patch.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace pmdb
{

bool
isCorrectnessRule(BugType type)
{
    switch (type) {
      case BugType::NoDurability:
      case BugType::MultipleOverwrite:
      case BugType::NoOrderGuarantee:
      case BugType::LackDurabilityInEpoch:
      case BugType::LackOrderingInStrands:
        return true;
      default:
        return false;
    }
}

namespace
{

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** Index of the event whose original seq is @p seq, or npos. */
std::size_t
indexOfSeq(const std::vector<Event> &events, SeqNum seq)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].seq == seq)
            return i;
    }
    return static_cast<std::size_t>(-1);
}

/** Index of the last Store overlapping @p range before @p limit. */
std::size_t
lastStoreBefore(const std::vector<Event> &events, const AddrRange &range,
                std::size_t limit)
{
    std::size_t found = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < std::min(limit, events.size()); ++i) {
        if (events[i].kind == EventKind::Store &&
            events[i].range().overlaps(range)) {
            found = i;
        }
    }
    return found;
}

/** Index of the last Flush overlapping @p range before @p limit. */
std::size_t
lastFlushBefore(const std::vector<Event> &events, const AddrRange &range,
                std::size_t limit)
{
    std::size_t found = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < std::min(limit, events.size()); ++i) {
        if (events[i].kind == EventKind::Flush &&
            events[i].range().overlaps(range)) {
            found = i;
        }
    }
    return found;
}

/**
 * The range a named order variable was bound to at position
 * @p limitIdx: its most recent registration before that point
 * (re-registration re-binds the symbol, matching OrderTracker's
 * semantics — workloads re-register per-operation "pending"
 * variables). Position-based so it stays correct on working lists
 * whose inserted events carry out-of-order temp seqs.
 */
AddrRange
rangeOfVar(const std::vector<Event> &events, const NameTable &names,
           const std::string &var, std::size_t limitIdx)
{
    AddrRange range;
    for (std::size_t i = 0; i < limitIdx && i < events.size(); ++i) {
        const Event &event = events[i];
        if (event.kind == EventKind::RegisterPmem &&
            event.nameId != noName && names.name(event.nameId) == var) {
            range = event.range();
        }
    }
    return range;
}

/** Describe the insertion point for an advisory line. */
std::string
anchorText(const std::vector<Event> &events, std::size_t index)
{
    if (index == 0)
        return "at trace start";
    const Event &prev = events[index - 1];
    std::string text = "after event #" + std::to_string(prev.seq) + " (" +
                       toString(prev.kind) + ")";
    if (index < events.size()) {
        const Event &next = events[index];
        text += ", before " + std::string(toString(next.kind)) +
                " seq " + std::to_string(next.seq);
    }
    return text;
}

/** One CLWB insert per cache line covering @p range, before @p index. */
void
addFlushEdits(TracePatch &patch, const std::vector<Event> &events,
              std::size_t index, const AddrRange &range,
              const Event &like)
{
    for (Addr base = cacheLineBase(range.start); base < range.end;
         base += cacheLineSize) {
        TraceEdit edit;
        edit.op = TraceEdit::Op::Insert;
        edit.index = index;
        edit.event.kind = EventKind::Flush;
        edit.event.flushKind = FlushKind::Clwb;
        edit.event.thread = like.thread;
        edit.event.strand = like.strand;
        // The inserted flush belongs to the anchor's program site, so a
        // later cascade deleting it still attributes correctly.
        edit.event.nameId = like.nameId;
        edit.event.addr = base;
        edit.event.size = cacheLineSize;
        edit.siteId = like.nameId;
        edit.anchorSeq = like.seq;
        edit.note = "insert CLWB(" + hexAddr(base) + "," +
                    std::to_string(cacheLineSize) + "B) " +
                    anchorText(events, index);
        patch.edits.push_back(std::move(edit));
    }
}

/** One SFENCE insert before @p index. */
void
addFenceEdit(TracePatch &patch, const std::vector<Event> &events,
             std::size_t index, const Event &like)
{
    TraceEdit edit;
    edit.op = TraceEdit::Op::Insert;
    edit.index = index;
    edit.event.kind = EventKind::Fence;
    edit.event.thread = like.thread;
    edit.event.strand = like.strand;
    edit.event.nameId = like.nameId;
    edit.siteId = like.nameId;
    edit.anchorSeq = like.seq;
    edit.note = "insert SFENCE " + anchorText(events, index);
    patch.edits.push_back(std::move(edit));
}

/**
 * Insertion candidates for one correctness bug, cheapest first. The
 * verifier rejects any candidate that does not actually restore
 * durability (e.g. a flush with no later fence to drain it), so the
 * generator can afford to propose optimistic variants.
 */
std::vector<TracePatch>
insertionCandidates(const std::vector<Event> &events,
                    const NameTable &names, const BugReport &bug)
{
    std::vector<TracePatch> candidates;
    const AddrRange range(bug.range);
    const std::size_t bugIdx = indexOfSeq(events, bug.seq);

    switch (bug.type) {
      case BugType::NoDurability: {
        const std::size_t store =
            lastStoreBefore(events, range, events.size());
        if (bug.cause == DurabilityCause::MissingFence) {
            // Flushed but never fenced: a fence after the last flush.
            const std::size_t flush =
                lastFlushBefore(events, range, events.size());
            if (flush != static_cast<std::size_t>(-1)) {
                TracePatch p;
                p.strategy = "insert fence after last flush of " +
                             range.toString();
                addFenceEdit(p, events, flush + 1, events[flush]);
                candidates.push_back(std::move(p));
            }
        } else if (store != static_cast<std::size_t>(-1)) {
            // Never flushed: flush after the last store, relying on an
            // existing later fence...
            TracePatch flushOnly;
            flushOnly.strategy = "insert flush after last store to " +
                                 range.toString();
            addFlushEdits(flushOnly, events, store + 1, range,
                          events[store]);
            candidates.push_back(std::move(flushOnly));
            // ...or paired with its own fence.
            TracePatch flushFence;
            flushFence.strategy =
                "insert flush+fence after last store to " +
                range.toString();
            addFlushEdits(flushFence, events, store + 1, range,
                          events[store]);
            addFenceEdit(flushFence, events, store + 1, events[store]);
            candidates.push_back(std::move(flushFence));
        }
        break;
      }
      case BugType::LackDurabilityInEpoch: {
        // bug.seq is the EpochEnd. The epoch's closing barrier is the
        // last fence *before* that marker (tx.commit emits flushes,
        // one fence, then EpochEnd), so the missing flush must be
        // inserted before that governing fence to ride it; between the
        // fence and the EpochEnd it would stay pending.
        if (bugIdx == static_cast<std::size_t>(-1))
            break;
        std::size_t governing = static_cast<std::size_t>(-1);
        for (std::size_t i = bugIdx; i-- > 0;) {
            if (events[i].kind == EventKind::Fence &&
                events[i].thread == events[bugIdx].thread) {
                governing = i;
                break;
            }
        }
        if (governing != static_cast<std::size_t>(-1)) {
            TracePatch p;
            p.strategy = "insert flush of " + range.toString() +
                         " before the epoch's closing fence";
            addFlushEdits(p, events, governing, range,
                          events[governing]);
            candidates.push_back(std::move(p));
        }
        TracePatch pf;
        pf.strategy = "insert flush+fence of " + range.toString() +
                      " before epoch end";
        addFlushEdits(pf, events, bugIdx, range, events[bugIdx]);
        addFenceEdit(pf, events, bugIdx, events[bugIdx]);
        candidates.push_back(std::move(pf));
        break;
      }
      case BugType::MultipleOverwrite: {
        // bug.seq is the overwriting store: persist the first write
        // before it happens.
        if (bugIdx == static_cast<std::size_t>(-1))
            break;
        TracePatch p;
        p.strategy = "insert flush+fence before overwriting store";
        addFlushEdits(p, events, bugIdx, range, events[bugIdx]);
        addFenceEdit(p, events, bugIdx, events[bugIdx]);
        candidates.push_back(std::move(p));
        break;
      }
      case BugType::NoOrderGuarantee:
      case BugType::LackOrderingInStrands: {
        // context is "first<second": make `first` durable right after
        // its last store preceding the violation point.
        const auto lt = bug.context.find('<');
        if (lt == std::string::npos ||
            bugIdx == static_cast<std::size_t>(-1)) {
            break;
        }
        const std::string first = bug.context.substr(0, lt);
        const AddrRange firstRange =
            rangeOfVar(events, names, first, bugIdx);
        if (firstRange.empty())
            break;
        const std::size_t store =
            lastStoreBefore(events, firstRange, bugIdx);
        if (store == static_cast<std::size_t>(-1))
            break;
        // Fence-only: `first` may already be flushed, just not drained
        // early enough.
        TracePatch fenceOnly;
        fenceOnly.strategy = "insert fence after last store to '" +
                             first + "'";
        addFenceEdit(fenceOnly, events, store + 1, events[store]);
        candidates.push_back(std::move(fenceOnly));
        TracePatch p;
        p.strategy = "insert flush+fence after last store to '" +
                     first + "'";
        addFlushEdits(p, events, store + 1, firstRange, events[store]);
        addFenceEdit(p, events, store + 1, events[store]);
        candidates.push_back(std::move(p));
        break;
      }
      default:
        break;
    }

    for (TracePatch &candidate : candidates) {
        for (TraceEdit &edit : candidate.edits)
            edit.rule = bug.type;
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const TracePatch &a, const TracePatch &b) {
                         return a.edits.size() < b.edits.size();
                     });
    return candidates;
}

/**
 * For a perf-rule bug at @p seq, the original index of the event to
 * delete. Most perf rules report the redundant operation itself; the
 * redundant-epoch-fence rule reports the EpochEnd, so the deletion
 * target is the first interior fence of that epoch.
 */
std::size_t
deletionTarget(const std::vector<Event> &events, const BugReport &bug)
{
    const std::size_t at = indexOfSeq(events, bug.seq);
    if (at == static_cast<std::size_t>(-1))
        return at;
    if (bug.type != BugType::RedundantEpochFence)
        return at;
    // Walk back to the matching EpochBegin on the same thread, then
    // pick the first fence strictly inside the section.
    std::size_t begin = static_cast<std::size_t>(-1);
    int depth = 0;
    for (std::size_t i = at; i-- > 0;) {
        if (events[i].thread != events[at].thread)
            continue;
        if (events[i].kind == EventKind::EpochEnd) {
            ++depth;
        } else if (events[i].kind == EventKind::EpochBegin) {
            if (depth == 0) {
                begin = i;
                break;
            }
            --depth;
        }
    }
    if (begin == static_cast<std::size_t>(-1))
        return static_cast<std::size_t>(-1);
    for (std::size_t i = begin + 1; i < at; ++i) {
        if (events[i].kind == EventKind::Fence &&
            events[i].thread == events[at].thread) {
            return i;
        }
    }
    return static_cast<std::size_t>(-1);
}

/**
 * Structural durability scan: simulate cache-line states over the
 * patched sequence and require that no line overlapping @p range is
 * still dirty (stored, unflushed) or pending (flushed, unfenced) when
 * the trace ends. This is the crashsim cleanliness contract a patched
 * correctness bug must meet — at the final crash point the repaired
 * range has no reachable stale image.
 */
bool
durableAtEnd(const std::vector<Event> &events, const AddrRange &range)
{
    if (range.empty())
        return true;
    // Only stores that touch the target range matter: a neighboring
    // store re-dirtying the same cache line does not disturb target
    // bytes already written back (and the detector's sub-line records
    // agree). Flushes and drains are still line-granular, as in
    // hardware.
    enum class LineState : std::uint8_t { Dirty, Pending };
    std::map<std::uint64_t, LineState> lines;
    for (const Event &event : events) {
        switch (event.kind) {
          case EventKind::Store: {
            const AddrRange r = event.range().intersect(range);
            if (r.empty())
                break;
            for (Addr base = cacheLineBase(r.start); base < r.end;
                 base += cacheLineSize) {
                lines[cacheLineIndex(base)] = LineState::Dirty;
            }
            break;
          }
          case EventKind::Flush: {
            const AddrRange r = event.range();
            for (Addr base = cacheLineBase(r.start); base < r.end;
                 base += cacheLineSize) {
                auto it = lines.find(cacheLineIndex(base));
                if (it != lines.end())
                    it->second = LineState::Pending;
            }
            break;
          }
          case EventKind::Fence:
          case EventKind::EpochEnd:
          case EventKind::JoinStrand: {
            for (auto it = lines.begin(); it != lines.end();) {
                if (it->second == LineState::Pending)
                    it = lines.erase(it);
                else
                    ++it;
            }
            break;
          }
          default:
            break;
        }
    }
    return lines.empty();
}

/** A new-in-patched bug the cascade may delete its way out of. */
bool
isCascadeDeletable(BugType type)
{
    switch (type) {
      case BugType::RedundantFlush:
      case BugType::FlushNothing:
      case BugType::RedundantLogging:
        return true;
      default:
        return false;
    }
}

/**
 * Deletion cascade: repeatedly replay @p work and delete the event the
 * detector points at, until the target bug is gone and no bug absent
 * from the original run remains. This both drives the perf-rule
 * repairs (a fingerprint can stand for several redundant occurrences)
 * and cleans up after insertions — e.g. making an ordering variable
 * durable early turns its original flush redundant, and that flush
 * must go too. Returns true when the cascade converged; the final
 * replay report is left in @p last.
 */
bool
cascadeDeletes(std::vector<Event> &work, const ReplayOracle &oracle,
               const BugFingerprint &target, const ReplayReport &original,
               const RepairOptions &options, TracePatch &patch,
               ReplayReport &last)
{
    for (std::size_t iter = 0; iter < options.maxDeleteIterations;
         ++iter) {
        last = oracle.replay(work);
        const BugReport *victim = last.find(target);
        if (victim && isCorrectnessRule(target.type)) {
            // The insertions did not fix the target. Deleting its
            // witness event would only silence the rule, not repair
            // the bug — reject the candidate instead.
            return false;
        }
        if (!victim) {
            // Target gone; hunt for bugs the edits introduced.
            for (const BugFingerprint &fp : last.fingerprints) {
                if (original.has(fp))
                    continue;
                if (!isCascadeDeletable(fp.type))
                    return false;
                victim = last.find(fp);
                break;
            }
            if (!victim)
                return true; // converged
        }
        const std::size_t at = deletionTarget(work, *victim);
        if (at == static_cast<std::size_t>(-1))
            return false;
        TraceEdit edit;
        edit.op = TraceEdit::Op::Delete;
        edit.index = at;
        edit.event = work[at];
        edit.rule = victim->type;
        edit.siteId = work[at].nameId;
        edit.anchorSeq = work[at].seq;
        edit.note =
            "delete " + std::string(toString(work[at].kind)) + " (" +
            (work[at].size
                 ? hexAddr(work[at].addr) + "," +
                       std::to_string(work[at].size) + "B, "
                 : std::string()) +
            "event #" + std::to_string(work[at].seq) + ")";
        patch.edits.push_back(std::move(edit));
        work.erase(work.begin() + static_cast<std::ptrdiff_t>(at));
    }
    return false;
}

} // namespace

std::vector<Event>
applyPatch(const std::vector<Event> &events, const TracePatch &patch)
{
    // Group edits by original index (stable within a group).
    std::vector<const TraceEdit *> sorted;
    sorted.reserve(patch.edits.size());
    for (const TraceEdit &edit : patch.edits)
        sorted.push_back(&edit);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEdit *a, const TraceEdit *b) {
                         return a->index < b->index;
                     });

    std::vector<Event> out;
    out.reserve(events.size() + patch.edits.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i <= events.size(); ++i) {
        bool deleted = false;
        while (next < sorted.size() && sorted[next]->index == i) {
            if (sorted[next]->op == TraceEdit::Op::Insert)
                out.push_back(sorted[next]->event);
            else
                deleted = true;
            ++next;
        }
        if (i < events.size() && !deleted)
            out.push_back(events[i]);
    }
    SeqNum seq = 0;
    for (Event &event : out)
        event.seq = ++seq;
    return out;
}

bool
ruleClassHasVocabulary(BugType type)
{
    switch (type) {
      case BugType::NoDurability:
      case BugType::MultipleOverwrite:
      case BugType::NoOrderGuarantee:
      case BugType::LackDurabilityInEpoch:
      case BugType::LackOrderingInStrands:
      case BugType::RedundantFlush:
      case BugType::FlushNothing:
      case BugType::RedundantLogging:
      case BugType::RedundantEpochFence:
        return true;
      default:
        // CrossFailureSemantic needs live cross-failure verifiers; a
        // trace replay cannot even reproduce it, let alone verify a fix.
        return false;
    }
}

RepairResult
repairTrace(const LoadedTrace &trace, const BugFingerprint &target,
            const DebuggerConfig &config, const RepairOptions &options)
{
    RepairResult result;
    const ReplayOracle oracle(config, trace.names);
    const ReplayReport original = oracle.replay(trace.events);
    const BugReport *bug = original.find(target);
    if (!bug) {
        result.replays = oracle.replays();
        return result;
    }
    result.targetPresent = true;

    if (!ruleClassHasVocabulary(target.type)) {
        result.replays = oracle.replays();
        return result;
    }

    // Inserted events get temporary seqs past the trace's maximum so
    // the cascade can map reported seqs back to working-list positions
    // unambiguously; the final output is renumbered 1..n.
    SeqNum maxSeq = 0;
    for (const Event &event : trace.events)
        maxSeq = std::max(maxSeq, event.seq);

    if (isCorrectnessRule(target.type)) {
        // One fingerprint can stand for many violation sites: the
        // collector dedups by fingerprint, so fixing the reported
        // occurrence just exposes the next one at a later seq. Each
        // strategy variant (cheapest alternative first) therefore
        // iterates: replay, locate the current occurrence, insert its
        // edits, repeat until the target stops reproducing.
        for (std::size_t variant = 0;
             variant < 2 && !result.verified &&
             result.candidatesTried < options.maxCandidates;
             ++variant) {
            ++result.candidatesTried;
            std::vector<Event> work = trace.events;
            TracePatch applied;
            SeqNum tempSeq = maxSeq;
            bool ok = true;
            SeqNum prevSeq = 0;
            ReplayReport last;
            for (std::size_t round = 0;; ++round) {
                if (round >= options.maxInsertRounds) {
                    ok = false;
                    break;
                }
                last = oracle.replay(work);
                const BugReport *occ = last.find(target);
                if (!occ)
                    break;
                if (occ->seq == prevSeq) {
                    // Same occurrence still firing: this variant's
                    // edits do not fix it.
                    ok = false;
                    break;
                }
                prevSeq = occ->seq;
                std::vector<TracePatch> cands =
                    insertionCandidates(work, trace.names, *occ);
                if (cands.empty()) {
                    ok = false;
                    break;
                }
                const TracePatch &chosen =
                    cands[std::min(variant, cands.size() - 1)];
                if (applied.strategy.empty())
                    applied.strategy = chosen.strategy;
                // Apply the occurrence's inserts (back to front, so
                // indices stay valid), stamping temp seqs.
                std::vector<TraceEdit> inserts = chosen.edits;
                std::stable_sort(inserts.begin(), inserts.end(),
                                 [](const TraceEdit &a,
                                    const TraceEdit &b) {
                                     return a.index < b.index;
                                 });
                for (TraceEdit &edit : inserts)
                    edit.event.seq = ++tempSeq;
                for (auto it = inserts.rbegin(); it != inserts.rend();
                     ++it) {
                    work.insert(
                        work.begin() +
                            static_cast<std::ptrdiff_t>(it->index),
                        it->event);
                }
                for (TraceEdit &edit : inserts)
                    applied.edits.push_back(std::move(edit));
            }
            if (!ok || applied.edits.empty())
                continue;
            if (!cascadeDeletes(work, oracle, target, original, options,
                                applied, last)) {
                continue;
            }
            if (!durableAtEnd(work, AddrRange(target.start, target.end)))
                continue;
            SeqNum seq = 0;
            for (Event &event : work)
                event.seq = ++seq;
            result.verified = true;
            result.patch = std::move(applied);
            result.patchedEvents = std::move(work);
        }
    } else {
        // Perf rules need no insertions: the cascade's deletions *are*
        // the repair.
        ++result.candidatesTried;
        std::vector<Event> work = trace.events;
        TracePatch applied;
        applied.strategy =
            "delete redundant " +
            std::string(target.type == BugType::RedundantEpochFence
                            ? "fence"
                            : "operation");
        ReplayReport last;
        if (cascadeDeletes(work, oracle, target, original, options,
                           applied, last)) {
            SeqNum seq = 0;
            for (Event &event : work)
                event.seq = ++seq;
            result.verified = true;
            result.patch = std::move(applied);
            result.patchedEvents = std::move(work);
        }
    }

    if (result.verified) {
        result.advisory.push_back(result.patch.strategy + " [" +
                                  target.toString() + "]");
        for (const TraceEdit &edit : result.patch.edits)
            result.advisory.push_back(edit.note);
        if (options.crashsimCheck &&
            isCorrectnessRule(target.type)) {
            result.crashScan = scanCrashPoints(result.patchedEvents);
        }
    }
    result.replays = oracle.replays();
    return result;
}

} // namespace pmdb
