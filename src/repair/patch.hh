/**
 * @file
 * Repair synthesizer: turn a diagnosed bug into a verified trace patch.
 *
 * For each rule class with a patch vocabulary the synthesizer
 * enumerates candidate edits against the recorded event sequence —
 * inserting CLWB/SFENCE events at the durability or ordering boundary
 * the rule found violated, or deleting the redundant operation a
 * performance rule flagged — and verifies each candidate by replaying
 * the fully patched trace through a fresh detector. A patch is
 * *verified* when the target bug is gone, no bug absent from the
 * original run appears, and (for correctness rules) the target range is
 * structurally durable at trace end under the crashsim line-state scan.
 * The cheapest verified candidate (fewest edits) wins.
 */

#ifndef PMDB_REPAIR_PATCH_HH
#define PMDB_REPAIR_PATCH_HH

#include <string>
#include <vector>

#include "crashsim/crash_points.hh"
#include "repair/oracle.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

/** One edit against the original event sequence. */
struct TraceEdit
{
    enum class Op
    {
        /** Insert `event` immediately before original index `index`. */
        Insert,
        /** Delete the event at original index `index`. */
        Delete,
    };

    Op op = Op::Insert;
    /**
     * Insert: position in the working sequence at insertion time
     * (insert before it); the synthesizer applies edits iteratively,
     * so later edits see earlier ones. Cascade deletes likewise record
     * the working-sequence position at deletion time; the `note` names
     * the event by kind and seq, which is the stable way to identify
     * it.
     */
    std::size_t index = 0;
    /** Insert: the event to add. Delete: a copy of the removed event. */
    Event event;
    /** Human-readable advisory line ("insert CLWB(0x...) ..."). */
    std::string note;

    /** @name Program-site attribution (advisory clustering). */
    /** @{ */

    /** Rule class that motivated the edit. */
    BugType rule = BugType::NoDurability;
    /**
     * Interned name (in the trace's NameTable) of the anchor event's
     * program site: for inserts, the event the edit rides next to (the
     * last store/flush of the repaired range, the governing fence);
     * for deletes, the deleted event itself. noName when the trace was
     * recorded without site annotations — the advisory engine then
     * falls back to a synthetic region-relative label.
     */
    std::uint32_t siteId = noName;
    /** Original sequence number of the anchor event. */
    SeqNum anchorSeq = 0;

    /** @} */
};

/** A candidate (or final) patch: edits sorted by original index. */
struct TracePatch
{
    std::vector<TraceEdit> edits;
    /** One-line strategy description ("insert flush+fence after ..."). */
    std::string strategy;
};

/**
 * Apply @p patch to @p events. Inserts land before their index (stable
 * among themselves), deletes remove their index, and the result is
 * renumbered seq 1..n so it replays and records like a fresh trace.
 */
std::vector<Event> applyPatch(const std::vector<Event> &events,
                              const TracePatch &patch);

/** Synthesizer bounds. */
struct RepairOptions
{
    /** Cap on insertion candidates tried per bug. */
    std::size_t maxCandidates = 64;
    /**
     * Cap on fix-one-occurrence rounds per candidate (one fingerprint
     * can stand for many violation sites; each round repairs one).
     */
    std::size_t maxInsertRounds = 256;
    /** Cap on iterations of the deletion loop (perf rules). */
    std::size_t maxDeleteIterations = 4096;
    /** Run the structural crashsim scan on the patched trace. */
    bool crashsimCheck = true;
};

/** Outcome of one repair attempt. */
struct RepairResult
{
    /** The target bug reproduced on the input trace. */
    bool targetPresent = false;
    /** A candidate passed full verification. */
    bool verified = false;
    TracePatch patch;
    /** The patched event sequence (renumbered), when verified. */
    std::vector<Event> patchedEvents;
    /** Advisory lines for the user (one per edit, plus the strategy). */
    std::vector<std::string> advisory;
    std::size_t candidatesTried = 0;
    std::uint64_t replays = 0;
    /** Structural crash-point scan of the patched trace (if run). */
    CrashScanSummary crashScan;
};

/**
 * True if @p type has a patch vocabulary — repairTrace can synthesize
 * candidate patches for it. CrossFailureSemantic bugs need live
 * verifiers and cannot be repaired from a trace.
 */
bool ruleClassHasVocabulary(BugType type);

/**
 * True for rule classes repaired by insertion (correctness bugs);
 * false for the performance rules repaired by deletion.
 */
bool isCorrectnessRule(BugType type);

/**
 * Synthesize and verify a patch for @p target against @p trace,
 * replaying candidates through a PmDebugger configured with @p config.
 */
RepairResult repairTrace(const LoadedTrace &trace,
                         const BugFingerprint &target,
                         const DebuggerConfig &config,
                         const RepairOptions &options = {});

} // namespace pmdb

#endif // PMDB_REPAIR_PATCH_HH
