/**
 * @file
 * Replay oracle for the diagnosis-and-repair engine.
 *
 * Both the witness minimizer and the repair synthesizer ask the same
 * question over and over: "what does PMDebugger report on *this*
 * candidate event sequence?". The oracle answers it by replaying the
 * sequence through a fresh detector instance configured exactly like
 * the original run, and reducing the result to the set of bug
 * fingerprints — the stable identities that survive slicing and
 * patching (BugReport seq and prose move; fingerprints do not).
 */

#ifndef PMDB_REPAIR_ORACLE_HH
#define PMDB_REPAIR_ORACLE_HH

#include <cstdint>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"
#include "trace/event.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** Result of replaying one candidate event sequence. */
struct ReplayReport
{
    /** Fingerprints of every unique bug, sorted. */
    std::vector<BugFingerprint> fingerprints;
    /** The full reports behind them (report order). */
    std::vector<BugReport> bugs;

    /** Binary search over the sorted fingerprint set. */
    bool has(const BugFingerprint &fingerprint) const;

    /** The report matching @p fingerprint, or null. */
    const BugReport *find(const BugFingerprint &fingerprint) const;
};

/**
 * Replays candidate event sequences through fresh PmDebugger instances.
 * The NameTable must outlive the oracle (it is referenced, not copied,
 * by each replay).
 */
class ReplayOracle
{
  public:
    ReplayOracle(DebuggerConfig config, const NameTable &names)
        : config_(std::move(config)), names_(names)
    {
    }

    /** Replay @p events through a fresh detector; finalize included. */
    ReplayReport replay(const std::vector<Event> &events) const;

    /** Replays performed so far (the repair engine's cost metric). */
    std::uint64_t replays() const { return replays_; }

  private:
    DebuggerConfig config_;
    const NameTable &names_;
    mutable std::uint64_t replays_ = 0;
};

} // namespace pmdb

#endif // PMDB_REPAIR_ORACLE_HH
