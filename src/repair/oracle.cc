#include "repair/oracle.hh"

#include <algorithm>

#include "core/debugger.hh"

namespace pmdb
{

bool
ReplayReport::has(const BugFingerprint &fingerprint) const
{
    return std::binary_search(fingerprints.begin(), fingerprints.end(),
                              fingerprint);
}

const BugReport *
ReplayReport::find(const BugFingerprint &fingerprint) const
{
    for (const BugReport &bug : bugs) {
        if (fingerprintOf(bug) == fingerprint)
            return &bug;
    }
    return nullptr;
}

ReplayReport
ReplayOracle::replay(const std::vector<Event> &events) const
{
    ++replays_;
    PmDebugger debugger(config_);
    debugger.attached(names_);
    for (const Event &event : events)
        debugger.handle(event);
    // A recorded trace normally ends in ProgramEnd (which finalizes);
    // candidate slices may have lost it, so finalize explicitly — the
    // debugger guards against running its finalize rules twice.
    debugger.finalize();

    ReplayReport report;
    report.bugs = debugger.bugs().bugs();
    report.fingerprints = debugger.bugs().fingerprints();
    std::sort(report.fingerprints.begin(), report.fingerprints.end());
    return report;
}

} // namespace pmdb
