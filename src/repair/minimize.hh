/**
 * @file
 * Witness minimizer: ddmin-style delta debugging over a recorded event
 * trace.
 *
 * Given a trace and a target bug (a BugFingerprint), the minimizer
 * searches for a small event subsequence that still makes PMDebugger
 * report exactly that bug. Candidate subsequences are validated by the
 * replay oracle; verdicts are cached by a hash of the kept-index set so
 * the ddmin recursion never replays the same candidate twice.
 *
 * Slicing is *structure-preserving*: epoch and strand sections are
 * removed or kept as matched Begin/End pairs, and any event recorded
 * inside a section can only survive together with that section's
 * markers (so a TxLog never ends up outside its transaction, and a
 * store keeps its original epoch/strand interpretation). ProgramEnd is
 * pinned. The result is 1-minimal over these deletion units: removing
 * any single remaining unit loses the bug.
 */

#ifndef PMDB_REPAIR_MINIMIZE_HH
#define PMDB_REPAIR_MINIMIZE_HH

#include <cstdint>
#include <vector>

#include "repair/oracle.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

/** Minimizer bounds. */
struct MinimizeOptions
{
    /** Replay budget; the search stops early (best-so-far) beyond it. */
    std::size_t maxReplays = 4096;
};

/** Search statistics (the repair bench's replays-to-converge metric). */
struct MinimizeStats
{
    std::size_t originalEvents = 0;
    std::size_t minimizedEvents = 0;
    /** Oracle replays actually performed. */
    std::uint64_t replays = 0;
    /** Candidates answered from the verdict cache without a replay. */
    std::uint64_t cacheHits = 0;

    double
    shrinkFactor() const
    {
        return minimizedEvents
                   ? static_cast<double>(originalEvents) /
                         static_cast<double>(minimizedEvents)
                   : 0.0;
    }
};

/** Minimization outcome. */
struct MinimizeResult
{
    /** False when the target bug does not reproduce on the full trace. */
    bool reproduced = false;
    /** Minimal witness (events keep their original sequence numbers). */
    std::vector<Event> events;
    MinimizeStats stats;
};

/**
 * Minimize @p trace with respect to @p target, replaying candidates
 * through a PmDebugger configured with @p config.
 */
MinimizeResult minimizeWitness(const LoadedTrace &trace,
                               const BugFingerprint &target,
                               const DebuggerConfig &config,
                               const MinimizeOptions &options = {});

} // namespace pmdb

#endif // PMDB_REPAIR_MINIMIZE_HH
