/**
 * @file
 * Crash-point representation for the crash-state exploration engine.
 *
 * A *crash point* is a place the exploration may cut the execution: an
 * ordering boundary (SFENCE / TX_END / strand join) and, optionally,
 * any CLF. At a crash point the durable state is not unique — every
 * flushed-but-unfenced line may independently have or have not reached
 * the persistence domain (x86 persistence semantics) — so one crash
 * point stands for up to 2^pending reachable post-crash images.
 *
 * The capture is *incremental*: instead of copying the pool image at
 * every boundary (O(pool size) each), the log stores one baseline
 * image plus, per crash point, the set of pending line snapshots at
 * that point. Because a boundary drains exactly its pending set into
 * durability, the pending sets double as the delta stream: the durable
 * base image at crash point k is the baseline with the pending sets of
 * all earlier draining points applied in order. Capture cost is
 * O(lines actually flushed), and ImageCursor reconstructs any point's
 * base image by rolling forward O(delta) from the previous one.
 */

#ifndef PMDB_CRASHSIM_CRASH_POINTS_HH
#define PMDB_CRASHSIM_CRASH_POINTS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Exploration bounds and scheduling knobs. */
struct CrashsimOptions
{
    /**
     * Cap K on the pending lines enumerated per crash point. Points
     * with more pending lines enumerate subsets of the K highest-
     * priority lines (most recently flushed first) with the rest
     * dropped, plus the land-everything candidate.
     */
    std::size_t maxPendingLines = 12;

    /**
     * Cap on candidate images per crash point. When 2^K exceeds this,
     * the enumerator emits a structured subset (empty, full,
     * singletons, leave-one-outs) topped up with seeded random masks.
     */
    std::size_t maxImagesPerPoint = 256;

    /** Worker threads for the verification pass. */
    std::size_t workers = 1;

    /** Seed for the deterministic exploration schedule (rng.hh). */
    std::uint64_t seed = 1;

    /**
     * Treat epoch sections (transactions) as failure-atomic: crash
     * points inside an open epoch enumerate only the drop-all and
     * land-all images. The undo-log commit is single-drain (log
     * truncation and data flushes ride one fence, as libpmemobj's
     * ulog does), so partial landings *inside* the commit barrier can
     * reach states the log cannot recover — real torn-window states
     * that every transactional program on this substrate shares.
     * Coalescing them keeps clean workloads at zero findings; turn
     * this off for a Jaaru-style sweep that also surfaces the
     * single-drain window itself (see tests/test_crashsim.cc).
     */
    bool epochAtomic = true;

    /** Also capture a crash point at every CLF, not just boundaries. */
    bool captureAtFlush = false;

    /** Cap on reported findings (applied after the deterministic merge). */
    std::size_t maxFindings = 64;
};

/** One captured pending-line snapshot (also the delta unit). */
struct CapturedLine
{
    /** Cache-line index (addr / cacheLineSize). */
    std::uint64_t line = 0;
    /** Sequence number of the CLF that queued this snapshot. */
    SeqNum flushSeq = 0;
    std::array<std::uint8_t, cacheLineSize> data{};
};

/** One crash point of a captured execution. */
struct CrashPoint
{
    /** Sequence number of the boundary event (crash provenance). */
    SeqNum seq = 0;
    EventKind boundary = EventKind::Fence;
    /** Point lies inside an open epoch section (transaction). */
    bool epochOpen = false;
    /** The boundary drains its pending set into durability. */
    bool drains = true;
    /**
     * Pending (flushed-but-unfenced) lines at this point:
     * [pendingBegin, pendingEnd) into CrashPointLog::lines, sorted by
     * line index.
     */
    std::size_t pendingBegin = 0;
    std::size_t pendingEnd = 0;
};

/**
 * Self-contained capture of an execution's crash points. Owns every
 * byte it needs, so exploration can run after the workload's pool and
 * runtime are gone (and on worker threads).
 */
struct CrashPointLog
{
    /** Durable image at capture start. */
    std::vector<std::uint8_t> baseline;
    /** Shared pool of pending-line snapshots, sliced per point. */
    std::vector<CapturedLine> lines;
    std::vector<CrashPoint> points;

    std::size_t poolBytes() const { return baseline.size(); }

    std::size_t pendingCount(const CrashPoint &point) const
    {
        return point.pendingEnd - point.pendingBegin;
    }
};

/**
 * Position-salted content hash of one cache line; XOR-combining the
 * old and new content hashes of every line transition yields an
 * order-independent, incrementally updatable image identity (used to
 * dedup candidate images across crash points).
 */
std::uint64_t lineContentHash(std::uint64_t line,
                              const std::uint8_t *bytes);

/**
 * Rolling reconstruction of durable base images over a CrashPointLog.
 *
 * advanceTo(k) costs O(pending lines drained between the current
 * position and k), not O(pool size); landing a candidate subset costs
 * O(subset). Each exploration worker owns one cursor.
 */
class ImageCursor
{
  public:
    explicit ImageCursor(const CrashPointLog &log);

    /**
     * Move to crash point @p point_idx (forward-only), applying the
     * drained pending sets of every earlier draining point.
     */
    void advanceTo(std::size_t point_idx);

    std::size_t position() const { return at_; }

    /**
     * The image at the current point: the durable base after
     * advanceTo(), the candidate image between apply() and revert().
     */
    const std::vector<std::uint8_t> &image() const { return image_; }

    /** Identity hash of the current base image. */
    std::uint64_t baseHash() const { return hash_; }

    /**
     * Identity hash of the candidate image where the pending lines at
     * @p landed (indices into CrashPointLog::lines) land, without
     * materializing it.
     */
    std::uint64_t
    candidateHash(const std::vector<std::size_t> &landed) const;

    /** Land @p landed onto the image (revert() restores the base). */
    void apply(const std::vector<std::size_t> &landed);
    void revert();

  private:
    void applyLine(std::uint64_t line, const std::uint8_t *bytes);

    const CrashPointLog &log_;
    std::size_t at_ = 0;
    /** First point whose drained delta is not yet in image_. */
    std::size_t nextDelta_ = 0;
    std::vector<std::uint8_t> image_;
    std::uint64_t hash_ = 0;
    /** Saved base content of lines landed by apply(). */
    std::vector<CapturedLine> saved_;
};

/** Structural stats of a crash-point scan (no image contents). */
struct CrashScanSummary
{
    std::uint64_t events = 0;
    std::uint64_t crashPoints = 0;
    /** Points coalesced to drop-all/land-all by epochAtomic. */
    std::uint64_t epochCoalescedPoints = 0;
    std::uint64_t pendingLinesTotal = 0;
    std::size_t maxPendingAtPoint = 0;
    /** Candidate images a bounded enumeration would explore. */
    std::uint64_t imagesEnumerable = 0;
    /**
     * Ordering-boundary histogram: which event kind each crash point
     * hangs off (Fence / EpochEnd / JoinStrand, plus Flush when
     * captureAtFlush). Sums to crashPoints.
     */
    std::uint64_t pointsAtFence = 0;
    std::uint64_t pointsAtEpochEnd = 0;
    std::uint64_t pointsAtJoinStrand = 0;
    std::uint64_t pointsAtFlush = 0;

    std::string toString() const;
};

/**
 * Candidate images the bounded enumerator generates for a crash point
 * with @p pending_lines pending and the given epoch state.
 */
std::uint64_t candidateCountFor(std::size_t pending_lines,
                                bool epoch_open,
                                const CrashsimOptions &options);

/**
 * Structural crash-point scan over a recorded event stream (.trc
 * replay). Trace events carry addresses but no store payloads, so a
 * trace cannot reconstruct image *contents* — this computes where the
 * crash points are and how many states a bounded exploration would
 * cover; full exploration with verifiers needs a live capture.
 */
CrashScanSummary scanCrashPoints(const std::vector<Event> &events,
                                 const CrashsimOptions &options = {});

} // namespace pmdb

#endif // PMDB_CRASHSIM_CRASH_POINTS_HH
