#include "crashsim/crash_points.hh"

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pmdk/tx.hh"

namespace pmdb
{

std::uint64_t
lineContentHash(std::uint64_t line, const std::uint8_t *bytes)
{
    // Salting the FNV stream with the line index makes identical
    // content on different lines hash differently, so the XOR-combined
    // image identity stays collision-resistant under line moves.
    const std::uint64_t content =
        fnv1a(bytes, cacheLineSize, mix64(line + 1));
    return mix64(content);
}

ImageCursor::ImageCursor(const CrashPointLog &log)
    : log_(log), image_(log.baseline)
{
}

void
ImageCursor::advanceTo(std::size_t point_idx)
{
    if (point_idx < at_)
        panic("ImageCursor: advanceTo() is forward-only");
    if (!saved_.empty())
        panic("ImageCursor: advanceTo() with a candidate applied");
    while (nextDelta_ < point_idx) {
        const CrashPoint &point = log_.points[nextDelta_];
        if (point.drains) {
            for (std::size_t i = point.pendingBegin; i < point.pendingEnd;
                 ++i) {
                const CapturedLine &cl = log_.lines[i];
                applyLine(cl.line, cl.data.data());
            }
        }
        ++nextDelta_;
    }
    at_ = point_idx;
}

void
ImageCursor::applyLine(std::uint64_t line, const std::uint8_t *bytes)
{
    const Addr base = line * cacheLineSize;
    hash_ ^= lineContentHash(line, image_.data() + base) ^
             lineContentHash(line, bytes);
    std::memcpy(image_.data() + base, bytes, cacheLineSize);
}

std::uint64_t
ImageCursor::candidateHash(const std::vector<std::size_t> &landed) const
{
    std::uint64_t hash = hash_;
    for (std::size_t idx : landed) {
        const CapturedLine &cl = log_.lines[idx];
        const Addr base = cl.line * cacheLineSize;
        hash ^= lineContentHash(cl.line, image_.data() + base) ^
                lineContentHash(cl.line, cl.data.data());
    }
    return hash;
}

void
ImageCursor::apply(const std::vector<std::size_t> &landed)
{
    saved_.reserve(landed.size());
    for (std::size_t idx : landed) {
        const CapturedLine &cl = log_.lines[idx];
        CapturedLine old;
        old.line = cl.line;
        std::memcpy(old.data.data(),
                    image_.data() + cl.line * cacheLineSize,
                    cacheLineSize);
        saved_.push_back(old);
        applyLine(cl.line, cl.data.data());
    }
}

void
ImageCursor::revert()
{
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it)
        applyLine(it->line, it->data.data());
    saved_.clear();
}

std::uint64_t
candidateCountFor(std::size_t pending_lines, bool epoch_open,
                  const CrashsimOptions &options)
{
    if (epoch_open && options.epochAtomic)
        return pending_lines == 0 ? 1 : 2;
    const std::size_t k =
        std::min(pending_lines, options.maxPendingLines);
    const std::uint64_t subsets =
        k >= 62 ? ~0ULL : (1ULL << k) + (pending_lines > k ? 1 : 0);
    return std::min<std::uint64_t>(
        subsets, std::max<std::size_t>(1, options.maxImagesPerPoint));
}

std::string
CrashScanSummary::toString() const
{
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "events                 %llu\n"
        "crash points           %llu\n"
        "  at SFENCE            %llu\n"
        "  at TX_END            %llu\n"
        "  at strand join       %llu\n"
        "  at CLF               %llu\n"
        "  epoch-coalesced      %llu\n"
        "pending lines total    %llu\n"
        "max pending at point   %zu\n"
        "images enumerable      %llu\n",
        static_cast<unsigned long long>(events),
        static_cast<unsigned long long>(crashPoints),
        static_cast<unsigned long long>(pointsAtFence),
        static_cast<unsigned long long>(pointsAtEpochEnd),
        static_cast<unsigned long long>(pointsAtJoinStrand),
        static_cast<unsigned long long>(pointsAtFlush),
        static_cast<unsigned long long>(epochCoalescedPoints),
        static_cast<unsigned long long>(pendingLinesTotal),
        maxPendingAtPoint,
        static_cast<unsigned long long>(imagesEnumerable));
    return buf;
}

CrashScanSummary
scanCrashPoints(const std::vector<Event> &events,
                const CrashsimOptions &options)
{
    CrashScanSummary summary;
    std::set<std::uint64_t> dirty;
    std::set<std::uint64_t> pending;
    int epoch_depth = 0;

    auto lines_of = [](const AddrRange &range, auto &&fn) {
        if (range.empty())
            return;
        const std::uint64_t first = cacheLineIndex(range.start);
        const std::uint64_t last = cacheLineIndex(range.end - 1);
        for (std::uint64_t line = first; line <= last; ++line)
            fn(line);
    };

    auto record_point = [&](EventKind boundary, bool epoch_open) {
        ++summary.crashPoints;
        switch (boundary) {
          case EventKind::Fence:
            ++summary.pointsAtFence;
            break;
          case EventKind::EpochEnd:
            ++summary.pointsAtEpochEnd;
            break;
          case EventKind::JoinStrand:
            ++summary.pointsAtJoinStrand;
            break;
          default:
            ++summary.pointsAtFlush;
            break;
        }
        summary.pendingLinesTotal += pending.size();
        summary.maxPendingAtPoint =
            std::max(summary.maxPendingAtPoint, pending.size());
        if (epoch_open && options.epochAtomic)
            ++summary.epochCoalescedPoints;
        summary.imagesEnumerable +=
            candidateCountFor(pending.size(), epoch_open, options);
    };

    for (const Event &event : events) {
        ++summary.events;
        switch (event.kind) {
          case EventKind::Store:
            lines_of(event.range(),
                     [&](std::uint64_t line) { dirty.insert(line); });
            break;
          case EventKind::Flush:
            lines_of(event.range(), [&](std::uint64_t line) {
                if (dirty.erase(line) || pending.count(line))
                    pending.insert(line);
            });
            if (options.captureAtFlush)
                record_point(EventKind::Flush, epoch_depth > 0);
            break;
          case EventKind::EpochBegin:
            ++epoch_depth;
            break;
          case EventKind::EpochEnd:
            if (epoch_depth > 0)
                --epoch_depth;
            record_point(EventKind::EpochEnd, true);
            pending.clear();
            break;
          case EventKind::Fence:
          case EventKind::JoinStrand:
            record_point(event.kind, epoch_depth > 0);
            pending.clear();
            break;
          default:
            break;
        }
    }
    return summary;
}

} // namespace pmdb
