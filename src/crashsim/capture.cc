#include "crashsim/capture.hh"

namespace pmdb
{

void
CrashsimSession::adopt(const PmemDevice &device)
{
    release();
    device_ = &device;
    log_ = CrashPointLog{};
    pending_.clear();
    log_.baseline = device.persistedBytes();
    // Lines flushed before adoption but not yet fenced are still in
    // flight; seed the mirror so the first boundary's delta is exact.
    for (const auto &[line, snapshot] : device.pendingLines()) {
        CapturedLine cl;
        cl.line = line;
        cl.flushSeq = snapshot.flushSeq;
        cl.data = snapshot.data;
        pending_[line] = cl;
    }
    device.setPersistenceObserver(this);
}

void
CrashsimSession::adopt(const PmemDevice &device,
                       CrossFailureChecker::Verifier verify)
{
    adopt(device);
    setVerifier(std::move(verify));
}

void
CrashsimSession::release()
{
    if (device_) {
        device_->setPersistenceObserver(nullptr);
        device_ = nullptr;
    }
}

void
CrashsimSession::onLineQueued(std::uint64_t line,
                              const PendingLine &snapshot)
{
    CapturedLine cl;
    cl.line = line;
    cl.flushSeq = snapshot.flushSeq;
    cl.data = snapshot.data;
    pending_[line] = cl;

    if (options_.captureAtFlush) {
        // A CLF is a crash point too: the states reachable here can
        // differ from the enclosing boundary's when a later store +
        // CLF refreshes a line's snapshot before the fence.
        Event event;
        event.kind = EventKind::Flush;
        event.seq = snapshot.flushSeq;
        recordPoint(event, device_ && device_->epochDepth() > 0,
                    /*drains=*/false);
    }
}

void
CrashsimSession::onBoundary(const Event &event, int epoch_depth)
{
    // An EpochEnd's pending set belongs to the epoch it closes.
    const bool epoch_open =
        epoch_depth > 0 || event.kind == EventKind::EpochEnd;
    recordPoint(event, epoch_open, /*drains=*/true);
    pending_.clear();
}

void
CrashsimSession::recordPoint(const Event &event, bool epoch_open,
                             bool drains)
{
    CrashPoint point;
    point.seq = event.seq;
    point.boundary = event.kind;
    point.epochOpen = epoch_open;
    point.drains = drains;
    point.pendingBegin = log_.lines.size();
    for (const auto &[line, cl] : pending_)
        log_.lines.push_back(cl);
    point.pendingEnd = log_.lines.size();
    log_.points.push_back(point);
}

CrashsimResult
CrashsimSession::explore(PmDebugger *debugger) const
{
    return exploreCrashPoints(log_, verify_, options_, debugger);
}

} // namespace pmdb
