/**
 * @file
 * Crash-state exploration: bounded enumeration of reachable post-crash
 * images over a CrashPointLog, parallel recovery verification, and
 * greedy witness minimization.
 *
 * Pipeline per crash point:
 *
 *  1. *Enumerate* candidate pending-line subsets under the bounds of
 *     CrashsimOptions (cap K lines by flush recency, cap images per
 *     point, epoch-atomic coalescing inside transactions).
 *  2. *Dedup* candidate images by incremental identity hash — a
 *     sequential pre-pass, so the kept set is independent of worker
 *     count.
 *  3. *Verify*: run the recovery verifier over each kept image on a
 *     pool of workers, each owning a rolling ImageCursor (apply/revert
 *     per candidate, O(subset) not O(pool)).
 *  4. *Minimize* failures greedily to a minimal landed-line witness
 *     and report through the bug collector with crash-point SeqNum
 *     provenance.
 *
 * The whole schedule is deterministic under a fixed seed: findings are
 * merged in (point, candidate) order, so any worker count produces
 * bit-identical reports.
 */

#ifndef PMDB_CRASHSIM_EXPLORE_HH
#define PMDB_CRASHSIM_EXPLORE_HH

#include <string>
#include <vector>

#include "core/cross_failure.hh"
#include "crashsim/crash_points.hh"

namespace pmdb
{

class PmDebugger;

/** One verified inconsistency, with its crash-point provenance. */
struct CrashsimFinding
{
    /** Index into CrashPointLog::points. */
    std::size_t pointIndex = 0;
    /** Sequence number of the crash point's boundary event. */
    SeqNum seq = 0;
    EventKind boundary = EventKind::Fence;
    /** Enumeration order of the failing candidate within its point. */
    std::size_t candidateIndex = 0;
    /**
     * Minimized witness: the smallest landed pending-line subset
     * (cache-line indices, sorted) that still fails verification.
     * Empty when the drop-everything image itself is inconsistent.
     */
    std::vector<std::uint64_t> witnessLines;
    /** The verifier's description of the inconsistency. */
    std::string detail;

    bool operator==(const CrashsimFinding &) const = default;
};

/** Deterministic exploration counters (identical across workers). */
struct CrashsimStats
{
    std::uint64_t points = 0;
    std::uint64_t pendingLines = 0;
    std::uint64_t epochCoalescedPoints = 0;
    std::uint64_t imagesEnumerated = 0;
    std::uint64_t imagesDeduped = 0;
    std::uint64_t imagesVerified = 0;
    std::uint64_t minimizeVerifies = 0;
    /**
     * Crash points whose enumeration the bounds cut short: more pending
     * lines than maxPendingLines, or more subsets than
     * maxImagesPerPoint. Zero means the explored set is the complete
     * reachable crash-state space of the capture.
     */
    std::uint64_t truncatedPoints = 0;

    bool operator==(const CrashsimStats &) const = default;
};

struct CrashsimResult
{
    std::vector<CrashsimFinding> findings;
    CrashsimStats stats;
    /** Wall-clock of the explore pass (not part of identicalTo). */
    double exploreSeconds = 0.0;

    /** Bit-identical findings and counters (timing excluded). */
    bool identicalTo(const CrashsimResult &other) const
    {
        return findings == other.findings && stats == other.stats;
    }
};

/**
 * Explore every crash point of @p log: enumerate, dedup, verify with
 * @p verify (a null verifier skips steps 3-4 and returns structural
 * stats only), minimize witnesses, and — when @p debugger is given —
 * report each finding as a CrossFailureSemantic bug whose seq is the
 * crash point's boundary event.
 */
CrashsimResult
exploreCrashPoints(const CrashPointLog &log,
                   const CrossFailureChecker::Verifier &verify,
                   const CrashsimOptions &options = {},
                   PmDebugger *debugger = nullptr);

/**
 * Candidate landed-line subsets for one crash point of @p log, in
 * deterministic enumeration order (the pre-pass of exploreCrashPoints,
 * exposed for engines that materialize candidate images themselves —
 * the model checker). Each candidate is a list of indices into
 * CrashPointLog::lines; the empty candidate is the drop-everything
 * image. When @p truncated is non-null it is set to whether the bounds
 * of @p options cut the enumeration short of the full 2^pending space.
 */
std::vector<std::vector<std::size_t>>
enumerateCrashCandidates(const CrashPointLog &log, const CrashPoint &point,
                         const CrashsimOptions &options,
                         bool *truncated = nullptr);

} // namespace pmdb

#endif // PMDB_CRASHSIM_EXPLORE_HH
