#include "crashsim/explore.hh"

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/rng.hh"
#include "common/stopwatch.hh"
#include "core/debugger.hh"

namespace pmdb
{
namespace
{

/** One candidate image scheduled for verification. */
struct WorkItem
{
    std::size_t pointIdx = 0;
    std::size_t candidateIndex = 0;
    /** Landed pending lines, as indices into CrashPointLog::lines. */
    std::vector<std::size_t> landed;
};

} // namespace

/**
 * Candidate subsets for one crash point, in deterministic enumeration
 * order. Lines are prioritized by flush recency (ties: line index), so
 * the cap keeps the writebacks most likely to be in flight at a real
 * crash.
 */
std::vector<std::vector<std::size_t>>
enumerateCrashCandidates(const CrashPointLog &log, const CrashPoint &point,
                         const CrashsimOptions &options, bool *truncated)
{
    const std::size_t begin = point.pendingBegin;
    const std::size_t n = log.pendingCount(point);
    std::vector<std::vector<std::size_t>> out;
    if (truncated)
        *truncated = false;

    if (point.epochOpen && options.epochAtomic) {
        // Inside a transaction the logging machinery provides failure
        // atomicity; enumerate only its two recoverable outcomes.
        out.push_back({});
        if (n > 0) {
            std::vector<std::size_t> all(n);
            for (std::size_t i = 0; i < n; ++i)
                all[i] = begin + i;
            out.push_back(std::move(all));
        }
        return out;
    }

    std::vector<std::size_t> priority(n);
    for (std::size_t i = 0; i < n; ++i)
        priority[i] = begin + i;
    std::sort(priority.begin(), priority.end(),
              [&](std::size_t a, std::size_t b) {
                  const CapturedLine &la = log.lines[a];
                  const CapturedLine &lb = log.lines[b];
                  if (la.flushSeq != lb.flushSeq)
                      return la.flushSeq > lb.flushSeq;
                  return la.line < lb.line;
              });

    const std::size_t k = std::min(n, options.maxPendingLines);
    const std::size_t budget =
        std::max<std::size_t>(1, options.maxImagesPerPoint);
    const bool capped = n > k;
    if (truncated && capped)
        *truncated = true;

    std::set<std::uint64_t> seen_masks;
    bool full_all_added = false;
    auto add_mask = [&](std::uint64_t mask) {
        if (out.size() >= budget)
            return;
        if (!seen_masks.insert(mask).second)
            return;
        std::vector<std::size_t> landed;
        for (std::size_t i = 0; i < k; ++i) {
            if (mask >> i & 1)
                landed.push_back(priority[i]);
        }
        out.push_back(std::move(landed));
    };
    auto add_full_all = [&]() {
        // The land-everything image, including lines beyond the cap.
        if (out.size() >= budget || full_all_added)
            return;
        full_all_added = true;
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i)
            all[i] = begin + i;
        out.push_back(std::move(all));
    };

    if (k < 62 && (1ULL << k) + (capped ? 1 : 0) <= budget) {
        // Exhaustive: every subset of the (capped) pending set.
        for (std::uint64_t mask = 0; mask < (1ULL << k); ++mask)
            add_mask(mask);
        if (capped)
            add_full_all();
        return out;
    }

    // Bounded: structured candidates first, seeded random masks after.
    // The budget is below the subset count, so the point is truncated
    // by construction.
    if (truncated)
        *truncated = true;
    const std::uint64_t ones =
        k >= 62 ? ~0ULL : ((1ULL << k) - 1);
    add_mask(0);
    if (capped)
        add_full_all();
    else
        add_mask(ones);
    for (std::size_t i = 0; i < k; ++i)
        add_mask(1ULL << i);
    for (std::size_t i = 0; i < k; ++i)
        add_mask(ones ^ (1ULL << i));
    Rng rng(mix64(options.seed) ^ mix64(point.seq + 1));
    for (std::size_t attempts = budget * 16;
         out.size() < budget && attempts > 0; --attempts)
        add_mask(rng.next() & ones);
    return out;
}

namespace
{

/**
 * Greedily shrink a failing landed set: drop each line whose removal
 * keeps the verifier failing. @p landed is in priority order, so the
 * witness prefers recently-flushed lines.
 */
std::vector<std::size_t>
minimizeWitness(ImageCursor &cursor,
                const CrossFailureChecker::Verifier &verify,
                std::vector<std::size_t> landed, std::string &detail,
                std::uint64_t &verifies)
{
    for (std::size_t i = 0; i < landed.size();) {
        std::vector<std::size_t> trial;
        trial.reserve(landed.size() - 1);
        for (std::size_t j = 0; j < landed.size(); ++j) {
            if (j != i)
                trial.push_back(landed[j]);
        }
        cursor.apply(trial);
        const std::string msg = verify(cursor.image());
        cursor.revert();
        ++verifies;
        if (!msg.empty()) {
            landed = std::move(trial);
            detail = msg;
        } else {
            ++i;
        }
    }
    return landed;
}

} // namespace

CrashsimResult
exploreCrashPoints(const CrashPointLog &log,
                   const CrossFailureChecker::Verifier &verify,
                   const CrashsimOptions &options, PmDebugger *debugger)
{
    Stopwatch watch;
    CrashsimResult result;
    CrashsimStats &stats = result.stats;

    // Sequential pre-pass: enumerate and dedup candidate images by
    // identity hash. Running it single-threaded makes the kept set —
    // and therefore every downstream report — independent of the
    // worker count.
    std::vector<WorkItem> items;
    {
        ImageCursor cursor(log);
        std::unordered_set<std::uint64_t> seen;
        for (std::size_t p = 0; p < log.points.size(); ++p) {
            const CrashPoint &point = log.points[p];
            cursor.advanceTo(p);
            ++stats.points;
            stats.pendingLines += log.pendingCount(point);
            if (point.epochOpen && options.epochAtomic)
                ++stats.epochCoalescedPoints;
            bool truncated = false;
            auto candidates =
                enumerateCrashCandidates(log, point, options, &truncated);
            if (truncated)
                ++stats.truncatedPoints;
            for (std::size_t c = 0; c < candidates.size(); ++c) {
                ++stats.imagesEnumerated;
                const std::uint64_t hash =
                    candidates[c].empty()
                        ? cursor.baseHash()
                        : cursor.candidateHash(candidates[c]);
                if (!seen.insert(hash).second) {
                    ++stats.imagesDeduped;
                    continue;
                }
                if (verify) {
                    items.push_back(
                        {p, c, std::move(candidates[c])});
                }
            }
        }
    }
    stats.imagesVerified = items.size();

    // Verification pass: contiguous chunks of the deterministic work
    // list, one rolling cursor per worker. Findings are collected per
    // worker and concatenated in chunk order, so the merged list is in
    // (point, candidate) order for any worker count.
    const std::size_t workers = std::max<std::size_t>(
        1, std::min(options.workers, std::max<std::size_t>(
                                         1, items.size())));
    std::vector<std::vector<CrashsimFinding>> found(workers);
    std::vector<std::uint64_t> min_verifies(workers, 0);

    auto run_chunk = [&](std::size_t w, std::size_t begin,
                         std::size_t end) {
        ImageCursor cursor(log);
        for (std::size_t i = begin; i < end; ++i) {
            const WorkItem &item = items[i];
            cursor.advanceTo(item.pointIdx);
            cursor.apply(item.landed);
            std::string msg = verify(cursor.image());
            cursor.revert();
            if (msg.empty())
                continue;
            std::vector<std::size_t> witness = minimizeWitness(
                cursor, verify, item.landed, msg, min_verifies[w]);
            CrashsimFinding finding;
            finding.pointIndex = item.pointIdx;
            finding.seq = log.points[item.pointIdx].seq;
            finding.boundary = log.points[item.pointIdx].boundary;
            finding.candidateIndex = item.candidateIndex;
            finding.detail = std::move(msg);
            for (std::size_t idx : witness)
                finding.witnessLines.push_back(log.lines[idx].line);
            std::sort(finding.witnessLines.begin(),
                      finding.witnessLines.end());
            found[w].push_back(std::move(finding));
        }
    };

    if (!items.empty()) {
        const std::size_t chunk =
            (items.size() + workers - 1) / workers;
        if (workers == 1) {
            run_chunk(0, 0, items.size());
        } else {
            std::vector<std::thread> pool;
            for (std::size_t w = 0; w < workers; ++w) {
                const std::size_t begin = w * chunk;
                const std::size_t end =
                    std::min(items.size(), begin + chunk);
                if (begin >= end)
                    break;
                pool.emplace_back(run_chunk, w, begin, end);
            }
            for (std::thread &t : pool)
                t.join();
        }
    }

    for (std::size_t w = 0; w < workers; ++w) {
        stats.minimizeVerifies += min_verifies[w];
        for (CrashsimFinding &finding : found[w])
            result.findings.push_back(std::move(finding));
    }
    if (result.findings.size() > options.maxFindings)
        result.findings.resize(options.maxFindings);

    if (debugger) {
        for (const CrashsimFinding &finding : result.findings) {
            BugReport report;
            report.type = BugType::CrossFailureSemantic;
            report.seq = finding.seq;
            if (!finding.witnessLines.empty()) {
                report.range = AddrRange::fromSize(
                    finding.witnessLines.front() * cacheLineSize,
                    cacheLineSize);
            }
            std::string where = " [crash point: ";
            where += toString(finding.boundary);
            where += " seq ";
            where += std::to_string(finding.seq);
            where += ", witness lines:";
            if (finding.witnessLines.empty()) {
                where += " none (durable base state)";
            } else {
                for (std::uint64_t line : finding.witnessLines) {
                    where += ' ';
                    where += std::to_string(line);
                }
            }
            where += ']';
            report.detail = finding.detail + where;
            debugger->reportBug(report);
        }
    }

    result.exploreSeconds = watch.elapsedSeconds();
    return result;
}

} // namespace pmdb
