/**
 * @file
 * Live crash-point capture: a PersistenceObserver that builds a
 * CrashPointLog while a workload runs.
 *
 * The session snapshots the device's durable image once at adoption
 * (the baseline) and from then on mirrors the pending-writeback queue
 * incrementally from the device's onLineQueued()/onBoundary()
 * callbacks — O(1) per CLF-touched line, never O(pool size). Because
 * the device is a synchronous sink, the captured log is bit-identical
 * under PerEvent, Batched and Async dispatch.
 *
 * The log is self-contained: exploration (explore.hh) runs after the
 * pool, device and runtime are destroyed. Verifiers registered here
 * must therefore capture everything they need by value (addresses,
 * log-region offsets), never pointers into the pool.
 */

#ifndef PMDB_CRASHSIM_CAPTURE_HH
#define PMDB_CRASHSIM_CAPTURE_HH

#include <map>

#include "core/cross_failure.hh"
#include "crashsim/crash_points.hh"
#include "crashsim/explore.hh"
#include "pmem/device.hh"

namespace pmdb
{

/**
 * One capture-and-explore session over one device.
 *
 * Usage:
 * @code
 *   CrashsimSession session(options);
 *   session.adopt(pool.device(), verifier);  // before the writes
 *   ... run the workload ...
 *   CrashsimResult result = session.explore(&debugger);
 * @endcode
 *
 * The session must outlive the device (the device signals its
 * destruction, after which the log stays usable).
 */
class CrashsimSession : public PersistenceObserver
{
  public:
    explicit CrashsimSession(CrashsimOptions options = {})
        : options_(options)
    {
    }

    ~CrashsimSession() override { release(); }

    CrashsimSession(const CrashsimSession &) = delete;
    CrashsimSession &operator=(const CrashsimSession &) = delete;

    /**
     * Begin capturing crash points from @p device: snapshot the
     * durable baseline, seed the pending mirror, and install this
     * session as the device's persistence observer.
     */
    void adopt(const PmemDevice &device);

    /** adopt() and register the recovery verifier in one call. */
    void adopt(const PmemDevice &device,
               CrossFailureChecker::Verifier verify);

    /** Stop observing the device (idempotent). */
    void release();

    void setVerifier(CrossFailureChecker::Verifier verify)
    {
        verify_ = std::move(verify);
    }

    bool hasVerifier() const { return static_cast<bool>(verify_); }

    const CrossFailureChecker::Verifier &verifier() const
    {
        return verify_;
    }

    const CrashsimOptions &options() const { return options_; }
    CrashsimOptions &options() { return options_; }

    const CrashPointLog &log() const { return log_; }

    /**
     * Explore the captured crash points with the registered verifier
     * (exploreCrashPoints). Findings are reported through @p debugger
     * when given.
     */
    CrashsimResult explore(PmDebugger *debugger = nullptr) const;

    /** @name PersistenceObserver */
    /** @{ */
    void onLineQueued(std::uint64_t line,
                      const PendingLine &snapshot) override;
    void onBoundary(const Event &event, int epoch_depth) override;
    void onDeviceDestroyed() override { device_ = nullptr; }
    /** @} */

  private:
    void recordPoint(const Event &event, bool epoch_open, bool drains);

    CrashsimOptions options_;
    const PmemDevice *device_ = nullptr;
    CrossFailureChecker::Verifier verify_;
    CrashPointLog log_;
    /** Mirror of the device's pending queue, ordered by line index. */
    std::map<std::uint64_t, CapturedLine> pending_;
};

} // namespace pmdb

#endif // PMDB_CRASHSIM_CAPTURE_HH
