/**
 * @file
 * Aggregate debugger statistics: event counts, bookkeeping work, and
 * the per-fence-interval tree-size sampling behind Figure 11 and the
 * reorganization comparison of Section 7.5.
 */

#ifndef PMDB_CORE_STATS_HH
#define PMDB_CORE_STATS_HH

#include <cstdint>
#include <string>

#include "core/avl_tree.hh"
#include "core/mem_array.hh"

namespace pmdb
{

/** Statistics reported by PmDebugger (and the baseline models). */
struct DebuggerStats
{
    std::uint64_t stores = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t epochs = 0;

    /** Sum of AVL node counts sampled at each fence (Figure 11). */
    std::uint64_t treeNodeSampleSum = 0;
    /** Number of fence samples taken. */
    std::uint64_t treeNodeSamples = 0;

    /** Aggregated tree-maintenance counters across spaces. */
    TreeStats tree;
    /** Aggregated array counters across spaces. */
    ArrayStats array;

    /** Average tree nodes per fence interval (Figure 11's metric). */
    double
    avgTreeNodesPerFenceInterval() const
    {
        if (!treeNodeSamples)
            return 0.0;
        return static_cast<double>(treeNodeSampleSum) /
               static_cast<double>(treeNodeSamples);
    }

    std::string toString() const;
};

} // namespace pmdb

#endif // PMDB_CORE_STATS_HH
