#include "core/avl_tree.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmdb
{

struct AvlTree::Node
{
    LocationRecord rec;
    Node *left = nullptr;
    Node *right = nullptr;
    int height = 1;
    /** Maximum range.end in this subtree (interval augmentation). */
    Addr maxEnd = 0;

    explicit Node(const LocationRecord &r) : rec(r), maxEnd(r.range.end) {}
};

AvlTree::AvlTree(MergePolicy policy, std::size_t merge_threshold)
    : policy_(policy), mergeThreshold_(merge_threshold)
{
}

AvlTree::~AvlTree()
{
    destroy(root_);
}

void
AvlTree::destroy(Node *node)
{
    if (!node)
        return;
    destroy(node->left);
    destroy(node->right);
    delete node;
}

int
AvlTree::heightOf(const Node *node)
{
    return node ? node->height : 0;
}

void
AvlTree::update(Node *node)
{
    node->height = 1 + std::max(heightOf(node->left), heightOf(node->right));
    node->maxEnd = node->rec.range.end;
    if (node->left)
        node->maxEnd = std::max(node->maxEnd, node->left->maxEnd);
    if (node->right)
        node->maxEnd = std::max(node->maxEnd, node->right->maxEnd);
}

AvlTree::Node *
AvlTree::rotateLeft(Node *node)
{
    ++stats_.reorganizations;
    Node *pivot = node->right;
    node->right = pivot->left;
    pivot->left = node;
    update(node);
    update(pivot);
    return pivot;
}

AvlTree::Node *
AvlTree::rotateRight(Node *node)
{
    ++stats_.reorganizations;
    Node *pivot = node->left;
    node->left = pivot->right;
    pivot->right = node;
    update(node);
    update(pivot);
    return pivot;
}

AvlTree::Node *
AvlTree::rebalance(Node *node)
{
    update(node);
    const int balance = heightOf(node->left) - heightOf(node->right);
    if (balance > 1) {
        if (heightOf(node->left->left) < heightOf(node->left->right))
            node->left = rotateLeft(node->left);
        return rotateRight(node);
    }
    if (balance < -1) {
        if (heightOf(node->right->right) < heightOf(node->right->left))
            node->right = rotateRight(node->right);
        return rotateLeft(node);
    }
    return node;
}

AvlTree::Node *
AvlTree::insertNode(Node *node, const LocationRecord &record)
{
    if (!node)
        return new Node(record);
    const bool goes_left =
        record.range.start < node->rec.range.start ||
        (record.range.start == node->rec.range.start &&
         record.storeSeq < node->rec.storeSeq);
    if (goes_left)
        node->left = insertNode(node->left, record);
    else
        node->right = insertNode(node->right, record);
    return rebalance(node);
}

void
AvlTree::insert(const LocationRecord &record)
{
    if (record.range.empty())
        return;
    root_ = insertNode(root_, record);
    ++count_;
    ++stats_.insertions;
    if (record.state == FlushState::Flushed)
        ++flushedCount_;
    if (policy_ == MergePolicy::Eager)
        eagerMergeAround(record);
}

namespace
{

/** Recursive interval-overlap visitor with maxEnd pruning. */
template <typename NodeT, typename Fn>
void
overlapVisit(NodeT *node, const AddrRange &range, Fn &&fn)
{
    if (!node || node->maxEnd <= range.start)
        return;
    overlapVisit(node->left, range, fn);
    if (node->rec.range.overlaps(range))
        fn(node);
    if (node->rec.range.start < range.end)
        overlapVisit(node->right, range, fn);
}

} // namespace

void
AvlTree::forEachOverlap(
    const AddrRange &range,
    const std::function<void(const LocationRecord &)> &visit) const
{
    overlapVisit(root_, range,
                 [&](const Node *node) { visit(node->rec); });
}

bool
AvlTree::overlapsAny(const AddrRange &range) const
{
    bool found = false;
    overlapVisit(root_, range, [&](const Node *) { found = true; });
    return found;
}

bool
AvlTree::overlapsAnyWithState(const AddrRange &range,
                              FlushState state) const
{
    bool found = false;
    overlapVisit(root_, range, [&](const Node *node) {
        if (node->rec.state == state)
            found = true;
    });
    return found;
}

AvlTree::FlushOutcome
AvlTree::applyFlush(const AddrRange &range)
{
    FlushOutcome outcome;
    if (!root_)
        return outcome;

    // Pass 1: classify matches; mark fully covered nodes in place
    // (state changes do not affect keys) and remember partially covered
    // nodes for splitting.
    std::vector<LocationRecord> partial;
    overlapVisit(root_, range, [&](Node *node) {
        outcome.hitAny = true;
        if (node->rec.state == FlushState::Flushed)
            outcome.hitFlushed = true;
        else
            outcome.hitUnflushed = true;
        if (range.contains(node->rec.range)) {
            if (node->rec.state != FlushState::Flushed) {
                node->rec.state = FlushState::Flushed;
                ++flushedCount_;
            }
        } else {
            partial.push_back(node->rec);
        }
    });

    // Pass 2: split partially covered nodes (Section 4.3): the covered
    // sub-range becomes Flushed, the uncovered pieces keep their state.
    for (const LocationRecord &rec : partial) {
        bool removed = false;
        root_ = removeNode(root_, rec.range.start, rec.storeSeq, removed);
        if (!removed)
            panic("AvlTree::applyFlush: lost a partially covered node");
        --count_;
        ++stats_.removals;
        if (rec.state == FlushState::Flushed)
            --flushedCount_;

        const AddrRange covered = rec.range.intersect(range);
        LocationRecord flushed = rec;
        flushed.range = covered;
        flushed.state = FlushState::Flushed;
        root_ = insertNode(root_, flushed);
        ++count_;
        ++stats_.insertions;
        ++flushedCount_;

        if (rec.range.start < covered.start) {
            LocationRecord head = rec;
            head.range = AddrRange(rec.range.start, covered.start);
            root_ = insertNode(root_, head);
            ++count_;
            ++stats_.insertions;
            if (head.state == FlushState::Flushed)
                ++flushedCount_;
        }
        if (covered.end < rec.range.end) {
            LocationRecord tail = rec;
            tail.range = AddrRange(covered.end, rec.range.end);
            root_ = insertNode(root_, tail);
            ++count_;
            ++stats_.insertions;
            if (tail.state == FlushState::Flushed)
                ++flushedCount_;
        }
    }
    return outcome;
}

AvlTree::Node *
AvlTree::removeMin(Node *node, Node *&min_out)
{
    if (!node->left) {
        min_out = node;
        return node->right;
    }
    node->left = removeMin(node->left, min_out);
    return rebalance(node);
}

AvlTree::Node *
AvlTree::removeNode(Node *node, Addr start, SeqNum seq, bool &removed)
{
    if (!node)
        return nullptr;
    if (start < node->rec.range.start ||
        (start == node->rec.range.start && seq < node->rec.storeSeq)) {
        node->left = removeNode(node->left, start, seq, removed);
    } else if (start > node->rec.range.start ||
               seq > node->rec.storeSeq) {
        node->right = removeNode(node->right, start, seq, removed);
    } else {
        removed = true;
        Node *left = node->left;
        Node *right = node->right;
        delete node;
        if (!right)
            return left;
        Node *min = nullptr;
        right = removeMin(right, min);
        min->left = left;
        min->right = right;
        return rebalance(min);
    }
    return rebalance(node);
}

void
AvlTree::removeFlushed(
    const std::function<void(const LocationRecord &)> &on_durable)
{
    // Fast path (the common case in PMDebugger, where short-lived
    // records die in the array): no tree node is flush-pending.
    if (!root_ || flushedCount_ == 0)
        return;
    std::vector<LocationRecord> flushed;
    forEach([&](const LocationRecord &rec) {
        if (rec.state == FlushState::Flushed)
            flushed.push_back(rec);
    });
    for (const LocationRecord &rec : flushed) {
        bool removed = false;
        root_ = removeNode(root_, rec.range.start, rec.storeSeq, removed);
        if (removed) {
            --count_;
            ++stats_.removals;
            --flushedCount_;
            if (on_durable)
                on_durable(rec);
        }
    }
}

void
AvlTree::maybeMerge()
{
    if (policy_ != MergePolicy::Lazy || count_ <= mergeThreshold_)
        return;
    // A merge pass that coalesced nothing will coalesce little until
    // the tree has grown substantially; back off until it is 1.5x the
    // size at which the last attempt came up empty.
    if (count_ <= lastBarrenMergeCount_ + lastBarrenMergeCount_ / 2)
        return;

    std::vector<LocationRecord> records;
    records.reserve(count_);
    collect(root_, records);

    std::vector<LocationRecord> merged;
    merged.reserve(records.size());
    for (const LocationRecord &rec : records) {
        if (!merged.empty()) {
            LocationRecord &last = merged.back();
            if (last.state == rec.state && last.inEpoch == rec.inEpoch &&
                last.range.adjacentOrOverlapping(rec.range)) {
                last.range = last.range.unionWith(rec.range);
                last.storeSeq = std::max(last.storeSeq, rec.storeSeq);
                ++stats_.merges;
                continue;
            }
        }
        merged.push_back(rec);
    }
    if (merged.size() == records.size()) {
        lastBarrenMergeCount_ = count_;
        return; // nothing coalesced; skip the rebuild
    }
    // Back off from the post-merge size too: re-scanning before the
    // tree regrows materially cannot coalesce much.
    lastBarrenMergeCount_ = merged.size();

    rebuildFrom(merged);
    ++stats_.reorganizations;
}

void
AvlTree::eagerMergeAround(const LocationRecord &record)
{
    // Traditional detectors coalesce each new store with adjacent
    // tracked regions immediately (Section 2.2). Iterate until no
    // neighbour of the merged region is mergeable.
    LocationRecord current = record;
    for (;;) {
        // Widen by one byte on each side to catch pure adjacency.
        const AddrRange probe(current.range.start ? current.range.start - 1
                                                  : 0,
                              current.range.end + 1);
        std::vector<LocationRecord> neighbours;
        overlapVisit(root_, probe, [&](const Node *node) {
            const LocationRecord &rec = node->rec;
            const bool is_self = rec.range == current.range &&
                                 rec.storeSeq == current.storeSeq;
            if (!is_self && rec.state == current.state &&
                rec.inEpoch == current.inEpoch) {
                neighbours.push_back(rec);
            }
        });
        if (neighbours.empty())
            return;

        LocationRecord combined = current;
        bool removed = false;
        root_ = removeNode(root_, current.range.start, current.storeSeq,
                           removed);
        if (removed) {
            --count_;
            ++stats_.removals;
            if (current.state == FlushState::Flushed)
                --flushedCount_;
        }
        for (const LocationRecord &rec : neighbours) {
            removed = false;
            root_ = removeNode(root_, rec.range.start, rec.storeSeq,
                               removed);
            if (!removed)
                continue;
            --count_;
            ++stats_.removals;
            if (rec.state == FlushState::Flushed)
                --flushedCount_;
            combined.range = combined.range.unionWith(rec.range);
            combined.storeSeq = std::max(combined.storeSeq, rec.storeSeq);
            ++stats_.merges;
            ++stats_.reorganizations;
        }
        root_ = insertNode(root_, combined);
        ++count_;
        ++stats_.insertions;
        if (combined.state == FlushState::Flushed)
            ++flushedCount_;
        current = combined;
    }
}

void
AvlTree::collect(const Node *node, std::vector<LocationRecord> &out) const
{
    if (!node)
        return;
    collect(node->left, out);
    out.push_back(node->rec);
    collect(node->right, out);
}

void
AvlTree::forEach(
    const std::function<void(const LocationRecord &)> &visit) const
{
    std::vector<LocationRecord> records;
    records.reserve(count_);
    collect(root_, records);
    for (const LocationRecord &rec : records)
        visit(rec);
}

AvlTree::Node *
AvlTree::buildBalanced(std::vector<LocationRecord> &records, std::size_t lo,
                       std::size_t hi)
{
    if (lo >= hi)
        return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    Node *node = new Node(records[mid]);
    node->left = buildBalanced(records, lo, mid);
    node->right = buildBalanced(records, mid + 1, hi);
    update(node);
    return node;
}

void
AvlTree::rebuildFrom(std::vector<LocationRecord> &records)
{
    destroy(root_);
    root_ = buildBalanced(records, 0, records.size());
    count_ = records.size();
    flushedCount_ = 0;
    for (const LocationRecord &rec : records) {
        if (rec.state == FlushState::Flushed)
            ++flushedCount_;
    }
}

void
AvlTree::clearEpochFlags()
{
    struct Clearer
    {
        static void
        visit(Node *node)
        {
            if (!node)
                return;
            node->rec.inEpoch = false;
            visit(node->left);
            visit(node->right);
        }
    };
    Clearer::visit(root_);
}

void
AvlTree::clear()
{
    destroy(root_);
    root_ = nullptr;
    count_ = 0;
    flushedCount_ = 0;
    lastBarrenMergeCount_ = 0;
}

int
AvlTree::height() const
{
    return heightOf(root_);
}

bool
AvlTree::checkInvariants() const
{
    struct Checker
    {
        static bool
        visit(const Node *node, std::size_t &count)
        {
            if (!node)
                return true;
            const int lh = heightOf(node->left);
            const int rh = heightOf(node->right);
            if (node->height != 1 + std::max(lh, rh))
                return false;
            if (lh - rh > 1 || rh - lh > 1)
                return false;
            Addr max_end = node->rec.range.end;
            if (node->left) {
                if (node->left->rec.range.start > node->rec.range.start)
                    return false;
                max_end = std::max(max_end, node->left->maxEnd);
            }
            if (node->right) {
                if (node->right->rec.range.start < node->rec.range.start)
                    return false;
                max_end = std::max(max_end, node->right->maxEnd);
            }
            if (node->maxEnd != max_end)
                return false;
            ++count;
            return visit(node->left, count) && visit(node->right, count);
        }
    };
    std::size_t counted = 0;
    if (!Checker::visit(root_, counted))
        return false;
    return counted == count_;
}

} // namespace pmdb
