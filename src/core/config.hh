/**
 * @file
 * Debugger configuration: persistency model, bookkeeping parameters,
 * rule toggles and the order specification.
 */

#ifndef PMDB_CORE_CONFIG_HH
#define PMDB_CORE_CONFIG_HH

#include <cstddef>

#include "core/order_spec.hh"

namespace pmdb
{

/** The persistency model the debugged program follows (Section 2.3). */
enum class PersistencyModel
{
    /** Persist order == volatile memory order. */
    Strict,
    /** Persists reorder freely within epochs (PMDK transactions). */
    Epoch,
    /** Strands are mutually unordered unless explicitly joined. */
    Strand,
};

const char *toString(PersistencyModel model);

/** Bookkeeping organisation; non-Hybrid modes exist for ablations. */
enum class BookkeepingMode
{
    /** Array for the current fence interval + AVL tree (the paper). */
    Hybrid,
    /** Every store tracked in the AVL tree (traditional detectors). */
    TreeOnly,
    /** Array only; fence survivors are compacted, never re-distributed. */
    ArrayOnly,
};

/** Configuration for a PmDebugger instance. */
struct DebuggerConfig
{
    PersistencyModel model = PersistencyModel::Epoch;
    BookkeepingMode bookkeeping = BookkeepingMode::Hybrid;

    /** Fixed capacity of the memory-location array (Section 4.1). */
    std::size_t arrayCapacity = 100000;

    /** AVL node count that triggers a lazy merge pass (Section 4.4). */
    std::size_t mergeThreshold = 500;

    /** @name Rule toggles (all rules on by default). */
    /** @{ */
    bool detectNoDurability = true;
    /** Auto-restricted to the strict model regardless of this flag. */
    bool detectMultipleOverwrite = true;
    bool detectNoOrderGuarantee = true;
    bool detectRedundantFlush = true;
    bool detectFlushNothing = true;
    bool detectRedundantLogging = true;
    bool detectLackDurabilityInEpoch = true;
    bool detectRedundantEpochFence = true;
    bool detectLackOrderingInStrands = true;
    /** @} */

    /** Persist-order constraints (for the two ordering rules). */
    OrderSpec orderSpec;
};

} // namespace pmdb

#endif // PMDB_CORE_CONFIG_HH
