#include "core/mem_array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmdb
{

MemoryLocationArray::MemoryLocationArray(std::size_t capacity)
    : capacity_(capacity)
{
    records_.resize(capacity);
}

FlushState
MemoryLocationArray::effectiveState(std::uint32_t idx,
                                    const ClfIntervalMeta &meta) const
{
    if (meta.state == IntervalFlushState::AllFlushed)
        return FlushState::Flushed;
    return records_[idx].state;
}

FlushOutcome
MemoryLocationArray::applyFlush(const AddrRange &range, AvlTree &tree)
{
    FlushOutcome outcome;

    for (ClfIntervalMeta &meta : intervals_) {
        if (meta.empty() || !range.overlaps(meta.bounds))
            continue;

        if (meta.state == IntervalFlushState::AllFlushed) {
            // Everything the CLF touches here is already flushed: pure
            // redundancy, established in O(1) from the metadata alone.
            outcome.hitAny = true;
            outcome.hitFlushed = true;
            continue;
        }

        if (meta.state == IntervalFlushState::NotFlushed &&
            range.contains(meta.bounds)) {
            // Collective writeback (Pattern 2): one metadata update
            // covers every record of the interval; no record is
            // visited.
            meta.state = IntervalFlushState::AllFlushed;
            outcome.hitAny = true;
            outcome.hitUnflushed = true;
            continue;
        }

        // Dispersed or repeated writeback: examine the interval's
        // records individually (§4.3).
        bool all_flushed = true;
        for (std::uint32_t i = meta.startIdx; i < meta.endIdx; ++i) {
            LocationRecord &rec = records_[i];
            if (!rec.range.overlaps(range)) {
                if (rec.state != FlushState::Flushed)
                    all_flushed = false;
                continue;
            }
            outcome.hitAny = true;
            if (rec.state == FlushState::Flushed) {
                outcome.hitFlushed = true;
                continue;
            }
            outcome.hitUnflushed = true;
            if (range.contains(rec.range)) {
                rec.state = FlushState::Flushed;
                continue;
            }
            // Partial overlap: the covered sub-range stays in the
            // array; uncovered pieces go to the AVL tree (§4.3 — they
            // cannot be appended without breaking the interval's
            // index span).
            const AddrRange covered = rec.range.intersect(range);
            if (rec.range.start < covered.start) {
                LocationRecord head = rec;
                head.range = AddrRange(rec.range.start, covered.start);
                tree.insert(head);
                all_flushed = false;
            }
            if (covered.end < rec.range.end) {
                LocationRecord tail = rec;
                tail.range = AddrRange(covered.end, rec.range.end);
                tree.insert(tail);
                all_flushed = false;
            }
            rec.range = covered;
            rec.state = FlushState::Flushed;
        }
        meta.state = all_flushed ? IntervalFlushState::AllFlushed
                                 : IntervalFlushState::PartiallyFlushed;
    }

    // The CLF ends the current interval: the next store opens a new one.
    intervalOpen_ = false;
    return outcome;
}

void
MemoryLocationArray::processFence(AvlTree &tree)
{
    for (const ClfIntervalMeta &meta : intervals_) {
        if (meta.empty())
            continue;
        if (meta.state == IntervalFlushState::AllFlushed) {
            // Collective invalidation (Pattern 1): durability of every
            // record is guaranteed by this fence; the records die
            // without being visited.
            ++stats_.collectiveInvalidations;
            stats_.recordsCollectivelyFreed += meta.endIdx - meta.startIdx;
            continue;
        }
        for (std::uint32_t i = meta.startIdx; i < meta.endIdx; ++i) {
            const LocationRecord &rec = records_[i];
            if (rec.state == FlushState::Flushed) {
                ++stats_.recordsDroppedIndividually;
            } else {
                tree.insert(rec);
                ++stats_.recordsMovedToTree;
            }
        }
    }
    // Invalidate the metadata; the array storage itself is reused.
    intervals_.clear();
    size_ = 0;
    intervalOpen_ = false;
}

void
MemoryLocationArray::compactSurvivors()
{
    std::vector<LocationRecord> survivors;
    for (const ClfIntervalMeta &meta : intervals_) {
        if (meta.state == IntervalFlushState::AllFlushed) {
            ++stats_.collectiveInvalidations;
            stats_.recordsCollectivelyFreed += meta.endIdx - meta.startIdx;
            continue;
        }
        for (std::uint32_t i = meta.startIdx; i < meta.endIdx; ++i) {
            if (records_[i].state == FlushState::Flushed)
                ++stats_.recordsDroppedIndividually;
            else
                survivors.push_back(records_[i]);
        }
    }
    intervals_.clear();
    size_ = 0;
    intervalOpen_ = false;
    for (const LocationRecord &rec : survivors)
        append(rec);
    // The survivors form one synthetic interval; close it so the next
    // store opens a fresh one.
    intervalOpen_ = false;
}

bool
MemoryLocationArray::overlapsAny(const AddrRange &range) const
{
    for (const ClfIntervalMeta &meta : intervals_) {
        if (meta.empty() || !range.overlaps(meta.bounds))
            continue;
        for (std::uint32_t i = meta.startIdx; i < meta.endIdx; ++i) {
            if (records_[i].range.overlaps(range))
                return true;
        }
    }
    return false;
}

void
MemoryLocationArray::forEachLive(
    const std::function<void(const LocationRecord &, FlushState)> &visit)
    const
{
    for (const ClfIntervalMeta &meta : intervals_) {
        for (std::uint32_t i = meta.startIdx; i < meta.endIdx; ++i)
            visit(records_[i], effectiveState(i, meta));
    }
}

void
MemoryLocationArray::clearEpochFlags()
{
    for (std::uint32_t i = 0; i < size_; ++i)
        records_[i].inEpoch = false;
}

} // namespace pmdb
