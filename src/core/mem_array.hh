/**
 * @file
 * The memory-location array and CLF-interval metadata (Sections 4.1-4.4)
 * — the short-lived, fast half of PMDebugger's hybrid bookkeeping space.
 *
 * Store records for the current *fence interval* are appended to a
 * fixed-size array (O(1), no re-organization — Pattern 3). A list of
 * per-CLF-interval metadata nodes records each interval's array span,
 * address bounds and collective flush state, so that one CLWB covering
 * an interval's bounds flips the whole interval to all-flushed in O(1)
 * (Pattern 2), and a fence invalidates all-flushed intervals
 * collectively without visiting their records (Pattern 1). Records that
 * survive a fence are re-distributed into the AVL tree.
 */

#ifndef PMDB_CORE_MEM_ARRAY_HH
#define PMDB_CORE_MEM_ARRAY_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/avl_tree.hh"
#include "core/location.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Collective flushing state of a CLF interval (Section 4.1). */
enum class IntervalFlushState : std::uint8_t
{
    NotFlushed,
    PartiallyFlushed,
    AllFlushed,
};

/** Metadata node for one CLF interval (Figure 5, right). */
struct ClfIntervalMeta
{
    /** First record index of the interval in the array. */
    std::uint32_t startIdx = 0;
    /** One past the last record index. */
    std::uint32_t endIdx = 0;
    /** Min/max address range of the records collected in the interval. */
    AddrRange bounds;
    IntervalFlushState state = IntervalFlushState::NotFlushed;

    bool empty() const { return endIdx <= startIdx; }
};

/** Counters for the array's collective-processing effectiveness. */
struct ArrayStats
{
    /** Intervals invalidated wholesale at fences (records never visited). */
    std::uint64_t collectiveInvalidations = 0;
    /** Records freed without individual examination. */
    std::uint64_t recordsCollectivelyFreed = 0;
    /** Records moved into the AVL tree at fences. */
    std::uint64_t recordsMovedToTree = 0;
    /** Records that became durable and were dropped individually. */
    std::uint64_t recordsDroppedIndividually = 0;
    /** Stores that overflowed the fixed-size array into the tree. */
    std::uint64_t overflowStores = 0;
    /** High-water mark of array occupancy. */
    std::uint32_t maxUsage = 0;
};

/** Outcome of applying one CLF to a bookkeeping structure. */
struct FlushOutcome
{
    bool hitAny = false;
    bool hitUnflushed = false;
    bool hitFlushed = false;

    void
    combine(const FlushOutcome &other)
    {
        hitAny |= other.hitAny;
        hitUnflushed |= other.hitUnflushed;
        hitFlushed |= other.hitFlushed;
    }
};

/**
 * Fixed-capacity array of location records for one fence interval,
 * plus the CLF-interval metadata list that enables collective updates.
 */
class MemoryLocationArray
{
  public:
    explicit MemoryLocationArray(std::size_t capacity);

    bool full() const { return size_ >= capacity_; }
    std::uint32_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append a store record to the current CLF interval (§4.2).
     * Returns false when the array is full: the caller then tracks the
     * record in the AVL tree instead. Defined inline — this is the
     * single hottest call of the whole detector (one per store), and
     * the batched dispatch path relies on it inlining into the
     * store-run loop.
     */
    bool
    append(const LocationRecord &record)
    {
        if (full())
            return false;

        if (!intervalOpen_) {
            ClfIntervalMeta meta;
            meta.startIdx = size_;
            meta.endIdx = size_;
            intervals_.push_back(meta);
            intervalOpen_ = true;
        }

        records_[size_] = record;
        ++size_;
        stats_.maxUsage = std::max(stats_.maxUsage, size_);

        ClfIntervalMeta &meta = intervals_.back();
        meta.endIdx = size_;
        meta.bounds = meta.bounds.unionWith(record.range);
        return true;
    }

    /**
     * Append a run of store records in bulk (batched dispatch fast
     * path). Equivalent to calling append() once per event — the
     * interval bounds union is associative and size_/endIdx/maxUsage
     * are monotone within the run, so updating the metadata once at
     * the end leaves identical state and stats. Returns the number of
     * records appended; fewer than @p count means the array filled and
     * the caller tracks the rest in the AVL tree.
     */
    std::uint32_t
    appendRun(const Event *events, std::uint32_t count, bool in_epoch)
    {
        const std::uint32_t room =
            static_cast<std::uint32_t>(capacity_) - size_;
        const std::uint32_t n = std::min(count, room);
        if (n == 0)
            return 0;

        if (!intervalOpen_) {
            ClfIntervalMeta meta;
            meta.startIdx = size_;
            meta.endIdx = size_;
            intervals_.push_back(meta);
            intervalOpen_ = true;
        }

        ClfIntervalMeta &meta = intervals_.back();
        AddrRange bounds = meta.bounds;
        LocationRecord *out = records_.data() + size_;
        for (std::uint32_t i = 0; i < n; ++i) {
            const AddrRange range = events[i].range();
            out[i] = LocationRecord(range, FlushState::NotFlushed,
                                    in_epoch, events[i].seq);
            bounds = bounds.unionWith(range);
        }
        size_ += n;
        meta.endIdx = size_;
        meta.bounds = bounds;
        stats_.maxUsage = std::max(stats_.maxUsage, size_);
        return n;
    }

    /**
     * Apply a CLF over @p range (§4.3). Collectively marks intervals
     * whose bounds the CLF covers; scans records of partially covered
     * intervals; split pieces that escape the flush go to @p tree.
     * Afterwards the current CLF interval is closed (§4.3 "starts a
     * new CLF interval").
     */
    FlushOutcome applyFlush(const AddrRange &range, AvlTree &tree);

    /**
     * Fence processing (§4.4): all-flushed intervals are invalidated
     * collectively; surviving records are dropped (if flushed) or moved
     * into @p tree (if not). Resets the array for the next fence
     * interval.
     */
    void processFence(AvlTree &tree);

    /**
     * Array-only ablation fence: drop durable records and compact
     * survivors into a single fresh interval instead of re-distributing
     * them to the tree.
     */
    void compactSurvivors();

    /** True if any live record overlaps @p range. */
    bool overlapsAny(const AddrRange &range) const;

    /**
     * Visit every live record with its *effective* flush state, which
     * folds in the interval's collective state.
     */
    void forEachLive(
        const std::function<void(const LocationRecord &, FlushState)>
            &visit) const;

    /** Count of live records (array only, not the tree). */
    std::uint32_t liveCount() const { return size_; }

    /** Clear the epoch membership flag on all live records (§5). */
    void clearEpochFlags();

    const std::vector<ClfIntervalMeta> &intervals() const
    {
        return intervals_;
    }

    const ArrayStats &stats() const { return stats_; }

    /** Record an overflow store (tracked in the tree instead). */
    void noteOverflow() { ++stats_.overflowStores; }

  private:
    FlushState effectiveState(std::uint32_t idx,
                              const ClfIntervalMeta &meta) const;

    std::vector<LocationRecord> records_;
    std::vector<ClfIntervalMeta> intervals_;
    std::size_t capacity_;
    std::uint32_t size_ = 0;
    /** Whether stores extend the last interval or must start a new one. */
    bool intervalOpen_ = false;
    ArrayStats stats_;
};

} // namespace pmdb

#endif // PMDB_CORE_MEM_ARRAY_HH
