#include "core/cross_failure.hh"

namespace pmdb
{

bool
CrossFailureChecker::check(PmDebugger &debugger, const PmemDevice &device,
                           const Verifier &verify, CrashPolicy policy,
                           SeqNum seq)
{
    CrashSimulator sim(device);
    std::vector<std::uint8_t> image = sim.crashImage(policy);
    const std::string inconsistency = verify(image);
    if (inconsistency.empty())
        return false;

    BugReport report;
    report.type = BugType::CrossFailureSemantic;
    report.seq = seq;
    report.detail = inconsistency;
    debugger.reportBug(report);
    return true;
}

} // namespace pmdb
