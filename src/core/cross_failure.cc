#include "core/cross_failure.hh"

namespace pmdb
{

bool
CrossFailureChecker::check(PmDebugger &debugger, const PmemDevice &device,
                           const Verifier &verify, const CrashPointSpec &at)
{
    return check(
        [&debugger](const BugReport &report) {
            debugger.reportBug(report);
        },
        device, verify, at);
}

bool
CrossFailureChecker::check(const ReportSink &sink,
                           const PmemDevice &device,
                           const Verifier &verify, const CrashPointSpec &at)
{
    CrashSimulator sim(device);
    std::vector<std::uint8_t> image =
        at.landedLines ? sim.partialImage(*at.landedLines)
                       : sim.crashImage(at.policy, at.seed);
    const std::string inconsistency = verify(image);
    if (inconsistency.empty())
        return false;

    BugReport report;
    report.type = BugType::CrossFailureSemantic;
    report.seq = at.seq;
    report.detail = inconsistency;
    sink(report);
    return true;
}

} // namespace pmdb
