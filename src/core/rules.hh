/**
 * @file
 * Bug-detection rules (Sections 4.5 and 5.2).
 *
 * PMDebugger's hierarchical design separates bookkeeping (data
 * structures + store/CLF/fence processing) from detection rules: each
 * rule is a plug-in observing the processed event stream through hooks
 * and querying the bookkeeping space through DebugContext. Adding a
 * rule requires no change to the core — the paper's flexibility claim.
 */

#ifndef PMDB_CORE_RULES_HH
#define PMDB_CORE_RULES_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"
#include "core/location.hh"
#include "core/mem_array.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Visitor over live bookkeeping records with their effective state. */
using LiveVisitor =
    std::function<void(const LocationRecord &, FlushState)>;

/**
 * Tracks durability of the variables named in the order specification.
 * Shared by the fence-checked "no order guarantee" rule (§4.5) and the
 * CLF-checked cross-strand ordering rule (§5.2).
 */
class OrderTracker
{
  public:
    /** Durability state of one watched variable. */
    struct Var
    {
        std::string name;
        AddrRange range;
        bool resolved = false;
        bool stored = false;
        bool durable = false;
        /** Fence index at which the var became durable. */
        std::uint64_t durableAtFence = 0;
        SeqNum lastStoreSeq = 0;
        /** Flushed sub-ranges since the last store (kept merged). */
        std::vector<AddrRange> flushedParts;
    };

    /** Register the variables mentioned by @p spec's constraints. */
    void configure(const OrderSpec &spec);

    /** Resolve a watched name to its address range (Register_pmem). */
    void onRegister(const std::string &name, const AddrRange &range);

    void onStore(const Event &event);
    void onFlush(const Event &event);

    /**
     * Advance the fence index; marks fully flushed, stored vars
     * durable. Returns indices of vars that became durable at this
     * fence.
     */
    std::vector<int> onFence();

    /**
     * True when any variable is watched. The debugger's batched store
     * path hoists this check so unwatched workloads skip the per-store
     * onStore() call entirely.
     */
    bool watching() const { return !vars_.empty(); }

    std::size_t varCount() const { return vars_.size(); }
    const Var &var(int idx) const { return vars_[idx]; }

    /** Constraint pairs as (firstIdx, secondIdx). */
    const std::vector<std::pair<int, int>> &pairs() const { return pairs_; }

    std::uint64_t fenceIndex() const { return fenceIndex_; }

  private:
    int internVar(const std::string &name);
    static bool covered(const std::vector<AddrRange> &parts,
                        const AddrRange &range);

    std::vector<Var> vars_;
    std::vector<std::pair<int, int>> pairs_;
    std::uint64_t fenceIndex_ = 0;
};

/**
 * Query interface the debugger exposes to rules. "Space" refers to the
 * bookkeeping space the current event belongs to (per-strand spaces in
 * the strand model, Section 5.1).
 */
class DebugContext
{
  public:
    virtual BugCollector &bugs() = 0;
    virtual const DebuggerConfig &config() const = 0;

    /** Any live (not yet durable) record overlapping @p range? */
    virtual bool liveOverlaps(const AddrRange &range) const = 0;

    /** Visit live records of the current event's space. */
    virtual void forEachLiveInSpace(const LiveVisitor &visit) const = 0;

    /** Visit live records of every space (program finalize). */
    virtual void forEachLiveAll(const LiveVisitor &visit) const = 0;

    /** Fences seen inside the currently ending epoch section. */
    virtual int epochFenceCount() const = 0;

    virtual const OrderTracker &orders() const = 0;

    /** Watched vars that became durable at the fence being processed. */
    virtual const std::vector<int> &newlyDurableVars() const = 0;

    /** True once any strand section has been observed. */
    virtual bool strandsActive() const = 0;

  protected:
    ~DebugContext() = default;
};

/** Bitmask of the hooks a rule wants to receive. */
enum RuleHooks : unsigned
{
    hookStore = 1u << 0,
    hookFlush = 1u << 1,
    hookFence = 1u << 2,
    hookEpochBegin = 1u << 3,
    hookEpochEnd = 1u << 4,
    hookTxLog = 1u << 5,
    hookFinalize = 1u << 6,
    hookAll = ~0u,
};

/**
 * A bug-detection rule. Hooks are invoked by the debugger after (or,
 * for onStore, before) the corresponding bookkeeping update. hooks()
 * declares which callbacks the rule needs, so store-hot paths skip
 * rules that do not observe stores.
 */
class Rule
{
  public:
    virtual ~Rule() = default;

    virtual const char *name() const = 0;

    /** Which hooks this rule must be called on (default: all). */
    virtual unsigned hooks() const { return hookAll; }

    /** Before the store's record is added to the bookkeeping space. */
    virtual void
    onStore(DebugContext &ctx, const Event &event)
    {
        (void)ctx;
        (void)event;
    }

    /** After a CLF updated the bookkeeping space. */
    virtual void
    onFlush(DebugContext &ctx, const Event &event,
            const FlushOutcome &outcome)
    {
        (void)ctx;
        (void)event;
        (void)outcome;
    }

    /** After fence processing (removal / re-distribution). */
    virtual void
    onFence(DebugContext &ctx, const Event &event)
    {
        (void)ctx;
        (void)event;
    }

    virtual void
    onEpochBegin(DebugContext &ctx, const Event &event)
    {
        (void)ctx;
        (void)event;
    }

    /** At epoch end, after the closing barrier has been processed. */
    virtual void
    onEpochEnd(DebugContext &ctx, const Event &event)
    {
        (void)ctx;
        (void)event;
    }

    virtual void
    onTxLog(DebugContext &ctx, const Event &event)
    {
        (void)ctx;
        (void)event;
    }

    /** At program end, before remaining records are discarded. */
    virtual void
    onFinalize(DebugContext &ctx, SeqNum seq)
    {
        (void)ctx;
        (void)seq;
    }
};

/** @name The nine generalized rules (Sections 4.5, 5.2). */
/** @{ */

/** Location not persisted after its last write (missing CLF or fence). */
class NoDurabilityRule : public Rule
{
  public:
    const char *name() const override { return "no-durability"; }
    unsigned hooks() const override { return hookFinalize; }
    void onFinalize(DebugContext &ctx, SeqNum seq) override;
};

/** Same location overwritten before durability (strict model only). */
class MultipleOverwriteRule : public Rule
{
  public:
    const char *name() const override { return "multiple-overwrite"; }
    unsigned hooks() const override { return hookStore; }
    void onStore(DebugContext &ctx, const Event &event) override;
};

/** Watched persist order violated, checked at fences. */
class NoOrderRule : public Rule
{
  public:
    const char *name() const override { return "no-order-guarantee"; }
    unsigned hooks() const override { return hookFence; }
    void onFence(DebugContext &ctx, const Event &event) override;
};

/** Location flushed again before the nearest fence. */
class RedundantFlushRule : public Rule
{
  public:
    const char *name() const override { return "redundant-flush"; }
    unsigned hooks() const override { return hookFlush; }
    void onFlush(DebugContext &ctx, const Event &event,
                 const FlushOutcome &outcome) override;
};

/** CLF that persists no tracked store. */
class FlushNothingRule : public Rule
{
  public:
    const char *name() const override { return "flush-nothing"; }
    unsigned hooks() const override { return hookFlush; }
    void onFlush(DebugContext &ctx, const Event &event,
                 const FlushOutcome &outcome) override;
};

/** Data object logged more than once within one transaction. */
class RedundantLoggingRule : public Rule
{
  public:
    const char *name() const override { return "redundant-logging"; }
    unsigned hooks() const override { return hookTxLog | hookEpochEnd; }
    void onTxLog(DebugContext &ctx, const Event &event) override;
    void onEpochEnd(DebugContext &ctx, const Event &event) override;

  private:
    std::vector<AddrRange> loggedThisEpoch_;
};

/** Epoch's stores not durable at the epoch's end. */
class LackDurabilityInEpochRule : public Rule
{
  public:
    const char *name() const override { return "lack-durability-in-epoch"; }
    unsigned hooks() const override { return hookEpochEnd; }
    void onEpochEnd(DebugContext &ctx, const Event &event) override;
};

/** More than one fence inside an epoch section. */
class RedundantEpochFenceRule : public Rule
{
  public:
    const char *name() const override { return "redundant-epoch-fence"; }
    unsigned hooks() const override { return hookEpochEnd; }
    void onEpochEnd(DebugContext &ctx, const Event &event) override;
};

/** Cross-strand persist violating a watched order, checked at CLFs. */
class StrandOrderRule : public Rule
{
  public:
    const char *name() const override { return "lack-ordering-in-strands"; }
    unsigned hooks() const override { return hookFlush; }
    void onFlush(DebugContext &ctx, const Event &event,
                 const FlushOutcome &outcome) override;
};

/** @} */

/** Instantiate the rules enabled by @p config. */
std::vector<std::unique_ptr<Rule>> makeStandardRules(
    const DebuggerConfig &config);

} // namespace pmdb

#endif // PMDB_CORE_RULES_HH
