/**
 * @file
 * The unit of bookkeeping: one tracked memory-location record.
 *
 * Each record is the information PMDebugger collects from one store
 * instruction (Section 4.1): the location's address range, its flushing
 * state, and — for the epoch-model extension (Section 5.1) — whether
 * the store came from inside an epoch section.
 */

#ifndef PMDB_CORE_LOCATION_HH
#define PMDB_CORE_LOCATION_HH

#include "common/types.hh"

namespace pmdb
{

/** Flushing state of one tracked memory location. */
enum class FlushState : std::uint8_t
{
    /** Updated by a store, no CLF has covered it yet. */
    NotFlushed,
    /** A CLF covered it; durability pending the next fence. */
    Flushed,
};

/** Information collected from one store instruction (Figure 5, left). */
struct LocationRecord
{
    /** Updated PM byte range. */
    AddrRange range;
    /** Whether a CLF has covered this location since the store. */
    FlushState state = FlushState::NotFlushed;
    /** Store came from inside an epoch section (Section 5.1 extension). */
    bool inEpoch = false;
    /** Sequence number of the originating store. */
    SeqNum storeSeq = 0;

    LocationRecord() = default;
    LocationRecord(AddrRange r, FlushState s, bool epoch, SeqNum seq)
        : range(r), state(s), inEpoch(epoch), storeSeq(seq)
    {
    }
};

} // namespace pmdb

#endif // PMDB_CORE_LOCATION_HH
