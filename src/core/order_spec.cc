#include "core/order_spec.hh"

#include <sstream>

#include "common/logging.hh"

namespace pmdb
{

bool
OrderSpec::parse(const std::string &text, std::string *error)
{
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream words(line);
        std::string directive;
        if (!(words >> directive))
            continue; // blank/comment line
        if (directive == "persist_before") {
            std::string first, second;
            if (!(words >> first >> second)) {
                if (error) {
                    *error = "line " + std::to_string(line_no) +
                             ": persist_before needs two variable names";
                }
                return false;
            }
            add(first, second);
        } else {
            if (error) {
                *error = "line " + std::to_string(line_no) +
                         ": unknown directive '" + directive + "'";
            }
            return false;
        }
    }
    return true;
}

OrderSpec
OrderSpec::fromText(const std::string &text)
{
    OrderSpec spec;
    std::string error;
    if (!spec.parse(text, &error))
        fatal("OrderSpec: " + error);
    return spec;
}

} // namespace pmdb
