/**
 * @file
 * Interval-augmented AVL tree of memory-location records.
 *
 * This is the long-lived half of PMDebugger's hybrid bookkeeping space
 * (Section 4.1): locations whose durability cannot be guaranteed in the
 * short term are re-distributed here at fences, where repeated
 * search/insertion is amortized by the balanced structure. The same
 * tree class (with an eager merge policy) backs the Pmemcheck baseline
 * model, whose per-store tree maintenance is precisely the overhead the
 * paper's characterization shows to be wasted.
 *
 * Nodes are keyed by range start and augmented with the subtree's
 * maximum range end, enabling O(log n + k) overlap queries. Every
 * structural rotation, node merge and rebuild is counted as a "tree
 * reorganization" — the statistic behind the paper's 359,209 vs 788
 * comparison (Section 7.5).
 */

#ifndef PMDB_CORE_AVL_TREE_HH
#define PMDB_CORE_AVL_TREE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/location.hh"

namespace pmdb
{

/** Counters describing tree maintenance work. */
struct TreeStats
{
    std::uint64_t insertions = 0;
    std::uint64_t removals = 0;
    /** Rotations + merges + rebuilds (the paper's "reorganizations"). */
    std::uint64_t reorganizations = 0;
    std::uint64_t merges = 0;
};

/** When adjacent same-state nodes are coalesced. */
enum class MergePolicy
{
    /**
     * Merge only when the node count exceeds a threshold (PMDebugger,
     * Section 4.4: avoids paying restructuring cost per operation).
     */
    Lazy,
    /**
     * Try to merge with neighbours on every insertion (the traditional
     * tree bookkeeping of Pmemcheck-style detectors, Section 2.2).
     */
    Eager,
};

/**
 * AVL tree of LocationRecords keyed by range start.
 *
 * Overlapping inserts are stored as distinct nodes; the flush-update
 * path splits partially covered nodes. The tree never stores empty
 * ranges.
 */
class AvlTree
{
  public:
    explicit AvlTree(MergePolicy policy = MergePolicy::Lazy,
                     std::size_t merge_threshold = 500);

    ~AvlTree();

    AvlTree(const AvlTree &) = delete;
    AvlTree &operator=(const AvlTree &) = delete;

    /** Insert a record (applies the eager merge policy if selected). */
    void insert(const LocationRecord &record);

    /** Number of live nodes. */
    std::size_t size() const { return count_; }

    bool empty() const { return count_ == 0; }

    /** Visit every node overlapping @p range (in key order). */
    void forEachOverlap(const AddrRange &range,
                        const std::function<void(const LocationRecord &)>
                            &visit) const;

    /** True if any node overlaps @p range. */
    bool overlapsAny(const AddrRange &range) const;

    /** True if any node overlapping @p range has state @p state. */
    bool overlapsAnyWithState(const AddrRange &range,
                              FlushState state) const;

    /** Outcome of applying one CLF to the tree. */
    struct FlushOutcome
    {
        /** The CLF overlapped at least one tracked record. */
        bool hitAny = false;
        /** It overlapped at least one not-yet-flushed record. */
        bool hitUnflushed = false;
        /** It overlapped at least one already-flushed record. */
        bool hitFlushed = false;
    };

    /**
     * Apply a CLF over @p range: fully covered nodes become Flushed;
     * partially covered nodes are split (covered piece Flushed,
     * uncovered pieces keep their state), per Section 4.3.
     */
    FlushOutcome applyFlush(const AddrRange &range);

    /**
     * Fence processing (Section 4.4): remove every Flushed node, whose
     * durability the fence now guarantees. @p on_durable is invoked for
     * each removed record.
     */
    void removeFlushed(
        const std::function<void(const LocationRecord &)> &on_durable);

    /**
     * Coalesce adjacent nodes with identical state/epoch flags if the
     * node count exceeds the merge threshold (lazy policy), rebuilding
     * the tree balanced. Called by the debugger after fences.
     */
    void maybeMerge();

    /** Visit all nodes in key order. */
    void forEach(
        const std::function<void(const LocationRecord &)> &visit) const;

    /** Clear the epoch membership flag on every node (Section 5). */
    void clearEpochFlags();

    /** Remove every node (no durability callbacks). */
    void clear();

    const TreeStats &stats() const { return stats_; }

    /** Height of the tree (0 when empty); exposed for property tests. */
    int height() const;

    /** Verify AVL and interval-augmentation invariants (for tests). */
    bool checkInvariants() const;

  private:
    struct Node;

    Node *insertNode(Node *node, const LocationRecord &record);
    Node *removeMin(Node *node, Node *&min_out);
    Node *removeNode(Node *node, Addr start, SeqNum seq, bool &removed);
    Node *rebalance(Node *node);
    Node *rotateLeft(Node *node);
    Node *rotateRight(Node *node);
    static int heightOf(const Node *node);
    static void update(Node *node);
    void destroy(Node *node);
    void collect(const Node *node,
                 std::vector<LocationRecord> &out) const;
    Node *buildBalanced(std::vector<LocationRecord> &records,
                        std::size_t lo, std::size_t hi);
    void rebuildFrom(std::vector<LocationRecord> &records);
    void eagerMergeAround(const LocationRecord &record);

    Node *root_ = nullptr;
    std::size_t count_ = 0;
    /** Number of nodes currently in the Flushed state (fast path for
     * fence processing: nothing to remove when zero). */
    std::size_t flushedCount_ = 0;
    /** Node count at the last merge attempt that coalesced nothing;
     * re-attempting before the tree grows past it again is wasted. */
    std::size_t lastBarrenMergeCount_ = 0;
    MergePolicy policy_;
    std::size_t mergeThreshold_;
    TreeStats stats_;
};

} // namespace pmdb

#endif // PMDB_CORE_AVL_TREE_HH
