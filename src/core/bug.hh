/**
 * @file
 * Bug taxonomy and reporting.
 *
 * The ten bug types of Table 6: five common to all persistency models
 * (Section 4.5), four specific to relaxed models (Section 5.2), plus
 * cross-failure semantic bugs (Section 7.3).
 */

#ifndef PMDB_CORE_BUG_HH
#define PMDB_CORE_BUG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pmdb
{

/** The ten crash-consistency bug types of Table 6. */
enum class BugType : std::uint8_t
{
    /** A PM location is not persisted after its last write (§4.5). */
    NoDurability,
    /** Same location written again before its durability is guaranteed. */
    MultipleOverwrite,
    /** Required persist order between two variables is violated. */
    NoOrderGuarantee,
    /** A location is flushed again before the nearest fence (perf bug). */
    RedundantFlush,
    /** A CLF that persists no prior store (perf bug). */
    FlushNothing,
    /** A data object logged more than once in one transaction (perf bug). */
    RedundantLogging,
    /** Locations updated in an epoch are not durable at epoch end. */
    LackDurabilityInEpoch,
    /** More than one fence inside an epoch section (perf bug). */
    RedundantEpochFence,
    /** Cross-strand persists violate a required order. */
    LackOrderingInStrands,
    /** Recovery reads semantically inconsistent (non-durable) data. */
    CrossFailureSemantic,
};

/** Number of distinct bug types. */
constexpr int bugTypeCount = 10;

/** Short name used in reports and the Table 6 harness. */
const char *toString(BugType type);

/** Distinguishes the two causes of a NoDurability report. */
enum class DurabilityCause : std::uint8_t
{
    NotApplicable,
    /** Location was never flushed: the program is missing a CLF. */
    MissingFlush,
    /** Location was flushed but never fenced: missing a fence. */
    MissingFence,
};

/** One detected bug occurrence. */
struct BugReport
{
    BugType type = BugType::NoDurability;
    /** PM range the bug concerns (empty for e.g. redundant epoch fence). */
    AddrRange range;
    /** Event sequence number at which the bug was detected. */
    SeqNum seq = 0;
    DurabilityCause cause = DurabilityCause::NotApplicable;
    /** Human-readable explanation. */
    std::string detail;
    /**
     * Optional *stable* context a rule attaches to distinguish
     * same-site reports (e.g. the constraint pair of an ordering rule).
     * Unlike @ref detail it must not embed run-dependent data (sequence
     * numbers, counts): it is hashed into the bug's fingerprint.
     */
    std::string context;

    std::string toString() const;
};

/**
 * Stable identity of a bug site: rule id + canonicalized address range
 * + a hash of the rule's stable context (durability cause plus
 * BugReport::context). Two detections of the same program bug — in the
 * same run, across replays of the same trace, or across a trace and its
 * minimized witness — produce equal fingerprints, while the detection
 * seq and prose detail are deliberately excluded. This is the
 * minimizer's "same bug still present?" oracle and the dedup key of
 * BugCollector.
 */
struct BugFingerprint
{
    BugType type = BugType::NoDurability;
    /** Canonical half-open range; empty ranges normalize to [0, 0). */
    Addr start = 0;
    Addr end = 0;
    std::uint64_t contextHash = 0;

    auto operator<=>(const BugFingerprint &) const = default;

    /** Combined 64-bit hash (for unordered containers / caches). */
    std::uint64_t hash() const;

    /** Stable text form: "<rule>@0x<start>+<size>#<context hash>". */
    std::string toString() const;
};

/** Compute the fingerprint of a report. */
BugFingerprint fingerprintOf(const BugReport &report);

/**
 * Collects bug reports, deduplicating repeat detections of the same
 * fingerprint so that loops do not inflate bug counts: a "bug" in the
 * Table 6 sense is a unique program site.
 */
class BugCollector
{
  public:
    /** Record a detection; returns true if this is a new site. */
    bool report(const BugReport &report);

    const std::vector<BugReport> &bugs() const { return bugs_; }

    /** Unique sites of @p type. */
    std::size_t countOf(BugType type) const;

    /** Unique sites across all types. */
    std::size_t total() const { return bugs_.size(); }

    /** Total detections including deduplicated repeats. */
    std::uint64_t occurrences() const { return occurrences_; }

    bool hasAny(BugType type) const { return countOf(type) > 0; }

    /** Whether a bug with exactly this fingerprint was reported. */
    bool has(const BugFingerprint &fingerprint) const
    {
        return sites_.count(fingerprint) > 0;
    }

    /** The report behind @p fingerprint, or null. */
    const BugReport *find(const BugFingerprint &fingerprint) const;

    /** Fingerprints of all unique sites, in report order. */
    std::vector<BugFingerprint> fingerprints() const;

    void clear();

    /** Render a pmemcheck-style bug summary. */
    std::string summary() const;

  private:
    std::vector<BugReport> bugs_;
    std::map<BugFingerprint, std::size_t> sites_;
    std::uint64_t occurrences_ = 0;
};

} // namespace pmdb

#endif // PMDB_CORE_BUG_HH
