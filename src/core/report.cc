#include "core/report.hh"

#include <sstream>

namespace pmdb
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
appendBugs(std::ostringstream &out, const BugCollector &bugs)
{
    out << "\"total_sites\": " << bugs.total()
        << ", \"occurrences\": " << bugs.occurrences()
        << ", \"by_type\": {";
    bool first = true;
    for (int t = 0; t < bugTypeCount; ++t) {
        const auto type = static_cast<BugType>(t);
        const std::size_t n = bugs.countOf(type);
        if (!n)
            continue;
        if (!first)
            out << ", ";
        first = false;
        out << '"' << toString(type) << "\": " << n;
    }
    out << "}, \"bugs\": [";
    first = true;
    for (const BugReport &bug : bugs.bugs()) {
        if (!first)
            out << ", ";
        first = false;
        out << "{\"type\": \"" << toString(bug.type) << "\", "
            << "\"fingerprint\": \""
            << fingerprintOf(bug).toString() << "\", "
            << "\"start\": " << bug.range.start << ", "
            << "\"end\": " << bug.range.end << ", "
            << "\"seq\": " << bug.seq << ", "
            << "\"cause\": \""
            << (bug.cause == DurabilityCause::MissingFlush
                    ? "missing-flush"
                    : bug.cause == DurabilityCause::MissingFence
                          ? "missing-fence"
                          : "n/a")
            << "\", \"detail\": \"" << jsonEscape(bug.detail) << "\"}";
    }
    out << "]";
}

} // namespace

std::string
reportToJson(const BugCollector &bugs)
{
    std::ostringstream out;
    out << "{";
    appendBugs(out, bugs);
    out << "}";
    return out.str();
}

std::string
reportToJson(const BugCollector &bugs, const DebuggerStats &stats)
{
    std::ostringstream out;
    out << "{";
    appendBugs(out, bugs);
    out << ", \"stats\": {"
        << "\"stores\": " << stats.stores
        << ", \"flushes\": " << stats.flushes
        << ", \"fences\": " << stats.fences
        << ", \"epochs\": " << stats.epochs
        << ", \"avg_tree_nodes_per_fence_interval\": "
        << stats.avgTreeNodesPerFenceInterval()
        << ", \"tree_reorganizations\": " << stats.tree.reorganizations
        << ", \"collective_invalidations\": "
        << stats.array.collectiveInvalidations
        << ", \"records_moved_to_tree\": "
        << stats.array.recordsMovedToTree << "}}";
    return out.str();
}

} // namespace pmdb
