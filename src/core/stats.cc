#include "core/stats.hh"

#include <sstream>

namespace pmdb
{

std::string
DebuggerStats::toString() const
{
    std::ostringstream out;
    out << "stores=" << stores << " flushes=" << flushes
        << " fences=" << fences << " epochs=" << epochs
        << "\navg tree nodes/fence interval="
        << avgTreeNodesPerFenceInterval()
        << "\ntree: insertions=" << tree.insertions
        << " removals=" << tree.removals
        << " reorganizations=" << tree.reorganizations
        << " merges=" << tree.merges
        << "\narray: collective invalidations="
        << array.collectiveInvalidations
        << " records collectively freed=" << array.recordsCollectivelyFreed
        << " moved to tree=" << array.recordsMovedToTree
        << " dropped individually=" << array.recordsDroppedIndividually
        << " overflow stores=" << array.overflowStores
        << " max usage=" << array.maxUsage;
    return out.str();
}

} // namespace pmdb
