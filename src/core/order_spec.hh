/**
 * @file
 * Programmer-supplied persist-order specification (Sections 4.5, 8).
 *
 * To detect "no order guarantee" bugs the programmer states, once, in a
 * debugger configuration file, which variable must be persisted before
 * which. Variables are program symbols resolved at runtime through
 * Register_pmem events. Grammar (one directive per line, '#' comments):
 *
 *     persist_before <firstVar> <secondVar>
 *
 * meaning: <firstVar> must be durable strictly before <secondVar>.
 */

#ifndef PMDB_CORE_ORDER_SPEC_HH
#define PMDB_CORE_ORDER_SPEC_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace pmdb
{

/** One ordering constraint: first must persist before second. */
struct OrderConstraint
{
    std::string firstVar;
    std::string secondVar;
};

/** Parsed order-specification configuration. */
class OrderSpec
{
  public:
    OrderSpec() = default;

    /**
     * Parse directives from @p text. Returns false (and fills
     * @p error) on malformed input.
     */
    bool parse(const std::string &text, std::string *error = nullptr);

    /** Convenience: parse, aborting via fatal() on error. */
    static OrderSpec fromText(const std::string &text);

    void
    add(const std::string &first, const std::string &second)
    {
        constraints_.push_back({first, second});
    }

    const std::vector<OrderConstraint> &constraints() const
    {
        return constraints_;
    }

    bool empty() const { return constraints_.empty(); }

  private:
    std::vector<OrderConstraint> constraints_;
};

} // namespace pmdb

#endif // PMDB_CORE_ORDER_SPEC_HH
