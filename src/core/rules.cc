#include "core/rules.hh"

#include <algorithm>
#include <memory>

namespace pmdb
{

int
OrderTracker::internVar(const std::string &name)
{
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (vars_[i].name == name)
            return static_cast<int>(i);
    }
    Var var;
    var.name = name;
    vars_.push_back(std::move(var));
    return static_cast<int>(vars_.size() - 1);
}

void
OrderTracker::configure(const OrderSpec &spec)
{
    for (const OrderConstraint &c : spec.constraints()) {
        const int first = internVar(c.firstVar);
        const int second = internVar(c.secondVar);
        pairs_.emplace_back(first, second);
    }
}

void
OrderTracker::onRegister(const std::string &name, const AddrRange &range)
{
    for (Var &var : vars_) {
        if (var.name == name) {
            // Re-registration re-binds the symbol (e.g. per-operation
            // "pending" variables); durability state starts fresh.
            var.range = range;
            var.resolved = true;
            var.stored = false;
            var.durable = false;
            var.flushedParts.clear();
        }
    }
}

void
OrderTracker::onStore(const Event &event)
{
    const AddrRange range = event.range();
    for (Var &var : vars_) {
        if (var.resolved && var.range.overlaps(range)) {
            var.stored = true;
            var.durable = false;
            var.flushedParts.clear();
            var.lastStoreSeq = event.seq;
        }
    }
}

void
OrderTracker::onFlush(const Event &event)
{
    const AddrRange range = event.range();
    for (Var &var : vars_) {
        if (!var.resolved || var.durable || !var.stored)
            continue;
        const AddrRange part = var.range.intersect(range);
        if (part.empty())
            continue;
        // Merge the new part into the kept-sorted coverage list.
        var.flushedParts.push_back(part);
        std::sort(var.flushedParts.begin(), var.flushedParts.end(),
                  [](const AddrRange &a, const AddrRange &b) {
                      return a.start < b.start;
                  });
        std::vector<AddrRange> merged;
        for (const AddrRange &p : var.flushedParts) {
            if (!merged.empty() &&
                merged.back().adjacentOrOverlapping(p)) {
                merged.back() = merged.back().unionWith(p);
            } else {
                merged.push_back(p);
            }
        }
        var.flushedParts = std::move(merged);
    }
}

bool
OrderTracker::covered(const std::vector<AddrRange> &parts,
                      const AddrRange &range)
{
    // Parts are kept merged and sorted, so full coverage means a single
    // part contains the range.
    for (const AddrRange &p : parts) {
        if (p.contains(range))
            return true;
    }
    return false;
}

std::vector<int>
OrderTracker::onFence()
{
    ++fenceIndex_;
    std::vector<int> newly_durable;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        Var &var = vars_[i];
        if (var.resolved && var.stored && !var.durable &&
            covered(var.flushedParts, var.range)) {
            var.durable = true;
            var.durableAtFence = fenceIndex_;
            newly_durable.push_back(static_cast<int>(i));
        }
    }
    return newly_durable;
}

void
NoDurabilityRule::onFinalize(DebugContext &ctx, SeqNum seq)
{
    if (!ctx.config().detectNoDurability)
        return;
    ctx.forEachLiveAll([&](const LocationRecord &rec, FlushState state) {
        BugReport report;
        report.type = BugType::NoDurability;
        report.range = rec.range;
        report.seq = seq;
        if (state == FlushState::Flushed) {
            report.cause = DurabilityCause::MissingFence;
            report.detail = "flushed but never fenced";
        } else {
            report.cause = DurabilityCause::MissingFlush;
            report.detail = "never flushed";
        }
        ctx.bugs().report(report);
    });
}

void
MultipleOverwriteRule::onStore(DebugContext &ctx, const Event &event)
{
    // Multiple overwrites are only a bug under strict persistency;
    // relaxed models permit reordering/coalescing within an epoch
    // (Section 4.5).
    if (ctx.config().model != PersistencyModel::Strict ||
        !ctx.config().detectMultipleOverwrite) {
        return;
    }
    if (ctx.liveOverlaps(event.range())) {
        BugReport report;
        report.type = BugType::MultipleOverwrite;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "written again before durability was guaranteed";
        ctx.bugs().report(report);
    }
}

void
NoOrderRule::onFence(DebugContext &ctx, const Event &event)
{
    if (!ctx.config().detectNoOrderGuarantee)
        return;
    const OrderTracker &orders = ctx.orders();
    for (int second : ctx.newlyDurableVars()) {
        for (const auto &[x, y] : orders.pairs()) {
            if (y != second)
                continue;
            const OrderTracker::Var &first = orders.var(x);
            if (!first.stored)
                continue; // X never written: no order to enforce yet
            const bool x_strictly_earlier =
                first.durable &&
                first.durableAtFence < orders.fenceIndex();
            if (!x_strictly_earlier) {
                BugReport report;
                report.type = BugType::NoOrderGuarantee;
                report.range = orders.var(y).range;
                report.seq = event.seq;
                report.context = first.name + "<" + orders.var(y).name;
                report.detail = "'" + orders.var(y).name +
                                "' became durable before '" + first.name +
                                "'";
                ctx.bugs().report(report);
            }
        }
    }
}

void
RedundantFlushRule::onFlush(DebugContext &ctx, const Event &event,
                            const FlushOutcome &outcome)
{
    if (!ctx.config().detectRedundantFlush)
        return;
    if (outcome.hitAny && !outcome.hitUnflushed) {
        BugReport report;
        report.type = BugType::RedundantFlush;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "every store covered by this CLF was already "
                        "flushed before the nearest fence";
        ctx.bugs().report(report);
    }
}

void
FlushNothingRule::onFlush(DebugContext &ctx, const Event &event,
                          const FlushOutcome &outcome)
{
    if (!ctx.config().detectFlushNothing)
        return;
    if (!outcome.hitAny) {
        BugReport report;
        report.type = BugType::FlushNothing;
        report.range = event.range();
        report.seq = event.seq;
        report.detail = "CLF persists no prior store";
        ctx.bugs().report(report);
    }
}

void
RedundantLoggingRule::onTxLog(DebugContext &ctx, const Event &event)
{
    if (!ctx.config().detectRedundantLogging)
        return;
    const AddrRange range = event.range();
    for (const AddrRange &logged : loggedThisEpoch_) {
        if (logged.overlaps(range)) {
            BugReport report;
            report.type = BugType::RedundantLogging;
            report.range = range;
            report.seq = event.seq;
            report.detail =
                "data object logged more than once in one transaction";
            ctx.bugs().report(report);
            break;
        }
    }
    loggedThisEpoch_.push_back(range);
}

void
RedundantLoggingRule::onEpochEnd(DebugContext &ctx, const Event &event)
{
    (void)ctx;
    (void)event;
    loggedThisEpoch_.clear();
}

void
LackDurabilityInEpochRule::onEpochEnd(DebugContext &ctx, const Event &event)
{
    if (!ctx.config().detectLackDurabilityInEpoch)
        return;
    // The epoch's closing barrier has already been processed (§5.2):
    // any record still alive and flagged in-epoch lacks durability.
    ctx.forEachLiveInSpace(
        [&](const LocationRecord &rec, FlushState state) {
            (void)state;
            if (!rec.inEpoch)
                return;
            BugReport report;
            report.type = BugType::LackDurabilityInEpoch;
            report.range = rec.range;
            report.seq = event.seq;
            report.detail =
                "store from the epoch is not durable at epoch end";
            ctx.bugs().report(report);
        });
}

void
RedundantEpochFenceRule::onEpochEnd(DebugContext &ctx, const Event &event)
{
    if (!ctx.config().detectRedundantEpochFence)
        return;
    const int fences = ctx.epochFenceCount();
    if (fences > 1) {
        BugReport report;
        report.type = BugType::RedundantEpochFence;
        report.seq = event.seq;
        report.detail = std::to_string(fences) +
                        " fences inside one epoch section";
        ctx.bugs().report(report);
    }
}

void
StrandOrderRule::onFlush(DebugContext &ctx, const Event &event,
                         const FlushOutcome &outcome)
{
    (void)outcome;
    if (!ctx.config().detectLackOrderingInStrands || !ctx.strandsActive())
        return;
    const OrderTracker &orders = ctx.orders();
    const AddrRange range = event.range();
    for (const auto &[x, y] : orders.pairs()) {
        const OrderTracker::Var &first = orders.var(x);
        const OrderTracker::Var &second = orders.var(y);
        if (!second.resolved || !second.range.overlaps(range))
            continue;
        if (first.stored && !first.durable) {
            BugReport report;
            report.type = BugType::LackOrderingInStrands;
            report.range = second.range;
            report.seq = event.seq;
            report.context = first.name + "<" + second.name;
            report.detail = "strand " + std::to_string(event.strand) +
                            " persists '" + second.name + "' before '" +
                            first.name + "' is durable";
            ctx.bugs().report(report);
        }
    }
}

std::vector<std::unique_ptr<Rule>>
makeStandardRules(const DebuggerConfig &config)
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<NoDurabilityRule>());
    if (config.model == PersistencyModel::Strict)
        rules.push_back(std::make_unique<MultipleOverwriteRule>());
    rules.push_back(std::make_unique<NoOrderRule>());
    rules.push_back(std::make_unique<RedundantFlushRule>());
    rules.push_back(std::make_unique<FlushNothingRule>());
    rules.push_back(std::make_unique<RedundantLoggingRule>());
    rules.push_back(std::make_unique<LackDurabilityInEpochRule>());
    rules.push_back(std::make_unique<RedundantEpochFenceRule>());
    if (config.model == PersistencyModel::Strand)
        rules.push_back(std::make_unique<StrandOrderRule>());
    return rules;
}

} // namespace pmdb
