/**
 * @file
 * PMDebugger: the paper's fast, flexible, comprehensive PM bug
 * detector (Section 4).
 *
 * PmDebugger consumes the instrumented event stream and maintains a
 * hierarchical bookkeeping space per strand: a fixed-size
 * memory-location array with CLF-interval metadata for the current
 * fence interval, and an AVL tree for locations whose durability is
 * not guaranteed in the short term. Detection rules observe the
 * processed stream through hooks (Sections 4.5, 5.2).
 *
 * Event processing follows the paper exactly:
 *  - store  (§4.2): append to the array (or the tree on overflow) and
 *    extend the current CLF interval's metadata;
 *  - CLF    (§4.3): collective metadata update where the CLF covers an
 *    interval's bounds; record-level scan and split otherwise; then the
 *    tree; then a new CLF interval begins;
 *  - fence  (§4.4): prune the tree first, then collectively invalidate
 *    all-flushed intervals and re-distribute survivors into the tree,
 *    merging tree nodes lazily past the threshold.
 */

#ifndef PMDB_CORE_DEBUGGER_HH
#define PMDB_CORE_DEBUGGER_HH

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"
#include "core/mem_array.hh"
#include "core/rules.hh"
#include "core/stats.hh"
#include "telemetry/metrics.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** The PMDebugger detector. */
class PmDebugger : public TraceSink, public DebugContext
{
  public:
    explicit PmDebugger(DebuggerConfig config = {});
    ~PmDebugger();

    PmDebugger(const PmDebugger &) = delete;
    PmDebugger &operator=(const PmDebugger &) = delete;

    /**
     * Sample 1 event in 2^telemetrySampleShift into the eval-latency
     * histograms. 1024 keeps the two clock reads plus histogram
     * update per sample under the telemetry budget (<2% of dispatch,
     * see bench/telemetry_bench) while a busy session still lands
     * thousands of samples per second.
     */
    static constexpr std::uint64_t telemetrySampleShift = 10;

    /**
     * TraceSink: process one instrumented event. Every 1024th event
     * is timed into the per-rule-class eval histograms
     * (detector.eval_ns{class=...}) — sampling keeps the clock reads
     * off the common path while the log2 buckets still converge to
     * the true latency distribution.
     */
    void handle(const Event &event) override
    {
        constexpr std::uint64_t mask =
            (std::uint64_t{1} << telemetrySampleShift) - 1;
        if ((++telemetryTick_ & mask) == 0 && telemetry::enabled())
            handleEventTimed(event);
        else
            handleEvent(event);
    }

    /**
     * TraceSink: batched fast path. Runs of consecutive Store events in
     * the same strand bypass the per-event EventKind switch and go
     * straight into the bookkeeping space with the space lookup, rule
     * list and mode checks hoisted out of the loop. Per-event order and
     * all counters are preserved exactly, so results are bit-identical
     * to per-event dispatch.
     */
    void handleBatch(const Event *events, std::size_t count) override;

    void attached(const NameTable &names) override;

    /**
     * Register a user-supplied detection rule — the flexibility API:
     * rules plug into the same hooks as the built-in nine.
     */
    void addRule(std::unique_ptr<Rule> rule);

    /** Run finalize rules (also triggered by a ProgramEnd event). */
    void finalize();

    const BugCollector &bugs() const { return bugs_; }

    /**
     * Funnel an externally detected bug (e.g. a cross-failure semantic
     * inconsistency found by CrossFailureChecker) into this debugger's
     * report.
     */
    void reportBug(const BugReport &report) { bugs_.report(report); }

    /** Aggregated statistics across all bookkeeping spaces. */
    DebuggerStats stats() const;

    const DebuggerConfig &configuration() const { return config_; }

    /** @name DebugContext (rule query interface). */
    /** @{ */
    BugCollector &bugs() override { return bugs_; }
    const DebuggerConfig &config() const override { return config_; }
    bool liveOverlaps(const AddrRange &range) const override;
    void forEachLiveInSpace(const LiveVisitor &visit) const override;
    void forEachLiveAll(const LiveVisitor &visit) const override;
    int epochFenceCount() const override { return epochFences_; }
    const OrderTracker &orders() const override { return orderTracker_; }
    const std::vector<int> &newlyDurableVars() const override
    {
        return newlyDurable_;
    }
    bool strandsActive() const override { return strandsActive_; }
    /** @} */

    /** Number of live AVL nodes across all spaces (Fig 11 probing). */
    std::size_t treeNodeCount() const;

  private:
    /** One bookkeeping space: per-strand in the strand model (§5.1). */
    struct Space
    {
        Space(std::size_t array_capacity, std::size_t merge_threshold)
            : array(array_capacity),
              tree(MergePolicy::Lazy, merge_threshold)
        {
        }

        MemoryLocationArray array;
        AvlTree tree;
    };

    Space &spaceFor(StrandId strand);
    const Space &currentSpace() const;
    void indexRule(Rule *rule);

    /** The event-kind dispatch switch behind handle(). */
    void handleEvent(const Event &event);
    /** handleEvent with sampled per-class eval timing (telemetry). */
    void handleEventTimed(const Event &event);

    void processStore(const Event &event);
    void processStoreRun(const Event *events, std::size_t count);
    void processFlush(const Event &event);
    void processFence(const Event &event);
    void processEpochBegin(const Event &event);
    void processEpochEnd(const Event &event);
    void processRegister(const Event &event);
    void fenceSpace(Space &space);
    void forEachLiveOf(const Space &space, const LiveVisitor &visit) const;

    DebuggerConfig config_;
    std::unique_ptr<Space> mainSpace_;
    std::map<StrandId, std::unique_ptr<Space>> strandSpaces_;
    Space *current_ = nullptr;

    std::vector<std::unique_ptr<Rule>> rules_;
    /** Per-hook dispatch lists built from each rule's hooks() mask. */
    std::vector<Rule *> storeRules_;
    std::vector<Rule *> flushRules_;
    std::vector<Rule *> fenceRules_;
    std::vector<Rule *> epochBeginRules_;
    std::vector<Rule *> epochEndRules_;
    std::vector<Rule *> txLogRules_;
    std::vector<Rule *> finalizeRules_;
    BugCollector bugs_;
    DebuggerStats base_;
    OrderTracker orderTracker_;
    std::vector<int> newlyDurable_;

    const NameTable *names_ = nullptr;
    std::unordered_map<std::string, AddrRange> registered_;

    int epochDepth_ = 0;
    int epochFences_ = 0;
    bool strandsActive_ = false;
    bool finalized_ = false;
    SeqNum lastSeq_ = 0;
    /** Event counter driving the 1-in-64 eval-timing sample. */
    std::uint64_t telemetryTick_ = 0;
};

} // namespace pmdb

#endif // PMDB_CORE_DEBUGGER_HH
