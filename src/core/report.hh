/**
 * @file
 * Machine-readable bug-report rendering: JSON output for CI pipelines
 * and the CLI tools, mirroring the summary pmemcheck prints at exit.
 */

#ifndef PMDB_CORE_REPORT_HH
#define PMDB_CORE_REPORT_HH

#include <string>

#include "core/bug.hh"
#include "core/stats.hh"

namespace pmdb
{

/** Render a bug collection as a JSON document. */
std::string reportToJson(const BugCollector &bugs);

/** Render a bug collection plus bookkeeping statistics as JSON. */
std::string reportToJson(const BugCollector &bugs,
                         const DebuggerStats &stats);

/** Escape a string for inclusion in a JSON document. */
std::string jsonEscape(const std::string &text);

} // namespace pmdb

#endif // PMDB_CORE_REPORT_HH
