/**
 * @file
 * Cross-failure semantic bug checking (Section 7.3).
 *
 * A cross-failure semantic bug means the program reads semantically
 * inconsistent data during post-failure execution. Valgrind-style
 * instrumentation cannot pause/resume the program at failure points,
 * so — exactly as the paper does — the recovery program is invoked
 * explicitly: CrossFailureChecker materializes the crash image the
 * device would leave behind and runs a workload-supplied recovery
 * verifier over it. Any reported inconsistency is funnelled into the
 * debugger's bug collector as a CrossFailureSemantic bug.
 */

#ifndef PMDB_CORE_CROSS_FAILURE_HH
#define PMDB_CORE_CROSS_FAILURE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/debugger.hh"
#include "pmem/device.hh"

namespace pmdb
{

/**
 * An explicit crash point: where in the trace the failure is injected
 * (seq, for bug-report provenance) and which flushed-but-unfenced
 * lines reach durability at that instant.
 *
 * When @ref landedLines is set, exactly those pending cache lines land
 * (CrashSimulator::partialImage); otherwise the whole pending set is
 * resolved by @ref policy — DropPending, CommitPending, or the seeded
 * RandomPending coin-flip.
 */
struct CrashPointSpec
{
    /** Sequence number of the injected failure, for provenance. */
    SeqNum seq = 0;
    /** Pending-set resolution when landedLines is not given. */
    CrashPolicy policy = CrashPolicy::DropPending;
    /** Exact pending-line subset (cache-line indices) that lands. */
    std::optional<std::vector<std::uint64_t>> landedLines;
    /** Seed for CrashPolicy::RandomPending. */
    std::uint64_t seed = 1;
};

/** Runs recovery verifiers against simulated crash images. */
class CrossFailureChecker
{
  public:
    /**
     * A recovery verifier inspects a crash image (a full copy of the
     * device's address space as a crash would leave it) and returns an
     * empty string if the recovered state is consistent, or a
     * description of the semantic inconsistency otherwise.
     */
    using Verifier =
        std::function<std::string(const std::vector<std::uint8_t> &image)>;

    /** Receives the CrossFailureSemantic report when one is found. */
    using ReportSink = std::function<void(const BugReport &)>;

    /**
     * Materialize @p device's crash image at crash point @p at and run
     * @p verify over it. On inconsistency, report a
     * CrossFailureSemantic bug through @p debugger, stamped with the
     * crash point's seq. Returns true if a bug was found.
     */
    static bool check(PmDebugger &debugger, const PmemDevice &device,
                      const Verifier &verify,
                      const CrashPointSpec &at = {});

    /**
     * Same check, but the report goes to an arbitrary @p sink — how
     * detection-service clients funnel cross-failure findings to the
     * daemon when no PmDebugger runs in-process.
     */
    static bool check(const ReportSink &sink, const PmemDevice &device,
                      const Verifier &verify,
                      const CrashPointSpec &at = {});
};

} // namespace pmdb

#endif // PMDB_CORE_CROSS_FAILURE_HH
