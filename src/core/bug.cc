#include "core/bug.hh"

#include <cstdio>
#include <sstream>

#include "telemetry/metrics.hh"

namespace pmdb
{

const char *
toString(BugType type)
{
    switch (type) {
      case BugType::NoDurability:          return "no-durability";
      case BugType::MultipleOverwrite:     return "multiple-overwrite";
      case BugType::NoOrderGuarantee:      return "no-order-guarantee";
      case BugType::RedundantFlush:        return "redundant-flush";
      case BugType::FlushNothing:          return "flush-nothing";
      case BugType::RedundantLogging:      return "redundant-logging";
      case BugType::LackDurabilityInEpoch: return "lack-durability-in-epoch";
      case BugType::RedundantEpochFence:   return "redundant-epoch-fence";
      case BugType::LackOrderingInStrands: return "lack-ordering-in-strands";
      case BugType::CrossFailureSemantic:  return "cross-failure-semantic";
    }
    return "unknown";
}

std::string
BugReport::toString() const
{
    std::ostringstream out;
    out << pmdb::toString(type);
    if (!range.empty())
        out << " at " << range.toString();
    if (cause == DurabilityCause::MissingFlush)
        out << " (missing CLF)";
    else if (cause == DurabilityCause::MissingFence)
        out << " (missing fence)";
    if (!detail.empty())
        out << ": " << detail;
    out << " [seq " << seq << "]";
    return out.str();
}

namespace
{

/** FNV-1a, the project's stock non-cryptographic string hash. */
std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

std::uint64_t
BugFingerprint::hash() const
{
    std::uint64_t h = fnv1a(&type, sizeof(type));
    h = fnv1a(&start, sizeof(start), h);
    h = fnv1a(&end, sizeof(end), h);
    h = fnv1a(&contextHash, sizeof(contextHash), h);
    return h;
}

std::string
BugFingerprint::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s@0x%llx+%llu#%08llx",
                  pmdb::toString(type),
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end - start),
                  static_cast<unsigned long long>(contextHash));
    return buf;
}

BugFingerprint
fingerprintOf(const BugReport &report)
{
    BugFingerprint fp;
    fp.type = report.type;
    if (!report.range.empty()) {
        fp.start = report.range.start;
        fp.end = report.range.end;
    }
    // Context = the rule's stable discriminators only. The prose detail
    // and detection seq are excluded on purpose: they shift when a
    // trace is sliced or replayed, and the fingerprint must not.
    const auto cause = static_cast<std::uint8_t>(report.cause);
    std::uint64_t h = fnv1a(&cause, sizeof(cause));
    h = fnv1a(report.context.data(), report.context.size(), h);
    fp.contextHash = h & 0xffffffffULL; // 32 bits read fine in reports
    return fp;
}

bool
BugCollector::report(const BugReport &report)
{
    ++occurrences_;
    auto [it, inserted] =
        sites_.try_emplace(fingerprintOf(report), bugs_.size());
    if (!inserted)
        return false;
    bugs_.push_back(report);
    if (telemetry::enabled()) {
        static telemetry::Counter &reported =
            telemetry::Registry::global().counter(
                "detector.bugs_reported");
        reported.add(1);
    }
    return true;
}

const BugReport *
BugCollector::find(const BugFingerprint &fingerprint) const
{
    auto it = sites_.find(fingerprint);
    return it == sites_.end() ? nullptr : &bugs_[it->second];
}

std::vector<BugFingerprint>
BugCollector::fingerprints() const
{
    std::vector<BugFingerprint> fps;
    fps.reserve(bugs_.size());
    for (const BugReport &bug : bugs_)
        fps.push_back(fingerprintOf(bug));
    return fps;
}

std::size_t
BugCollector::countOf(BugType type) const
{
    std::size_t n = 0;
    for (const auto &bug : bugs_) {
        if (bug.type == type)
            ++n;
    }
    return n;
}

void
BugCollector::clear()
{
    bugs_.clear();
    sites_.clear();
    occurrences_ = 0;
}

std::string
BugCollector::summary() const
{
    std::ostringstream out;
    out << "Bug summary: " << bugs_.size() << " unique site(s), "
        << occurrences_ << " detection(s)\n";
    for (int t = 0; t < bugTypeCount; ++t) {
        const auto type = static_cast<BugType>(t);
        const std::size_t n = countOf(type);
        if (n)
            out << "  " << pmdb::toString(type) << ": " << n << "\n";
    }
    for (const auto &bug : bugs_)
        out << "  - " << bug.toString() << "\n";
    return out.str();
}

} // namespace pmdb
