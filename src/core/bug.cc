#include "core/bug.hh"

#include <sstream>

namespace pmdb
{

const char *
toString(BugType type)
{
    switch (type) {
      case BugType::NoDurability:          return "no-durability";
      case BugType::MultipleOverwrite:     return "multiple-overwrite";
      case BugType::NoOrderGuarantee:      return "no-order-guarantee";
      case BugType::RedundantFlush:        return "redundant-flush";
      case BugType::FlushNothing:          return "flush-nothing";
      case BugType::RedundantLogging:      return "redundant-logging";
      case BugType::LackDurabilityInEpoch: return "lack-durability-in-epoch";
      case BugType::RedundantEpochFence:   return "redundant-epoch-fence";
      case BugType::LackOrderingInStrands: return "lack-ordering-in-strands";
      case BugType::CrossFailureSemantic:  return "cross-failure-semantic";
    }
    return "unknown";
}

std::string
BugReport::toString() const
{
    std::ostringstream out;
    out << pmdb::toString(type);
    if (!range.empty())
        out << " at " << range.toString();
    if (cause == DurabilityCause::MissingFlush)
        out << " (missing CLF)";
    else if (cause == DurabilityCause::MissingFence)
        out << " (missing fence)";
    if (!detail.empty())
        out << ": " << detail;
    out << " [seq " << seq << "]";
    return out.str();
}

bool
BugCollector::report(const BugReport &report)
{
    ++occurrences_;
    const SiteKey key{report.type, report.range.start, report.range.end};
    auto [it, inserted] = sites_.try_emplace(key, bugs_.size());
    if (!inserted)
        return false;
    bugs_.push_back(report);
    return true;
}

std::size_t
BugCollector::countOf(BugType type) const
{
    std::size_t n = 0;
    for (const auto &bug : bugs_) {
        if (bug.type == type)
            ++n;
    }
    return n;
}

void
BugCollector::clear()
{
    bugs_.clear();
    sites_.clear();
    occurrences_ = 0;
}

std::string
BugCollector::summary() const
{
    std::ostringstream out;
    out << "Bug summary: " << bugs_.size() << " unique site(s), "
        << occurrences_ << " detection(s)\n";
    for (int t = 0; t < bugTypeCount; ++t) {
        const auto type = static_cast<BugType>(t);
        const std::size_t n = countOf(type);
        if (n)
            out << "  " << pmdb::toString(type) << ": " << n << "\n";
    }
    for (const auto &bug : bugs_)
        out << "  - " << bug.toString() << "\n";
    return out.str();
}

} // namespace pmdb
