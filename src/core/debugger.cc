#include "core/debugger.hh"

#include "common/logging.hh"

namespace pmdb
{

const char *
toString(PersistencyModel model)
{
    switch (model) {
      case PersistencyModel::Strict: return "strict";
      case PersistencyModel::Epoch:  return "epoch";
      case PersistencyModel::Strand: return "strand";
    }
    return "unknown";
}

PmDebugger::PmDebugger(DebuggerConfig config)
    : config_(std::move(config)),
      mainSpace_(std::make_unique<Space>(config_.arrayCapacity,
                                         config_.mergeThreshold))
{
    current_ = mainSpace_.get();
    rules_ = makeStandardRules(config_);
    for (auto &rule : rules_)
        indexRule(rule.get());
    orderTracker_.configure(config_.orderSpec);
}

void
PmDebugger::indexRule(Rule *rule)
{
    const unsigned mask = rule->hooks();
    if (mask & hookStore)
        storeRules_.push_back(rule);
    if (mask & hookFlush)
        flushRules_.push_back(rule);
    if (mask & hookFence)
        fenceRules_.push_back(rule);
    if (mask & hookEpochBegin)
        epochBeginRules_.push_back(rule);
    if (mask & hookEpochEnd)
        epochEndRules_.push_back(rule);
    if (mask & hookTxLog)
        txLogRules_.push_back(rule);
    if (mask & hookFinalize)
        finalizeRules_.push_back(rule);
}

PmDebugger::~PmDebugger() = default;

void
PmDebugger::attached(const NameTable &names)
{
    names_ = &names;
}

void
PmDebugger::addRule(std::unique_ptr<Rule> rule)
{
    if (!rule)
        panic("PmDebugger::addRule: null rule");
    indexRule(rule.get());
    rules_.push_back(std::move(rule));
}

PmDebugger::Space &
PmDebugger::spaceFor(StrandId strand)
{
    if (strand == noStrand || config_.model != PersistencyModel::Strand)
        return *mainSpace_;
    auto it = strandSpaces_.find(strand);
    if (it == strandSpaces_.end()) {
        it = strandSpaces_
                 .emplace(strand,
                          std::make_unique<Space>(config_.arrayCapacity,
                                                  config_.mergeThreshold))
                 .first;
    }
    return *it->second;
}

const PmDebugger::Space &
PmDebugger::currentSpace() const
{
    return *current_;
}

namespace
{

/** Per-rule-class eval-latency histograms, resolved once. The class
 *  labels group event kinds by which rule hook list they drive. */
struct DetectorMetrics
{
    telemetry::Histogram &store = telemetry::Registry::global()
        .histogram("detector.eval_ns{class=\"store\"}");
    telemetry::Histogram &flush = telemetry::Registry::global()
        .histogram("detector.eval_ns{class=\"flush\"}");
    telemetry::Histogram &fence = telemetry::Registry::global()
        .histogram("detector.eval_ns{class=\"fence\"}");
    telemetry::Histogram &epoch = telemetry::Registry::global()
        .histogram("detector.eval_ns{class=\"epoch\"}");
    telemetry::Histogram &other = telemetry::Registry::global()
        .histogram("detector.eval_ns{class=\"other\"}");
    telemetry::Histogram &storeRun = telemetry::Registry::global()
        .histogram("detector.store_run_ns");

    telemetry::Histogram &
    byKind(EventKind kind)
    {
        switch (kind) {
          case EventKind::Store:      return store;
          case EventKind::Flush:      return flush;
          case EventKind::Fence:
          case EventKind::JoinStrand: return fence;
          case EventKind::EpochBegin:
          case EventKind::EpochEnd:   return epoch;
          default:                    return other;
        }
    }

    static DetectorMetrics &
    get()
    {
        static DetectorMetrics instance;
        return instance;
    }
};

} // namespace

void
PmDebugger::handleEventTimed(const Event &event)
{
    const std::uint64_t start = telemetry::nowNs();
    handleEvent(event);
    DetectorMetrics::get().byKind(event.kind).record(
        telemetry::nowNs() - start);
}

void
PmDebugger::handleEvent(const Event &event)
{
    lastSeq_ = event.seq;
    switch (event.kind) {
      case EventKind::Store:
        processStore(event);
        break;
      case EventKind::Load:
        // Loads carry no persistence obligation; only the cross-session
        // engine (src/crossproc/) interprets them.
        break;
      case EventKind::Flush:
        processFlush(event);
        break;
      case EventKind::Fence:
        processFence(event);
        break;
      case EventKind::EpochBegin:
        processEpochBegin(event);
        break;
      case EventKind::EpochEnd:
        processEpochEnd(event);
        break;
      case EventKind::StrandBegin:
        strandsActive_ = true;
        current_ = &spaceFor(event.strand);
        break;
      case EventKind::StrandEnd:
        current_ = mainSpace_.get();
        break;
      case EventKind::JoinStrand: {
        // An explicit cross-strand ordering point: a durability barrier
        // for every strand's bookkeeping space.
        ++base_.fences;
        newlyDurable_ = orderTracker_.onFence();
        fenceSpace(*mainSpace_);
        for (auto &[id, space] : strandSpaces_)
            fenceSpace(*space);
        for (Rule *rule : fenceRules_)
            rule->onFence(*this, event);
        break;
      }
      case EventKind::TxLog:
        current_ = &spaceFor(event.strand);
        for (Rule *rule : txLogRules_)
            rule->onTxLog(*this, event);
        break;
      case EventKind::RegisterPmem:
        processRegister(event);
        break;
      case EventKind::ProgramEnd:
        finalize();
        break;
    }
}

void
PmDebugger::handleBatch(const Event *events, std::size_t count)
{
    std::size_t i = 0;
    while (i < count) {
        const Event &head = events[i];
        if (head.kind != EventKind::Store) {
            handle(head);
            ++i;
            continue;
        }
        // Homogeneous run: consecutive stores of the same strand all
        // target the same bookkeeping space.
        std::size_t j = i + 1;
        while (j < count && events[j].kind == EventKind::Store &&
               events[j].strand == head.strand)
            ++j;
        // The run bypasses handle(); advance the sample tick by the
        // run length and time the whole run when a sample point falls
        // inside it (same 1-in-1024 event rate as the per-event path).
        const std::uint64_t tickBefore = telemetryTick_;
        telemetryTick_ += j - i;
        if ((tickBefore >> telemetrySampleShift) !=
                (telemetryTick_ >> telemetrySampleShift) &&
            telemetry::enabled()) {
            const std::uint64_t start = telemetry::nowNs();
            processStoreRun(events + i, j - i);
            DetectorMetrics::get().storeRun.record(telemetry::nowNs() -
                                                   start);
        } else {
            processStoreRun(events + i, j - i);
        }
        i = j;
    }
}

void
PmDebugger::processStoreRun(const Event *events, std::size_t count)
{
    // Everything that is loop-invariant across the run is hoisted: the
    // space lookup, the bookkeeping-mode branch, the epoch flag, the
    // store-rule list and the order-tracker watch check. The per-event
    // work that remains is exactly what processStore() does, in the
    // same order, so counters and reports match per-event dispatch
    // bit for bit.
    base_.stores += count;
    Space &space = spaceFor(events[0].strand);
    current_ = &space;

    MemoryLocationArray &array = space.array;
    AvlTree &tree = space.tree;
    const bool in_epoch = epochDepth_ > 0;
    const bool tree_only = config_.bookkeeping == BookkeepingMode::TreeOnly;
    const bool track_order = orderTracker_.watching();
    Rule *const *rules = storeRules_.data();
    const std::size_t rule_count = storeRules_.size();

    if (!tree_only && rule_count == 0 && !track_order) {
        // No per-event hook observes intermediate state, so the whole
        // run can go through the array's bulk append; the overflow tail
        // (if any) falls through to the general loop below.
        const std::uint32_t done = array.appendRun(
            events, static_cast<std::uint32_t>(count), in_epoch);
        if (done == count) {
            lastSeq_ = events[count - 1].seq;
            return;
        }
        for (std::size_t i = done; i < count; ++i) {
            const Event &event = events[i];
            lastSeq_ = event.seq;
            LocationRecord record(event.range(), FlushState::NotFlushed,
                                  in_epoch, event.seq);
            tree.insert(record);
            array.noteOverflow();
        }
        return;
    }

    for (std::size_t i = 0; i < count; ++i) {
        const Event &event = events[i];
        lastSeq_ = event.seq;
        if (track_order)
            orderTracker_.onStore(event);

        // Rules that inspect pre-store state (multiple overwrites) run
        // before the record is added (§4.2).
        for (std::size_t r = 0; r < rule_count; ++r)
            rules[r]->onStore(*this, event);

        LocationRecord record(event.range(), FlushState::NotFlushed,
                              in_epoch, event.seq);
        if (tree_only) {
            tree.insert(record);
        } else if (!array.append(record)) {
            tree.insert(record);
            array.noteOverflow();
        }
    }
}

void
PmDebugger::processStore(const Event &event)
{
    ++base_.stores;
    Space &space = spaceFor(event.strand);
    current_ = &space;
    orderTracker_.onStore(event);

    // Rules that inspect pre-store state (multiple overwrites) run
    // before the record is added (§4.2).
    for (Rule *rule : storeRules_)
        rule->onStore(*this, event);

    LocationRecord record(event.range(), FlushState::NotFlushed,
                          epochDepth_ > 0, event.seq);
    switch (config_.bookkeeping) {
      case BookkeepingMode::TreeOnly:
        space.tree.insert(record);
        break;
      case BookkeepingMode::Hybrid:
      case BookkeepingMode::ArrayOnly:
        if (!space.array.append(record)) {
            space.tree.insert(record);
            space.array.noteOverflow();
        }
        break;
    }
}

void
PmDebugger::processFlush(const Event &event)
{
    ++base_.flushes;
    Space &space = spaceFor(event.strand);
    current_ = &space;
    orderTracker_.onFlush(event);

    const AddrRange range = event.range();
    FlushOutcome outcome;
    if (config_.bookkeeping != BookkeepingMode::TreeOnly)
        outcome = space.array.applyFlush(range, space.tree);
    const AvlTree::FlushOutcome tree_outcome =
        space.tree.applyFlush(range);
    outcome.hitAny |= tree_outcome.hitAny;
    outcome.hitUnflushed |= tree_outcome.hitUnflushed;
    outcome.hitFlushed |= tree_outcome.hitFlushed;

    for (Rule *rule : flushRules_)
        rule->onFlush(*this, event, outcome);
}

void
PmDebugger::fenceSpace(Space &space)
{
    // Tree first, then the array (§4.4): pruning the tree before
    // re-distribution keeps it small while survivors are inserted.
    space.tree.removeFlushed(nullptr);
    switch (config_.bookkeeping) {
      case BookkeepingMode::Hybrid:
        space.array.processFence(space.tree);
        break;
      case BookkeepingMode::ArrayOnly:
        space.array.compactSurvivors();
        break;
      case BookkeepingMode::TreeOnly:
        break;
    }
    space.tree.maybeMerge();
}

void
PmDebugger::processFence(const Event &event)
{
    ++base_.fences;
    Space &space = spaceFor(event.strand);
    current_ = &space;
    newlyDurable_ = orderTracker_.onFence();

    fenceSpace(space);

    base_.treeNodeSampleSum += space.tree.size();
    ++base_.treeNodeSamples;

    if (epochDepth_ > 0)
        ++epochFences_;

    for (Rule *rule : fenceRules_)
        rule->onFence(*this, event);
}

void
PmDebugger::processEpochBegin(const Event &event)
{
    if (epochDepth_ == 0) {
        epochFences_ = 0;
        ++base_.epochs;
    }
    ++epochDepth_;
    for (Rule *rule : epochBeginRules_)
        rule->onEpochBegin(*this, event);
}

void
PmDebugger::processEpochEnd(const Event &event)
{
    current_ = &spaceFor(event.strand);
    for (Rule *rule : epochEndRules_)
        rule->onEpochEnd(*this, event);
    if (epochDepth_ > 0)
        --epochDepth_;
    if (epochDepth_ == 0) {
        // Records surviving the epoch have been reported (if the rule
        // is on); they no longer belong to any epoch.
        current_->array.clearEpochFlags();
        current_->tree.clearEpochFlags();
        epochFences_ = 0;
    }
}

void
PmDebugger::processRegister(const Event &event)
{
    if (!names_ || event.nameId == noName)
        return;
    const std::string &name = names_->name(event.nameId);
    registered_[name] = event.range();
    orderTracker_.onRegister(name, event.range());
}

void
PmDebugger::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (Rule *rule : finalizeRules_)
        rule->onFinalize(*this, lastSeq_);
}

bool
PmDebugger::liveOverlaps(const AddrRange &range) const
{
    const Space &space = currentSpace();
    return space.array.overlapsAny(range) || space.tree.overlapsAny(range);
}

void
PmDebugger::forEachLiveOf(const Space &space, const LiveVisitor &visit)
    const
{
    space.array.forEachLive(visit);
    space.tree.forEach([&](const LocationRecord &rec) {
        visit(rec, rec.state);
    });
}

void
PmDebugger::forEachLiveInSpace(const LiveVisitor &visit) const
{
    forEachLiveOf(currentSpace(), visit);
}

void
PmDebugger::forEachLiveAll(const LiveVisitor &visit) const
{
    forEachLiveOf(*mainSpace_, visit);
    for (const auto &[id, space] : strandSpaces_)
        forEachLiveOf(*space, visit);
}

std::size_t
PmDebugger::treeNodeCount() const
{
    std::size_t n = mainSpace_->tree.size();
    for (const auto &[id, space] : strandSpaces_)
        n += space->tree.size();
    return n;
}

DebuggerStats
PmDebugger::stats() const
{
    DebuggerStats stats = base_;
    auto fold = [&](const Space &space) {
        const TreeStats &t = space.tree.stats();
        stats.tree.insertions += t.insertions;
        stats.tree.removals += t.removals;
        stats.tree.reorganizations += t.reorganizations;
        stats.tree.merges += t.merges;
        const ArrayStats &a = space.array.stats();
        stats.array.collectiveInvalidations += a.collectiveInvalidations;
        stats.array.recordsCollectivelyFreed += a.recordsCollectivelyFreed;
        stats.array.recordsMovedToTree += a.recordsMovedToTree;
        stats.array.recordsDroppedIndividually +=
            a.recordsDroppedIndividually;
        stats.array.overflowStores += a.overflowStores;
        stats.array.maxUsage = std::max(stats.array.maxUsage, a.maxUsage);
    };
    fold(*mainSpace_);
    for (const auto &[id, space] : strandSpaces_)
        fold(*space);
    return stats;
}

} // namespace pmdb
