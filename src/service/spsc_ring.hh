/**
 * @file
 * Shared-memory single-producer/single-consumer event ring — the data
 * plane of the detection service.
 *
 * The ring lives in a client-created file mapped MAP_SHARED by both
 * processes: a RingHeader with monotonic head/tail counters followed
 * by `slots` Event records (Event is trivially copyable, so it is safe
 * to place in shared memory). The producer owns head, the consumer
 * owns tail; indices are counters modulo the slot count, so the full
 * capacity is usable and empty/full are unambiguous.
 *
 * Backpressure is credit-based: the `slots` free entries are the
 * producer's credits. tryPush fails when credits run out and the
 * producer applies its SlowConsumerPolicy (block, drop + count, or
 * spill to a stream trace file) — the ring itself never blocks.
 *
 * Memory ordering: the producer's release store of head publishes the
 * slot contents; the consumer's acquire load of head observes them
 * (and symmetrically for tail, which publishes slot reuse). Only
 * lock-free std::atomic<u64> counters cross the process boundary.
 */

#ifndef PMDB_SERVICE_SPSC_RING_HH
#define PMDB_SERVICE_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "trace/event.hh"

namespace pmdb
{

/** Magic identifying a mapped ring file. */
constexpr char ringMagic[8] = {'P', 'M', 'D', 'B', 'R', 'N', 'G', '1'};

/** Shared ring control block, at offset 0 of the mapping. */
struct RingHeader
{
    char magic[8];
    std::uint32_t slots = 0;
    std::uint32_t reserved = 0;
    /** Next sequence the producer will write (monotonic). */
    std::atomic<std::uint64_t> head;
    /** Next sequence the consumer will read (monotonic). */
    std::atomic<std::uint64_t> tail;
    /** Events discarded under SlowConsumerPolicy::Drop. */
    std::atomic<std::uint64_t> dropped;
    /** Producer finished: once set, an empty ring is a finished ring. */
    std::atomic<std::uint32_t> producerDone;
    std::uint32_t pad = 0;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory ring needs lock-free 64-bit atomics");

/**
 * One endpoint's view of a ring mapping. The creator (client) builds
 * the file and initializes the header; the opener (daemon) validates
 * it. Exactly one producer and one consumer may use a ring at a time.
 */
class EventRing
{
  public:
    EventRing() = default;
    ~EventRing();

    EventRing(const EventRing &) = delete;
    EventRing &operator=(const EventRing &) = delete;

    /** Create @p path, size it for @p slots events, map and init. */
    bool create(const std::string &path, std::uint32_t slots,
                std::string *error = nullptr);

    /** Map an existing ring file created by a peer. */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Unmap (and, for the creator, unlink) the ring file. */
    void close();

    bool isOpen() const { return header_ != nullptr; }

    /** Producer: append one event; false when out of credits (full). */
    bool tryPush(const Event &event);

    /** Consumer: pop up to @p max events; returns the number popped. */
    std::size_t tryPop(Event *out, std::size_t max);

    /** Events currently queued. */
    std::size_t size() const;

    std::uint32_t slots() const { return slots_; }

    /** Producer: mark the stream complete. */
    void markProducerDone();

    bool producerDone() const;

    /** Producer: count one event discarded under the Drop policy. */
    void countDrop();

    std::uint64_t droppedCount() const;

  private:
    Event &slot(std::uint64_t seq);

    RingHeader *header_ = nullptr;
    Event *slotsBase_ = nullptr;
    std::size_t mapBytes_ = 0;
    std::uint32_t slots_ = 0;
    std::string path_;
    bool owner_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_SPSC_RING_HH
