/**
 * @file
 * Shared-memory single-producer/single-consumer event ring — the data
 * plane of the detection service.
 *
 * The ring lives in a client-created file mapped MAP_SHARED by both
 * processes: a RingHeader with monotonic head/tail counters followed
 * by `slots` Event records (Event is trivially copyable, so it is safe
 * to place in shared memory). The producer owns head, the consumer
 * owns tail; indices are counters modulo the slot count, so the full
 * capacity is usable and empty/full are unambiguous.
 *
 * Events cross the ring in **batch frames**: the producer accumulates
 * an EventBatch and publishes the whole contiguous run with a single
 * release store of head (tryPushBatch), and the consumer drains every
 * published event with one acquire load and a single release store of
 * tail (popBatch). A frame is atomic — the consumer can never observe
 * a partially published batch — and the per-event cost of crossing the
 * ring is two memcpy spans plus a pair of atomic operations amortized
 * over the frame.
 *
 * False-sharing layout: head and tail live on separate cache lines
 * (alignas(64)), so the producer's head stores never invalidate the
 * consumer's tail line and vice versa. On top of that, each endpoint
 * caches the last value it observed of the *remote* cursor and only
 * re-reads the shared line when the cached value makes the ring look
 * full (producer) or empty (consumer). A steady-state frame crossing
 * therefore touches the remote line once per wrap, not once per push.
 * Measured on the service_bench ingest sweep (block policy, 1-core
 * host): split + cached cursors with batch frames lifted 1-client
 * ingest from 12.0M events/s (v1 layout, per-event push/pop,
 * thread-per-session daemon) to 14.2M events/s, and fixed the
 * multi-client collapse — 4-client aggregate went from 0.74x of
 * 1-client to 0.86x (the flat-aggregate ceiling on one core), with a
 * tight per-client fairness spread (min 3.18M / max 3.43M events/s).
 *
 * Backpressure is credit-based: the `slots` free entries are the
 * producer's credits. tryPushBatch publishes the largest prefix that
 * fits (whole batch in the common case) and reports how many events
 * it accepted; the producer applies its SlowConsumerPolicy (block,
 * drop + count, or spill to a stream trace file) to the remainder —
 * the ring itself never blocks.
 *
 * Memory ordering: the producer's release store of head publishes the
 * slot contents; the consumer's acquire load of head observes them
 * (and symmetrically for tail, which publishes slot reuse). Only
 * lock-free std::atomic<u64> counters cross the process boundary.
 */

#ifndef PMDB_SERVICE_SPSC_RING_HH
#define PMDB_SERVICE_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "trace/event.hh"

namespace pmdb
{

/** Magic identifying a mapped ring file (v3: publish timestamp). */
constexpr char ringMagic[8] = {'P', 'M', 'D', 'B', 'R', 'N', 'G', '3'};

/** Shared ring control block, at offset 0 of the mapping. */
struct RingHeader
{
    char magic[8];
    std::uint32_t slots = 0;
    std::uint32_t reserved = 0;
    /**
     * Producer-owned cache line: head is stored by the producer on
     * every published frame; producerDone and dropped are low-rate
     * producer-side state that can share its line without adding
     * coherence traffic on the consumer's hot path.
     */
    /** Next sequence the producer will write (monotonic). */
    alignas(64) std::atomic<std::uint64_t> head;
    /** Events discarded under SlowConsumerPolicy::Drop. */
    std::atomic<std::uint64_t> dropped;
    /**
     * CLOCK_MONOTONIC ns of the most recent published frame (same-host
     * clocks are comparable across processes). The consumer subtracts
     * it from its drain time for the ring-residency telemetry stage;
     * frame-granular by design — a per-event stamp would widen Event.
     */
    std::atomic<std::uint64_t> lastPublishNs;
    /** Producer finished: once set, an empty ring is a finished ring. */
    std::atomic<std::uint32_t> producerDone;
    /** Consumer-owned cache line: tail is stored on every drain. */
    alignas(64) std::atomic<std::uint64_t> tail;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory ring needs lock-free 64-bit atomics");

/**
 * One endpoint's view of a ring mapping. The creator (client) builds
 * the file and initializes the header; the opener (daemon) validates
 * it. Exactly one producer and one consumer may use a ring at a time:
 * the cached remote cursors live in this object, not in the shared
 * header.
 */
class EventRing
{
  public:
    EventRing() = default;
    ~EventRing();

    EventRing(const EventRing &) = delete;
    EventRing &operator=(const EventRing &) = delete;

    /** Create @p path, size it for @p slots events, map and init. */
    bool create(const std::string &path, std::uint32_t slots,
                std::string *error = nullptr);

    /** Map an existing ring file created by a peer. */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Unmap (and, for the creator, unlink) the ring file. */
    void close();

    bool isOpen() const { return header_ != nullptr; }

    /**
     * Producer: publish the largest prefix of @p events that fits as
     * one atomic frame (a single release store of head). Returns the
     * number of events accepted — @p count in the common case, less
     * when credits run out, 0 when the ring is full.
     */
    std::size_t tryPushBatch(const Event *events, std::size_t count);

    /** Producer: append one event; false when out of credits (full). */
    bool tryPush(const Event &event)
    {
        return tryPushBatch(&event, 1) == 1;
    }

    /**
     * Consumer: drain up to @p max published events into @p out as one
     * frame (one acquire of head, one release of tail). Returns the
     * number drained.
     */
    std::size_t popBatch(Event *out, std::size_t max);

    /** Consumer: pop up to @p max events; returns the number popped. */
    std::size_t tryPop(Event *out, std::size_t max)
    {
        return popBatch(out, max);
    }

    /** Events currently queued (reads both shared cursors). */
    std::size_t size() const;

    std::uint32_t slots() const { return slots_; }

    /** Producer: mark the stream complete. */
    void markProducerDone();

    bool producerDone() const;

    /** Producer: count one event discarded under the Drop policy. */
    void countDrop();

    std::uint64_t droppedCount() const;

    /** Producer: stamp the publish time of the frame just pushed. */
    void stampPublish(std::uint64_t ns);

    /** Consumer: publish stamp of the most recent frame (0 if none). */
    std::uint64_t lastPublishNs() const;

  private:
    RingHeader *header_ = nullptr;
    Event *slotsBase_ = nullptr;
    std::size_t mapBytes_ = 0;
    std::uint32_t slots_ = 0;
    /** Producer-side cache of the consumer's tail. */
    std::uint64_t cachedTail_ = 0;
    /** Consumer-side cache of the producer's head. */
    std::uint64_t cachedHead_ = 0;
    std::string path_;
    bool owner_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_SPSC_RING_HH
