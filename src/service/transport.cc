#include "service/transport.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pmdb
{

namespace
{

bool
failFd(std::string *error, const std::string &message)
{
    if (error)
        *error = message + ": " + std::strerror(errno);
    return false;
}

bool
fillAddr(const std::string &path, sockaddr_un *addr,
         std::string *error)
{
    if (path.size() >= sizeof(addr->sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
sendAll(int fd, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    while (size) {
        const ssize_t n = ::send(fd, bytes, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        bytes += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *data, std::size_t size)
{
    auto *bytes = static_cast<std::uint8_t *>(data);
    while (size) {
        const ssize_t n = ::recv(fd, bytes, size, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // peer closed
        bytes += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, &addr, error))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        failFd(error, "socket");
        return -1;
    }
    std::remove(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        failFd(error, "bind/listen " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, int timeout_ms, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, &addr, error))
        return -1;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            failFd(error, "socket");
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        ::close(fd);
        // The daemon may still be binding; retry until the deadline.
        if (std::chrono::steady_clock::now() >= deadline) {
            failFd(error, "connect " + path);
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

bool
sendMessage(int fd, MsgType type,
            const std::vector<std::uint8_t> &payload)
{
    MsgHeader header;
    header.type = static_cast<std::uint32_t>(type);
    header.length = static_cast<std::uint32_t>(payload.size());
    if (!sendAll(fd, &header, sizeof(header)))
        return false;
    return payload.empty() ||
           sendAll(fd, payload.data(), payload.size());
}

bool
recvMessage(int fd, MsgType *type, std::vector<std::uint8_t> *payload)
{
    MsgHeader header;
    if (!recvAll(fd, &header, sizeof(header)))
        return false;
    // A corrupt length would otherwise trigger a giant allocation.
    if (header.length > (64u << 20))
        return false;
    *type = static_cast<MsgType>(header.type);
    payload->resize(header.length);
    return header.length == 0 ||
           recvAll(fd, payload->data(), header.length);
}

bool
readable(int fd, int timeout_ms)
{
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    return ::poll(&pfd, 1, timeout_ms) > 0 &&
           (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool
peerClosed(int fd)
{
    // events == 0: POLLHUP/POLLERR/POLLNVAL are always reported, and
    // pending readable data does not make this fire.
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = 0;
    pfd.revents = 0;
    return ::poll(&pfd, 1, 0) > 0 &&
           (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
}

} // namespace pmdb
